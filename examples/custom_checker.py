#!/usr/bin/env python
"""Driving the pipeline stage by stage: DN-Analyzer as a library.

MC-Checker's facade (`check_app`) hides six analysis stages.  This example
runs them one at a time on the paper's Figure 3 execution — three ranks,
barriers, send/recv, a fence window, and a racing Put/store pair — and
prints what each stage produced: the reconstructed registries, the matched
synchronization, the concurrent regions, the epochs, and finally the
findings.  It also materializes the Figure 4 data-access DAG.

Run:  python examples/custom_checker.py
"""

from repro import api
from repro.core.clocks import ConcurrencyOracle, Span
from repro.core.dag import build_dag
from repro.core.epochs import EpochIndex
from repro.core.inter import detect_cross_process
from repro.core.intra import detect_intra_epoch
from repro.core.matching import match_synchronization
from repro.core.model import build_access_model
from repro.core.preprocess import preprocess
from repro.core.regions import RegionIndex
from repro.simmpi import DOUBLE, INT


def figure3(mpi):
    """The paper's Figure 3 execution, in spirit: P0 and P2 Put into P1's
    window in the same exposure period; P1 also stores locally."""
    wbuf = mpi.alloc("wbuf", 8, datatype=DOUBLE, fill=0.0)
    src = mpi.alloc("src", 2, datatype=DOUBLE, fill=float(mpi.rank))
    win = mpi.win_create(wbuf)

    win.fence()                       # region A opens
    if mpi.rank == 0:
        win.put(src, target=1, target_disp=0, origin_count=2)   # op a
    if mpi.rank == 2:
        win.put(src, target=1, target_disp=1, origin_count=2)   # op c
    if mpi.rank == 1:
        wbuf[1] = -1.0                # op e: store racing with both Puts
    win.fence()                       # region B opens
    if mpi.rank == 2:
        mpi.send(src, dest=1, tag=3)
    if mpi.rank == 1:
        mpi.recv(src, source=2, tag=3)
    mpi.barrier()
    win.free()


def main():
    run = api.run(figure3, nranks=3, delivery="random")

    pre = preprocess(run.traces)
    print("communicators:", pre.comms)
    print("windows:", {w.win_id: dict(w.bases) for w in pre.windows.values()})

    matches = match_synchronization(pre)
    print(f"\n{len(matches)} synchronization matches:")
    for match in matches:
        print(f"  {match.kind:12s} {match.fn:12s} "
              f"{match.members or (match.src, match.dst)}")

    oracle = ConcurrencyOracle(pre, matches)
    epochs = EpochIndex(pre)
    print(f"\n{len(epochs.epochs)} epochs:")
    for epoch in epochs.epochs:
        print("  " + epoch.describe())

    regions = RegionIndex(pre, matches)
    print(f"\n{len(regions)} concurrent regions")

    model = build_access_model(pre, epochs)
    print(f"{len(model.ops)} RMA ops, {len(model.local)} local accesses")

    dag = build_dag(pre, matches, epochs)
    print(f"Figure-4 DAG: {dag.number_of_nodes()} vertices, "
          f"{dag.number_of_edges()} edges")

    # ad-hoc concurrency probe, like the paper's discussion of ops a/c/e
    put0 = next(op for op in model.ops if op.rank == 0)
    put2 = next(op for op in model.ops if op.rank == 2)
    print(f"\nPut(P0) concurrent with Put(P2)? "
          f"{oracle.concurrent(put0.span, put2.span)}")

    findings = detect_intra_epoch(model, epochs) + detect_cross_process(
        pre, model, regions, oracle, epochs)
    print(f"\n{len(findings)} raw findings; first:")
    print(findings[0].format())

    # the facade runs the same stages end to end (and deduplicates)
    report = api.check(run.traces)
    print(f"\nfacade cross-check: {report.summary()}")


if __name__ == "__main__":
    main()
