#!/usr/bin/env python
"""Profiling-overhead study: a miniature of the paper's Figures 8-10.

Runs one workload (LU) three ways —

* native (no Profiler),
* Profiler with ST-Analyzer-selected instrumentation (the paper's mode),
* Profiler instrumenting *every* buffer (the ablation the paper says
  costs "hundreds of times more" in the worst case)

— then sweeps the rank count to show the strong-scaling effect of
Figure 9/10: per-rank load/store event counts (and so relative overhead)
drop as ranks increase.

Run:  python examples/overhead_study.py
"""

import statistics

from repro.apps.lu import lu
from repro.profiler.session import baseline_run, profile_run

N = 48
REPS = 3


def timed_profile(scope: str, nranks: int):
    times, counts = [], None
    for rep in range(REPS):
        run = profile_run(lu, nranks, params=dict(n=N), scope=scope,
                          seed=rep, delivery="eager")
        times.append(run.elapsed)
        counts = run.traces.event_counts()
    return statistics.median(times), counts


def main():
    nranks = 8
    native = statistics.median(
        baseline_run(lu, nranks, params=dict(n=N), seed=rep,
                     delivery="eager")
        for rep in range(REPS))
    selective, counts_sel = timed_profile("report", nranks)
    full, counts_all = timed_profile("all", nranks)

    print(f"LU n={N} on {nranks} ranks (median of {REPS}):")
    print(f"  native                      : {native:.3f}s  (1.00x)")
    print(f"  profiler + ST-Analyzer scope: {selective:.3f}s  "
          f"({selective / native:.2f}x, {counts_sel['mem']} mem events)")
    print(f"  profiler, ALL buffers       : {full:.3f}s  "
          f"({full / native:.2f}x, {counts_all['mem']} mem events)")

    print("\nstrong scaling (selective instrumentation):")
    print(f"{'ranks':>6} {'overhead':>9} {'mem ev/rank':>12} "
          f"{'call ev/rank':>13}")
    for nranks in (2, 4, 8, 16):
        native = statistics.median(
            baseline_run(lu, nranks, params=dict(n=N), seed=rep,
                         delivery="eager")
            for rep in range(REPS))
        prof, counts = timed_profile("report", nranks)
        overhead = 100.0 * (prof - native) / native
        print(f"{nranks:>6} {overhead:>8.1f}% "
              f"{counts['mem'] / nranks:>12.0f} "
              f"{counts['call'] / nranks:>13.0f}")


if __name__ == "__main__":
    main()
