#!/usr/bin/env python
"""Quickstart: write an MPI one-sided program, run it, and check it.

Covers the full MC-Checker workflow on the paper's motivating example
(Figure 1): a nonblocking MPI_Get whose destination buffer is read and
written before the epoch closes.

Run:  python examples/quickstart.py
"""

from repro import api
from repro.simmpi import DOUBLE, LOCK_SHARED, run_app


def figure1(mpi):
    """The paper's Figure 1, transliterated.

    Rank 1 exposes a value in a window; rank 0 fetches it with MPI_Get
    under a passive-target lock, but touches the destination buffer
    *inside* the epoch — before the Get is guaranteed to have completed.
    """
    shared = mpi.alloc("shared", 1, datatype=DOUBLE,
                       fill=float(10 * mpi.rank))
    out = mpi.alloc("out", 1, datatype=DOUBLE, fill=0.0)
    win = mpi.win_create(shared)
    mpi.barrier()

    if mpi.rank == 0:
        win.lock(1, LOCK_SHARED)               # 1
        win.get(out, target=1, origin_count=1)  # 2 (nonblocking!)
        value = out[0]                          # 3 load  <- races with 2
        out[0] = value + 1.0                    # 4 store <- races with 2
        win.unlock(1)                           # 6 (Get completes here)
    mpi.barrier()
    win.free()
    return out[0] if mpi.rank == 0 else None


def main():
    # 1. Just run it on the simulated MPI runtime.  Under "lazy" delivery
    #    the Get's data genuinely arrives at unlock, so line 3 reads the
    #    stale 0.0 — the bug manifests, exactly as on hardware that defers
    #    transfers.
    results = run_app(figure1, nranks=2, delivery="lazy")
    print(f"rank 0 computed: {results[0]}   (expected 11.0 — the stale "
          "read produced 1.0)" if results[0] != 11.0 else
          f"rank 0 computed: {results[0]}")

    # 2. Now let MC-Checker find the defect: profile + analyze in one
    #    call through the stable facade (repro.api).
    report = api.run_check(figure1, nranks=2, delivery="lazy")
    print()
    print(report.format())

    # 3. The report pinpoints lines 3-4 conflicting with the Get on line 2
    #    — the diagnostic the paper's Table II calls "root cause".
    assert report.has_errors, "MC-Checker should flag the Figure 1 bug"


if __name__ == "__main__":
    main()
