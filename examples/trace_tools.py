#!/usr/bin/env python
"""The trace-tooling workflow: stats -> diff -> minimize.

A realistic debugging session around MC-Checker's trace format:

1. profile a buggy run and inspect its event profile (`compute_stats` —
   what dominates, which statements are hot);
2. profile the fixed build and *diff* the call streams to see exactly
   where the two diverge;
3. *minimize* the failing trace to a fraction of its events while the
   finding survives — the artifact you attach to a bug report.

Run:  python examples/trace_tools.py
"""

import tempfile

from repro.apps.jacobi import jacobi
from repro.core import check_traces
from repro.profiler.session import profile_run
from repro.tools import compute_stats, diff_traces
from repro.tools.minimize import minimize_trace

RANKS = 3
PARAMS = dict(interior=8, iterations=4)


def main():
    workdir = tempfile.mkdtemp(prefix="mcchecker-tools-")

    buggy = profile_run(jacobi, RANKS, params=dict(buggy=True, **PARAMS),
                        trace_dir=f"{workdir}/buggy",
                        delivery="eager").traces
    fixed = profile_run(jacobi, RANKS, params=dict(buggy=False, **PARAMS),
                        trace_dir=f"{workdir}/fixed",
                        delivery="eager").traces

    print("=== 1. event profile of the buggy run ===")
    print(compute_stats(buggy).format(hot_limit=5))

    print("\n=== 2. buggy vs fixed call streams ===")
    diff = diff_traces(buggy, fixed)
    print(diff.format())

    print("\n=== 3. minimize the failing trace ===")
    report = check_traces(buggy)
    print(f"analyzer found {len(report.errors)} error(s); minimizing "
          "around the first...")
    result = minimize_trace(buggy, f"{workdir}/minimized",
                            finding=report.errors[0])
    print(result.format())

    minimized_report = check_traces(result.traces)
    print(f"\nminimized set still yields "
          f"{len(minimized_report.errors)} error(s); first:")
    print(minimized_report.errors[0].format())


if __name__ == "__main__":
    main()
