#!/usr/bin/env python
"""MPI-3 one-sided extensions: atomics, flushes, and the unified model.

The paper (section V) argues its techniques "can be applied to the MPI-3
one-sided communication model"; this repository implements that extension.
The example builds a classic distributed work-stealing counter three ways:

1. the broken MPI-2 way — Get, local increment, Put (lost updates AND a
   consistency error MC-Checker flags);
2. the correct MPI-3 way — ``fetch_and_op(SUM)`` under shared locks, with
   ``Win_flush`` making results usable mid-epoch (race-free, checked);
3. the subtle one — reading the fetch result *before* the flush, which
   MC-Checker flags exactly like the paper's Figure 1 Get bug.

It also shows the memory-model switch: a local store beside a disjoint
remote Put is an ERROR under the separate model (MPI-2.2 / paper Table I)
but permitted under MPI-3's unified model.

Run:  python examples/mpi3_atomics.py
"""

from repro.core import MODEL_SEPARATE, MODEL_UNIFIED, check_app
from repro.simmpi import INT, LOCK_SHARED, run_app

TASKS_PER_RANK = 3


def broken_counter(mpi):
    """Get / increment / Put: not atomic, and racy under the MPI model."""
    counter = mpi.alloc("counter", 1, datatype=INT, fill=0)
    mine = mpi.alloc("mine", 1, datatype=INT)
    win = mpi.win_create(counter)
    mpi.barrier()
    claimed = []
    for _ in range(TASKS_PER_RANK):
        win.lock(0, LOCK_SHARED)
        win.get(mine, target=0, origin_count=1)
        mine[0] = mine[0] + 1          # reads the in-flight Get's buffer!
        win.put(mine, target=0, origin_count=1)
        win.unlock(0)
        claimed.append(mine[0])
    mpi.barrier()
    total = counter[0]
    win.free()
    return claimed, total


def atomic_counter(mpi):
    """fetch_and_op: each rank atomically claims distinct task ids."""
    counter = mpi.alloc("counter", 1, datatype=INT, fill=0)
    one = mpi.alloc("one", 1, datatype=INT, fill=1)
    old = mpi.alloc("old", 1, datatype=INT)
    win = mpi.win_create(counter)
    mpi.barrier()
    claimed = []
    win.lock(0, LOCK_SHARED)
    for _ in range(TASKS_PER_RANK):
        win.fetch_and_op(one, old, target=0, op="SUM")
        win.flush(0)                   # the fetch is complete NOW
        claimed.append(old[0])         # safe: after the flush
    win.unlock(0)
    mpi.barrier()
    total = counter[0]
    win.free()
    return claimed, total


def impatient_counter(mpi):
    """Reads the fetch result before the flush — the MPI-3 Figure-1 bug."""
    counter = mpi.alloc("counter", 1, datatype=INT, fill=0)
    one = mpi.alloc("one", 1, datatype=INT, fill=1)
    old = mpi.alloc("old", 1, datatype=INT)
    win = mpi.win_create(counter)
    mpi.barrier()
    if mpi.rank == 0:
        win.lock(0, LOCK_SHARED)
        win.fetch_and_op(one, old, target=0, op="SUM")
        _ = old[0]                     # BEFORE flush/unlock: undefined
        win.unlock(0)
    mpi.barrier()
    win.free()


def main():
    nranks = 4
    expect = nranks * TASKS_PER_RANK

    # the broken pattern loses updates under lazy delivery...
    results = run_app(broken_counter, nranks=nranks, delivery="lazy",
                      sched_policy="random", seed=3)
    print(f"broken Get/Put counter: total={results[0][1]} "
          f"(expected {expect}) — updates lost")
    # ...and is flagged regardless of whether it happened to misbehave
    report = check_app(broken_counter, nranks=nranks)
    print(f"MC-Checker on the broken counter: {len(report.errors)} "
          "error(s)\n")

    results = run_app(atomic_counter, nranks=nranks, delivery="lazy",
                      sched_policy="random", seed=3)
    all_claimed = sorted(t for claimed, _ in results for t in claimed)
    print(f"fetch_and_op counter: total={results[0][1]}, claimed ids "
          f"{all_claimed} — atomic, no duplicates")
    report = check_app(atomic_counter, nranks=nranks)
    print(f"MC-Checker on the atomic counter: {len(report.findings)} "
          "finding(s)\n")

    report = check_app(impatient_counter, nranks=2)
    print("reading the fetch result before the flush:")
    print(report.findings[0].format())

    # memory-model switch
    def store_beside_put(mpi):
        buf = mpi.alloc("buf", 2)
        src = mpi.alloc("src", 1)
        win = mpi.win_create(buf)
        mpi.barrier()
        if mpi.rank == 0:
            win.lock(1, LOCK_SHARED)
            win.put(src, target=1, target_disp=0, origin_count=1)
            win.unlock(1)
        else:
            buf[1] = 3.0  # disjoint from the Put's bytes
        mpi.barrier()
        win.free()

    separate = check_app(store_beside_put, nranks=2,
                         memory_model=MODEL_SEPARATE)
    unified = check_app(store_beside_put, nranks=2,
                        memory_model=MODEL_UNIFIED)
    print(f"\ndisjoint store beside a remote Put: separate model -> "
          f"{len(separate.errors)} error(s); unified model -> "
          f"{len(unified.findings)} finding(s)")


if __name__ == "__main__":
    main()
