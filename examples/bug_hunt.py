#!/usr/bin/env python
"""Bug hunt: run MC-Checker over every Table II bug case, buggy and fixed.

Reproduces the paper's effectiveness study interactively: each of the five
evaluated applications (three real-world defects, two injected) is checked
in its buggy and corrected variants, and the findings are printed with the
paper's diagnostic payload (conflicting pair + file:line locations).

Run:  python examples/bug_hunt.py [--ranks-cap N]
"""

import argparse

from repro.apps.registry import BUG_CASES, LOCKOPTS_EXCLUSIVE
from repro.core import check_app


def hunt(case, ranks_cap: int) -> None:
    nranks = min(case.nranks, ranks_cap)
    print(f"=== {case.name} ({case.provenance}, {nranks} ranks, "
          f"{case.error_location}) ===")

    buggy = check_app(case.app, nranks=nranks, params=case.params(True),
                      delivery="random")
    print(f"buggy variant: {len(buggy.errors)} error(s), "
          f"{len(buggy.warnings)} warning(s)")
    for finding in buggy.findings[:2]:
        print()
        print("\n".join("  " + line for line in
                        finding.format().splitlines()))

    fixed = check_app(case.app, nranks=nranks, params=case.params(False),
                      delivery="random")
    status = "clean" if not fixed.findings else "STILL FLAGGED?!"
    print(f"\nfixed variant: {status}")
    print()


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--ranks-cap", type=int, default=16,
                        help="cap per-case rank counts (lockopts uses 64 "
                             "in the paper; smaller is faster)")
    args = parser.parse_args()

    for case in BUG_CASES + (LOCKOPTS_EXCLUSIVE,):
        hunt(case, args.ranks_cap)


if __name__ == "__main__":
    main()
