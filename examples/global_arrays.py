#!/usr/bin/env python
"""Checking a *different* one-sided programming model: Global Arrays.

The paper's advantage #4: "The analysis techniques used by MC-Checker can
also be applied to other one-sided programming models."  Its overhead
study already runs Global Arrays applications over ARMCI-MPI — GA calls
lowered to MPI RMA.  This example uses `repro.ga`, the bundled GA-style
layer, to build a distributed histogram three ways:

1. atomically, with GA's read-and-increment (MPI-3 fetch_and_op under the
   hood) — correct and MC-Checker-clean;
2. with accumulate sections — also correct (same-op accumulates commute);
3. with unsynchronized put-read-modify-write — the classic lost-update
   pattern, which MC-Checker flags at the GA-call granularity.

Run:  python examples/global_arrays.py
"""

import numpy as np

from repro.core import check_app
from repro.ga import GlobalArray
from repro.simmpi import run_app

BINS = 8
SAMPLES_PER_RANK = 6


def _samples(rank):
    return [(rank * 7 + k * 3) % BINS for k in range(SAMPLES_PER_RANK)]


def histogram_read_inc(mpi):
    hist = GlobalArray.create(mpi, "hist", BINS, datatype="INT")
    for bin_index in _samples(mpi.rank):
        hist.read_inc(bin_index)
    hist.sync()
    result = hist.to_numpy()
    hist.destroy()
    return result.tolist()


def histogram_acc(mpi):
    hist = GlobalArray.create(mpi, "hist", BINS, datatype="INT")
    local = np.zeros(BINS, dtype=np.int64)
    for bin_index in _samples(mpi.rank):
        local[bin_index] += 1
    hist.acc(0, BINS, local)
    hist.sync()
    result = hist.to_numpy()
    hist.destroy()
    return result.tolist()


def histogram_lost_updates(mpi):
    hist = GlobalArray.create(mpi, "hist", BINS, datatype="INT")
    for bin_index in _samples(mpi.rank):
        counts = hist.get(bin_index, bin_index + 1)  # read
        hist.put(bin_index, bin_index + 1, counts + 1)  # modify-write: racy
    hist.sync()
    result = hist.to_numpy()
    hist.destroy()
    return result.tolist()


def main():
    nranks = 4
    expected = np.zeros(BINS, dtype=int)
    for rank in range(nranks):
        for bin_index in _samples(rank):
            expected[bin_index] += 1

    for name, app in [("read_inc", histogram_read_inc),
                      ("accumulate", histogram_acc),
                      ("get/put RMW", histogram_lost_updates)]:
        result = run_app(app, nranks=nranks, delivery="random",
                         sched_policy="random", seed=11)[0]
        ok = result == expected.tolist()
        print(f"{name:12s}: {result} "
              f"{'== expected' if ok else f'!= expected {expected.tolist()} (updates lost)'}")

    print("\nMC-Checker verdicts on the three versions:")
    for name, app in [("read_inc", histogram_read_inc),
                      ("accumulate", histogram_acc),
                      ("get/put RMW", histogram_lost_updates)]:
        report = check_app(app, nranks=nranks, delivery="random")
        print(f"  {name:12s}: {len(report.errors)} error(s), "
              f"{len(report.warnings)} warning(s)")
    report = check_app(histogram_lost_updates, nranks=nranks,
                       delivery="random")
    print()
    print(report.findings[0].format())


if __name__ == "__main__":
    main()
