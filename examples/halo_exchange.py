#!/usr/bin/env python
"""Halo exchange done right (and wrong): the Jacobi stencil workload.

Shows a realistic one-sided domain-decomposition pattern, how a single
missing ``Win_fence`` turns it into a cross-process race (the paper's
Figure 2d class), how the simulator's *lazy* delivery policy makes the
corrupted numerics observable, and how MC-Checker pinpoints the defect.

Run:  python examples/halo_exchange.py
"""

import numpy as np

from repro.apps.jacobi import jacobi
from repro.core import check_app
from repro.simmpi import run_app

RANKS = 4
PARAMS = dict(interior=12, iterations=6)


def main():
    # Correct version, any delivery policy: deterministic physics.
    good = run_app(jacobi, nranks=RANKS, delivery="lazy",
                   params=dict(buggy=False, **PARAMS))

    # Buggy version under *eager* delivery: every transfer lands at issue
    # time, so the race window never bites — the classic latent bug that
    # "worked correctly for several years on multiple generations of
    # machines" (the paper's ADLB anecdote).
    latent = run_app(jacobi, nranks=RANKS, delivery="eager",
                     params=dict(buggy=True, **PARAMS))

    # Same buggy code under *lazy* delivery (the Blue Gene/Q scenario):
    # ghost cells are read before the neighbour's Put lands.
    bitten = run_app(jacobi, nranks=RANKS, delivery="lazy",
                     params=dict(buggy=True, **PARAMS))

    good_v = np.array(good)
    print("max |buggy(eager) - fixed| :",
          float(np.abs(np.array(latent) - good_v).max()))
    print("max |buggy(lazy)  - fixed| :",
          float(np.abs(np.array(bitten) - good_v).max()),
          " <- the race materializes")

    # MC-Checker flags the race regardless of whether it happened to bite:
    # the analysis is over what the memory model permits, not over one
    # lucky schedule.
    for delivery in ("eager", "lazy"):
        report = check_app(jacobi, nranks=RANKS, delivery=delivery,
                           params=dict(buggy=True, **PARAMS))
        print(f"\nchecked buggy variant under {delivery} delivery: "
              f"{len(report.errors)} error(s)")
    report = check_app(jacobi, nranks=RANKS, delivery="lazy",
                       params=dict(buggy=True, **PARAMS))
    print()
    print(report.findings[0].format())


if __name__ == "__main__":
    main()
