"""Differential fuzzing harness over generated RMA programs.

One fuzz *case* = generate a program from a seed, profile it on the
simulated runtime, analyze the traces, then use the result two ways:

* **recall/precision** — findings are matched against the ground-truth
  manifest (:func:`repro.gen.manifest.score_report`); every injected
  bug must be found (recall), every finding should trace back to an
  injected bug (precision);
* **differential** — the same traces are re-analyzed across the full
  execution matrix (sweep/pairwise engines × columnar/object control
  planes × cold/warm incremental cache), and the program is re-profiled
  in the other trace format; every arm must produce a byte-identical
  canonical report.

:func:`fuzz_corpus` runs a whole seed corpus and aggregates.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.calltable import CONTROL_PLANE_ENV
from repro.core.checker import CheckReport, check_traces
from repro.core.config import CheckConfig
from repro.gen.config import GenConfig
from repro.gen.generator import GeneratedProgram, generate_program
from repro.gen.manifest import Score, score_report
from repro.gen.program import replay
from repro.profiler.session import ProfiledRun, profile_run


class _plane:
    """Pin the control plane for a block, restoring the prior value."""

    def __init__(self, name: str):
        self.name = name

    def __enter__(self):
        self.prior = os.environ.get(CONTROL_PLANE_ENV)
        os.environ[CONTROL_PLANE_ENV] = self.name
        return self

    def __exit__(self, *exc):
        if self.prior is None:
            os.environ.pop(CONTROL_PLANE_ENV, None)
        else:
            os.environ[CONTROL_PLANE_ENV] = self.prior


def canonical_report(report: CheckReport) -> str:
    """Byte-comparable form of a report (timings stripped)."""
    payload = report.to_dict()
    payload["stats"].pop("phase_seconds", None)
    return json.dumps(payload, sort_keys=True)


def profile_program(generated: GeneratedProgram,
                    trace_dir: Optional[str] = None,
                    trace_format: Optional[str] = None) -> ProfiledRun:
    """Profile a generated program (all buffers instrumented — the spec
    itself says which accesses matter, so ST-Analyzer is bypassed)."""
    cfg = generated.config
    return profile_run(
        replay, cfg.nranks, trace_dir=trace_dir,
        params={"spec": generated.program}, scope="all",
        sched_policy=cfg.sched_policy, seed=cfg.seed,
        delivery=cfg.delivery, app_name=f"gen-{cfg.seed}",
        trace_format=trace_format or cfg.trace_format)


@dataclass(frozen=True)
class FuzzCase:
    """Outcome of one generated program through the whole harness."""

    seed: int
    nranks: int
    nbugs: int
    nfindings: int
    recall: float
    precision: float
    missed: Tuple[int, ...]
    unmatched_findings: Tuple[int, ...]
    #: differential arms whose report differed from the baseline
    mismatched_arms: Tuple[str, ...]
    #: arms compared (empty when the differential matrix was skipped)
    arms: Tuple[str, ...]
    events: int

    @property
    def ok(self) -> bool:
        return self.recall == 1.0 and not self.mismatched_arms

    def to_dict(self) -> dict:
        return {
            "seed": self.seed, "nranks": self.nranks,
            "bugs": self.nbugs, "findings": self.nfindings,
            "recall": self.recall, "precision": self.precision,
            "missed": list(self.missed),
            "unmatched_findings": list(self.unmatched_findings),
            "mismatched_arms": list(self.mismatched_arms),
            "arms": list(self.arms), "events": self.events,
        }


@dataclass(frozen=True)
class FuzzReport:
    """Aggregate over a fuzz corpus."""

    cases: Tuple[FuzzCase, ...]

    @property
    def recall(self) -> float:
        total = sum(c.nbugs for c in self.cases)
        if not total:
            return 1.0
        found = sum(c.nbugs - len(c.missed) for c in self.cases)
        return found / total

    @property
    def precision(self) -> float:
        total = sum(c.nfindings for c in self.cases)
        if not total:
            return 1.0
        true = sum(c.nfindings - len(c.unmatched_findings)
                   for c in self.cases)
        return true / total

    @property
    def mismatches(self) -> int:
        return sum(len(c.mismatched_arms) for c in self.cases)

    @property
    def ok(self) -> bool:
        return self.recall == 1.0 and self.mismatches == 0

    def to_dict(self) -> dict:
        return {
            "cases": [c.to_dict() for c in self.cases],
            "recall": self.recall,
            "precision": self.precision,
            "mismatches": self.mismatches,
            "ok": self.ok,
        }

    def format(self) -> str:
        lines = [
            f"fuzz: {len(self.cases)} program(s), "
            f"recall={self.recall:.3f} precision={self.precision:.3f} "
            f"differential mismatches={self.mismatches}",
        ]
        for c in self.cases:
            status = "ok" if c.ok else "FAIL"
            lines.append(
                f"  seed {c.seed}: {status} ranks={c.nranks} "
                f"bugs={c.nbugs} findings={c.nfindings} "
                f"recall={c.recall:.2f} precision={c.precision:.2f}"
                + (f" missed={list(c.missed)}" if c.missed else "")
                + (f" mismatched={list(c.mismatched_arms)}"
                   if c.mismatched_arms else ""))
        return "\n".join(lines)


def _base_config(check_config: Optional[CheckConfig]) -> CheckConfig:
    """The baseline analysis arm: batch sweep, carrying over only the
    fields that must hold across every arm (memory model, job count)."""
    cc = check_config if check_config is not None else CheckConfig()
    return CheckConfig(memory_model=cc.memory_model, engine="sweep",
                       jobs=cc.jobs)


def differential_reports(traces, check_config: Optional[CheckConfig]
                         = None) -> Dict[str, str]:
    """Analyze one trace set across the full execution matrix.

    Returns ``arm name -> canonical report``; arms are the
    engine × control-plane cross product plus cold/warm incremental
    runs on each plane.
    """
    base = _base_config(check_config)
    out: Dict[str, str] = {}
    for plane_name in ("columnar", "object"):
        with _plane(plane_name):
            for engine in ("sweep", "pairwise"):
                report = check_traces(traces,
                                      base.replace(engine=engine))
                out[f"{engine}/{plane_name}"] = canonical_report(report)
            with tempfile.TemporaryDirectory(
                    prefix="mcgen-cache-") as cache:
                inc = base.replace(cache_dir=cache, incremental=True)
                out[f"incremental-cold/{plane_name}"] = \
                    canonical_report(check_traces(traces, inc))
                out[f"incremental-warm/{plane_name}"] = \
                    canonical_report(check_traces(traces, inc))
    return out


def run_case(gen_config: GenConfig,
             check_config: Optional[CheckConfig] = None, *,
             differential: bool = True) -> FuzzCase:
    """Run one generated program through scoring (and, by default, the
    differential matrix plus a text-vs-binary trace format arm)."""
    generated = generate_program(gen_config)
    base = _base_config(check_config)
    with tempfile.TemporaryDirectory(prefix="mcgen-trace-") as trace_dir:
        profiled = profile_program(generated, trace_dir=trace_dir)
        with _plane("columnar"):
            baseline = check_traces(profiled.traces, base)
        score = score_report(baseline, generated.manifest)
        mismatched: List[str] = []
        arms: List[str] = []
        if differential:
            reports = differential_reports(profiled.traces, base)
            want = reports["sweep/columnar"]
            other = ("binary" if gen_config.trace_format == "text"
                     else "text")
            with tempfile.TemporaryDirectory(
                    prefix="mcgen-fmt-") as fmt_dir:
                reprofiled = profile_program(generated,
                                             trace_dir=fmt_dir,
                                             trace_format=other)
                with _plane("columnar"):
                    reports[f"format-{other}/columnar"] = \
                        canonical_report(
                            check_traces(reprofiled.traces, base))
            arms = sorted(reports)
            mismatched = [arm for arm in arms if reports[arm] != want]
        return FuzzCase(
            seed=gen_config.seed, nranks=gen_config.nranks,
            nbugs=score.nbugs, nfindings=score.nfindings,
            recall=score.recall, precision=score.precision,
            missed=score.missed,
            unmatched_findings=score.unmatched_findings,
            mismatched_arms=tuple(mismatched), arms=tuple(arms),
            events=profiled.events_written)


def fuzz_corpus(gen_config: GenConfig, seeds: Sequence[int],
                check_config: Optional[CheckConfig] = None, *,
                differential: bool = True) -> FuzzReport:
    """Run the harness over one config across a corpus of seeds."""
    cases = tuple(
        run_case(gen_config.replace(seed=int(seed)), check_config,
                 differential=differential)
        for seed in seeds)
    return FuzzReport(cases=cases)
