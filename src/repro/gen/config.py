"""GenConfig — one immutable value describing how to generate a program.

The constrained-random generator mirrors the analysis side's
:class:`~repro.core.config.CheckConfig` contract: every entry point
(``api.generate``, ``api.fuzz``, the CLI verbs) accepts a single frozen
``GenConfig`` value, overrides derive new configs with
:meth:`GenConfig.replace`, and legacy keyword spellings keep working
through a warn-once deprecation shim (:func:`coerce_gen_config`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Tuple

#: epoch structures the generator can emit for a round
EPOCH_KINDS = ("fence", "lock", "lockall", "pscw")

#: access kinds appearing in the op mix (RMA ops + plain local accesses)
OP_KINDS = ("put", "get", "acc", "load", "store")

#: injectable conflict patterns, each mapped to one of the paper's bug
#: classes (see docs/fuzzing.md for the mapping)
BUG_PATTERNS = ("get_local", "put_origin", "op_pair",
                "conflicting_puts", "target_race")

#: wildcard bug spec: the generator picks the pattern from the seed
BUG_ANY = "any"

_WEIGHT_KEYS = {"epoch_weights": EPOCH_KINDS, "op_weights": OP_KINDS}

#: sentinel distinguishing "kwarg not passed" from any real value
_UNSET = object()

_legacy_warning_emitted = False


def _default_epoch_weights() -> Tuple[Tuple[str, float], ...]:
    return tuple((kind, 1.0) for kind in EPOCH_KINDS)


def _default_op_weights() -> Tuple[Tuple[str, float], ...]:
    return (("put", 2.0), ("get", 2.0), ("acc", 1.0),
            ("load", 2.0), ("store", 1.0))


@dataclass(frozen=True)
class GenConfig:
    """How one synthetic RMA program should be generated.

    Immutable so a config can double as a corpus key; the same config
    (seed included) always regenerates the identical program and
    manifest byte for byte.
    """

    #: master seed — the only source of randomness
    seed: int = 0
    #: simulated ranks (scales into the hundreds)
    nranks: int = 4
    #: synchronization rounds (each round = one epoch per rank)
    rounds: int = 3
    #: actions (RMA ops / local accesses) per rank per round
    ops_per_round: int = 3
    #: relative weights of the epoch structure drawn for each round
    epoch_weights: Tuple[Tuple[str, float], ...] = None  # type: ignore
    #: relative weights of the access kinds drawn for each action slot
    op_weights: Tuple[Tuple[str, float], ...] = None  # type: ignore
    #: injected bugs: each entry a pattern name or ``"any"``
    bugs: Tuple[str, ...] = ()
    #: window/origin elements per action slot (slot granularity)
    slot_elems: int = 2
    #: semantic repetitions of each local access (the bulk producer lane
    #: turns these into one columnar record, scaling event counts into
    #: the millions without per-event cost)
    reps: int = 1
    #: probability that a lock_all round issues a mid-epoch flush_all
    flush_prob: float = 0.25
    #: trace encoding for profiled runs of the program
    trace_format: str = "text"
    #: simulated message-delivery policy (determinism comes from the seed)
    delivery: str = "random"
    #: simulated scheduler policy
    sched_policy: str = "round_robin"

    def __post_init__(self) -> None:
        if self.epoch_weights is None:
            object.__setattr__(self, "epoch_weights",
                               _default_epoch_weights())
        if self.op_weights is None:
            object.__setattr__(self, "op_weights", _default_op_weights())
        object.__setattr__(self, "epoch_weights",
                           tuple((str(k), float(w))
                                 for k, w in self.epoch_weights))
        object.__setattr__(self, "op_weights",
                           tuple((str(k), float(w))
                                 for k, w in self.op_weights))
        object.__setattr__(self, "bugs",
                           tuple(str(b) for b in self.bugs))
        if self.nranks < 2:
            raise ValueError(
                f"nranks must be >= 2 (RMA needs a remote target), "
                f"got {self.nranks}")
        for name, lo in (("rounds", 1), ("ops_per_round", 1),
                         ("slot_elems", 2), ("reps", 1)):
            if getattr(self, name) < lo:
                raise ValueError(
                    f"{name} must be >= {lo}, got {getattr(self, name)}")
        for field_name, valid in _WEIGHT_KEYS.items():
            weights = getattr(self, field_name)
            for kind, weight in weights:
                if kind not in valid:
                    raise ValueError(
                        f"unknown {field_name} kind {kind!r} "
                        f"(expected one of {valid})")
                if weight < 0:
                    raise ValueError(
                        f"{field_name}[{kind!r}] must be >= 0, "
                        f"got {weight}")
        if not any(w > 0 for _, w in self.epoch_weights):
            raise ValueError("epoch_weights must give positive weight "
                             "to at least one epoch kind")
        if not any(w > 0 for k, w in self.op_weights):
            raise ValueError("op_weights must give positive weight to "
                             "at least one op kind")
        for bug in self.bugs:
            if bug != BUG_ANY and bug not in BUG_PATTERNS:
                raise ValueError(
                    f"unknown bug pattern {bug!r} (expected one of "
                    f"{BUG_PATTERNS} or {BUG_ANY!r})")
        if not 0.0 <= self.flush_prob <= 1.0:
            raise ValueError(
                f"flush_prob must be in [0, 1], got {self.flush_prob}")
        if self.trace_format not in ("text", "binary"):
            raise ValueError(
                f"unknown trace_format {self.trace_format!r} "
                "(expected 'text' or 'binary')")

    def replace(self, **changes) -> "GenConfig":
        return replace(self, **changes)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed, "nranks": self.nranks,
            "rounds": self.rounds, "ops_per_round": self.ops_per_round,
            "epoch_weights": [list(w) for w in self.epoch_weights],
            "op_weights": [list(w) for w in self.op_weights],
            "bugs": list(self.bugs), "slot_elems": self.slot_elems,
            "reps": self.reps, "flush_prob": self.flush_prob,
            "trace_format": self.trace_format,
            "delivery": self.delivery,
            "sched_policy": self.sched_policy,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GenConfig":
        return cls(
            seed=int(data["seed"]), nranks=int(data["nranks"]),
            rounds=int(data["rounds"]),
            ops_per_round=int(data["ops_per_round"]),
            epoch_weights=tuple((k, w) for k, w in data["epoch_weights"]),
            op_weights=tuple((k, w) for k, w in data["op_weights"]),
            bugs=tuple(data["bugs"]), slot_elems=int(data["slot_elems"]),
            reps=int(data["reps"]), flush_prob=float(data["flush_prob"]),
            trace_format=str(data["trace_format"]),
            delivery=str(data["delivery"]),
            sched_policy=str(data["sched_policy"]))


def coerce_gen_config(config, caller: str, **legacy) -> GenConfig:
    """Merge legacy kwargs into ``config`` (or a default one).

    Mirrors :func:`repro.core.config.coerce_config`: ``legacy`` maps
    field names to either :data:`_UNSET` or an explicitly passed value;
    any explicit value triggers a one-time :class:`DeprecationWarning`
    and overrides the config field.  The prototype spelling
    ``nbugs=<int>`` is translated to ``bugs=("any",) * n``.
    """
    passed = {name: value for name, value in legacy.items()
              if value is not _UNSET}
    if passed:
        _warn_legacy(caller, sorted(passed))
    if "nbugs" in passed:
        passed["bugs"] = (BUG_ANY,) * int(passed.pop("nbugs"))
    base = config if config is not None else GenConfig()
    if not isinstance(base, GenConfig):
        raise TypeError(
            f"{caller}: config must be a GenConfig, "
            f"got {type(base).__name__}")
    return base.replace(**passed) if passed else base


def _warn_legacy(caller: str, names) -> None:
    global _legacy_warning_emitted
    if _legacy_warning_emitted:
        return
    _legacy_warning_emitted = True
    warnings.warn(
        f"{caller}: passing {', '.join(names)} as keyword arguments is "
        "deprecated; pass config=GenConfig(...) instead",
        DeprecationWarning, stacklevel=3)


def _reset_legacy_warning() -> None:
    """Test hook: allow the one-time deprecation warning to fire again."""
    global _legacy_warning_emitted
    _legacy_warning_emitted = False
