"""Synthetic RMA program specs and their replay interpreter.

A generated program is pure data — a :class:`Program` value listing, for
every synchronization round, the epoch structure and each rank's action
sequence.  :func:`replay` is the single app that executes any spec on
the simulated runtime; because the spec (not code) carries all the
randomness, the same ``Program`` replays identically under the profiler
regardless of trace format or control plane, and serializes to a
canonical JSON form that is byte-stable for a given generator seed.

Buffer layout per rank (allocation order is part of the contract — the
manifest recomputes absolute byte addresses by replaying the same
allocations through :class:`~repro.simmpi.memory.AddressSpace`):

1. ``win``      — the window buffer: one slot per (origin, action-slot)
   pair for clean traffic, then one dedicated slot per injected bug;
2. ``org``      — clean RMA origin arena, one disjoint slice per action
   slot (so same-epoch clean origins can never conflict);
3. ``scratch``  — non-window local-store arena (plain stores must stay
   off window memory: STORE vs PUT is erroneous even without overlap
   under the separate model);
4. ``bug{j}_org`` — one dedicated origin buffer per injected bug, so
   every bug's findings carry a distinguishing variable name.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.simmpi import DOUBLE, LOCK_EXCLUSIVE, LOCK_SHARED
from repro.simmpi.memory import AddressSpace

#: bytes per element (the whole generator speaks MPI_DOUBLE)
ITEMSIZE = DOUBLE.numpy_dtype().itemsize

_LOCK_TYPES = {"shared": LOCK_SHARED, "exclusive": LOCK_EXCLUSIVE}


@dataclass(frozen=True)
class Action:
    """One step of one rank inside one round.

    ``op`` is an RMA kind (``put``/``get``/``acc``), a plain local
    access (``load``/``store``), or ``flush`` (MPI-3 flush_all when
    ``target`` is negative).  RMA actions read/write ``buf`` at element
    ``off`` and hit the target window at element ``disp``; local actions
    touch ``buf`` at ``off`` for ``count`` elements, ``reps`` semantic
    times (one bulk columnar record).  ``bug`` tags actions belonging to
    an injected conflict (-1 = clean traffic).
    """

    op: str
    target: int = -1
    disp: int = 0
    count: int = 1
    buf: str = "org"
    off: int = 0
    reps: int = 1
    bug: int = -1

    def to_dict(self) -> dict:
        return {"op": self.op, "target": self.target, "disp": self.disp,
                "count": self.count, "buf": self.buf, "off": self.off,
                "reps": self.reps, "bug": self.bug}

    @classmethod
    def from_dict(cls, data: dict) -> "Action":
        return cls(op=str(data["op"]), target=int(data["target"]),
                   disp=int(data["disp"]), count=int(data["count"]),
                   buf=str(data["buf"]), off=int(data["off"]),
                   reps=int(data["reps"]), bug=int(data["bug"]))


@dataclass(frozen=True)
class Round:
    """One synchronization round: an epoch per rank plus its actions."""

    kind: str  # fence | lock | lockall | pscw
    #: per-rank actions, ``actions[rank]`` executed inside the epoch
    actions: Tuple[Tuple[Action, ...], ...]
    #: lock rounds: per-rank lock target and lock type
    lock_targets: Tuple[int, ...] = ()
    lock_types: Tuple[str, ...] = ()
    #: pscw rounds: ring offset d (post to rank-d, start to rank+d)
    pscw_offset: int = 1

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "actions": [[a.to_dict() for a in rank_actions]
                        for rank_actions in self.actions],
            "lock_targets": list(self.lock_targets),
            "lock_types": list(self.lock_types),
            "pscw_offset": self.pscw_offset,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Round":
        return cls(
            kind=str(data["kind"]),
            actions=tuple(tuple(Action.from_dict(a) for a in rank_actions)
                          for rank_actions in data["actions"]),
            lock_targets=tuple(int(t) for t in data["lock_targets"]),
            lock_types=tuple(str(t) for t in data["lock_types"]),
            pscw_offset=int(data["pscw_offset"]))


@dataclass(frozen=True)
class Program:
    """A complete synthetic RMA program (window + rounds of epochs)."""

    nranks: int
    slot_elems: int
    win_elems: int
    org_elems: int
    scratch_elems: int
    nbugs: int
    rounds: Tuple[Round, ...]

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "nranks": self.nranks,
            "slot_elems": self.slot_elems,
            "win_elems": self.win_elems,
            "org_elems": self.org_elems,
            "scratch_elems": self.scratch_elems,
            "nbugs": self.nbugs,
            "rounds": [r.to_dict() for r in self.rounds],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Program":
        return cls(
            nranks=int(data["nranks"]),
            slot_elems=int(data["slot_elems"]),
            win_elems=int(data["win_elems"]),
            org_elems=int(data["org_elems"]),
            scratch_elems=int(data["scratch_elems"]),
            nbugs=int(data["nbugs"]),
            rounds=tuple(Round.from_dict(r) for r in data["rounds"]))

    def canonical_json(self) -> str:
        """Byte-stable serialization (same program ⇒ same bytes)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.canonical_json())
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "Program":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------

    def buffer_names(self) -> Tuple[str, ...]:
        return ("win", "org", "scratch") + tuple(
            f"bug{j}_org" for j in range(self.nbugs))

    def buffer_bases(self) -> Dict[str, int]:
        """Absolute base address of each buffer — identical at every
        rank because the allocation order and sizes are identical (the
        manifest relies on this to express window spans in the same
        address space the checker reports)."""
        space = AddressSpace(0)
        sizes = {"win": self.win_elems, "org": self.org_elems,
                 "scratch": self.scratch_elems}
        for j in range(self.nbugs):
            sizes[f"bug{j}_org"] = self.slot_elems
        return {name: space.allocate(sizes[name] * ITEMSIZE)
                for name in self.buffer_names()}

    def bug_slot(self, bug_id: int) -> Tuple[int, int]:
        """Element range ``(start, stop)`` of a bug's window slot."""
        clean = self.win_elems - self.nbugs * self.slot_elems
        start = clean + bug_id * self.slot_elems
        return start, start + self.slot_elems

    def bug_slot_bytes(self, bug_id: int) -> Tuple[int, int]:
        """Absolute byte interval of a bug's window slot."""
        base = self.buffer_bases()["win"]
        start, stop = self.bug_slot(bug_id)
        return base + start * ITEMSIZE, base + stop * ITEMSIZE

    # ------------------------------------------------------------------
    # static validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Structural checks replay relies on; raises ``ValueError``."""
        n = self.nranks
        for i, rnd in enumerate(self.rounds):
            if len(rnd.actions) != n:
                raise ValueError(
                    f"round {i}: actions for {len(rnd.actions)} ranks, "
                    f"expected {n}")
            if rnd.kind == "lock":
                if len(rnd.lock_targets) != n or len(rnd.lock_types) != n:
                    raise ValueError(
                        f"round {i}: lock round needs per-rank targets "
                        "and types")
                for r, (t, lt) in enumerate(zip(rnd.lock_targets,
                                                rnd.lock_types)):
                    if not 0 <= t < n:
                        raise ValueError(
                            f"round {i}: rank {r} lock target {t} out "
                            "of range")
                    if lt not in _LOCK_TYPES:
                        raise ValueError(
                            f"round {i}: rank {r} lock type {lt!r}")
            if rnd.kind == "pscw" and not 1 <= rnd.pscw_offset < n:
                raise ValueError(
                    f"round {i}: pscw offset {rnd.pscw_offset} out of "
                    f"range for {n} ranks")
            for r, rank_actions in enumerate(rnd.actions):
                for act in rank_actions:
                    self._validate_action(i, r, rnd, act)

    def _validate_action(self, i: int, r: int, rnd: Round,
                         act: Action) -> None:
        n = self.nranks
        sizes = {"win": self.win_elems, "org": self.org_elems,
                 "scratch": self.scratch_elems}
        for j in range(self.nbugs):
            sizes[f"bug{j}_org"] = self.slot_elems
        where = f"round {i} rank {r}"
        if act.op in ("put", "get", "acc"):
            if act.target == r:
                raise ValueError(f"{where}: self-targeted {act.op}")
            if not 0 <= act.target < n:
                raise ValueError(
                    f"{where}: {act.op} target {act.target} out of range")
            if act.disp + act.count > self.win_elems:
                raise ValueError(
                    f"{where}: {act.op} past window end")
            if act.buf not in sizes:
                raise ValueError(f"{where}: unknown buffer {act.buf!r}")
            if act.off + act.count > sizes[act.buf]:
                raise ValueError(
                    f"{where}: {act.op} origin past {act.buf!r} end")
            if rnd.kind == "lock" and rnd.lock_targets[r] != act.target:
                raise ValueError(
                    f"{where}: {act.op} targets {act.target} outside "
                    f"the locked target {rnd.lock_targets[r]}")
            if rnd.kind == "pscw" and \
                    act.target != (r + rnd.pscw_offset) % n:
                raise ValueError(
                    f"{where}: {act.op} targets {act.target} outside "
                    "the started access group")
        elif act.op in ("load", "store"):
            if act.buf not in sizes:
                raise ValueError(f"{where}: unknown buffer {act.buf!r}")
            if act.off + act.count > sizes[act.buf]:
                raise ValueError(
                    f"{where}: {act.op} past {act.buf!r} end")
        elif act.op == "flush":
            if rnd.kind != "lockall":
                raise ValueError(
                    f"{where}: flush outside a lock_all round")
        else:
            raise ValueError(f"{where}: unknown op {act.op!r}")


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------


def replay(mpi, spec):
    """Execute a :class:`Program` (or its dict form) on one rank.

    Every rank runs the same function; the spec tells each rank what to
    do.  Rounds are separated by barriers so concurrency never leaks
    across round boundaries — each round is one concurrent region.
    """
    prog = spec if isinstance(spec, Program) else Program.from_dict(spec)
    rank, n = mpi.rank, prog.nranks
    bufs = {
        "win": mpi.alloc("win", prog.win_elems, DOUBLE, fill=float(rank)),
        "org": mpi.alloc("org", prog.org_elems, DOUBLE, fill=1.0),
        "scratch": mpi.alloc("scratch", prog.scratch_elems, DOUBLE,
                             fill=0.0),
    }
    for j in range(prog.nbugs):
        name = f"bug{j}_org"
        bufs[name] = mpi.alloc(name, prog.slot_elems, DOUBLE, fill=0.5)
    win = mpi.win_create(bufs["win"])
    world = mpi.comm_group()
    mpi.barrier()
    for rnd in prog.rounds:
        if rnd.kind == "fence":
            win.fence()
        elif rnd.kind == "lock":
            win.lock(rnd.lock_targets[rank],
                     _LOCK_TYPES[rnd.lock_types[rank]])
        elif rnd.kind == "lockall":
            win.lock_all()
        else:  # pscw ring: everyone posts, then everyone starts
            d = rnd.pscw_offset
            win.post(world.incl([(rank - d) % n]))
            win.start(world.incl([(rank + d) % n]))
        for act in rnd.actions[rank]:
            _run_action(act, win, bufs)
        if rnd.kind == "fence":
            win.fence()
        elif rnd.kind == "lock":
            win.unlock(rnd.lock_targets[rank])
        elif rnd.kind == "lockall":
            win.unlock_all()
        else:
            win.complete()
            win.wait()
        mpi.barrier()
    win.free()


def _run_action(act: Action, win, bufs) -> None:
    if act.op == "put":
        win.put(bufs[act.buf], act.target, target_disp=act.disp,
                origin_offset=act.off, origin_count=act.count)
    elif act.op == "get":
        win.get(bufs[act.buf], act.target, target_disp=act.disp,
                origin_offset=act.off, origin_count=act.count)
    elif act.op == "acc":
        win.accumulate(bufs[act.buf], act.target, "SUM",
                       target_disp=act.disp, origin_offset=act.off,
                       origin_count=act.count)
    elif act.op == "load":
        bufs[act.buf].read_block(act.off, act.count, reps=act.reps)
    elif act.op == "store":
        bufs[act.buf].write_block([2.0] * act.count, act.off,
                                  reps=act.reps)
    elif act.op == "flush":
        if act.target < 0:
            win.flush_all()
        else:
            win.flush(act.target)
    else:  # pragma: no cover - validated before replay
        raise ValueError(f"unknown action op {act.op!r}")
