"""repro.gen — constrained-random RMA program generation + fuzzing.

Public surface:

* :class:`~repro.gen.config.GenConfig` — frozen generation config;
* :func:`~repro.gen.generator.generate_program` — config -> program
  + ground-truth manifest;
* :func:`~repro.gen.program.replay` — the app executing any spec;
* :func:`~repro.gen.manifest.score_report` — findings vs manifest
  recall/precision;
* :mod:`~repro.gen.fuzz` — the differential fuzzing harness.

The stable entry points are re-exported through :mod:`repro.api`
(``generate`` / ``fuzz`` / ``score``).
"""

from repro.gen.config import (
    BUG_ANY, BUG_PATTERNS, EPOCH_KINDS, OP_KINDS, GenConfig,
    coerce_gen_config,
)
from repro.gen.generator import (
    GeneratedProgram, GenerationError, generate_program,
)
from repro.gen.manifest import InjectedBug, Manifest, Score, score_report
from repro.gen.program import Action, Program, Round, replay

__all__ = [
    "BUG_ANY", "BUG_PATTERNS", "EPOCH_KINDS", "OP_KINDS",
    "GenConfig", "coerce_gen_config",
    "GeneratedProgram", "GenerationError", "generate_program",
    "InjectedBug", "Manifest", "Score", "score_report",
    "Action", "Program", "Round", "replay",
]
