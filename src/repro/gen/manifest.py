"""Ground-truth manifests for injected conflicts, and their scoring.

Every bug the generator injects is recorded as an :class:`InjectedBug` —
pattern, paper bug class, participating ranks, the window byte span (for
window conflicts), the hosting round and epoch kind, and the expected
finding shape (kind/rule/severity).  Matching against a
:class:`~repro.core.checker.CheckReport` is by construction unambiguous:
each bug owns a dedicated origin buffer (``bug{j}_org``) whose name
appears on at least one side of every finding it can produce, so a
finding is attributed to bug *j* iff its error kind matches and either
side's variable is ``bug{j}_org``.

Recall = bugs with at least one matching finding / bugs injected.
Precision = findings attributed to some bug / findings reported.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: pattern -> the paper bug class (Table II) it reproduces
PAPER_CLASSES = {
    "get_local": "emulate / BT-broadcast: local read-write of an "
                 "in-flight Get's origin buffer",
    "put_origin": "ping-pong / ADLB: local store to an in-flight Put's "
                  "origin buffer",
    "op_pair": "Table I: unordered same-epoch operations on overlapping "
               "target bytes",
    "conflicting_puts": "lockopts: concurrent Puts from two origins to "
                        "overlapping target bytes",
    "target_race": "jacobi / sweep3d: target-side local access racing "
                   "a remote Put on exposed window memory",
}


@dataclass(frozen=True)
class InjectedBug:
    """One known conflict, as injected."""

    bug_id: int
    pattern: str
    #: expected finding kind: intra_epoch | cross_process
    kind: str
    #: expected Table-I rule of the finding (NONOV | ERROR | ORIGIN)
    rule: str
    #: expected severity (conflicting_puts under two exclusive locks is
    #: a warning, everything else an error)
    severity: str
    #: hosting round index and its epoch kind
    round_index: int
    epoch_kind: str
    #: participating ranks (origin(s), and the target/local rank)
    ranks: Tuple[int, ...]
    #: rank owning the conflicting window memory (window bugs) or the
    #: origin buffer (origin bugs)
    home_rank: int
    #: the bug's distinguishing origin-buffer name
    var: str
    #: absolute byte interval of the conflicting window slot, or None
    #: for origin-buffer conflicts
    span: Optional[Tuple[int, int]] = None

    @property
    def paper_class(self) -> str:
        return PAPER_CLASSES[self.pattern]

    def matches(self, finding: dict) -> bool:
        """Does a ``ConsistencyError.to_dict()`` payload belong to us?"""
        if finding["kind"] != self.kind:
            return False
        return self.var in (finding["a"]["var"], finding["b"]["var"])

    def to_dict(self) -> dict:
        return {
            "bug_id": self.bug_id, "pattern": self.pattern,
            "paper_class": self.paper_class, "kind": self.kind,
            "rule": self.rule, "severity": self.severity,
            "round": self.round_index, "epoch_kind": self.epoch_kind,
            "ranks": list(self.ranks), "home_rank": self.home_rank,
            "var": self.var,
            "span": None if self.span is None else list(self.span),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InjectedBug":
        span = data.get("span")
        return cls(
            bug_id=int(data["bug_id"]), pattern=str(data["pattern"]),
            kind=str(data["kind"]), rule=str(data["rule"]),
            severity=str(data["severity"]),
            round_index=int(data["round"]),
            epoch_kind=str(data["epoch_kind"]),
            ranks=tuple(int(r) for r in data["ranks"]),
            home_rank=int(data["home_rank"]), var=str(data["var"]),
            span=None if span is None else (int(span[0]), int(span[1])))


@dataclass(frozen=True)
class Manifest:
    """All injected bugs of one generated program."""

    seed: int
    nranks: int
    bugs: Tuple[InjectedBug, ...]

    def to_dict(self) -> dict:
        return {"version": 1, "seed": self.seed, "nranks": self.nranks,
                "bugs": [b.to_dict() for b in self.bugs]}

    @classmethod
    def from_dict(cls, data: dict) -> "Manifest":
        return cls(seed=int(data["seed"]), nranks=int(data["nranks"]),
                   bugs=tuple(InjectedBug.from_dict(b)
                              for b in data["bugs"]))

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.canonical_json())
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "Manifest":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


@dataclass(frozen=True)
class Score:
    """Recall/precision of one report against one manifest."""

    #: bug_id -> indices of the findings attributed to it
    matched: Dict[int, Tuple[int, ...]]
    #: bug_ids with no matching finding (recall misses)
    missed: Tuple[int, ...]
    #: finding indices attributed to no bug (precision misses)
    unmatched_findings: Tuple[int, ...]
    nbugs: int
    nfindings: int

    @property
    def recall(self) -> float:
        if not self.nbugs:
            return 1.0
        return (self.nbugs - len(self.missed)) / self.nbugs

    @property
    def precision(self) -> float:
        if not self.nfindings:
            return 1.0
        return (self.nfindings - len(self.unmatched_findings)) \
            / self.nfindings

    def to_dict(self) -> dict:
        return {
            "recall": self.recall, "precision": self.precision,
            "bugs": self.nbugs, "findings": self.nfindings,
            "missed": list(self.missed),
            "unmatched_findings": list(self.unmatched_findings),
            "matched": {str(k): list(v)
                        for k, v in sorted(self.matched.items())},
        }


def score_report(report, manifest: Manifest) -> Score:
    """Match a report's findings against the manifest's injected bugs.

    ``report`` is a :class:`~repro.core.checker.CheckReport` or a list
    of ``ConsistencyError.to_dict()`` payloads.
    """
    if hasattr(report, "findings"):
        findings: Sequence[dict] = [e.to_dict() for e in report.findings]
    else:
        findings = list(report)
    matched: Dict[int, List[int]] = {b.bug_id: [] for b in manifest.bugs}
    claimed = set()
    for idx, finding in enumerate(findings):
        for bug in manifest.bugs:
            if bug.matches(finding):
                matched[bug.bug_id].append(idx)
                claimed.add(idx)
    return Score(
        matched={k: tuple(v) for k, v in matched.items()},
        missed=tuple(sorted(b.bug_id for b in manifest.bugs
                            if not matched[b.bug_id])),
        unmatched_findings=tuple(i for i in range(len(findings))
                                 if i not in claimed),
        nbugs=len(manifest.bugs),
        nfindings=len(findings))
