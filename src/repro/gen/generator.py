"""Constrained-random generation of synthetic RMA programs.

The generator draws a program from a seeded RNG under constraints that
make clean traffic *provably* conflict-free, so every finding the
checker reports on a generated program is attributable to an injected
bug:

* no rank ever targets itself with RMA, so rank *r*'s own window region
  carries no remote traffic and is safe for local loads;
* each clean RMA op owns the window slot indexed by its (origin rank,
  action slot) pair and a matching disjoint slice of the ``org`` arena,
  so same-epoch clean operations can never overlap on target or origin
  bytes;
* plain local stores go only to the non-window ``scratch`` arena
  (STORE vs PUT is erroneous even without byte overlap under the
  separate memory model), plain local loads only to the rank's own
  window region or scratch;
* a ``target_race`` bug whose local side is a *store* touches window
  memory, so its round quarantines the victim rank: no other put or
  accumulate (clean or injected) may target that rank in that round,
  or the quarantined store would race them all under the
  no-overlap-needed STORE/PUT rule and blur the ground truth;
* rounds are separated by barriers, so concurrency never spans rounds;
* rounds hosting a bug issue no flushes (an MPI-3 flush would complete
  the in-flight operation early and dissolve the injected conflict).

Injected bugs get the window slots *after* the clean region and a
dedicated ``bug{j}_org`` origin buffer each, which keeps their findings
byte-disjoint from clean traffic and distinguishable from each other —
including through report deduplication, which collapses findings whose
(rank, kind, location) sides coincide: the generator never places two
bugs of the same pattern on the same rank set.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gen.config import (
    BUG_ANY, BUG_PATTERNS, GenConfig,
)
from repro.gen.manifest import InjectedBug, Manifest
from repro.gen.program import ITEMSIZE, Action, Program, Round

#: placement attempts per bug before giving up with guidance
_MAX_ATTEMPTS = 500


class GenerationError(ValueError):
    """A bug spec could not be placed under the config's constraints."""


@dataclass(frozen=True)
class GeneratedProgram:
    """A generated program with its ground-truth manifest."""

    config: GenConfig
    program: Program
    manifest: Manifest

    def save(self, directory: str) -> None:
        """Write ``program.json`` + ``manifest.json`` into a directory."""
        import os
        os.makedirs(directory, exist_ok=True)
        self.program.save(os.path.join(directory, "program.json"))
        self.manifest.save(os.path.join(directory, "manifest.json"))


def _weighted(rng: random.Random,
              weights: Sequence[Tuple[str, float]]) -> str:
    kinds = [k for k, w in weights if w > 0]
    ws = [w for _, w in weights if w > 0]
    return rng.choices(kinds, weights=ws)[0]


@dataclass
class _Placement:
    bug_id: int
    pattern: str
    round_index: int
    ranks: Tuple[int, ...]  # participating ranks, origin(s) first
    target: int  # rank owning the conflicting window memory
    severity: str
    rule: str
    kind: str
    local_kind: str = "load"  # target_race: the local access kind
    op_kinds: Tuple[str, str] = ("put", "put")  # op_pair: the two ops


def generate_program(config: GenConfig) -> GeneratedProgram:
    """Deterministically derive a program + manifest from the config."""
    cfg = config
    rng = random.Random(cfg.seed)
    n, nrounds, A, S = cfg.nranks, cfg.rounds, cfg.ops_per_round, \
        cfg.slot_elems
    nbugs = len(cfg.bugs)
    win_elems = (n * A + nbugs) * S
    prog_shell = Program(nranks=n, slot_elems=S, win_elems=win_elems,
                         org_elems=A * S, scratch_elems=A * S,
                         nbugs=nbugs, rounds=())

    kinds = [_weighted(rng, cfg.epoch_weights) for _ in range(nrounds)]
    pscw_offset = {i: rng.randrange(1, n) for i, k in enumerate(kinds)
                   if k == "pscw"}

    # --- bug placement -------------------------------------------------
    # per-round lock constraints: rank -> (target, lock_type)
    lock_constraints: List[Dict[int, Tuple[int, str]]] = \
        [dict() for _ in range(nrounds)]
    # per-round ranks already targeted by an injected put/acc, and ranks
    # quarantined by a window-store bug (no further put/acc may target
    # them in that round)
    putacc_targets: List[set] = [set() for _ in range(nrounds)]
    forbidden: List[set] = [set() for _ in range(nrounds)]
    used_keys = set()
    bug_rounds = set()
    placements: List[_Placement] = []
    for j, spec in enumerate(cfg.bugs):
        placements.append(
            _place_bug(rng, j, spec, kinds, pscw_offset, n,
                       lock_constraints, putacc_targets, forbidden,
                       used_keys, bug_rounds))

    # --- clean traffic -------------------------------------------------
    actions: List[List[List[Action]]] = []
    lock_targets: List[Tuple[int, ...]] = []
    lock_types: List[Tuple[str, ...]] = []
    for i, kind in enumerate(kinds):
        per_rank: List[List[Action]] = []
        targets: List[int] = []
        types: List[str] = []
        for r in range(n):
            if kind == "lock":
                constrained = lock_constraints[i].get(r)
                if constrained is not None:
                    t_r, lt_r = constrained
                else:
                    t_r = rng.choice([x for x in range(n) if x != r])
                    lt_r = "exclusive" if rng.random() < 0.15 \
                        else "shared"
                targets.append(t_r)
                types.append(lt_r)
            rank_actions: List[Action] = []
            for pos in range(A):
                op = _weighted(rng, cfg.op_weights)
                rank_actions.append(
                    _clean_action(rng, cfg, op, kind, i, r, pos,
                                  targets[-1] if kind == "lock" else -1,
                                  pscw_offset.get(i, 1), forbidden[i]))
            if kind == "lockall" and i not in bug_rounds and \
                    rng.random() < cfg.flush_prob:
                rank_actions.insert(rng.randrange(len(rank_actions) + 1),
                                    Action(op="flush", target=-1))
            per_rank.append(rank_actions)
        actions.append(per_rank)
        lock_targets.append(tuple(targets))
        lock_types.append(tuple(types))

    # --- bug injection -------------------------------------------------
    for placement in placements:
        _inject_bug(placement, actions, prog_shell)

    rounds = tuple(
        Round(kind=kinds[i],
              actions=tuple(tuple(acts) for acts in actions[i]),
              lock_targets=lock_targets[i],
              lock_types=lock_types[i],
              pscw_offset=pscw_offset.get(i, 1))
        for i in range(nrounds))
    program = Program(nranks=n, slot_elems=S, win_elems=win_elems,
                      org_elems=A * S, scratch_elems=A * S,
                      nbugs=nbugs, rounds=rounds)
    program.validate()

    bases = program.buffer_bases()
    bugs = []
    for p in placements:
        if p.pattern in ("get_local", "put_origin"):
            base = bases[f"bug{p.bug_id}_org"]
            span = (base, base + S * ITEMSIZE)
            home = p.ranks[0]
        else:
            span = program.bug_slot_bytes(p.bug_id)
            home = p.target
        bugs.append(InjectedBug(
            bug_id=p.bug_id, pattern=p.pattern, kind=p.kind,
            rule=p.rule, severity=p.severity,
            round_index=p.round_index,
            epoch_kind=kinds[p.round_index],
            ranks=p.ranks, home_rank=home,
            var=f"bug{p.bug_id}_org", span=span))
    manifest = Manifest(seed=cfg.seed, nranks=n, bugs=tuple(bugs))
    return GeneratedProgram(config=cfg, program=program,
                            manifest=manifest)


def _clean_action(rng: random.Random, cfg: GenConfig, op: str, kind: str,
                  round_index: int, r: int, pos: int, lock_target: int,
                  pscw_d: int, forbidden: set) -> Action:
    n, A, S = cfg.nranks, cfg.ops_per_round, cfg.slot_elems
    if op in ("put", "get", "acc"):
        if kind == "lock":
            target = lock_target
        elif kind == "pscw":
            target = (r + pscw_d) % n
        else:
            # writes must respect window-store quarantines; reads only
            # have to avoid self-targeting
            banned = forbidden if op != "get" else ()
            candidates = [x for x in range(n)
                          if x != r and x not in banned]
            if not candidates:
                return Action(op="load", buf="scratch", off=pos * S,
                              count=rng.randint(1, S), reps=cfg.reps)
            target = rng.choice(candidates)
        return Action(op=op, target=target, disp=(r * A + pos) * S,
                      count=rng.randint(1, S), buf="org", off=pos * S)
    if op == "load":
        if rng.random() < 0.5:
            # the rank's own window region: remote-traffic-free because
            # no rank self-targets
            return Action(op="load", buf="win",
                          off=(r * A + rng.randrange(A)) * S,
                          count=rng.randint(1, S), reps=cfg.reps)
        return Action(op="load", buf="scratch",
                      off=rng.randrange(A) * S,
                      count=rng.randint(1, S), reps=cfg.reps)
    # plain stores stay off window memory entirely
    return Action(op="store", buf="scratch", off=rng.randrange(A) * S,
                  count=rng.randint(1, S), reps=cfg.reps)


def _place_bug(rng: random.Random, bug_id: int, spec: str,
               kinds: List[str], pscw_offset: Dict[int, int], n: int,
               lock_constraints: List[Dict[int, Tuple[int, str]]],
               putacc_targets: List[set], forbidden: List[set],
               used_keys: set, bug_rounds: set) -> _Placement:
    for _ in range(_MAX_ATTEMPTS):
        pattern = rng.choice(BUG_PATTERNS) if spec == BUG_ANY else spec
        if pattern == "conflicting_puts":
            candidates = [i for i, k in enumerate(kinds) if k != "pscw"]
            if n < 3 or not candidates:
                if spec == BUG_ANY:
                    continue
                raise GenerationError(
                    f"bug {bug_id} ({spec!r}) needs >= 3 ranks and a "
                    "non-pscw round; raise nranks or adjust "
                    "epoch_weights")
        else:
            candidates = list(range(len(kinds)))
        ri = rng.choice(candidates)
        kind = kinds[ri]
        constraints = lock_constraints[ri]
        placement = _try_pattern(rng, bug_id, pattern, ri, kind,
                                 pscw_offset.get(ri, 1), n, constraints,
                                 putacc_targets[ri], forbidden[ri])
        if placement is None:
            continue
        placement, new_constraints, key = placement
        if key in used_keys:
            continue
        used_keys.add(key)
        constraints.update(new_constraints)
        if not (placement.pattern == "op_pair"
                and placement.op_kinds == ("get", "get")) \
                and placement.pattern != "get_local":
            putacc_targets[ri].add(placement.target)
        if placement.pattern == "target_race" and \
                placement.local_kind == "store":
            forbidden[ri].add(placement.target)
        bug_rounds.add(ri)
        return placement
    raise GenerationError(
        f"could not place bug {bug_id} ({spec!r}) after "
        f"{_MAX_ATTEMPTS} attempts; raise nranks/rounds or reduce the "
        "bug count")


def _try_pattern(rng: random.Random, bug_id: int, pattern: str, ri: int,
                 kind: str, pscw_d: int, n: int,
                 constraints: Dict[int, Tuple[int, str]],
                 putacc_targets: set, forbidden: set):
    """One placement attempt; returns (placement, new-lock-constraints,
    uniqueness key) or None if this draw is inconsistent."""
    new: Dict[int, Tuple[int, str]] = {}

    def origin_target(a: int) -> Optional[int]:
        if kind == "pscw":
            return (a + pscw_d) % n
        if kind == "lock":
            if a in constraints:
                return constraints[a][0]
            t = rng.choice([x for x in range(n) if x != a])
            new[a] = (t, "shared")
            return t
        return rng.choice([x for x in range(n) if x != a])

    if pattern in ("get_local", "put_origin", "op_pair"):
        a = rng.randrange(n)
        t = origin_target(a)
        if t == a:
            return None  # lock constraint from a bug targeting a itself
        if pattern != "get_local" and t in forbidden:
            return None  # would put/acc into a quarantined rank
        op_kinds = ("put", "put")
        if pattern == "op_pair":
            op_kinds = rng.choice(
                [("put", "put"), ("put", "get"), ("put", "acc"),
                 ("get", "acc")])
        rule = "ORIGIN" if pattern != "op_pair" else "NONOV"
        return (_Placement(
            bug_id=bug_id, pattern=pattern, round_index=ri,
            ranks=(a, t), target=t, severity="error", rule=rule,
            kind="intra_epoch", op_kinds=op_kinds),
            new, (pattern, (a,)))

    if pattern == "conflicting_puts":
        t = rng.randrange(n)
        if t in forbidden:
            return None
        a, b = rng.sample([x for x in range(n) if x != t], 2)
        lt = "exclusive" if rng.random() < 0.25 else "shared"
        if kind == "lock":
            for o in (a, b):
                if o in constraints:
                    if constraints[o] != (t, lt):
                        return None
                else:
                    new[o] = (t, lt)
        severity = "warning" if kind == "lock" and lt == "exclusive" \
            else "error"
        return (_Placement(
            bug_id=bug_id, pattern=pattern, round_index=ri,
            ranks=(a, b, t), target=t, severity=severity, rule="NONOV",
            kind="cross_process"),
            new, (pattern, frozenset((a, b))))

    # target_race
    if kind == "pscw":
        a = rng.randrange(n)
        t = (a + pscw_d) % n
    else:
        t = rng.randrange(n)
        a = rng.choice([x for x in range(n) if x != t])
        if kind == "lock":
            if a in constraints:
                if constraints[a][0] != t:
                    return None
            else:
                new[a] = (t, "shared")
    if t in forbidden:
        return None
    local_kind = rng.choice(("load", "store"))
    if local_kind == "store" and \
            (kind not in ("fence", "lockall") or t in putacc_targets):
        # a window store races *every* concurrent put/acc to its rank
        # (no overlap needed), so it can only live in a round where the
        # victim rank can be quarantined from other write traffic
        local_kind = "load"
    rule = "NONOV" if local_kind == "load" else "ERROR"
    return (_Placement(
        bug_id=bug_id, pattern="target_race", round_index=ri,
        ranks=(a, t), target=t, severity="error", rule=rule,
        kind="cross_process", local_kind=local_kind),
        new, ("target_race", frozenset((a, t))))


def _inject_bug(p: _Placement, actions: List[List[List[Action]]],
                prog: Program) -> None:
    S = prog.slot_elems
    slot, _ = prog.bug_slot(p.bug_id)
    var = f"bug{p.bug_id}_org"
    a = p.ranks[0]
    mine = actions[p.round_index]
    if p.pattern == "get_local":
        mine[a] += [
            Action(op="get", target=p.target, disp=slot, count=S,
                   buf=var, off=0, bug=p.bug_id),
            Action(op="load", buf=var, off=0, count=S, bug=p.bug_id),
            Action(op="store", buf=var, off=0, count=S, bug=p.bug_id),
        ]
    elif p.pattern == "put_origin":
        mine[a] += [
            Action(op="put", target=p.target, disp=slot, count=S,
                   buf=var, off=0, bug=p.bug_id),
            Action(op="store", buf=var, off=0, count=S, bug=p.bug_id),
        ]
    elif p.pattern == "op_pair":
        # overlapping target bytes, disjoint origin slices (so only the
        # target-side Table-I conflict is injected)
        c = max(1, S // 2)
        op1, op2 = p.op_kinds
        mine[a] += [
            Action(op=op1, target=p.target, disp=slot, count=c,
                   buf=var, off=0, bug=p.bug_id),
            Action(op=op2, target=p.target, disp=slot, count=c,
                   buf=var, off=c, bug=p.bug_id),
        ]
    elif p.pattern == "conflicting_puts":
        b = p.ranks[1]
        for o in (a, b):
            mine[o].append(
                Action(op="put", target=p.target, disp=slot, count=S,
                       buf=var, off=0, bug=p.bug_id))
    else:  # target_race
        t = p.target
        mine[a].append(
            Action(op="put", target=t, disp=slot, count=S, buf=var,
                   off=0, bug=p.bug_id))
        mine[t].append(
            Action(op=p.local_kind, buf="win", off=slot, count=S,
                   bug=p.bug_id))
