"""Analyzable access views lifted from raw trace events.

Detection reasons about two access populations:

* :class:`RMAOpView` — one per Put/Get/Accumulate event, carrying the
  *target* byte intervals (in the target rank's address space, resolved
  through the window registry and data-maps) and the *origin* byte
  intervals (local), plus the enclosing epoch that bounds its span.
* :class:`LocalAccess` — every local touch of memory: instrumented
  loads/stores, MPI calls reading or writing a local buffer (send reads,
  recv writes, ...), and the local side of RMA calls themselves (a Put
  reads its origin buffer, a Get writes it — section IV-C-4: "they can be
  treated as local load and store, respectively").
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.clocks import Span
from repro.core.compat import ACC, GET, LOAD, PUT, STORE
from repro.core.epochs import (Epoch, EpochIndex, KIND_LOCK,
                               KIND_PSCW_ACCESS, OPEN_ENDED)
from repro.core.preprocess import PreprocessedTrace
from repro.profiler.events import ACCESS_NAMES as _ACCESS_NAMES
from repro.profiler.events import CallEvent, MemEvent
from repro.util.errors import AnalysisError
from repro.util.intervals import Interval, IntervalSet
from repro.util.location import SourceLocation

_RMA_KIND = {"Put": PUT, "Get": GET, "Accumulate": ACC,
             # MPI-3 atomics are accumulate-family ops for Table I purposes
             "Get_accumulate": ACC, "Compare_and_swap": ACC,
             # request-based variants behave like their plain counterparts,
             # with the span truncated at the request's MPI_Wait
             "Rput": PUT, "Rget": GET, "Raccumulate": ACC}

#: MPI calls whose logged buffer is read (load-like) / written (store-like).
_CALL_LOADS = frozenset({"Send", "Isend", "Reduce", "Allreduce", "Scan"})
_CALL_STORES = frozenset({"Recv"})


@dataclass
class RMAOpView:
    """One one-sided communication operation, analysis-ready."""

    rank: int
    seq: int
    kind: str  # put | get | acc
    win_id: int
    target: int
    target_intervals: IntervalSet
    origin_intervals: IntervalSet
    origin_var: str
    loc: SourceLocation
    epoch: Optional[Epoch]
    acc_op: Optional[str] = None
    acc_base: Optional[str] = None
    fn: str = ""
    #: completion point: epoch close, or an earlier MPI-3 flush
    complete_seq: int = OPEN_ENDED

    @property
    def close_seq(self) -> int:
        return self.complete_seq

    @property
    def span(self) -> Span:
        """Influence interval: issue to guaranteed completion."""
        return Span(self.rank, self.seq, self.complete_seq)

    def describe(self) -> str:
        name = f"MPI_{self.fn}" if self.fn else {
            PUT: "MPI_Put", GET: "MPI_Get", ACC: "MPI_Accumulate",
        }[self.kind]
        return (f"{name} rank {self.rank} -> target {self.target} "
                f"(win {self.win_id}) at {self.loc.short}")


@dataclass
class LocalAccess:
    """One local memory access (direct or through an MPI call)."""

    rank: int
    seq: int
    access: str  # load | store
    intervals: IntervalSet
    var: str
    loc: SourceLocation
    fn: str  # "mem" for direct loads/stores, else the MPI call name
    origin_of: Optional[RMAOpView] = None  # set for RMA-origin accesses

    @property
    def span(self) -> Span:
        if self.origin_of is not None:
            # an RMA op may read/write its origin buffer any time until
            # its epoch closes
            return self.origin_of.span
        return Span.point(self.rank, self.seq)

    def describe(self) -> str:
        if self.fn == "mem":
            what = f"local {self.access} of '{self.var}'"
        elif self.origin_of is not None:
            what = (f"origin-buffer {self.access} ('{self.var}') by "
                    f"{self.fn}")
        else:
            what = f"{self.access} of '{self.var}' by MPI_{self.fn}"
        return f"{what} at rank {self.rank}, {self.loc.short}"


class MemRows:
    """One rank's instrumented loads/stores as parallel columns.

    The sweep engine's representation of plain memory events: numpy
    arrays straight out of the packed v2 :class:`MemBlock`s (``seq`` is
    strictly increasing, so epoch/region membership is a
    ``searchsorted`` range, not a scan), with string-valued fields kept
    as ids into the rank's shared string ``table``.  A
    :class:`LocalAccess` object is materialized per row only when a row
    actually lands in a finding (:meth:`local_access`) — never for the
    bulk of the trace.
    """

    __slots__ = ("rank", "table", "seq", "addr", "size", "var", "loc",
                 "access")

    def __init__(self, rank: int, table, seq, addr, size, var, loc, access):
        self.rank = rank
        self.table = table
        self.seq = seq
        self.addr = addr
        self.size = size
        self.var = var
        self.loc = loc
        self.access = access

    @classmethod
    def from_struct(cls, rank: int, table, arr: np.ndarray) -> "MemRows":
        # contiguous copies detach the columns from any mmap backing
        return cls(rank, table,
                   np.ascontiguousarray(arr["seq"]),
                   np.ascontiguousarray(arr["addr"]),
                   np.ascontiguousarray(arr["size"]),
                   np.ascontiguousarray(arr["var"]),
                   np.ascontiguousarray(arr["loc"]),
                   np.ascontiguousarray(arr["access"]))

    @classmethod
    def from_blocks(cls, rank: int, blocks: List) -> "MemRows":
        if not blocks:
            empty64 = np.empty(0, dtype=np.int64)
            return cls(rank, None, empty64, empty64, empty64,
                       np.empty(0, dtype=np.int32),
                       np.empty(0, dtype=np.int32),
                       np.empty(0, dtype=np.uint8))
        arrays = [block.array for block in blocks]
        arr = arrays[0] if len(arrays) == 1 else np.concatenate(arrays)
        return cls.from_struct(rank, blocks[0].table, arr)

    @classmethod
    def concat(cls, pieces: List["MemRows"]) -> "MemRows":
        pieces = [p for p in pieces if len(p)]
        if len(pieces) == 1:
            return pieces[0]
        if not pieces:
            return cls.from_blocks(-1, [])
        return cls(pieces[0].rank, pieces[0].table,
                   *(np.concatenate([getattr(p, col) for p in pieces])
                     for col in ("seq", "addr", "size", "var", "loc",
                                 "access")))

    def __len__(self) -> int:
        return len(self.seq)

    def slice(self, lo: int, hi: int) -> "MemRows":
        """A zero-copy row-range view (columns are array slices)."""
        return MemRows(self.rank, self.table, self.seq[lo:hi],
                       self.addr[lo:hi], self.size[lo:hi], self.var[lo:hi],
                       self.loc[lo:hi], self.access[lo:hi])

    def row_range(self, lo_seq: int, hi_seq: int) -> Tuple[int, int]:
        """Row indices with ``lo_seq < seq < hi_seq`` (both exclusive —
        the bound convention of epochs and concurrent regions)."""
        lo = int(np.searchsorted(self.seq, lo_seq, side="right"))
        hi = int(np.searchsorted(self.seq, hi_seq, side="left"))
        return lo, hi

    def local_access(self, i: int) -> LocalAccess:
        """Materialize row ``i`` as the identical LocalAccess object the
        pairwise lift would have built."""
        return LocalAccess(
            rank=self.rank, seq=int(self.seq[i]),
            access=_ACCESS_NAMES[int(self.access[i])],
            intervals=IntervalSet.single(int(self.addr[i]),
                                         int(self.size[i])),
            var=self.table.string(int(self.var[i])),
            loc=self.table.loc(int(self.loc[i])), fn="mem")


# ----------------------------------------------------------------------
# shared-memory backing for MemRows
# ----------------------------------------------------------------------

#: column order and dtypes of a MemRows shared segment — six contiguous
#: blocks laid out back to back (33 bytes per row)
_SHM_COLUMNS = (("seq", np.int64), ("addr", np.int64), ("size", np.int64),
                ("var", np.int32), ("loc", np.int32), ("access", np.uint8))


def rows_nbytes(desc: dict) -> int:
    """Payload size of the segment a share descriptor names."""
    return desc["n"] * sum(np.dtype(dt).itemsize for _c, dt in _SHM_COLUMNS)


def share_rows(rows: "MemRows", name: str):
    """Copy ``rows`` into a named ``multiprocessing.shared_memory``
    segment and return ``(descriptor, handle)``.

    The descriptor is a small picklable dict (segment name, row count,
    rank, string table contents) any process can hand to
    :func:`attach_rows`; the handle is the creator's — closing it is
    safe once the copy is done (the segment stays linked under its
    name), and whoever owns the name calls ``unlink()`` exactly once at
    end of run.  Empty rows get no segment (``name: None``)."""
    from multiprocessing.shared_memory import SharedMemory

    n = len(rows)
    desc = {"name": None, "n": n, "rank": rows.rank,
            "strings": (list(rows.table.strings)
                        if rows.table is not None else None)}
    if n == 0:
        return desc, None
    shm = SharedMemory(name=name, create=True, size=rows_nbytes(desc))
    offset = 0
    for col, dtype in _SHM_COLUMNS:
        view = np.ndarray((n,), dtype=dtype, buffer=shm.buf, offset=offset)
        view[:] = getattr(rows, col)
        del view  # drop the buffer reference so close() can succeed
        offset += n * np.dtype(dtype).itemsize
    desc["name"] = name
    return desc, shm


def attach_rows(desc: dict):
    """Rebuild the :class:`MemRows` a share descriptor names as
    zero-copy views into the shared segment; returns ``(rows, handle)``
    (handle ``None`` for the empty-rows descriptor).  The caller keeps
    the handle alive for as long as the rows are used."""
    if not desc["n"]:
        return MemRows.from_blocks(desc["rank"], []), None
    from multiprocessing.shared_memory import SharedMemory

    from repro.profiler.tracer import _StringTable

    n = desc["n"]
    shm = SharedMemory(name=desc["name"])
    cols = []
    offset = 0
    for _col, dtype in _SHM_COLUMNS:
        cols.append(np.ndarray((n,), dtype=dtype, buffer=shm.buf,
                               offset=offset))
        offset += n * np.dtype(dtype).itemsize
    table = (_StringTable(desc["strings"])
             if desc["strings"] is not None else None)
    return MemRows(desc["rank"], table, *cols), shm


@dataclass
class AccessModel:
    """All lifted accesses of a trace set.

    ``mems`` is the sweep engine's columnar population: instrumented
    loads/stores kept as per-rank :class:`MemRows` instead of
    one :class:`LocalAccess` object per event.  The pairwise build
    leaves it empty and puts every access in ``local``; either way the
    two populations partition the same accesses, so
    :attr:`total_local_accesses` is engine-invariant.
    """

    ops: List[RMAOpView]
    local: List[LocalAccess]
    mems: Dict[int, MemRows] = field(default_factory=dict)

    @property
    def total_local_accesses(self) -> int:
        return len(self.local) + sum(len(rows)
                                     for rows in self.mems.values())

    def ops_by_rank(self) -> Dict[int, List[RMAOpView]]:
        out: Dict[int, List[RMAOpView]] = {}
        for op in self.ops:
            out.setdefault(op.rank, []).append(op)
        return out


def _call_buffer_intervals(pre: PreprocessedTrace, rank: int,
                           event: CallEvent) -> Optional[IntervalSet]:
    """Intervals of the local buffer named in a two-sided/collective call."""
    args = event.args
    if "base" not in args or "count" not in args or "dtype" not in args:
        return None
    dtype = pre.datatype(rank, int(args["dtype"]))
    base = int(args["base"]) + int(args.get("offset", 0))
    return dtype.intervals(base, int(args["count"]))


def build_access_model(pre: PreprocessedTrace,
                       epoch_index: EpochIndex) -> AccessModel:
    """Lift every relevant trace event into analysis views."""
    ops: List[RMAOpView] = []
    local: List[LocalAccess] = []
    for rank in range(pre.nranks):
        rank_ops, rank_local = lift_rank(pre, epoch_index, rank)
        ops.extend(rank_ops)
        local.extend(rank_local)
    return AccessModel(ops=ops, local=local)


def build_access_model_stream(pre: PreprocessedTrace,
                              epoch_index: EpochIndex,
                              traces: "TraceSet") -> AccessModel:
    """Like :func:`build_access_model`, but re-reading each rank's trace
    through the vectorized ingest path: instrumented loads/stores arrive
    as packed :class:`~repro.profiler.tracer.MemBlock` columns and become
    :class:`LocalAccess` objects directly, without an intermediate
    :class:`MemEvent` per row.  Produces the identical model in the
    identical order (streams preserve on-disk event order)."""
    ops: List[RMAOpView] = []
    local: List[LocalAccess] = []
    for rank in range(pre.nranks):
        rank_ops, rank_local = lift_rank_stream(pre, epoch_index, rank,
                                                traces.stream(rank))
        ops.extend(rank_ops)
        local.extend(rank_local)
    return AccessModel(ops=ops, local=local)


def _lift_mem_block(rank: int, block, local: List[LocalAccess]) -> None:
    """Turn one packed memory block into LocalAccess objects (column
    lists, one tight loop — the per-event dataclass+decode round trip of
    the typed path is skipped entirely)."""
    table = block.table
    seqs, addrs, sizes, var_ids, loc_ids, accs = block.columns()
    append = local.append
    names = _ACCESS_NAMES
    single = IntervalSet.single
    for i in range(len(seqs)):
        append(LocalAccess(
            rank=rank, seq=seqs[i], access=names[accs[i]],
            intervals=single(addrs[i], sizes[i]),
            var=table.string(var_ids[i]), loc=table.loc(loc_ids[i]),
            fn="mem"))


def lift_rank_stream(pre: PreprocessedTrace, epoch_index: EpochIndex,
                     rank: int, stream) -> Tuple[List[RMAOpView],
                                                 List[LocalAccess]]:
    """Lift one rank from its ingest stream (typed calls + packed memory
    blocks, in trace order) — same output as :func:`lift_rank` over the
    equivalent typed event list."""
    ops: List[RMAOpView] = []
    local: List[LocalAccess] = []
    cache: Dict = {}
    for item in stream:
        if isinstance(item, CallEvent):
            _lift_call(pre, epoch_index, rank, item, ops, local, cache)
        else:
            _lift_mem_block(rank, item, local)
    return ops, local


def build_access_model_sweep(pre: PreprocessedTrace,
                             epoch_index: EpochIndex,
                             traces: "TraceSet") -> AccessModel:
    """The sweep engine's model build: RMA ops and call-derived local
    accesses lift as usual (they are few), but instrumented loads/stores
    never become per-event objects — each rank's packed memory blocks
    concatenate into one columnar :class:`MemRows`.

    The call events were already decoded by the preprocess pass
    (``pre.events``), so only the packed memory columns are read back
    from the trace — no second call-decode pass."""
    ops: List[RMAOpView] = []
    local: List[LocalAccess] = []
    mems: Dict[int, MemRows] = {}
    for rank in range(pre.nranks):
        with traces.reader(rank) as reader:
            blocks = list(reader.mem_blocks())
        rank_ops, rank_local, rows = lift_rank_sweep(
            pre, epoch_index, rank, pre.events[rank], blocks)
        ops.extend(rank_ops)
        local.extend(rank_local)
        mems[rank] = rows
    return AccessModel(ops=ops, local=local, mems=mems)


def lift_rank_sweep(pre: PreprocessedTrace, epoch_index: EpochIndex,
                    rank: int, events, blocks) -> Tuple[
                        List[RMAOpView], List[LocalAccess], MemRows]:
    """Columnar lift of one rank: call events become views (through the
    sweep-only :class:`LiftCache`), packed memory blocks become
    :class:`MemRows` columns.  Non-call items in ``events`` are ignored,
    so a mixed typed event list works too."""
    ops: List[RMAOpView] = []
    local: List[LocalAccess] = []
    cache = LiftCache(epoch_index, rank)
    for event in events:
        if isinstance(event, CallEvent):
            _lift_call(pre, epoch_index, rank, event, ops, local, cache)
    return ops, local, MemRows.from_blocks(rank, blocks)


def lift_rank(pre: PreprocessedTrace, epoch_index: EpochIndex,
              rank: int) -> Tuple[List[RMAOpView], List[LocalAccess]]:
    """Lift one rank's events — the unit of work of a model-phase shard.

    Needs only that rank's events plus the merged registries, so the
    parallel engine can run it in a worker against a single-rank view.
    """
    ops: List[RMAOpView] = []
    local: List[LocalAccess] = []
    cache: Dict = {}
    for event in pre.events[rank]:
        if isinstance(event, MemEvent):
            local.append(LocalAccess(
                rank=rank, seq=event.seq, access=event.access,
                intervals=IntervalSet.single(event.addr, event.size),
                var=event.var, loc=event.loc, fn="mem"))
            continue
        assert isinstance(event, CallEvent)
        _lift_call(pre, epoch_index, rank, event, ops, local, cache)
    return ops, local


class LiftCache:
    """Sweep-only per-rank lift accelerator.

    Two shortcuts the plain dict cache of the pairwise reference path
    does not attempt:

    * **pre-sorted data-map application**: nearly every datatype's
      data-map is already sorted and gap-separated, and consecutive
      repetitions don't overlap when the extent covers the map — so the
      intervals come out of the loop already in
      :class:`~repro.util.intervals.IntervalSet` normal form and the
      ``sorted``-based ``_normalize`` pass is skipped (it dominates the
      model phase: loop nests register a fresh derived datatype per
      iteration, so *no* memo key repeats there).  Resolved sets are
      still memoized by ``(type_id, base, count)`` for the buffers that
      do repeat verbatim (origin/result buffers).
    * **epoch lookup**: per ``(win_id, target)``, the rank's access
      epochs that cover the target, pre-filtered once and bisected by
      ``open_seq`` — replacing the per-op linear scan of
      :meth:`~repro.core.epochs.EpochIndex.enclosing`.  Lock/PSCW
      epochs keep their precedence over fences by living in a separate,
      first-consulted list; within a list the scan walks back from the
      bisect point, so nested open-ended epochs still resolve.
    """

    __slots__ = ("_epochs", "_rank", "_placed", "_enclosing")

    def __init__(self, epoch_index: EpochIndex, rank: int):
        self._epochs = epoch_index
        self._rank = rank
        self._placed: Dict[Tuple[int, int, int], IntervalSet] = {}
        self._enclosing: Dict[Tuple[int, int], tuple] = {}

    def intervals(self, dtype, base: int, count: int) -> IntervalSet:
        key = (dtype.type_id, base, count)
        placed = self._placed.get(key)
        if placed is None:
            placed = self._placed[key] = self._apply_datamap(
                dtype, base, count)
        return placed

    @staticmethod
    def _apply_datamap(dtype, base: int, count: int) -> IntervalSet:
        """Sorted-input :func:`~repro.util.intervals.datamap_intervals`:
        coalesces adjacent/overlapping segments on the fly, so the
        result is already in normal form and the ``sorted``-based
        ``_normalize`` pass (plus one :class:`Interval` per raw segment)
        is skipped.  Unsorted data-maps fall back to the general path.
        """
        ivs: List[Interval] = []
        append = ivs.append
        extent = dtype.extent
        datamap = dtype.datamap
        cur_start = None
        cur_stop = 0
        for rep in range(count):
            origin = base + rep * extent
            for disp, length in datamap:
                if length <= 0:
                    continue
                start = origin + disp
                if cur_start is None:
                    cur_start, cur_stop = start, start + length
                elif start > cur_stop:
                    append(Interval(cur_start, cur_stop))
                    cur_start, cur_stop = start, start + length
                elif start >= cur_start:
                    stop = start + length
                    if stop > cur_stop:
                        cur_stop = stop
                else:
                    return dtype.intervals(base, count)
        if cur_start is not None:
            append(Interval(cur_start, cur_stop))
        placed = IntervalSet.__new__(IntervalSet)
        placed._ivs = ivs
        return placed

    def target_intervals(self, win, target: int, target_disp: int,
                         count: int, dtype) -> IntervalSet:
        base = win.bases[target] + target_disp * win.disp_units[target]
        return self.intervals(dtype, base, count)

    def enclosing(self, win_id: int, seq: int,
                  target: int) -> Optional[Epoch]:
        """Bisect-backed :meth:`EpochIndex.enclosing` for this rank."""
        key = (win_id, target)
        index = self._enclosing.get(key)
        if index is None:
            priority: List[Epoch] = []
            fences: List[Epoch] = []
            for epoch in self._epochs.of_rank_win(self._rank, win_id):
                if not (epoch.is_access and epoch.covers_target(target)):
                    continue
                if epoch.kind in (KIND_LOCK, KIND_PSCW_ACCESS):
                    priority.append(epoch)
                else:
                    fences.append(epoch)
            priority.sort(key=lambda e: e.open_seq)
            fences.sort(key=lambda e: e.open_seq)
            index = self._enclosing[key] = (
                [e.open_seq for e in priority], priority,
                [e.open_seq for e in fences], fences)
        for opens, epochs in ((index[0], index[1]), (index[2], index[3])):
            # epochs with open_seq >= seq cannot contain seq; the usual
            # hit is immediately at the bisect point, walking further
            # back only past closed epochs nested inside an open one
            for k in range(bisect_right(opens, seq) - 1, -1, -1):
                if epochs[k].contains_seq(seq):
                    return epochs[k]
        return None


def _lift_call(pre: PreprocessedTrace, epoch_index: EpochIndex, rank: int,
               event: CallEvent, ops: List[RMAOpView],
               local: List[LocalAccess],
               cache: Optional[Union[Dict, LiftCache]] = None) -> None:
    """Lift one MPI call into RMA op / local-access views (shared by the
    typed and streaming paths).

    ``cache`` memoizes window/datatype address resolution per rank:
    loops re-issue the same RMA call shape every iteration, and
    :class:`~repro.util.intervals.IntervalSet` is immutable, so repeat
    resolutions of ``(window, target, disp, count, dtype)`` — the model
    phase's hottest allocation — are shared instead of rebuilt."""
    if cache is None:
        cache = {}
    fast = isinstance(cache, LiftCache)
    fn, args = event.fn, event.args
    if fn in _RMA_KIND:
        win = pre.window(int(args["win"]))
        target = int(args["target"])
        origin_dtype = pre.datatype(rank, int(args["origin_dtype"]))
        target_dtype = pre.datatype(rank, int(args["target_dtype"]))
        origin_base = int(args["origin_base"]) + \
            int(args["origin_offset"])
        if fast:
            target_ivs = cache.target_intervals(
                win, target, int(args["target_disp"]),
                int(args["target_count"]), target_dtype)
            origin_ivs = cache.intervals(origin_dtype, origin_base,
                                         int(args["origin_count"]))
            epoch = cache.enclosing(win.win_id, event.seq, target)
        else:
            target_key = ("t", win.win_id, target,
                          int(args["target_disp"]),
                          int(args["target_count"]), target_dtype.type_id)
            target_ivs = cache.get(target_key)
            if target_ivs is None:
                target_ivs = cache[target_key] = win.target_intervals(
                    target, int(args["target_disp"]),
                    int(args["target_count"]), target_dtype)
            origin_key = ("o", origin_dtype.type_id, origin_base,
                          int(args["origin_count"]))
            origin_ivs = cache.get(origin_key)
            if origin_ivs is None:
                origin_ivs = cache[origin_key] = origin_dtype.intervals(
                    origin_base, int(args["origin_count"]))
            epoch = epoch_index.enclosing(rank, win.win_id, event.seq,
                                          target)
        acc_op = str(args["op"]) if "op" in args else None
        if fn == "Compare_and_swap":
            acc_op = "CAS"
        op = RMAOpView(
            rank=rank, seq=event.seq, kind=_RMA_KIND[fn],
            win_id=win.win_id, target=target,
            target_intervals=target_ivs,
            origin_intervals=origin_ivs,
            origin_var=str(args.get("var", "?")),
            loc=event.loc, epoch=epoch, fn=fn,
            acc_op=acc_op,
            acc_base=(origin_dtype.base
                      if _RMA_KIND[fn] == ACC else None),
            complete_seq=epoch_index.completion_seq(
                rank, win.win_id, event.seq, target, epoch,
                req=(int(args["req"])
                     if fn in ("Rput", "Rget", "Raccumulate")
                     else None)),
        )
        ops.append(op)
        # the local (origin-buffer) side of the call
        origin_access = STORE if op.kind == GET else LOAD
        local.append(LocalAccess(
            rank=rank, seq=event.seq, access=origin_access,
            intervals=origin_ivs, var=op.origin_var, loc=event.loc,
            fn=fn, origin_of=op))
        # MPI-3 fetching ops also *write* a local result buffer
        if "result_base" in args:
            result_base = int(args["result_base"]) + \
                int(args.get("result_offset", 0))
            if fast:
                result_ivs = cache.intervals(target_dtype, result_base,
                                             int(args["target_count"]))
            else:
                result_key = ("r", target_dtype.type_id, result_base,
                              int(args["target_count"]))
                result_ivs = cache.get(result_key)
                if result_ivs is None:
                    result_ivs = cache[result_key] = \
                        target_dtype.intervals(result_base,
                                               int(args["target_count"]))
            local.append(LocalAccess(
                rank=rank, seq=event.seq, access=STORE,
                intervals=result_ivs,
                var=str(args.get("result_var", "?")),
                loc=event.loc, fn=fn, origin_of=op))
    elif fn in _CALL_LOADS or fn in _CALL_STORES or fn == "Bcast" \
            or (fn == "Wait" and args.get("req_kind") == "irecv"):
        intervals = _call_buffer_intervals(pre, rank, event)
        if intervals is None:
            return
        if fn == "Bcast":
            comm = int(args["comm"])
            root_world = pre.world_of_comm_rank(comm,
                                                int(args["root"]))
            access = LOAD if root_world == rank else STORE
        elif fn in _CALL_LOADS:
            access = LOAD
        else:
            access = STORE
        local.append(LocalAccess(
            rank=rank, seq=event.seq, access=access,
            intervals=intervals, var=str(args.get("var", "?")),
            loc=event.loc, fn=fn))
