"""Analyzable access views lifted from raw trace events.

Detection reasons about two access populations:

* :class:`RMAOpView` — one per Put/Get/Accumulate event, carrying the
  *target* byte intervals (in the target rank's address space, resolved
  through the window registry and data-maps) and the *origin* byte
  intervals (local), plus the enclosing epoch that bounds its span.
* :class:`LocalAccess` — every local touch of memory: instrumented
  loads/stores, MPI calls reading or writing a local buffer (send reads,
  recv writes, ...), and the local side of RMA calls themselves (a Put
  reads its origin buffer, a Get writes it — section IV-C-4: "they can be
  treated as local load and store, respectively").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.clocks import Span
from repro.core.compat import ACC, GET, LOAD, PUT, STORE
from repro.core.epochs import Epoch, EpochIndex, OPEN_ENDED
from repro.core.preprocess import PreprocessedTrace
from repro.profiler.events import ACCESS_NAMES as _ACCESS_NAMES
from repro.profiler.events import CallEvent, MemEvent
from repro.util.errors import AnalysisError
from repro.util.intervals import IntervalSet
from repro.util.location import SourceLocation

_RMA_KIND = {"Put": PUT, "Get": GET, "Accumulate": ACC,
             # MPI-3 atomics are accumulate-family ops for Table I purposes
             "Get_accumulate": ACC, "Compare_and_swap": ACC,
             # request-based variants behave like their plain counterparts,
             # with the span truncated at the request's MPI_Wait
             "Rput": PUT, "Rget": GET, "Raccumulate": ACC}

#: MPI calls whose logged buffer is read (load-like) / written (store-like).
_CALL_LOADS = frozenset({"Send", "Isend", "Reduce", "Allreduce", "Scan"})
_CALL_STORES = frozenset({"Recv"})


@dataclass
class RMAOpView:
    """One one-sided communication operation, analysis-ready."""

    rank: int
    seq: int
    kind: str  # put | get | acc
    win_id: int
    target: int
    target_intervals: IntervalSet
    origin_intervals: IntervalSet
    origin_var: str
    loc: SourceLocation
    epoch: Optional[Epoch]
    acc_op: Optional[str] = None
    acc_base: Optional[str] = None
    fn: str = ""
    #: completion point: epoch close, or an earlier MPI-3 flush
    complete_seq: int = OPEN_ENDED

    @property
    def close_seq(self) -> int:
        return self.complete_seq

    @property
    def span(self) -> Span:
        """Influence interval: issue to guaranteed completion."""
        return Span(self.rank, self.seq, self.complete_seq)

    def describe(self) -> str:
        name = f"MPI_{self.fn}" if self.fn else {
            PUT: "MPI_Put", GET: "MPI_Get", ACC: "MPI_Accumulate",
        }[self.kind]
        return (f"{name} rank {self.rank} -> target {self.target} "
                f"(win {self.win_id}) at {self.loc.short}")


@dataclass
class LocalAccess:
    """One local memory access (direct or through an MPI call)."""

    rank: int
    seq: int
    access: str  # load | store
    intervals: IntervalSet
    var: str
    loc: SourceLocation
    fn: str  # "mem" for direct loads/stores, else the MPI call name
    origin_of: Optional[RMAOpView] = None  # set for RMA-origin accesses

    @property
    def span(self) -> Span:
        if self.origin_of is not None:
            # an RMA op may read/write its origin buffer any time until
            # its epoch closes
            return self.origin_of.span
        return Span.point(self.rank, self.seq)

    def describe(self) -> str:
        if self.fn == "mem":
            what = f"local {self.access} of '{self.var}'"
        elif self.origin_of is not None:
            what = (f"origin-buffer {self.access} ('{self.var}') by "
                    f"{self.fn}")
        else:
            what = f"{self.access} of '{self.var}' by MPI_{self.fn}"
        return f"{what} at rank {self.rank}, {self.loc.short}"


@dataclass
class AccessModel:
    """All lifted accesses of a trace set."""

    ops: List[RMAOpView]
    local: List[LocalAccess]

    def ops_by_rank(self) -> Dict[int, List[RMAOpView]]:
        out: Dict[int, List[RMAOpView]] = {}
        for op in self.ops:
            out.setdefault(op.rank, []).append(op)
        return out


def _call_buffer_intervals(pre: PreprocessedTrace, rank: int,
                           event: CallEvent) -> Optional[IntervalSet]:
    """Intervals of the local buffer named in a two-sided/collective call."""
    args = event.args
    if "base" not in args or "count" not in args or "dtype" not in args:
        return None
    dtype = pre.datatype(rank, int(args["dtype"]))
    base = int(args["base"]) + int(args.get("offset", 0))
    return dtype.intervals(base, int(args["count"]))


def build_access_model(pre: PreprocessedTrace,
                       epoch_index: EpochIndex) -> AccessModel:
    """Lift every relevant trace event into analysis views."""
    ops: List[RMAOpView] = []
    local: List[LocalAccess] = []
    for rank in range(pre.nranks):
        rank_ops, rank_local = lift_rank(pre, epoch_index, rank)
        ops.extend(rank_ops)
        local.extend(rank_local)
    return AccessModel(ops=ops, local=local)


def build_access_model_stream(pre: PreprocessedTrace,
                              epoch_index: EpochIndex,
                              traces: "TraceSet") -> AccessModel:
    """Like :func:`build_access_model`, but re-reading each rank's trace
    through the vectorized ingest path: instrumented loads/stores arrive
    as packed :class:`~repro.profiler.tracer.MemBlock` columns and become
    :class:`LocalAccess` objects directly, without an intermediate
    :class:`MemEvent` per row.  Produces the identical model in the
    identical order (streams preserve on-disk event order)."""
    ops: List[RMAOpView] = []
    local: List[LocalAccess] = []
    for rank in range(pre.nranks):
        rank_ops, rank_local = lift_rank_stream(pre, epoch_index, rank,
                                                traces.stream(rank))
        ops.extend(rank_ops)
        local.extend(rank_local)
    return AccessModel(ops=ops, local=local)


def _lift_mem_block(rank: int, block, local: List[LocalAccess]) -> None:
    """Turn one packed memory block into LocalAccess objects (column
    lists, one tight loop — the per-event dataclass+decode round trip of
    the typed path is skipped entirely)."""
    table = block.table
    seqs, addrs, sizes, var_ids, loc_ids, accs = block.columns()
    append = local.append
    names = _ACCESS_NAMES
    single = IntervalSet.single
    for i in range(len(seqs)):
        append(LocalAccess(
            rank=rank, seq=seqs[i], access=names[accs[i]],
            intervals=single(addrs[i], sizes[i]),
            var=table.string(var_ids[i]), loc=table.loc(loc_ids[i]),
            fn="mem"))


def lift_rank_stream(pre: PreprocessedTrace, epoch_index: EpochIndex,
                     rank: int, stream) -> Tuple[List[RMAOpView],
                                                 List[LocalAccess]]:
    """Lift one rank from its ingest stream (typed calls + packed memory
    blocks, in trace order) — same output as :func:`lift_rank` over the
    equivalent typed event list."""
    ops: List[RMAOpView] = []
    local: List[LocalAccess] = []
    for item in stream:
        if isinstance(item, CallEvent):
            _lift_call(pre, epoch_index, rank, item, ops, local)
        else:
            _lift_mem_block(rank, item, local)
    return ops, local


def lift_rank(pre: PreprocessedTrace, epoch_index: EpochIndex,
              rank: int) -> Tuple[List[RMAOpView], List[LocalAccess]]:
    """Lift one rank's events — the unit of work of a model-phase shard.

    Needs only that rank's events plus the merged registries, so the
    parallel engine can run it in a worker against a single-rank view.
    """
    ops: List[RMAOpView] = []
    local: List[LocalAccess] = []
    for event in pre.events[rank]:
        if isinstance(event, MemEvent):
            local.append(LocalAccess(
                rank=rank, seq=event.seq, access=event.access,
                intervals=IntervalSet.single(event.addr, event.size),
                var=event.var, loc=event.loc, fn="mem"))
            continue
        assert isinstance(event, CallEvent)
        _lift_call(pre, epoch_index, rank, event, ops, local)
    return ops, local


def _lift_call(pre: PreprocessedTrace, epoch_index: EpochIndex, rank: int,
               event: CallEvent, ops: List[RMAOpView],
               local: List[LocalAccess]) -> None:
    """Lift one MPI call into RMA op / local-access views (shared by the
    typed and streaming paths)."""
    fn, args = event.fn, event.args
    if fn in _RMA_KIND:
        win = pre.window(int(args["win"]))
        target = int(args["target"])
        origin_dtype = pre.datatype(rank, int(args["origin_dtype"]))
        target_dtype = pre.datatype(rank, int(args["target_dtype"]))
        target_ivs = win.target_intervals(
            target, int(args["target_disp"]),
            int(args["target_count"]), target_dtype)
        origin_base = int(args["origin_base"]) + \
            int(args["origin_offset"])
        origin_ivs = origin_dtype.intervals(
            origin_base, int(args["origin_count"]))
        epoch = epoch_index.enclosing(rank, win.win_id, event.seq,
                                      target)
        acc_op = str(args["op"]) if "op" in args else None
        if fn == "Compare_and_swap":
            acc_op = "CAS"
        op = RMAOpView(
            rank=rank, seq=event.seq, kind=_RMA_KIND[fn],
            win_id=win.win_id, target=target,
            target_intervals=target_ivs,
            origin_intervals=origin_ivs,
            origin_var=str(args.get("var", "?")),
            loc=event.loc, epoch=epoch, fn=fn,
            acc_op=acc_op,
            acc_base=(origin_dtype.base
                      if _RMA_KIND[fn] == ACC else None),
            complete_seq=epoch_index.completion_seq(
                rank, win.win_id, event.seq, target, epoch,
                req=(int(args["req"])
                     if fn in ("Rput", "Rget", "Raccumulate")
                     else None)),
        )
        ops.append(op)
        # the local (origin-buffer) side of the call
        origin_access = STORE if op.kind == GET else LOAD
        local.append(LocalAccess(
            rank=rank, seq=event.seq, access=origin_access,
            intervals=origin_ivs, var=op.origin_var, loc=event.loc,
            fn=fn, origin_of=op))
        # MPI-3 fetching ops also *write* a local result buffer
        if "result_base" in args:
            result_base = int(args["result_base"]) + \
                int(args.get("result_offset", 0))
            result_ivs = target_dtype.intervals(
                result_base, int(args["target_count"]))
            local.append(LocalAccess(
                rank=rank, seq=event.seq, access=STORE,
                intervals=result_ivs,
                var=str(args.get("result_var", "?")),
                loc=event.loc, fn=fn, origin_of=op))
    elif fn in _CALL_LOADS or fn in _CALL_STORES or fn == "Bcast" \
            or (fn == "Wait" and args.get("req_kind") == "irecv"):
        intervals = _call_buffer_intervals(pre, rank, event)
        if intervals is None:
            return
        if fn == "Bcast":
            comm = int(args["comm"])
            root_world = pre.world_of_comm_rank(comm,
                                                int(args["root"]))
            access = LOAD if root_world == rank else STORE
        elif fn in _CALL_LOADS:
            access = LOAD
        else:
            access = STORE
        local.append(LocalAccess(
            rank=rank, seq=event.seq, access=access,
            intervals=intervals, var=str(args.get("var", "?")),
            loc=event.loc, fn=fn))
