"""The data-access DAG (Figure 4) — reference happens-before structure.

DN-Analyzer's production concurrency queries go through the vector-clock
oracle (:mod:`repro.core.clocks`); this module materializes the same
ordering as an explicit :class:`networkx.DiGraph` for visualization, small
traces, and differential testing of the oracle.

Graph shape, following the paper:

* every trace event is a vertex, labelled with its rank and parameters;
* vertices of one rank are chained in program order — **except**
  nonblocking RMA communication calls, which instead hang between their
  epoch's opening and closing synchronization vertices (they are unordered
  with respect to the epoch's other operations);
* each collective match contributes a synthetic vertex ``("sync", i)``:
  every member's call vertex points into it, and it points at each
  member's next program-order vertex — so anything before the collective
  at any rank precedes anything after it at any rank;
* directed matches add ``send -> recv``, ``post -> start``,
  ``complete -> wait`` edges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.core.epochs import OPEN_ENDED, EpochIndex
from repro.core.matching import KIND_COLLECTIVE, SyncMatch
from repro.core.preprocess import PreprocessedTrace
from repro.profiler.events import CallEvent, MemEvent, RMA_COMM_CALLS

EventNode = Tuple[str, int, int]  # ("e", rank, seq)


def event_node(rank: int, seq: int) -> EventNode:
    return ("e", rank, seq)


def build_dag(pre: PreprocessedTrace, matches: List[SyncMatch],
              epoch_index: EpochIndex) -> nx.DiGraph:
    """Materialize the data-access DAG of a preprocessed trace set."""
    g = nx.DiGraph()

    # vertices + per-rank program-order chains (RMA comm calls excluded)
    chain_next: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for rank in range(pre.nranks):
        prev: Optional[int] = None
        for event in pre.events[rank]:
            is_rma_comm = (isinstance(event, CallEvent)
                           and event.fn in RMA_COMM_CALLS)
            label = (event.fn if isinstance(event, CallEvent)
                     else f"{event.access} {event.var}")
            g.add_node(event_node(rank, event.seq), rank=rank, label=label,
                       rma=is_rma_comm)
            if is_rma_comm:
                continue
            if prev is not None:
                g.add_edge(event_node(rank, prev),
                           event_node(rank, event.seq), kind="program")
                chain_next[(rank, prev)] = (rank, event.seq)
            prev = event.seq

    # synchronization edges; remember each member's synthetic sync node so
    # RMA ops opened by a collective can be ordered after the whole match
    member_sync: Dict[Tuple[int, int], Tuple[str, int]] = {}
    for i, match in enumerate(matches):
        if match.kind == KIND_COLLECTIVE:
            sync = ("sync", i)
            g.add_node(sync, label=match.fn, rank=-1, rma=False)
            for rank, seq in match.members.items():
                member_sync[(rank, seq)] = sync
                g.add_edge(event_node(rank, seq), sync, kind="sync")
                if match.exits:
                    continue  # nonblocking: the join lands at the Wait
                succ = chain_next.get((rank, seq))
                if succ is not None:
                    g.add_edge(sync, event_node(*succ), kind="sync")
            for rank, seq in match.exits.items():
                g.add_edge(sync, event_node(rank, seq), kind="sync")
        elif match.src is not None and match.dst is not None:
            g.add_edge(event_node(*match.src), event_node(*match.dst),
                       kind="sync")

    # RMA ops hang between their epoch boundaries; when the opening call is
    # a collective (fence), the op starts only after the match completes
    for rank in range(pre.nranks):
        for event in pre.events[rank]:
            if not (isinstance(event, CallEvent)
                    and event.fn in RMA_COMM_CALLS):
                continue
            epoch = epoch_index.enclosing(
                rank, int(event.args["win"]), event.seq,
                int(event.args["target"]))
            node = event_node(rank, event.seq)
            if epoch is None:
                continue
            open_node = member_sync.get((rank, epoch.open_seq),
                                        event_node(rank, epoch.open_seq))
            g.add_edge(open_node, node, kind="epoch")
            if epoch.close_seq != OPEN_ENDED:
                g.add_edge(node, event_node(rank, epoch.close_seq),
                           kind="epoch")
    return g


def happens_before(g: nx.DiGraph, a: EventNode, b: EventNode) -> bool:
    """Reference reachability query (slow; differential testing only)."""
    if a == b:
        return True
    return nx.has_path(g, a, b)


def concurrent(g: nx.DiGraph, a: EventNode, b: EventNode) -> bool:
    return not happens_before(g, a, b) and not happens_before(g, b, a)


def render_ascii(g: nx.DiGraph) -> str:
    """Tiny topological rendering used by ``mc-checker dag``."""
    lines = []
    for node in nx.topological_sort(g):
        attrs = g.nodes[node]
        preds = ", ".join(str(p) for p in g.predecessors(node))
        lines.append(f"{node} [{attrs.get('label', '')}]"
                     + (f" <- {preds}" if preds else ""))
    return "\n".join(lines)


def render_dot(g: nx.DiGraph) -> str:
    """Graphviz DOT rendering of the data-access DAG, one cluster per
    rank — the layout of the paper's Figure 4."""
    lines = ["digraph mc_checker_dag {", "  rankdir=TB;",
             '  node [shape=box, fontsize=10];']
    by_rank: Dict[int, List] = {}
    for node, attrs in g.nodes(data=True):
        by_rank.setdefault(attrs.get("rank", -1), []).append((node, attrs))

    def node_id(node) -> str:
        return "n_" + "_".join(str(part) for part in node)

    for rank in sorted(by_rank):
        members = by_rank[rank]
        if rank >= 0:
            lines.append(f"  subgraph cluster_rank{rank} {{")
            lines.append(f'    label="P{rank}";')
            indent = "    "
        else:
            indent = "  "
        for node, attrs in members:
            style = ', style=rounded' if attrs.get("rma") else ""
            shape = (', shape=ellipse, style=filled, fillcolor=lightgrey'
                     if node[0] == "sync" else style)
            lines.append(f'{indent}{node_id(node)} '
                         f'[label="{attrs.get("label", "")}"{shape}];')
        if rank >= 0:
            lines.append("  }")
    for src, dst, attrs in g.edges(data=True):
        style = ' [style=dashed]' if attrs.get("kind") == "sync" else ""
        lines.append(f"  {node_id(src)} -> {node_id(dst)}{style};")
    lines.append("}")
    return "\n".join(lines)
