"""Persistent shared-memory worker pool behind ``MCChecker(jobs=N)``.

The serial DN-Analyzer decomposes along two natural shard axes:

* **rank shards** — trace parsing, registry scanning, and access-model
  lifting touch one rank's events at a time (plus the merged, read-only
  registries), so each rank is an independent unit of work;
* **region/epoch shards** — cross-process detection never crosses a
  concurrent-region boundary (regions are separated by global
  synchronization, so cross-region pairs are ordered by construction)
  and intra-epoch detection never crosses an epoch, so contiguous chunks
  of regions/epochs are independent units of work.

One :class:`WorkerPool` of long-lived processes serves *all* phases of a
run — preprocess → lift → intra → inter, and the incremental checker's
dirty-shard recompute — instead of forking a fresh pool per phase.
Phase state is *installed* incrementally over each worker's pipe
(the registries once, then the lifted ops/locals once, ...), and task
messages carry only small descriptors:

* scan tasks take a rank number and return the rank's registry scan
  plus its call events (memory events are only counted, never decoded);
* lift tasks take ``(rank, segment_name)``; the worker reads its
  events from disk (the install ships only
  :meth:`PreprocessedTrace.registry_view`, never the call stream),
  copies the rank's packed memory columns into a named
  ``multiprocessing.shared_memory`` segment and returns ops/locals
  plus the segment *descriptor* — the columns themselves never cross
  the pipe;
* detection tasks take ``(lo, hi)`` chunk bounds only.  The single
  detect install carries ops/locals together with the parent's
  epoch/region indexes (identity survives within one pickle payload,
  so no re-interning is needed worker-side).  Each worker rebuilds
  the epoch/region unit lists locally (:func:`build_detect_units` is
  deterministic), attaches the shared ``MemRows`` segments once, and
  indexes into its own unit list — ``intra_units``/``inter_units`` are
  never pickled.

Results are merged *in shard order*, which keeps the parallel report
byte-identical to the serial one: every list the serial code builds is
reassembled in exactly the iteration order the serial code would have
used (ranks ascending, epochs in index order, regions ascending) and
deduplication happens once, in the parent, just as in ``MCChecker``.

Start-method portability: the pool works identically under ``fork`` and
``spawn`` (forced via ``MCCHECKER_START_METHOD``) because nothing relies
on inherited address space — all state arrives through installs and all
bulk data through shared segments, which workers attach by name on first
use.  Shared segments are named after the owning pool and unlinked by
the parent at end of run, including after a worker crash, so no
``/dev/shm`` entries outlive an analysis.

Observability: when the parent recorder is enabled, each worker task
runs under its own :class:`~repro.obs.recorder.Recorder` and returns its
``export_state()`` beside the result; the parent ``absorb``s these, so
worker spans and counters land in the parent's exporters.  The pool
itself publishes ``parallel_pool_created_total`` /
``parallel_pool_reused_total`` and per-phase
``parallel_pickled_bytes_total{phase,kind}`` /
``parallel_shm_bytes_total{phase}``, which is how the flight recorder
proves the zero-copy claim (mem-event bytes appear under ``shm``, not
under ``pickled``).
"""

from __future__ import annotations

import atexit
import importlib
import multiprocessing as mp
import os
import pickle
import threading
import traceback
import uuid
from multiprocessing import resource_tracker
from multiprocessing.shared_memory import SharedMemory
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.calltable import (
    CONTROL_PLANE_ENV, PLANE_COLUMNAR, attach_table, control_plane,
    share_table,
)
from repro.core.diagnostics import ConsistencyError
from repro.core.engine import (
    build_detect_units, check_epoch_sweep, detect_region_sweep,
)
from repro.core.epochs import EpochIndex
from repro.core.inter import _LocalLockIndex, detect_region
from repro.core.intra import check_epoch
from repro.core.model import (
    AccessModel, MemRows, attach_rows, lift_rank_stream, lift_rank_sweep,
    share_rows,
)
from repro.core.preprocess import PreprocessedTrace, scan_rank
from repro.core.regions import RegionIndex
from repro.obs.recorder import NullRecorder, Recorder
from repro.profiler.events import CallEvent
from repro.profiler.tracer import TraceSet

#: env var forcing the multiprocessing start method ("fork"/"spawn") —
#: the spawn-parity tests and CI set it; unset picks fork when available
START_METHOD_ENV = "MCCHECKER_START_METHOD"


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0``/``1`` mean serial,
    negative means one worker per CPU."""
    if not jobs or jobs == 1:
        return 1
    if jobs < 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def start_method() -> str:
    """The start method every pool uses — the single copy of the
    fork-else-default selection (``MCCHECKER_START_METHOD`` overrides)."""
    forced = os.environ.get(START_METHOD_ENV)
    if forced:
        return forced
    return ("fork" if "fork" in mp.get_all_start_methods()
            else mp.get_start_method())


def _chunk_bounds(n: int, jobs: int, per_job: int = 4) -> List[Tuple[int, int]]:
    """Contiguous ``(lo, hi)`` chunks over ``n`` units: about ``per_job``
    chunks per worker for load balance, while contiguity keeps the
    in-order merge trivial."""
    nchunks = min(n, jobs * per_job)
    step = -(-n // nchunks)
    return [(lo, min(lo + step, n)) for lo in range(0, n, step)]


# ------------------------------------------------------------ worker side


#: per-worker phase state, merged by every ``install`` message and
#: cleared by ``reset`` (end of run)
_WORKER: Dict[str, Any] = {}

#: bumped on every install/reset so derived state knows it is stale
_WORKER_GEN = [0]

#: derived (per-generation) state, e.g. the rebuilt detect units
_DERIVED: Dict[str, Any] = {}

#: shared segments this process attached: name -> (handle, MemRows)
_ATTACHED: Dict[str, Tuple[Optional[SharedMemory], MemRows]] = {}

#: task registry: tasks are dispatched by (module, name) so spawn
#: workers — and fork workers older than the registering import — can
#: resolve them by importing the module
_TASKS: Dict[str, Callable] = {}


def _pool_task(name: str):
    def register(fn):
        fn._pool_task_name = name
        _TASKS[name] = fn
        return fn
    return register


def _task_recorder() -> NullRecorder:
    """Task-local recorder: storing when the parent wants worker obs."""
    return Recorder() if _WORKER.get("obs") else NullRecorder()


def _export(rec: NullRecorder) -> Optional[dict]:
    return rec.export_state() if rec.enabled else None


def absorb_export(export: Optional[dict]) -> None:
    """Fold a worker recorder's exported state into the parent recorder."""
    if export is not None:
        obs.get_recorder().absorb(export)


def worker_rows(desc: dict) -> MemRows:
    """The :class:`MemRows` a share descriptor names, attached at most
    once per process and cached until the next ``reset``."""
    name = desc.get("name")
    if name is None:
        rows, _handle = attach_rows(desc)
        return rows
    entry = _ATTACHED.get(name)
    if entry is None:
        rows, handle = attach_rows(desc)
        entry = _ATTACHED[name] = (handle, rows)
    return entry[1]


def _reset_worker() -> None:
    _WORKER.clear()
    _DERIVED.clear()
    _WORKER_GEN[0] += 1
    for handle, _rows in _ATTACHED.values():
        if handle is None:
            continue
        try:
            handle.close()
        except BufferError:
            # a stray view still references the mapping; the mapping is
            # released when the view goes, the name is the parent's to
            # unlink either way
            pass
    _ATTACHED.clear()


def _pickle(obj) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def _worker_main(conn) -> None:
    """One pool worker: drain (kind, payload) messages until ``stop``."""
    while True:
        try:
            raw = conn.recv_bytes()
        except (EOFError, OSError):
            break
        try:
            kind, payload = pickle.loads(raw)
            if kind == "stop":
                break
            if kind == "reset":
                _reset_worker()
                conn.send_bytes(_pickle(("ok", None)))
            elif kind == "install":
                _WORKER.update(payload)
                _WORKER_GEN[0] += 1
            elif kind == "task":
                module, name, items = payload
                fn = _TASKS.get(name)
                if fn is None:
                    importlib.import_module(module)
                    fn = _TASKS[name]
                results = [(idx, fn(arg)) for idx, arg in items]
                conn.send_bytes(_pickle(("ok", results)))
        except BaseException:
            try:
                conn.send_bytes(_pickle(("err", traceback.format_exc())))
            except Exception:
                break
    _reset_worker()
    conn.close()


# ------------------------------------------------------------ parent side


def _count_bytes(metric: str, phase: str, kind: str, nbytes: int) -> None:
    if nbytes:
        obs.count(metric, nbytes, phase=phase, kind=kind,
                  help="Bytes crossing worker-pool pipes, by phase")


class WorkerPool:
    """``jobs`` persistent worker processes with per-worker duplex pipes.

    Lifecycle: :func:`acquire_pool` creates (or reuses) a pool;
    :meth:`begin_run` resets worker state for a fresh analysis;
    :meth:`install` broadcasts phase state; :meth:`run` scatters task
    args round-robin and gathers results back in argument order;
    :meth:`end_run` resets workers and unlinks every shared segment the
    run registered — including segments a crashed worker left behind.
    The processes themselves survive across runs (that is the point);
    :meth:`shutdown` ends them.
    """

    def __init__(self, jobs: int, method: Optional[str] = None):
        self.jobs = max(1, jobs)
        self.method = method or start_method()
        self.broken = False
        self._lock = threading.RLock()
        self._conns = []
        self._procs = []
        #: shared segments of the current run: name -> parent handle
        #: (None until/unless the parent attached or created it)
        self._segments: Dict[str, Optional[SharedMemory]] = {}
        self._token = uuid.uuid4().hex[:8]
        self._seg_counter = 0
        # start the resource tracker before the workers exist so every
        # process shares one tracker and attach/create registrations
        # stay balanced by the single parent-side unlink
        if hasattr(resource_tracker, "ensure_running"):
            resource_tracker.ensure_running()
        ctx = mp.get_context(self.method)
        for i in range(self.jobs):
            parent_end, child_end = ctx.Pipe(duplex=True)
            proc = ctx.Process(target=_worker_main, args=(child_end,),
                               name=f"mc-pool-{i}", daemon=True)
            proc.start()
            child_end.close()
            self._conns.append(parent_end)
            self._procs.append(proc)

    # -- liveness ------------------------------------------------------

    def alive(self) -> bool:
        return (not self.broken
                and all(proc.is_alive() for proc in self._procs))

    # -- run lifecycle -------------------------------------------------

    def begin_run(self) -> None:
        """Reset worker state and install the run's obs flag."""
        with self._lock:
            self._broadcast_reset()
            self.install("run", {"obs": obs.is_enabled()})

    def end_run(self) -> None:
        """Reset workers (drop installed state, detach segments) and
        unlink every segment this run registered.  Safe on a broken
        pool: the reset is skipped, the unlink still runs."""
        with self._lock:
            if not self.broken:
                try:
                    self._broadcast_reset()
                except Exception:
                    self.broken = True
            self._unlink_segments()

    def _broadcast_reset(self) -> None:
        blob = _pickle(("reset", None))
        for conn in self._conns:
            conn.send_bytes(blob)
        for conn in self._conns:
            status, _payload = pickle.loads(conn.recv_bytes())
            if status != "ok":
                raise RuntimeError("worker failed to reset")

    # -- shared segments -----------------------------------------------

    def new_segment_name(self, rank: int) -> str:
        """A pool-unique shm name (short enough for every platform)."""
        self._seg_counter += 1
        return f"mcc-{self._token}-{self._seg_counter}-r{rank}"

    def expect_segment(self, name: str) -> None:
        """Register a name *before* dispatching the task that creates
        it, so :meth:`end_run` can clean up even if the worker dies."""
        self._segments.setdefault(name, None)

    def adopt_segment(self, name: str, handle: SharedMemory) -> None:
        """Hand the parent-side handle of a segment to the pool."""
        self._segments[name] = handle

    def release_segment(self, name: str) -> None:
        """Unlink a segment eagerly (its contents were copied out) and
        drop it from the run's registry."""
        handle = self._segments.pop(name, None)
        if handle is None:
            try:
                handle = SharedMemory(name=name)
            except FileNotFoundError:
                return
            except Exception:
                return
        try:
            handle.close()
        except BufferError:
            pass
        try:
            handle.unlink()
        except FileNotFoundError:
            pass

    def _unlink_segments(self) -> None:
        for name, handle in list(self._segments.items()):
            if handle is None:
                try:
                    handle = SharedMemory(name=name)
                except FileNotFoundError:
                    continue
                except Exception:
                    continue
            try:
                handle.close()
            except BufferError:
                # live views (e.g. a kept CheckReport's model) still map
                # the segment; unlinking below removes the name while
                # existing mappings stay valid until they are dropped
                pass
            try:
                handle.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()

    # -- messaging -----------------------------------------------------

    def install(self, phase: str, state: Dict[str, Any]) -> None:
        """Broadcast phase state into every worker's ``_WORKER`` dict.

        One install message is one pickle payload, so objects shared
        between entries (e.g. ``local`` entries referencing ``ops``)
        keep their shared identity worker-side."""
        with self._lock:
            self._check_alive(phase)
            blob = _pickle(("install", state))
            for conn in self._conns:
                conn.send_bytes(blob)
            _count_bytes("parallel_pickled_bytes_total", phase, "install",
                         len(blob) * len(self._conns))

    def run(self, phase: str, task: str, args: Sequence[Any]) -> list:
        """Scatter ``task`` over ``args`` (round-robin), gather results
        in argument order.  A worker exception surfaces as a
        ``RuntimeError`` carrying the worker traceback; a worker death
        marks the pool broken (the next :func:`acquire_pool` replaces
        it)."""
        if not args:
            return []
        with self._lock:
            self._check_alive(phase)
            module = _TASKS[task].__module__ if task in _TASKS else task
            per_worker: List[list] = [[] for _ in range(self.jobs)]
            for idx, arg in enumerate(args):
                per_worker[idx % self.jobs].append((idx, arg))
            active, sent = [], 0
            for w, items in enumerate(per_worker):
                if not items:
                    continue
                blob = _pickle(("task", (module, task, items)))
                self._conns[w].send_bytes(blob)
                sent += len(blob)
                active.append(w)
            _count_bytes("parallel_pickled_bytes_total", phase, "task",
                         sent)
            results: List[Any] = [None] * len(args)
            received = 0
            for w in active:
                try:
                    raw = self._conns[w].recv_bytes()
                except (EOFError, OSError):
                    self.broken = True
                    raise RuntimeError(
                        f"mc-checker pool worker {w} died during phase "
                        f"{phase!r} (task {task!r})") from None
                received += len(raw)
                status, payload = pickle.loads(raw)
                if status != "ok":
                    self.broken = True
                    raise RuntimeError(
                        f"worker {w} failed in phase {phase!r} "
                        f"(task {task!r}):\n{payload}")
                for idx, value in payload:
                    results[idx] = value
            _count_bytes("parallel_pickled_bytes_total", phase, "result",
                         received)
            return results

    def _check_alive(self, phase: str) -> None:
        if self.broken:
            raise RuntimeError(
                f"worker pool is broken (phase {phase!r}); acquire a "
                "fresh pool")
        for w, proc in enumerate(self._procs):
            if not proc.is_alive():
                self.broken = True
                raise RuntimeError(
                    f"mc-checker pool worker {w} is dead (exit code "
                    f"{proc.exitcode}) entering phase {phase!r}")

    # -- teardown ------------------------------------------------------

    def shutdown(self) -> None:
        """Stop the workers and unlink any leftover segments."""
        with self._lock:
            blob = _pickle(("stop", None))
            for conn in self._conns:
                try:
                    conn.send_bytes(blob)
                except (OSError, ValueError, BrokenPipeError):
                    pass
            for proc in self._procs:
                proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=1.0)
            for conn in self._conns:
                try:
                    conn.close()
                except OSError:
                    pass
            self._unlink_segments()
            self.broken = True


#: process-global pool cache: (jobs, start method) -> pool.  Pools
#: survive across runs — reuse, not re-fork, is the whole point — and
#: are torn down by :func:`shutdown_pools` (registered atexit).
_POOLS: Dict[Tuple[int, str], WorkerPool] = {}


def acquire_pool(jobs: int, method: Optional[str] = None) -> WorkerPool:
    """The process-wide pool for ``jobs`` workers, created on first use
    and reused by every later run that asks for the same shape."""
    method = method or start_method()
    key = (jobs, method)
    pool = _POOLS.get(key)
    if pool is not None and pool.alive():
        obs.count("parallel_pool_reused_total",
                  help="Persistent worker-pool reuses across runs")
        return pool
    if pool is not None:
        pool.shutdown()
    pool = _POOLS[key] = WorkerPool(jobs, method)
    obs.count("parallel_pool_created_total",
              help="Persistent worker-pool creations")
    return pool


def shutdown_pools() -> None:
    """Stop every cached pool (used by tests and registered atexit)."""
    for pool in list(_POOLS.values()):
        pool.shutdown()
    _POOLS.clear()


atexit.register(shutdown_pools)


def pool_map(task, n_items: int, state: Dict[str, Any], jobs: int,
             phase: str = "map") -> list:
    """Run ``task(i)`` for ``i in range(n_items)`` over the persistent
    pool with ``state`` installed (plus the parent's obs flag),
    returning results in item order.

    ``task`` must be registered with ``@_pool_task``; the call reuses
    (or creates) the process-global pool, so back-to-back ``pool_map``
    calls no longer pay a fork per call.  The caller owns the run
    lifecycle — wrap the calls in ``begin_run``/``end_run`` via
    :func:`acquire_pool` when segments or stale state matter.
    """
    name = getattr(task, "_pool_task_name", None)
    if name is None:
        raise ValueError("pool_map task must be registered with "
                         "@_pool_task")
    pool = acquire_pool(resolve_jobs(jobs))
    state = dict(state)
    state["obs"] = obs.is_enabled()
    pool.install(phase, state)
    return pool.run(phase, name, list(range(n_items)))


# ---------------------------------------------------------------- tasks


@_pool_task("echo")
def _echo_task(arg):
    """Liveness probe (tests): returns its argument."""
    return arg


@_pool_task("crash")
def _crash_task(_arg):
    """Crash probe (tests): kills the worker process outright, so the
    parent's broken-pool and segment-cleanup paths can be exercised."""
    os._exit(13)


@_pool_task("scan")
def _scan_task(arg):
    """Preprocess shard: parse one rank's call events, return its
    registry scan and per-class counts (memory events are only *counted*
    — from the v2 footer when the trace is binary — and never decoded
    here).

    ``arg`` is ``(rank, segment_name)``.  When ``segment_name`` is set
    (batch parallel run, columnar control plane) the rank's
    :class:`~repro.core.calltable.CallTable` is published to the named
    shared segment and *no call events cross the pipe* — the parent
    rebuilds the table from the segment and the object stream stays
    worker-side.  When it is ``None`` the call events return pickled,
    as the streaming/incremental pool paths require."""
    rank, segment_name = arg if isinstance(arg, tuple) else (arg, None)
    rec = _task_recorder()
    traces: TraceSet = _WORKER["traces"]
    plane = _WORKER.get("plane")
    if plane is not None:
        # pin this worker to the parent's control plane: the persistent
        # process may have been forked under a different env setting
        os.environ[CONTROL_PLANE_ENV] = plane
    desc = None
    with rec.span("analyzer.worker.scan", rank=rank, pid=os.getpid()):
        with traces.reader(rank) as reader:
            calls, counts = reader.read_calls()
        scan = scan_rank(rank, calls,
                         n_events=counts["call"] + counts["mem"])
        if segment_name is not None and reader.call_table is not None:
            desc, handle = share_table(reader.call_table, segment_name)
            rec.count("parallel_shm_bytes_total", handle.size,
                      phase="preprocess",
                      help="Bytes published to shared MemRows "
                           "segments, by phase")
            handle.close()
            calls = []
    rec.count("parallel_tasks_total", phase="scan")
    return rank, scan, calls, counts, desc, _export(rec)


class _RankView:
    """Single-rank ``PreprocessedTrace`` facade: the full event list for
    one rank, registries delegated to the merged (call-only) trace."""

    def __init__(self, pre: PreprocessedTrace, rank: int, events):
        self._pre = pre
        self.nranks = pre.nranks
        self.events = {rank: events}

    def window(self, win_id: int):
        return self._pre.window(win_id)

    def datatype(self, rank: int, type_id: int):
        return self._pre.datatype(rank, type_id)

    def world_of_comm_rank(self, comm_id: int, comm_rank: int) -> int:
        return self._pre.world_of_comm_rank(comm_id, comm_rank)


@_pool_task("lift")
def _lift_task(arg):
    """Model shard: re-read one rank's trace through the vectorized
    ingest path and lift its accesses against the merged registries and
    a per-rank epoch index.  Under the sweep engine the packed memory
    columns are copied into the named shared segment and only the
    descriptor returns — the rows never cross the pipe."""
    rank, segment_name = arg
    rec = _task_recorder()
    traces: TraceSet = _WORKER["traces"]
    pre: PreprocessedTrace = _WORKER["pre"]
    sweep = _WORKER.get("engine") == "sweep"
    desc = None
    with rec.span("analyzer.worker.lift", rank=rank, pid=os.getpid()):
        with traces.reader(rank) as reader:
            items = list(reader.stream())
        calls = [item for item in items if isinstance(item, CallEvent)]
        view = _RankView(pre, rank, calls)
        epochs = EpochIndex(view, ranks=[rank])
        if sweep:
            blocks = [item for item in items
                      if not isinstance(item, CallEvent)]
            ops, local, rows = lift_rank_sweep(view, epochs, rank, calls,
                                               blocks)
            desc, handle = share_rows(rows, segment_name)
            if handle is not None:
                rec.count("parallel_shm_bytes_total", handle.size,
                          phase="model",
                          help="Bytes published to shared MemRows "
                               "segments, by phase")
                # the copy is complete; the segment stays linked under
                # its name, and this worker re-attaches like any other
                # if a detect task needs the rows later
                handle.close()
        else:
            ops, local = lift_rank_stream(view, epochs, rank, items)
    rec.count("parallel_tasks_total", phase="lift")
    return rank, ops, local, desc, _export(rec)


def _detect_state(rec) -> Dict[str, Any]:
    """This worker's detect-phase state, derived once per install
    generation.  The install payload already carries the parent's
    ``epoch_index``/``regions`` alongside the ops — pickled together, so
    ``op.epoch`` identity survives the pipe and nothing needs
    re-interning or re-deriving here.  What remains worker-side is
    attaching the shared row segments and running the same deterministic
    :func:`build_detect_units` the parent ran (so chunk bounds index the
    identical unit lists without those lists ever being pickled)."""
    gen = _WORKER_GEN[0]
    cached = _DERIVED.get("detect")
    if cached is not None and cached["gen"] == gen:
        return cached
    with rec.span("analyzer.worker.prepare", pid=os.getpid()):
        pre: PreprocessedTrace = _WORKER["pre"]
        engine = _WORKER.get("engine", "sweep")
        epoch_index: EpochIndex = _WORKER["epoch_index"]
        regions: RegionIndex = _WORKER["regions"]
        mems = {int(rank): worker_rows(desc)
                for rank, desc in (_WORKER.get("mems_shm") or {}).items()}
        model = AccessModel(ops=_WORKER["ops"], local=_WORKER["local"],
                            mems=mems)
        lock_index = _LocalLockIndex(epoch_index, pre.nranks)
        intra_units, inter_units = build_detect_units(
            engine, model, epoch_index, regions)
    cached = _DERIVED["detect"] = {
        "gen": gen, "model": model, "pre": pre,
        "intra_units": intra_units, "inter_units": inter_units,
        "lock_index": lock_index,
    }
    return cached


@_pool_task("intra")
def _intra_task(bounds: Tuple[int, int]):
    """Intra-epoch shard: run :func:`check_epoch` (or its sweep
    counterpart) over a contiguous chunk of locally rebuilt epoch
    units."""
    rec = _task_recorder()
    state = _detect_state(rec)
    units = state["intra_units"]
    mems: Dict[int, MemRows] = state["model"].mems
    memory_model = _WORKER["memory_model"]
    sweep = _WORKER.get("engine") == "sweep"
    lo, hi = bounds
    findings: List[ConsistencyError] = []
    with rec.span("analyzer.worker.intra", units=hi - lo, pid=os.getpid()):
        if sweep:
            for epoch, ops, attached, obj_mems, rank, rlo, rhi \
                    in units[lo:hi]:
                rows = mems.get(rank)
                rows = rows.slice(rlo, rhi) if rows is not None else None
                findings.extend(check_epoch_sweep(
                    epoch, ops, attached, obj_mems, rows, memory_model))
        else:
            for epoch, ops, attached, epoch_mems in units[lo:hi]:
                findings.extend(check_epoch(
                    epoch, ops, attached, epoch_mems, memory_model))
    rec.count("parallel_tasks_total", phase="intra")
    return findings, _export(rec)


@_pool_task("inter")
def _inter_task(bounds: Tuple[int, int]):
    """Cross-process shard: run :func:`detect_region` (or its sweep
    counterpart) over a contiguous chunk of locally rebuilt region
    units."""
    rec = _task_recorder()
    state = _detect_state(rec)
    units = state["inter_units"]
    pre = state["pre"]
    lock_index = state["lock_index"]
    mems: Dict[int, MemRows] = state["model"].mems
    oracle = _WORKER["oracle"]
    memory_model = _WORKER["memory_model"]
    sweep = _WORKER.get("engine") == "sweep"
    lo, hi = bounds
    findings: List[ConsistencyError] = []
    with rec.span("analyzer.worker.inter", regions=hi - lo,
                  pid=os.getpid()):
        if sweep:
            for region_ops, region_locals, bounds_by_rank in units[lo:hi]:
                region_mems = {
                    rank: mems[rank].slice(rlo, rhi)
                    for rank, (rlo, rhi) in bounds_by_rank.items()}
                findings.extend(detect_region_sweep(
                    pre, region_ops, region_locals, region_mems, oracle,
                    lock_index, memory_model))
        else:
            for region_ops, region_locals in units[lo:hi]:
                findings.extend(detect_region(
                    pre, region_ops, region_locals, oracle, lock_index,
                    memory_model))
    rec.count("parallel_tasks_total", phase="inter")
    return findings, _export(rec)


# --------------------------------------------------------------- engine


def scan_traceset(pool: WorkerPool, traces: TraceSet,
                  need_calls: bool = True):
    """Parallel preprocess over an acquired pool: scan every rank,
    merge deterministically — the pooled counterpart of
    :func:`~repro.core.preprocess.preprocess_calls_with_counts`
    (identical ``(pre, counts_by_rank)`` result).

    With ``need_calls=False`` under the columnar control plane, call
    events never cross the pipe: each worker publishes its rank's
    :class:`~repro.core.calltable.CallTable` to a shared segment, the
    parent copies the columns out (and unlinks the segment eagerly) and
    attaches them as ``pre.call_tables`` — the parent's event lists stay
    empty and every control-plane consumer runs off the tables.  The
    streaming/incremental pool paths pass ``need_calls=True`` (they lift
    the access model and hash event lines from the parent's events)."""
    plane = control_plane()
    ship = not need_calls and plane == PLANE_COLUMNAR
    args = []
    for rank in range(traces.nranks):
        name = None
        if ship:
            name = pool.new_segment_name(rank)
            pool.expect_segment(name)
        args.append((rank, name))
    pool.install("preprocess", {"traces": traces, "plane": plane})
    results = pool.run("preprocess", "scan", args)
    scans, call_events, counts, tables = [], {}, {}, {}
    for rank, scan, calls, rank_counts, desc, export in results:
        scans.append(scan)
        call_events[rank] = calls
        counts[rank] = rank_counts
        if desc is not None:
            tables[rank] = attach_table(desc)
            # the columns were copied out; drop the name right away so
            # the segment never outlives the phase
            pool.release_segment(desc["name"])
        absorb_export(export)
    pre = PreprocessedTrace(call_events, scans=scans)
    if ship and len(tables) == pre.nranks:
        pre.call_tables = tables
    return pre, counts


class ParallelEngine:
    """Drives the sharded phases of one analysis run over one persistent
    :class:`WorkerPool` (acquired at construction, reset at
    :meth:`finish`).  The pool survives the run — the next analysis
    reuses the same worker processes."""

    def __init__(self, traces: TraceSet, jobs: int,
                 memory_model: str = "separate", engine: str = "sweep",
                 pool: Optional[WorkerPool] = None):
        self.traces = traces
        self.jobs = resolve_jobs(jobs)
        self.memory_model = memory_model
        self.engine = engine
        #: total trace events (calls + loads/stores) seen by the scan
        #: phase; the parent's event dict holds call events only
        self.total_events = 0
        self.pool = pool if pool is not None else acquire_pool(self.jobs)
        self.pool.begin_run()
        #: rank -> share descriptor of the lifted MemRows segments
        self._mem_descs: Dict[int, dict] = {}
        #: parent-side copies of the detect unit lists (for counts and
        #: chunking; workers rebuild the same lists locally)
        self._units = None

    def finish(self) -> None:
        """End the run: reset workers, unlink the run's segments.  Any
        attached ``model.mems`` views the caller kept stay readable —
        unlink removes the name, not live mappings."""
        self.pool.end_run()

    def preprocess(self) -> PreprocessedTrace:
        """Scan every rank in parallel; merge scans deterministically.

        Under the columnar control plane the batch pipeline never needs
        the parent-side event objects — matching, clocks, epochs and
        regions run off ``pre.call_tables`` and the lift workers re-read
        their events from disk — so the scan ships tables over shared
        segments instead of pickling call streams."""
        pre, _counts = scan_traceset(self.pool, self.traces,
                                     need_calls=False)
        self.total_events = pre.total_events
        return pre

    def build_model(self, pre: PreprocessedTrace,
                    epoch_index: EpochIndex) -> AccessModel:
        """Lift every rank in parallel; concatenate in rank order.

        Sweep lifts publish each rank's memory columns to a shared
        segment; the parent attaches them zero-copy, so the model's
        ``mems`` are views into the same physical pages the detect
        workers will read."""
        pool = self.pool
        args = []
        for rank in range(pre.nranks):
            name = None
            if self.engine == "sweep":
                name = pool.new_segment_name(rank)
                pool.expect_segment(name)
            args.append((rank, name))
        # lift workers read their events from disk and only resolve
        # registries through ``pre`` — ship the registries-only view so
        # the install pickle stays small at any trace size
        pool.install("model", {"pre": pre.registry_view(),
                               "engine": self.engine})
        results = pool.run("model", "lift", args)
        # worker ops carry pickled *copies* of their per-rank epochs;
        # re-intern them onto the parent's canonical index so the
        # identity-keyed bucketing downstream sees one object per epoch
        canonical = {(e.rank, e.win_id, e.kind, e.open_seq): e
                     for e in epoch_index.epochs}
        ops, local, mems = [], [], {}
        for rank, rank_ops, rank_local, desc, export in results:
            for op in rank_ops:
                if op.epoch is not None:
                    key = (op.epoch.rank, op.epoch.win_id, op.epoch.kind,
                           op.epoch.open_seq)
                    op.epoch = canonical[key]
            ops.extend(rank_ops)
            local.extend(rank_local)
            if desc is not None:
                rows, handle = attach_rows(desc)
                if handle is not None:
                    pool.adopt_segment(desc["name"], handle)
                mems[rank] = rows
                self._mem_descs[rank] = desc
            absorb_export(export)
        return AccessModel(ops=ops, local=local, mems=mems)

    def _ensure_detect(self, model: AccessModel, epoch_index: EpochIndex,
                       regions: RegionIndex, oracle) -> None:
        """One detect install for both detector phases: ops/locals plus
        the parent's epoch/region indexes in a single payload — pickle
        preserves object identity *within* one payload, so every
        ``op.epoch`` lands in the worker still ``is``-identical to its
        entry in ``epoch_index.epochs`` and the identity-keyed bucketing
        needs no re-intern pass.  Memory rows travel as segment
        descriptors only.  Unit lists are *not* shipped — each side runs
        the same deterministic :func:`build_detect_units`."""
        if self._units is not None:
            return
        self._units = build_detect_units(self.engine, model, epoch_index,
                                         regions)
        self.pool.install("detect", {
            "ops": model.ops, "local": model.local,
            "epoch_index": epoch_index, "regions": regions,
            "oracle": oracle, "memory_model": self.memory_model,
            "engine": self.engine, "mems_shm": self._mem_descs,
        })

    def detect_intra(self, model: AccessModel, epoch_index: EpochIndex,
                     regions: RegionIndex,
                     oracle) -> List[ConsistencyError]:
        """Fan :func:`check_epoch` out over chunks of epoch units."""
        self._ensure_detect(model, epoch_index, regions, oracle)
        intra_units, _inter_units = self._units
        if not intra_units:
            return []
        results = self.pool.run(
            "intra", "intra", _chunk_bounds(len(intra_units), self.jobs))
        findings: List[ConsistencyError] = []
        for chunk_findings, export in results:
            findings.extend(chunk_findings)
            absorb_export(export)
        return findings

    def detect_inter(self) -> List[ConsistencyError]:
        """Fan :func:`detect_region` out over chunks of region units
        (state was installed by :meth:`detect_intra`)."""
        if self._units is None:
            raise RuntimeError("detect_intra must run before detect_inter")
        _intra_units, inter_units = self._units
        if not inter_units:
            return []
        results = self.pool.run(
            "inter", "inter", _chunk_bounds(len(inter_units), self.jobs))
        findings: List[ConsistencyError] = []
        for chunk_findings, export in results:
            findings.extend(chunk_findings)
            absorb_export(export)
        return findings
