"""Sharded parallel execution engine behind ``MCChecker(jobs=N)``.

The serial DN-Analyzer decomposes along two natural shard axes:

* **rank shards** — trace parsing, registry scanning, and access-model
  lifting touch one rank's events at a time (plus the merged, read-only
  registries), so each rank is an independent unit of work;
* **region/epoch shards** — cross-process detection never crosses a
  concurrent-region boundary (regions are separated by global
  synchronization, so cross-region pairs are ordered by construction)
  and intra-epoch detection never crosses an epoch, so contiguous chunks
  of regions/epochs are independent units of work.

Each axis runs over a ``multiprocessing`` pool; shard results are merged
*in shard order*, which makes the parallel pipeline's report identical
to the serial one: every list the serial code builds is reassembled in
exactly the iteration order the serial code would have used (ranks
ascending, epochs in index order, regions ascending) and deduplication
happens once, in the parent, just as in ``MCChecker``.

Worker payloads are kept deliberately small:

* preprocess workers return a per-rank :class:`RankScan` plus the rank's
  *call* events only — everything downstream except the access model is
  derivable from call events alone (the observation the streaming
  checker exploits); the memory events, which dominate trace volume, are
  re-read from disk by the model worker for the same rank and never
  cross a process boundary;
* model workers return the lifted per-rank ops/locals; the parent
  re-interns their epoch references onto the canonical
  :class:`EpochIndex` (pickling copied them) so identity-keyed epoch
  bucketing keeps working;
* detection workers inherit the parent state at fork time (or receive
  it once per worker through the spawn initializer) and ship back only
  findings.

Observability: when the parent recorder is enabled, each worker task
runs under its own :class:`~repro.obs.recorder.Recorder` and returns its
``export_state()`` beside the result; the parent ``absorb``s these, so
worker spans and counters land in the parent's exporters.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.core.clocks import ConcurrencyOracle
from repro.core.diagnostics import ConsistencyError
from repro.core.epochs import EpochIndex
from repro.core.engine import (
    bucket_by_epoch_sweep, bucket_by_region_sweep, check_epoch_sweep,
    detect_region_sweep,
)
from repro.core.inter import _LocalLockIndex, bucket_by_region, detect_region
from repro.core.intra import bucket_by_epoch, check_epoch
from repro.core.model import (
    AccessModel, MemRows, lift_rank_stream, lift_rank_sweep,
)
from repro.core.preprocess import PreprocessedTrace, scan_rank
from repro.core.regions import RegionIndex
from repro.obs.recorder import NullRecorder, Recorder
from repro.profiler.events import CallEvent
from repro.profiler.tracer import TraceSet


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0``/``1`` mean serial,
    negative means one worker per CPU."""
    if not jobs or jobs == 1:
        return 1
    if jobs < 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def _chunk_bounds(n: int, jobs: int, per_job: int = 4) -> List[Tuple[int, int]]:
    """Contiguous ``(lo, hi)`` chunks over ``n`` units: about ``per_job``
    chunks per worker for load balance, while contiguity keeps the
    in-order merge trivial."""
    nchunks = min(n, jobs * per_job)
    step = -(-n // nchunks)
    return [(lo, min(lo + step, n)) for lo in range(0, n, step)]


#: worker-process state, installed by the pool initializer.  Under the
#: fork start method the state bytes are inherited from the parent
#: address space; under spawn they are pickled once per worker.
_WORKER: Dict[str, Any] = {}


def _init_worker(state: Dict[str, Any]) -> None:
    _WORKER.clear()
    _WORKER.update(state)


def _task_recorder() -> NullRecorder:
    """Task-local recorder: storing when the parent wants worker obs."""
    return Recorder() if _WORKER.get("obs") else NullRecorder()


def _export(rec: NullRecorder) -> Optional[dict]:
    return rec.export_state() if rec.enabled else None


def absorb_export(export: Optional[dict]) -> None:
    """Fold a worker recorder's exported state into the parent recorder."""
    if export is not None:
        obs.get_recorder().absorb(export)


def pool_map(task, n_items: int, state: Dict[str, Any], jobs: int) -> list:
    """Run ``task(i)`` for ``i in range(n_items)`` over a fresh worker
    pool with ``state`` installed (plus the parent's obs flag), returning
    results in item order — the one-shot counterpart of
    :class:`ParallelEngine`'s per-phase pools."""
    methods = mp.get_all_start_methods()
    ctx = (mp.get_context("fork") if "fork" in methods
           else mp.get_context())
    state = dict(state)
    state["obs"] = obs.is_enabled()
    workers = max(1, min(jobs, n_items))
    with ctx.Pool(workers, initializer=_init_worker,
                  initargs=(state,)) as pool:
        return pool.map(task, range(n_items))


# ---------------------------------------------------------------- tasks


def _scan_task(rank: int):
    """Preprocess shard: parse one rank's call events, return its
    registry scan (memory events are only *counted* — from the v2 footer
    when the trace is binary — and never decoded here)."""
    rec = _task_recorder()
    traces: TraceSet = _WORKER["traces"]
    with rec.span("analyzer.worker.scan", rank=rank, pid=os.getpid()):
        with traces.reader(rank) as reader:
            calls, counts = reader.read_calls()
        scan = scan_rank(rank, calls,
                         n_events=counts["call"] + counts["mem"])
    rec.count("parallel_tasks_total", phase="scan")
    return rank, scan, calls, _export(rec)


class _RankView:
    """Single-rank ``PreprocessedTrace`` facade: the full event list for
    one rank, registries delegated to the merged (call-only) trace."""

    def __init__(self, pre: PreprocessedTrace, rank: int, events):
        self._pre = pre
        self.nranks = pre.nranks
        self.events = {rank: events}

    def window(self, win_id: int):
        return self._pre.window(win_id)

    def datatype(self, rank: int, type_id: int):
        return self._pre.datatype(rank, type_id)

    def world_of_comm_rank(self, comm_id: int, comm_rank: int) -> int:
        return self._pre.world_of_comm_rank(comm_id, comm_rank)


def _lift_task(rank: int):
    """Model shard: re-read one rank's trace through the vectorized
    ingest path and lift its accesses against the merged registries and
    a per-rank epoch index.  Memory events stay packed as
    :class:`~repro.profiler.tracer.MemBlock` columns until they become
    :class:`~repro.core.model.LocalAccess` views."""
    rec = _task_recorder()
    traces: TraceSet = _WORKER["traces"]
    pre: PreprocessedTrace = _WORKER["pre"]
    sweep = _WORKER.get("engine") == "sweep"
    with rec.span("analyzer.worker.lift", rank=rank, pid=os.getpid()):
        with traces.reader(rank) as reader:
            items = list(reader.stream())
        calls = [item for item in items if isinstance(item, CallEvent)]
        view = _RankView(pre, rank, calls)
        epochs = EpochIndex(view, ranks=[rank])
        if sweep:
            blocks = [item for item in items
                      if not isinstance(item, CallEvent)]
            ops, local, rows = lift_rank_sweep(view, epochs, rank, calls,
                                               blocks)
        else:
            ops, local = lift_rank_stream(view, epochs, rank, items)
            rows = None
    rec.count("parallel_tasks_total", phase="lift")
    return rank, ops, local, rows, _export(rec)


def _intra_task(bounds: Tuple[int, int]):
    """Intra-epoch shard: run :func:`check_epoch` (or its sweep
    counterpart) over a contiguous chunk of epoch units."""
    rec = _task_recorder()
    units = _WORKER["intra_units"]
    memory_model = _WORKER["memory_model"]
    sweep = _WORKER.get("engine") == "sweep"
    mems: Dict[int, MemRows] = _WORKER.get("mems") or {}
    lo, hi = bounds
    findings: List[ConsistencyError] = []
    with rec.span("analyzer.worker.intra", units=hi - lo, pid=os.getpid()):
        if sweep:
            for epoch, ops, attached, obj_mems, rank, rlo, rhi \
                    in units[lo:hi]:
                rows = mems.get(rank)
                rows = rows.slice(rlo, rhi) if rows is not None else None
                findings.extend(check_epoch_sweep(
                    epoch, ops, attached, obj_mems, rows, memory_model))
        else:
            for epoch, ops, attached, epoch_mems in units[lo:hi]:
                findings.extend(check_epoch(
                    epoch, ops, attached, epoch_mems, memory_model))
    rec.count("parallel_tasks_total", phase="intra")
    return findings, _export(rec)


def _inter_task(bounds: Tuple[int, int]):
    """Cross-process shard: run :func:`detect_region` (or its sweep
    counterpart) over a contiguous chunk of concurrent-region units."""
    rec = _task_recorder()
    pre = _WORKER["pre"]
    oracle = _WORKER["oracle"]
    lock_index = _WORKER["lock_index"]
    memory_model = _WORKER["memory_model"]
    units = _WORKER["inter_units"]
    sweep = _WORKER.get("engine") == "sweep"
    mems: Dict[int, MemRows] = _WORKER.get("mems") or {}
    lo, hi = bounds
    findings: List[ConsistencyError] = []
    with rec.span("analyzer.worker.inter", regions=hi - lo,
                  pid=os.getpid()):
        if sweep:
            for region_ops, region_locals, bounds_by_rank in units[lo:hi]:
                region_mems = {
                    rank: mems[rank].slice(rlo, rhi)
                    for rank, (rlo, rhi) in bounds_by_rank.items()}
                findings.extend(detect_region_sweep(
                    pre, region_ops, region_locals, region_mems, oracle,
                    lock_index, memory_model))
        else:
            for region_ops, region_locals in units[lo:hi]:
                findings.extend(detect_region(
                    pre, region_ops, region_locals, oracle, lock_index,
                    memory_model))
    rec.count("parallel_tasks_total", phase="inter")
    return findings, _export(rec)


# --------------------------------------------------------------- engine


class ParallelEngine:
    """Drives the sharded phases of one analysis run.

    One pool is created per parallelized phase, *after* the parent state
    that phase's workers need exists — under fork the workers then
    inherit it copy-on-write and only the small shard results are ever
    pickled.
    """

    def __init__(self, traces: TraceSet, jobs: int,
                 memory_model: str = "separate", engine: str = "sweep"):
        self.traces = traces
        self.jobs = resolve_jobs(jobs)
        self.memory_model = memory_model
        self.engine = engine
        #: total trace events (calls + loads/stores) seen by the scan
        #: phase; the parent's event dict holds call events only
        self.total_events = 0
        methods = mp.get_all_start_methods()
        self._ctx = (mp.get_context("fork") if "fork" in methods
                     else mp.get_context())

    def _pool(self, state: Dict[str, Any]):
        state = dict(state)
        state["obs"] = obs.is_enabled()
        return self._ctx.Pool(self.jobs, initializer=_init_worker,
                              initargs=(state,))

    def _absorb(self, export: Optional[dict]) -> None:
        if export is not None:
            obs.get_recorder().absorb(export)

    def preprocess(self) -> PreprocessedTrace:
        """Scan every rank in parallel; merge scans deterministically."""
        with self._pool({"traces": self.traces}) as pool:
            results = pool.map(_scan_task, range(self.traces.nranks))
        scans, call_events = [], {}
        for rank, scan, calls, export in results:
            scans.append(scan)
            call_events[rank] = calls
            self._absorb(export)
        self.total_events = sum(scan.n_events for scan in scans)
        return PreprocessedTrace(call_events, scans=scans)

    def build_model(self, pre: PreprocessedTrace,
                    epoch_index: EpochIndex) -> AccessModel:
        """Lift every rank in parallel; concatenate in rank order."""
        state = {"traces": self.traces, "pre": pre, "engine": self.engine}
        with self._pool(state) as pool:
            results = pool.map(_lift_task, range(pre.nranks))
        # worker ops carry pickled *copies* of their per-rank epochs;
        # re-intern them onto the parent's canonical index so the
        # identity-keyed bucketing downstream sees one object per epoch
        canonical = {(e.rank, e.win_id, e.kind, e.open_seq): e
                     for e in epoch_index.epochs}
        ops, local, mems = [], [], {}
        for rank, rank_ops, rank_local, rank_rows, export in results:
            for op in rank_ops:
                if op.epoch is not None:
                    key = (op.epoch.rank, op.epoch.win_id, op.epoch.kind,
                           op.epoch.open_seq)
                    op.epoch = canonical[key]
            ops.extend(rank_ops)
            local.extend(rank_local)
            if rank_rows is not None:
                mems[rank] = rank_rows
            self._absorb(export)
        return AccessModel(ops=ops, local=local, mems=mems)

    def detect_intra(self, model: AccessModel,
                     epoch_index: EpochIndex) -> List[ConsistencyError]:
        """Fan :func:`check_epoch` out over chunks of epoch units."""
        if self.engine == "sweep":
            units = bucket_by_epoch_sweep(model, epoch_index)
        else:
            units = bucket_by_epoch(model, epoch_index)
        if not units:
            return []
        state = {"intra_units": units, "memory_model": self.memory_model,
                 "engine": self.engine, "mems": model.mems}
        with self._pool(state) as pool:
            results = pool.map(_intra_task,
                               _chunk_bounds(len(units), self.jobs))
        findings: List[ConsistencyError] = []
        for chunk_findings, export in results:
            findings.extend(chunk_findings)
            self._absorb(export)
        return findings

    def detect_inter(self, pre: PreprocessedTrace, model: AccessModel,
                     regions: RegionIndex, oracle: ConcurrencyOracle,
                     epoch_index: EpochIndex) -> List[ConsistencyError]:
        """Fan :func:`detect_region` out over chunks of region units."""
        lock_index = _LocalLockIndex(epoch_index, pre.nranks)
        if self.engine == "sweep":
            units = bucket_by_region_sweep(model, regions)
        else:
            ops_by_region, locals_by_region = bucket_by_region(model,
                                                               regions)
            units = []
            for region in regions:
                region_ops = ops_by_region.get(region.index, [])
                if not region_ops:
                    continue
                units.append((region_ops,
                              locals_by_region.get(region.index, [])))
        if not units:
            return []
        state = {"pre": pre, "oracle": oracle, "lock_index": lock_index,
                 "inter_units": units, "memory_model": self.memory_model,
                 "engine": self.engine, "mems": model.mems}
        with self._pool(state) as pool:
            results = pool.map(_inter_task,
                               _chunk_bounds(len(units), self.jobs))
        findings: List[ConsistencyError] = []
        for chunk_findings, export in results:
            findings.extend(chunk_findings)
            self._absorb(export)
        return findings
