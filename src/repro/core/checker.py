"""MCChecker — the end-to-end pipeline of Figure 5.

``traces -> preprocess -> match synchronization -> happens-before oracle ->
epochs -> access model -> concurrent regions -> intra-epoch + cross-process
detection -> deduplicated report``.

Two entry points:

* :func:`check_traces` — analyze an existing
  :class:`~repro.profiler.tracer.TraceSet` (offline, like the paper's
  DN-Analyzer);
* :func:`check_app` — profile an application on the simulated runtime and
  analyze the result in one call (the ``mc-checker run`` workflow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro import obs
from repro.core.clocks import ConcurrencyOracle
from repro.core.config import CheckConfig, _UNSET, coerce_config
from repro.core.diagnostics import (
    SEVERITY_ERROR, SEVERITY_WARNING, ConsistencyError, annotate_context,
    dedupe, sort_findings,
)
from repro.core.engine import (
    detect_cross_process_sweep, detect_intra_epoch_sweep, resolve_engine,
)
from repro.core.epochs import EpochIndex
from repro.core.inter import detect_cross_process, detect_cross_process_naive
from repro.core.intra import detect_intra_epoch
from repro.core.matching import match_synchronization
from repro.core.model import build_access_model_stream, build_access_model_sweep
from repro.core.parallel import ParallelEngine, resolve_jobs
from repro.core.preprocess import PreprocessedTrace, preprocess_calls
from repro.core.regions import RegionIndex
from repro.profiler.tracer import TraceSet


@dataclass
class CheckStats:
    """Pipeline statistics (sizes and per-phase wall-clock seconds)."""

    nranks: int = 0
    events: int = 0
    rma_ops: int = 0
    local_accesses: int = 0
    sync_matches: int = 0
    regions: int = 0
    epochs: int = 0
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())


@dataclass
class CheckReport:
    """The outcome of one MC-Checker analysis."""

    errors: List[ConsistencyError]
    warnings: List[ConsistencyError]
    stats: CheckStats

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    @property
    def findings(self) -> List[ConsistencyError]:
        return self.errors + self.warnings

    def summary(self) -> str:
        return (f"MC-Checker: {len(self.errors)} error(s), "
                f"{len(self.warnings)} warning(s) across "
                f"{self.stats.nranks} ranks "
                f"({self.stats.events} events, {self.stats.rma_ops} RMA ops, "
                f"{self.stats.regions} concurrent regions)")

    def format(self) -> str:
        lines = [self.summary()]
        for finding in self.findings:
            lines.append("")
            lines.append(finding.format())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready representation of the whole report."""
        return {
            "errors": [f.to_dict() for f in self.errors],
            "warnings": [f.to_dict() for f in self.warnings],
            "stats": {
                "nranks": self.stats.nranks,
                "events": self.stats.events,
                "rma_ops": self.stats.rma_ops,
                "local_accesses": self.stats.local_accesses,
                "sync_matches": self.stats.sync_matches,
                "regions": self.stats.regions,
                "epochs": self.stats.epochs,
                "phase_seconds": dict(self.stats.phase_seconds),
            },
        }


class MCChecker:
    """Configurable DN-Analyzer pipeline over one trace set."""

    def __init__(self, traces: TraceSet,
                 config: Optional[CheckConfig] = None, *,
                 naive_inter=_UNSET, memory_model=_UNSET, jobs=_UNSET,
                 engine=_UNSET):
        self.config = coerce_config(config, "MCChecker",
                                    naive_inter=naive_inter,
                                    memory_model=memory_model,
                                    jobs=jobs, engine=engine)
        self.traces = traces
        self.naive_inter = self.config.naive_inter
        self.memory_model = self.config.memory_model
        self.jobs = resolve_jobs(self.config.jobs)
        # the naive strawman iterates the access model's objects directly,
        # so it implies the object-building pairwise pipeline
        self.engine = ("pairwise" if self.naive_inter
                       else resolve_engine(self.config.engine))
        # populated by run(); kept public for tests and the CLI
        self.pre: Optional[PreprocessedTrace] = None
        self.matches = None
        self.oracle: Optional[ConcurrencyOracle] = None
        self.epoch_index: Optional[EpochIndex] = None
        self.model = None
        self.regions: Optional[RegionIndex] = None

    #: pipeline phases in execution order (span names are
    #: ``analyzer.<phase>``; keys of ``CheckStats.phase_seconds``)
    PHASES = ("preprocess", "matching", "clocks", "epochs", "model",
              "regions", "intra", "inter")

    def run(self) -> CheckReport:
        with obs.span("analyzer.run",
                      memory_model=self.memory_model) as run_span:
            report = self._run_phases()
        publish_report_obs(report, run_span.duration)
        return report

    def _run_phases(self) -> CheckReport:
        stats = CheckStats()
        timings = stats.phase_seconds
        rec = obs.get_recorder()

        def timed(name: str, fn: Callable[[], Any], **attrs) -> Any:
            # one obs span per phase; the duration folds back into
            # CheckStats.phase_seconds whether or not it was recorded
            with rec.span(f"analyzer.{name}", **attrs) as sp:
                result = fn()
            timings[name] = timings.get(name, 0.0) + sp.duration
            return result

        engine: Optional[ParallelEngine] = None
        if self.jobs > 1:
            # the engine acquires the process-global persistent pool;
            # finish() (in the finally below) resets it and unlinks the
            # run's shared segments, while the pool itself survives for
            # the next run to reuse
            engine = ParallelEngine(self.traces, jobs=self.jobs,
                                    memory_model=self.memory_model,
                                    engine=self.engine)
        try:
            return self._run_detect(stats, timed, engine)
        finally:
            if engine is not None:
                engine.finish()

    def _run_detect(self, stats: CheckStats, timed,
                    engine: Optional[ParallelEngine]) -> CheckReport:
        if engine is not None:
            self.pre = timed("preprocess", engine.preprocess,
                             jobs=self.jobs)
        else:
            self.pre = timed("preprocess",
                             lambda: preprocess_calls(self.traces))
        pre = self.pre
        stats.nranks = pre.nranks
        # both paths keep only call events in the parent; the per-rank
        # scans carry the full trace-event totals (calls + loads/stores)
        stats.events = pre.total_events

        self.matches = timed("matching",
                             lambda: match_synchronization(pre),
                             nranks=pre.nranks, events=stats.events)
        stats.sync_matches = len(self.matches)

        self.oracle = timed("clocks",
                            lambda: ConcurrencyOracle(pre, self.matches))
        self.epoch_index = timed("epochs", lambda: EpochIndex(pre))
        stats.epochs = len(self.epoch_index.epochs)
        publish_control_plane_obs(pre, stats.phase_seconds)

        if engine is not None:
            self.model = timed(
                "model",
                lambda: engine.build_model(pre, self.epoch_index),
                jobs=self.jobs)
        elif self.engine == "sweep":
            self.model = timed(
                "model",
                lambda: build_access_model_sweep(pre, self.epoch_index,
                                                 self.traces))
        else:
            self.model = timed(
                "model",
                lambda: build_access_model_stream(pre, self.epoch_index,
                                                  self.traces))
        stats.rma_ops = len(self.model.ops)
        stats.local_accesses = self.model.total_local_accesses

        self.regions = timed("regions",
                             lambda: RegionIndex(pre, self.matches))
        stats.regions = len(self.regions)

        if engine is not None:
            findings = timed("intra", lambda: engine.detect_intra(
                self.model, self.epoch_index, self.regions,
                self.oracle), jobs=self.jobs)
        elif self.engine == "sweep":
            findings = timed("intra", lambda: detect_intra_epoch_sweep(
                self.model, self.epoch_index,
                memory_model=self.memory_model))
        else:
            findings = timed("intra", lambda: detect_intra_epoch(
                self.model, self.epoch_index,
                memory_model=self.memory_model))
        if engine is not None and not self.naive_inter:
            findings += timed("inter", engine.detect_inter,
                              jobs=self.jobs)
        elif self.engine == "sweep":
            findings += timed("inter", lambda: detect_cross_process_sweep(
                pre, self.model, self.regions, self.oracle,
                self.epoch_index, memory_model=self.memory_model))
        else:
            # the combinatorial strawman stays serial: it exists for the
            # ablation benchmark, not for throughput
            inter_fn = (detect_cross_process_naive if self.naive_inter
                        else detect_cross_process)
            findings += timed("inter", lambda: inter_fn(
                pre, self.model, self.regions, self.oracle,
                self.epoch_index, memory_model=self.memory_model),
                naive=self.naive_inter)

        findings = dedupe(sort_findings(findings))
        annotate_context(
            findings, engine=self.engine, jobs=self.jobs,
            mode="parallel" if engine is not None else "batch",
            cache="none")
        errors = [f for f in findings if f.severity == SEVERITY_ERROR]
        warnings = [f for f in findings if f.severity == SEVERITY_WARNING]
        return CheckReport(errors=errors, warnings=warnings, stats=stats)

#: the phase group the columnar control plane accelerates (the data
#: plane is model + intra + inter; regions is noise-level either way)
CONTROL_PHASES = ("preprocess", "matching", "clocks", "epochs")


def publish_control_plane_obs(pre: PreprocessedTrace,
                              phase_seconds: Dict[str, float]) -> None:
    """Publish control-plane ingest metrics: how many call events the
    active plane consumed and the rate over the control phase group.
    Shared by the batch, streaming, and incremental routes."""
    rec = obs.get_recorder()
    if not rec.enabled:
        return
    from repro.core.calltable import control_plane, total_calls
    plane = control_plane()
    calls = total_calls(pre)
    rec.count("control_calls_ingested_total", calls, plane=plane,
              help="Call events ingested by the control plane")
    seconds = sum(phase_seconds.get(p, 0.0) for p in CONTROL_PHASES)
    if seconds > 0:
        rec.gauge("control_calls_per_second", calls / seconds,
                  plane=plane,
                  help="Control-plane ingest rate over the "
                       "preprocess+matching+clocks+epochs group")


def publish_report_obs(report: CheckReport, elapsed: float) -> None:
    """Publish one finished report's metrics (shared by every analysis
    mode: batch, parallel, streaming, incremental)."""
    rec = obs.get_recorder()
    if not rec.enabled:
        return
    stats = report.stats
    rec.count("analyzer_events_total", stats.events,
              help="Trace events consumed by DN-Analyzer")
    rec.count("analyzer_rma_ops_total", stats.rma_ops,
              help="RMA operations lifted into the access model")
    rec.count("analyzer_local_accesses_total", stats.local_accesses,
              help="Local accesses lifted into the access model")
    rec.count("analyzer_findings_total", len(report.errors),
              severity="error", help="Deduplicated findings")
    rec.count("analyzer_findings_total", len(report.warnings),
              severity="warning", help="Deduplicated findings")
    rec.gauge("analyzer_regions", stats.regions,
              help="Concurrent regions of the last analysis")
    rec.gauge("analyzer_epochs", stats.epochs,
              help="Epochs of the last analysis")
    rec.gauge("analyzer_sync_matches", stats.sync_matches,
              help="Synchronization matches of the last analysis")
    for phase, seconds in stats.phase_seconds.items():
        rec.observe("analyzer_phase_seconds", seconds, phase=phase,
                    help="DN-Analyzer per-phase wall-clock seconds")
    if elapsed > 0:
        rec.gauge("analyzer_events_per_second", stats.events / elapsed,
                  help="Events analyzed per second, last analysis")


def _check_streaming(traces: TraceSet, config: CheckConfig) -> CheckReport:
    """Streaming route: bounded-memory pipeline, full CheckReport (the
    control pass knows every count the batch pipeline reports)."""
    from repro.core.streaming import check_streaming

    with obs.span("analyzer.run", memory_model=config.memory_model,
                  streaming=True) as run_span:
        findings, checker = check_streaming(
            traces, memory_model=config.memory_model,
            engine=config.engine)
        annotate_context(findings, engine=config.engine, jobs=1,
                         mode="streaming", cache="none")
        control = checker.control
        stats = CheckStats(
            nranks=control.pre.nranks,
            events=control.pre.total_events,
            rma_ops=len(control.call_model.ops),
            local_accesses=(len(control.call_model.local)
                            + control.total_mem_events),
            sync_matches=len(control.matches),
            regions=len(control.regions),
            epochs=len(control.epochs.epochs))
        publish_control_plane_obs(control.pre, stats.phase_seconds)
        report = CheckReport(
            errors=[f for f in findings
                    if f.severity == SEVERITY_ERROR],
            warnings=[f for f in findings
                      if f.severity == SEVERITY_WARNING],
            stats=stats)
    publish_report_obs(report, run_span.duration)
    return report


def check_traces(traces: TraceSet,
                 config: Optional[CheckConfig] = None, *,
                 naive_inter=_UNSET, memory_model=_UNSET, jobs=_UNSET,
                 engine=_UNSET) -> CheckReport:
    """Analyze an existing trace set.

    Routes on the config: ``incremental`` → the cached checker,
    ``streaming`` → the bounded-memory pipeline, else the batch
    :class:`MCChecker` (serial or sharded per ``jobs``)."""
    cfg = coerce_config(config, "check_traces", naive_inter=naive_inter,
                        memory_model=memory_model, jobs=jobs,
                        engine=engine)
    if cfg.incremental:
        # imported lazily: incremental imports this module for
        # CheckReport/CheckStats
        from repro.core.incremental import check_incremental
        return check_incremental(traces, cfg)
    if cfg.streaming:
        return _check_streaming(traces, cfg)
    return MCChecker(traces, cfg).run()


def check_app(app: Callable, nranks: int,
              params: Optional[Dict[str, Any]] = None,
              trace_dir: Optional[str] = None,
              scope: str = "report",
              delivery: str = "random",
              sched_policy: str = "round_robin",
              seed: int = 0,
              config: Optional[CheckConfig] = None,
              trace_format: str = "text", *,
              memory_model=_UNSET, engine=_UNSET) -> CheckReport:
    """Profile ``app`` on the simulated runtime, then analyze the traces."""
    from repro.profiler.session import profile_run

    cfg = coerce_config(config, "check_app", memory_model=memory_model,
                        engine=engine)
    run = profile_run(app, nranks, trace_dir=trace_dir, params=params,
                      scope=scope, delivery=delivery,
                      sched_policy=sched_policy, seed=seed,
                      trace_format=trace_format)
    return check_traces(run.traces, cfg)
