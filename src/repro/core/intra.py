"""Within-epoch conflict detection (section IV-C-3, Figure 2a).

Operations inside one epoch at one rank are mutually unordered (they are
nonblocking and complete only at the epoch-closing synchronization — or at
an MPI-3 flush), so the paper checks all of them pairwise against the
memory model ruleset.  Two access populations matter here:

* the *local buffers attached to the epoch's RMA calls* — a Put or
  Accumulate reads its origin at an undefined instant before completion, a
  Get (and the result side of MPI-3 fetching atomics) writes its local
  buffer at an undefined instant — so until completion those buffers are
  off limits for conflicting local accesses;
* the *target intervals* of same-epoch RMA calls to the same target, which
  fall under Table I (e.g. two overlapping Puts in one epoch are
  undefined).

Conflicts involving the *window* memory at the target (including a rank
targeting itself) are the cross-process detector's job.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.clocks import Span
from repro.core.compat import accumulate_exception, compat_verdict
from repro.core.diagnostics import (
    INTRA_EPOCH, SEVERITY_ERROR, AccessDesc, ConsistencyError,
)
from repro.core.epochs import Epoch, EpochIndex
from repro.core.model import AccessModel, LocalAccess, RMAOpView


def _desc_op(op: RMAOpView, origin_side: bool) -> AccessDesc:
    fn = op.fn or {"put": "Put", "get": "Get", "acc": "Accumulate"}[op.kind]
    return AccessDesc(
        rank=op.rank, kind=op.kind, fn=fn, var=op.origin_var, loc=op.loc,
        intervals=op.origin_intervals if origin_side else op.target_intervals,
        seq=op.seq)


def _desc_local(la: LocalAccess) -> AccessDesc:
    return AccessDesc(rank=la.rank, kind=la.access, fn=la.fn, var=la.var,
                      loc=la.loc, intervals=la.intervals, seq=la.seq)


def _spans_unordered(a: Span, b: Span) -> bool:
    """Same-rank span concurrency (consistency order only)."""
    return not (a.end_seq <= b.start_seq or b.end_seq <= a.start_seq)


def _span_ref(span: Span) -> list:
    """Trace reference of an influence span: ``[rank, start, end]`` in
    trace sequence numbers (the record indices of the rank's trace)."""
    return [span.rank, span.start_seq, span.end_seq]


def _epoch_prov(epoch: Epoch) -> dict:
    return {"rank": epoch.rank, "win": epoch.win_id, "kind": epoch.kind,
            "open_seq": epoch.open_seq, "close_seq": epoch.close_seq}


#: one epoch's worth of intra-epoch detection work
EpochUnit = Tuple[Epoch, List[RMAOpView], List[LocalAccess],
                  List[LocalAccess]]


def bucket_by_epoch(model: AccessModel,
                    epoch_index: EpochIndex) -> List[EpochUnit]:
    """Per-epoch work units ``(epoch, ops, attached, mems)``.

    Units come out in ``epoch_index`` order and carry everything
    :func:`check_epoch` needs, so each is an independent shard for the
    parallel engine — and the serial detector just walks the same list.
    """
    ops_by_epoch: Dict[int, List[RMAOpView]] = {}
    for op in model.ops:
        if op.epoch is not None:
            ops_by_epoch.setdefault(id(op.epoch), []).append(op)

    attached_by_epoch: Dict[int, List[LocalAccess]] = {}
    plain_by_rank: Dict[int, List[LocalAccess]] = {}
    for la in model.local:
        if la.origin_of is not None:
            if la.origin_of.epoch is not None:
                attached_by_epoch.setdefault(
                    id(la.origin_of.epoch), []).append(la)
        else:
            plain_by_rank.setdefault(la.rank, []).append(la)

    units: List[EpochUnit] = []
    for epoch in epoch_index.access_epochs():
        ops = ops_by_epoch.get(id(epoch), [])
        if not ops:
            continue
        attached = attached_by_epoch.get(id(epoch), [])
        mems = [
            la for la in plain_by_rank.get(epoch.rank, ())
            if epoch.contains_seq(la.seq)
        ]
        units.append((epoch, ops, attached, mems))
    return units


def detect_intra_epoch(model: AccessModel, epoch_index: EpochIndex,
                       memory_model: str = "separate"
                       ) -> List[ConsistencyError]:
    """Find conflicting operation pairs inside each access epoch."""
    errors: List[ConsistencyError] = []
    for epoch, ops, attached, mems in bucket_by_epoch(model, epoch_index):
        errors.extend(check_epoch(epoch, ops, attached, mems, memory_model))
    return errors


def check_epoch(epoch: Epoch, ops: List[RMAOpView],
                attached: List[LocalAccess], mems: List[LocalAccess],
                memory_model: str = "separate") -> List[ConsistencyError]:
    """Run the within-epoch ruleset over one epoch's accesses.

    Exposed separately so the streaming checker can invoke it as soon as
    an epoch closes, with only that epoch's accesses retained.
    """
    errors: List[ConsistencyError] = []

    # (a) RMA op pairs: target-side conflicts under Table I
    for i, op_a in enumerate(ops):
        for op_b in ops[i + 1:]:
            error = _check_target_pair(op_a, op_b, memory_model)
            if error is not None:
                errors.append(error)

    # (b) local buffers attached to RMA ops vs plain loads/stores and
    # vs each other: unordered while the owning op is incomplete
    for i, acc_a in enumerate(attached):
        for la in mems:
            errors.extend(_check_attached_vs_plain(acc_a, la))
        for acc_b in attached[i + 1:]:
            if acc_a.origin_of is acc_b.origin_of:
                continue  # one call's own buffers don't self-conflict
            errors.extend(_check_attached_pair(acc_a, acc_b))
    return errors


def _check_target_pair(op_a: RMAOpView, op_b: RMAOpView,
                       memory_model: str) -> ConsistencyError:
    # ops completing at different points (MPI-3 flush between them) are
    # consistency-ordered even within one epoch
    if op_a.complete_seq <= op_b.seq or op_b.complete_seq <= op_a.seq:
        return None
    if op_a.target != op_b.target:
        return None
    overlap = op_a.target_intervals.intersection(op_b.target_intervals)
    verdict = compat_verdict(
        op_a.kind, op_b.kind, bool(overlap),
        acc_same=accumulate_exception(op_a.acc_op, op_a.acc_base,
                                      op_b.acc_op, op_b.acc_base),
        model=memory_model)
    if verdict is None:
        return None
    return ConsistencyError(
        kind=INTRA_EPOCH, severity=SEVERITY_ERROR, rule=verdict,
        win_id=op_a.win_id,
        a=_desc_op(op_a, origin_side=False),
        b=_desc_op(op_b, origin_side=False),
        overlap=overlap,
        note="unordered same-epoch operations on the same target",
        provenance={
            "phase": "intra", "pattern": "op_pair",
            "spans": {"a": _span_ref(op_a.span),
                      "b": _span_ref(op_b.span)},
            "epoch": (_epoch_prov(op_a.epoch)
                      if op_a.epoch is not None else None),
            "target": op_a.target,
            "hb": {"edge": "same-epoch-unordered",
                   "detail": "no flush or epoch close separates the "
                             "operations' completion points"},
        })


def _check_attached_vs_plain(attached: LocalAccess,
                             la: LocalAccess) -> List[ConsistencyError]:
    op = attached.origin_of
    # program order protects accesses before the issue; the flush/close
    # completes the op before anything after it
    if la.seq < op.seq or la.seq > op.complete_seq:
        return []
    if attached.access != "store" and la.access != "store":
        return []  # two reads never conflict
    overlap = attached.intervals.intersection(la.intervals)
    if not overlap:
        return []
    return [ConsistencyError(
        kind=INTRA_EPOCH, severity=SEVERITY_ERROR, rule="ORIGIN",
        win_id=op.win_id,
        a=_desc_attached(attached), b=_desc_local(la), overlap=overlap,
        note=("the one-sided operation is not complete until "
              f"seq {op.complete_seq}; the local access may observe or "
              "corrupt in-flight data"),
        provenance={
            "phase": "intra", "pattern": "origin_vs_plain",
            "spans": {"a": _span_ref(op.span),
                      "b": _span_ref(la.span)},
            "epoch": (_epoch_prov(op.epoch)
                      if op.epoch is not None else None),
            "hb": {"edge": "origin-in-flight",
                   "detail": "the local access falls inside the "
                             "operation's issue-to-completion window"},
        })]


def _check_attached_pair(acc_a: LocalAccess,
                         acc_b: LocalAccess) -> List[ConsistencyError]:
    if not _spans_unordered(acc_a.span, acc_b.span):
        return []
    if acc_a.access != "store" and acc_b.access != "store":
        return []
    overlap = acc_a.intervals.intersection(acc_b.intervals)
    if not overlap:
        return []
    return [ConsistencyError(
        kind=INTRA_EPOCH, severity=SEVERITY_ERROR, rule="ORIGIN",
        win_id=acc_a.origin_of.win_id,
        a=_desc_attached(acc_a), b=_desc_attached(acc_b), overlap=overlap,
        note="overlapping local buffers of unordered same-epoch "
             "operations, at least one of which writes locally",
        provenance={
            "phase": "intra", "pattern": "origin_pair",
            "spans": {"a": _span_ref(acc_a.span),
                      "b": _span_ref(acc_b.span)},
            "epoch": (_epoch_prov(acc_a.origin_of.epoch)
                      if acc_a.origin_of.epoch is not None else None),
            "hb": {"edge": "same-epoch-unordered",
                   "detail": "both owning operations are in flight "
                             "over overlapping local buffers"},
        })]


def _desc_attached(la: LocalAccess) -> AccessDesc:
    op = la.origin_of
    return AccessDesc(rank=la.rank, kind=op.kind, fn=la.fn, var=la.var,
                      loc=la.loc, intervals=la.intervals, seq=la.seq)
