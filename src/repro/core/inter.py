"""Cross-process conflict detection (section IV-C-4).

The key observation the paper exploits: memory consistency errors across
processes can only occur *in the window buffers at target processes*.  So
instead of comparing every pair of operations in a concurrent region
(combinatorial), DN-Analyzer makes two linear passes:

1. scan the region's one-sided operations; record each into a vector entry
   keyed by ``(window, target rank)``, checking it against the operations
   already recorded there (Table I on target intervals);
2. scan the region's *local* operations at each rank — direct loads and
   stores, MPI calls touching local buffers, and the origin side of RMA
   calls — and check the ones that fall inside an exposed window against
   the remote operations recorded for that window.

The happens-before oracle prunes ordered pairs (e.g. separated by a
send/recv chain inside the region).  The MPI-2.2 special rule is honoured:
a local **store** conflicts with any concurrent Put/Accumulate epoch on the
same window even with no byte overlap (``ERROR`` cells of Table I).

Severity: a conflict whose two sides are both serialized by *exclusive*
locks on the same window is reported as a **warning** — the accesses
cannot overlap in time, but their order is nondeterministic, which is how
the paper handles the original (exclusive-lock) lockopts bug.

:func:`detect_cross_process_naive` is the combinatorial strawman kept for
the E7 ablation benchmark and differential testing.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.clocks import ConcurrencyOracle
from repro.core.compat import ACC, GET, PUT, accumulate_exception, compat_verdict
from repro.core.diagnostics import (
    CROSS_PROCESS, SEVERITY_ERROR, SEVERITY_WARNING,
    AccessDesc, ConsistencyError,
)
from repro.core.epochs import EpochIndex, KIND_LOCK
from repro.core.model import AccessModel, LocalAccess, RMAOpView
from repro.core.preprocess import PreprocessedTrace
from repro.core.regions import RegionIndex
from repro.simmpi.window import LOCK_EXCLUSIVE
from repro.util.intervals import IntervalSet

_WRITES = (PUT, ACC)


def _desc_op(op: RMAOpView) -> AccessDesc:
    fn = op.fn or {"put": "Put", "get": "Get", "acc": "Accumulate"}[op.kind]
    return AccessDesc(rank=op.rank, kind=op.kind, fn=fn, var=op.origin_var,
                      loc=op.loc, intervals=op.target_intervals, seq=op.seq)


def _desc_local(la: LocalAccess) -> AccessDesc:
    return AccessDesc(rank=la.rank, kind=la.access, fn=la.fn, var=la.var,
                      loc=la.loc, intervals=la.intervals, seq=la.seq)


def _span_ref(span) -> list:
    """Trace reference of an influence span: ``[rank, start, end]`` in
    trace sequence numbers (the record indices of the rank's trace)."""
    return [span.rank, span.start_seq, span.end_seq]


def _op_exclusive(op: RMAOpView) -> bool:
    return (op.epoch is not None and op.epoch.kind == KIND_LOCK
            and op.epoch.lock_type == LOCK_EXCLUSIVE)


class _LocalLockIndex:
    """Which local accesses are protected by a self-targeted exclusive lock.

    Per ``(rank, win)`` the qualifying lock epochs are disjoint (a second
    ``Win_lock`` of the same window/target before the unlock replaces the
    open epoch, which is then never indexed), so a sorted interval list
    answers each query with one ``bisect`` instead of a scan over every
    exclusive epoch in the trace.
    """

    def __init__(self, epoch_index: EpochIndex, nranks: int):
        by_key: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        for e in epoch_index.epochs:
            if e.kind == KIND_LOCK and e.lock_type == LOCK_EXCLUSIVE \
                    and e.target == e.rank:
                by_key.setdefault((e.rank, e.win_id), []).append(
                    (e.open_seq, e.close_seq))
        self._index: Dict[Tuple[int, int],
                          Tuple[List[int], List[int]]] = {}
        for key, spans in by_key.items():
            spans.sort()
            self._index[key] = ([open_seq for open_seq, _ in spans],
                                [close_seq for _, close_seq in spans])

    def covers(self, la: LocalAccess, win_id: int) -> bool:
        entry = self._index.get((la.rank, win_id))
        if entry is None:
            return False
        opens, closes = entry
        # last epoch opening strictly before la.seq (contains_seq is
        # exclusive on both bounds)
        i = bisect_right(opens, la.seq - 1) - 1
        return i >= 0 and la.seq < closes[i]


def _pair_severity(a_exclusive: bool, b_exclusive: bool) -> str:
    """Two sides both serialized by exclusive locks: order exists but is
    nondeterministic -> warning; otherwise a hard race."""
    if a_exclusive and b_exclusive:
        return SEVERITY_WARNING
    return SEVERITY_ERROR


def _check_ops(op_a: RMAOpView, op_b: RMAOpView,
               oracle: ConcurrencyOracle,
               model: str = "separate") -> Optional[ConsistencyError]:
    if op_a.rank == op_b.rank:
        return None  # same-rank pairs are program/epoch ordered or intra
    if oracle.ordered(op_a.span, op_b.span):
        return None
    return _check_concurrent_ops(op_a, op_b, model)


def _check_concurrent_ops(op_a: RMAOpView, op_b: RMAOpView,
                          model: str = "separate"
                          ) -> Optional[ConsistencyError]:
    """Table-I verdict for a pair already known concurrent + cross-rank."""
    overlap = op_a.target_intervals.intersection(op_b.target_intervals)
    verdict = compat_verdict(
        op_a.kind, op_b.kind, bool(overlap),
        acc_same=accumulate_exception(op_a.acc_op, op_a.acc_base,
                                      op_b.acc_op, op_b.acc_base),
        model=model)
    if verdict is None:
        return None
    return ConsistencyError(
        kind=CROSS_PROCESS, rule=verdict,
        severity=_pair_severity(_op_exclusive(op_a), _op_exclusive(op_b)),
        win_id=op_a.win_id, a=_desc_op(op_a), b=_desc_op(op_b),
        overlap=overlap,
        note=(f"concurrent one-sided operations on the window at rank "
              f"{op_a.target}"),
        provenance={
            "phase": "inter", "pattern": "op_pair",
            "spans": {"a": _span_ref(op_a.span),
                      "b": _span_ref(op_b.span)},
            "target": op_a.target,
            "hb": {"edge": "concurrent",
                   "detail": "no happens-before path orders the two "
                             "operations' influence spans"},
        })


def _check_local_vs_op(la: LocalAccess, la_in_window: IntervalSet,
                       op: RMAOpView, oracle: ConcurrencyOracle,
                       lock_index: _LocalLockIndex,
                       model: str = "separate"
                       ) -> Optional[ConsistencyError]:
    if la.origin_of is op:
        return None  # an op does not conflict with its own origin access
    if la.origin_of is not None and la.origin_of.rank == op.rank:
        return None  # same-origin RMA pair: handled as op-op / intra
    if oracle.ordered(la.span, op.span):
        return None
    return _check_concurrent_local_vs_op(la, la_in_window, op, lock_index,
                                         model)


def _check_concurrent_local_vs_op(la: LocalAccess,
                                  la_in_window: IntervalSet,
                                  op: RMAOpView,
                                  lock_index: _LocalLockIndex,
                                  model: str = "separate"
                                  ) -> Optional[ConsistencyError]:
    """Table-I verdict for a local/remote pair already known concurrent."""
    if la.origin_of is op:
        return None  # an op does not conflict with its own origin access
    if la.origin_of is not None and la.origin_of.rank == op.rank:
        return None  # same-origin RMA pair: handled as op-op / intra
    overlap = la_in_window.intersection(op.target_intervals)
    verdict = compat_verdict(la.access, op.kind, bool(overlap),
                             model=model)
    if verdict is None:
        return None
    la_exclusive = lock_index.covers(la, op.win_id)
    return ConsistencyError(
        kind=CROSS_PROCESS, rule=verdict,
        severity=_pair_severity(la_exclusive, _op_exclusive(op)),
        win_id=op.win_id, a=_desc_local(la), b=_desc_op(op),
        overlap=overlap,
        note=(f"local access at target rank {la.rank} concurrent with a "
              "remote one-sided operation on the same window"),
        provenance={
            "phase": "inter", "pattern": "local_vs_op",
            "spans": {"a": _span_ref(la.span),
                      "b": _span_ref(op.span)},
            "target": la.rank,
            "hb": {"edge": "concurrent",
                   "detail": "no happens-before path orders the local "
                             "access against the remote operation"},
        })


def bucket_by_region(model: AccessModel, regions: RegionIndex
                     ) -> Tuple[Dict[int, List[RMAOpView]],
                                Dict[int, List[LocalAccess]]]:
    """Assign ops and local accesses to the regions their spans intersect.

    Ops are visited in ``(rank, seq)`` order so each region's list — and
    therefore the order findings are emitted in downstream — is the same
    no matter how ``model`` was assembled (serial build or merged shards).
    """
    ops_by_region: Dict[int, List[RMAOpView]] = {}
    for op in sorted(model.ops, key=lambda o: (o.rank, o.seq)):
        for region_index in regions.regions_of_span(op.span):
            ops_by_region.setdefault(region_index, []).append(op)
    locals_by_region: Dict[int, List[LocalAccess]] = {}
    for la in model.local:
        for region_index in regions.regions_of_span(la.span):
            locals_by_region.setdefault(region_index, []).append(la)
    return ops_by_region, locals_by_region


def detect_cross_process(pre: PreprocessedTrace, model: AccessModel,
                         regions: RegionIndex, oracle: ConcurrencyOracle,
                         epoch_index: EpochIndex,
                         memory_model: str = "separate"
                         ) -> List[ConsistencyError]:
    """The paper's linear two-step detector, one pass per concurrent region."""
    errors: List[ConsistencyError] = []
    lock_index = _LocalLockIndex(epoch_index, pre.nranks)
    ops_by_region, locals_by_region = bucket_by_region(model, regions)

    for region in regions:
        region_ops = ops_by_region.get(region.index, [])
        if not region_ops:
            continue
        errors.extend(detect_region(
            pre, region_ops, locals_by_region.get(region.index, []),
            oracle, lock_index, memory_model))
    return errors


#: below this many recorded ops in a vector entry, scalar oracle queries
#: beat the numpy batch setup cost
_BATCH_MIN = 4


class _OpVector:
    """The ops recorded for one ``(window, target)`` vector entry, with
    their spans mirrored into numpy arrays for batched oracle queries."""

    __slots__ = ("win_id", "target", "ops", "_ranks", "_starts", "_ends",
                 "_arrays")

    def __init__(self, win_id: int, target: int):
        self.win_id = win_id
        self.target = target
        self.ops: List[RMAOpView] = []
        self._ranks: List[int] = []
        self._starts: List[int] = []
        self._ends: List[int] = []
        self._arrays: Optional[Tuple[np.ndarray, ...]] = None

    def append(self, op: RMAOpView) -> None:
        span = op.span
        self.ops.append(op)
        self._ranks.append(span.rank)
        self._starts.append(span.start_seq)
        self._ends.append(span.end_seq)
        self._arrays = None

    def arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._arrays is None:
            self._arrays = (np.asarray(self._ranks, dtype=np.int64),
                            np.asarray(self._starts, dtype=np.int64),
                            np.asarray(self._ends, dtype=np.int64))
        return self._arrays


def detect_region(pre: PreprocessedTrace, region_ops: List[RMAOpView],
                  region_locals: List[LocalAccess],
                  oracle: ConcurrencyOracle, lock_index: "_LocalLockIndex",
                  memory_model: str = "separate") -> List[ConsistencyError]:
    """The two linear passes over one concurrent region's accesses.

    Exposed separately so the streaming checker can analyze each region as
    it closes and then discard its accesses.  Once a vector entry holds
    enough ops, each incoming access resolves its happens-before relation
    to the whole entry in one vectorized :meth:`ordered_batch` call.
    """
    errors: List[ConsistencyError] = []
    # step 1: record remote ops per (window, target), checking as we go
    vector: Dict[Tuple[int, int], _OpVector] = {}
    # entries grouped by target rank, in first-recorded order, so step 2
    # touches only the entries that can involve a given local access
    entries_by_rank: Dict[int, List[_OpVector]] = {}
    for op in region_ops:
        key = (op.win_id, op.target)
        entry = vector.get(key)
        if entry is None:
            entry = vector[key] = _OpVector(op.win_id, op.target)
            entries_by_rank.setdefault(op.target, []).append(entry)
        if len(entry.ops) >= _BATCH_MIN:
            ranks, starts, ends = entry.arrays()
            concurrent = ~oracle.ordered_batch(ranks, starts, ends, op.span)
            concurrent &= ranks != op.rank  # same-rank pairs: intra's job
            for i in np.nonzero(concurrent)[0]:
                error = _check_concurrent_ops(entry.ops[i], op, memory_model)
                if error is not None:
                    errors.append(error)
        else:
            for prev in entry.ops:
                error = _check_ops(prev, op, oracle, memory_model)
                if error is not None:
                    errors.append(error)
        entry.append(op)

    # step 2: local operations at each target vs recorded remote ops
    for la in region_locals:
        check_local_against_entries(
            pre, la, entries_by_rank.get(la.rank, ()), oracle, lock_index,
            memory_model, errors)
    return errors


def check_local_against_entries(pre: PreprocessedTrace, la: LocalAccess,
                                entries: Iterable[_OpVector],
                                oracle: ConcurrencyOracle,
                                lock_index: "_LocalLockIndex",
                                memory_model: str,
                                errors: List[ConsistencyError]) -> None:
    """One local access vs every ``(window, target)`` entry at its rank —
    the pairwise step-2 inner loop, shared with the sweep engine (which
    routes the *object* locals through it and handles the packed memory
    rows columnar)."""
    for entry in entries:
        window = pre.window(entry.win_id)
        la_in_window = la.intervals.intersection(
            window.exposure(la.rank))
        if not la_in_window:
            continue
        if len(entry.ops) >= _BATCH_MIN:
            ranks, starts, ends = entry.arrays()
            concurrent = ~oracle.ordered_batch(ranks, starts, ends,
                                               la.span)
            for i in np.nonzero(concurrent)[0]:
                error = _check_concurrent_local_vs_op(
                    la, la_in_window, entry.ops[i], lock_index,
                    memory_model)
                if error is not None:
                    errors.append(error)
        else:
            for op in entry.ops:
                error = _check_local_vs_op(la, la_in_window, op, oracle,
                                           lock_index, memory_model)
                if error is not None:
                    errors.append(error)


def detect_cross_process_naive(pre: PreprocessedTrace, model: AccessModel,
                               regions: RegionIndex,
                               oracle: ConcurrencyOracle,
                               epoch_index: EpochIndex,
                               memory_model: str = "separate"
                               ) -> List[ConsistencyError]:
    """Combinatorial strawman: compare *every* pair of accesses in each
    region, with no window-vector keying.  Same findings, quadratic time —
    the baseline the paper's section IV-C-4 improves upon."""
    errors: List[ConsistencyError] = []
    lock_index = _LocalLockIndex(epoch_index, pre.nranks)
    ops_by_region, locals_by_region = bucket_by_region(model, regions)

    for region in regions:
        region_ops = ops_by_region.get(region.index, [])
        region_locals = locals_by_region.get(region.index, [])
        for i, op_a in enumerate(region_ops):
            for op_b in region_ops[i + 1:]:
                if op_a.win_id != op_b.win_id or op_a.target != op_b.target:
                    continue  # still must touch the same target window
                error = _check_ops(op_a, op_b, oracle, memory_model)
                if error is not None:
                    errors.append(error)
        for la in region_locals:
            for op in region_ops:
                if op.target != la.rank:
                    continue
                window = pre.window(op.win_id)
                la_in_window = la.intervals.intersection(
                    window.exposure(la.rank))
                if not la_in_window:
                    continue
                error = _check_local_vs_op(la, la_in_window, op, oracle,
                                           lock_index, memory_model)
                if error is not None:
                    errors.append(error)
    return errors


#: public alias for the streaming checker
LocalLockIndex = _LocalLockIndex
