"""Cross-process conflict detection (section IV-C-4).

The key observation the paper exploits: memory consistency errors across
processes can only occur *in the window buffers at target processes*.  So
instead of comparing every pair of operations in a concurrent region
(combinatorial), DN-Analyzer makes two linear passes:

1. scan the region's one-sided operations; record each into a vector entry
   keyed by ``(window, target rank)``, checking it against the operations
   already recorded there (Table I on target intervals);
2. scan the region's *local* operations at each rank — direct loads and
   stores, MPI calls touching local buffers, and the origin side of RMA
   calls — and check the ones that fall inside an exposed window against
   the remote operations recorded for that window.

The happens-before oracle prunes ordered pairs (e.g. separated by a
send/recv chain inside the region).  The MPI-2.2 special rule is honoured:
a local **store** conflicts with any concurrent Put/Accumulate epoch on the
same window even with no byte overlap (``ERROR`` cells of Table I).

Severity: a conflict whose two sides are both serialized by *exclusive*
locks on the same window is reported as a **warning** — the accesses
cannot overlap in time, but their order is nondeterministic, which is how
the paper handles the original (exclusive-lock) lockopts bug.

:func:`detect_cross_process_naive` is the combinatorial strawman kept for
the E7 ablation benchmark and differential testing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.clocks import ConcurrencyOracle
from repro.core.compat import ACC, GET, PUT, accumulate_exception, compat_verdict
from repro.core.diagnostics import (
    CROSS_PROCESS, SEVERITY_ERROR, SEVERITY_WARNING,
    AccessDesc, ConsistencyError,
)
from repro.core.epochs import EpochIndex, KIND_LOCK
from repro.core.model import AccessModel, LocalAccess, RMAOpView
from repro.core.preprocess import PreprocessedTrace
from repro.core.regions import RegionIndex
from repro.simmpi.window import LOCK_EXCLUSIVE
from repro.util.intervals import IntervalSet

_WRITES = (PUT, ACC)


def _desc_op(op: RMAOpView) -> AccessDesc:
    fn = op.fn or {"put": "Put", "get": "Get", "acc": "Accumulate"}[op.kind]
    return AccessDesc(rank=op.rank, kind=op.kind, fn=fn, var=op.origin_var,
                      loc=op.loc, intervals=op.target_intervals)


def _desc_local(la: LocalAccess) -> AccessDesc:
    return AccessDesc(rank=la.rank, kind=la.access, fn=la.fn, var=la.var,
                      loc=la.loc, intervals=la.intervals)


def _op_exclusive(op: RMAOpView) -> bool:
    return (op.epoch is not None and op.epoch.kind == KIND_LOCK
            and op.epoch.lock_type == LOCK_EXCLUSIVE)


class _LocalLockIndex:
    """Which local accesses are protected by a self-targeted exclusive lock."""

    def __init__(self, epoch_index: EpochIndex, nranks: int):
        self._epochs = [
            e for e in epoch_index.epochs
            if e.kind == KIND_LOCK and e.lock_type == LOCK_EXCLUSIVE
            and e.target == e.rank
        ]

    def covers(self, la: LocalAccess, win_id: int) -> bool:
        for epoch in self._epochs:
            if epoch.rank == la.rank and epoch.win_id == win_id \
                    and epoch.contains_seq(la.seq):
                return True
        return False


def _pair_severity(a_exclusive: bool, b_exclusive: bool) -> str:
    """Two sides both serialized by exclusive locks: order exists but is
    nondeterministic -> warning; otherwise a hard race."""
    if a_exclusive and b_exclusive:
        return SEVERITY_WARNING
    return SEVERITY_ERROR


def _check_ops(op_a: RMAOpView, op_b: RMAOpView,
               oracle: ConcurrencyOracle,
               model: str = "separate") -> Optional[ConsistencyError]:
    if op_a.rank == op_b.rank:
        return None  # same-rank pairs are program/epoch ordered or intra
    if oracle.ordered(op_a.span, op_b.span):
        return None
    overlap = op_a.target_intervals.intersection(op_b.target_intervals)
    verdict = compat_verdict(
        op_a.kind, op_b.kind, bool(overlap),
        acc_same=accumulate_exception(op_a.acc_op, op_a.acc_base,
                                      op_b.acc_op, op_b.acc_base),
        model=model)
    if verdict is None:
        return None
    return ConsistencyError(
        kind=CROSS_PROCESS, rule=verdict,
        severity=_pair_severity(_op_exclusive(op_a), _op_exclusive(op_b)),
        win_id=op_a.win_id, a=_desc_op(op_a), b=_desc_op(op_b),
        overlap=overlap,
        note=(f"concurrent one-sided operations on the window at rank "
              f"{op_a.target}"))


def _check_local_vs_op(la: LocalAccess, la_in_window: IntervalSet,
                       op: RMAOpView, oracle: ConcurrencyOracle,
                       lock_index: _LocalLockIndex,
                       model: str = "separate"
                       ) -> Optional[ConsistencyError]:
    if la.origin_of is op:
        return None  # an op does not conflict with its own origin access
    if la.origin_of is not None and la.origin_of.rank == op.rank:
        return None  # same-origin RMA pair: handled as op-op / intra
    if oracle.ordered(la.span, op.span):
        return None
    overlap = la_in_window.intersection(op.target_intervals)
    verdict = compat_verdict(la.access, op.kind, bool(overlap),
                             model=model)
    if verdict is None:
        return None
    la_exclusive = lock_index.covers(la, op.win_id)
    return ConsistencyError(
        kind=CROSS_PROCESS, rule=verdict,
        severity=_pair_severity(la_exclusive, _op_exclusive(op)),
        win_id=op.win_id, a=_desc_local(la), b=_desc_op(op),
        overlap=overlap,
        note=(f"local access at target rank {la.rank} concurrent with a "
              "remote one-sided operation on the same window"))


def detect_cross_process(pre: PreprocessedTrace, model: AccessModel,
                         regions: RegionIndex, oracle: ConcurrencyOracle,
                         epoch_index: EpochIndex,
                         memory_model: str = "separate"
                         ) -> List[ConsistencyError]:
    """The paper's linear two-step detector, one pass per concurrent region."""
    errors: List[ConsistencyError] = []
    lock_index = _LocalLockIndex(epoch_index, pre.nranks)

    # assign ops and local accesses to the regions their spans intersect
    ops_by_region: Dict[int, List[RMAOpView]] = {}
    for op in sorted(model.ops, key=lambda o: (o.rank, o.seq)):
        for region_index in regions.regions_of_span(op.span):
            ops_by_region.setdefault(region_index, []).append(op)
    locals_by_region: Dict[int, List[LocalAccess]] = {}
    for la in model.local:
        for region_index in regions.regions_of_span(la.span):
            locals_by_region.setdefault(region_index, []).append(la)

    for region in regions:
        region_ops = ops_by_region.get(region.index, [])
        if not region_ops:
            continue
        errors.extend(detect_region(
            pre, region_ops, locals_by_region.get(region.index, []),
            oracle, lock_index, memory_model))
    return errors


def detect_region(pre: PreprocessedTrace, region_ops: List[RMAOpView],
                  region_locals: List[LocalAccess],
                  oracle: ConcurrencyOracle, lock_index: "_LocalLockIndex",
                  memory_model: str = "separate") -> List[ConsistencyError]:
    """The two linear passes over one concurrent region's accesses.

    Exposed separately so the streaming checker can analyze each region as
    it closes and then discard its accesses.
    """
    errors: List[ConsistencyError] = []
    # step 1: record remote ops per (window, target), checking as we go
    vector: Dict[Tuple[int, int], List[RMAOpView]] = {}
    for op in region_ops:
        entry = vector.setdefault((op.win_id, op.target), [])
        for prev in entry:
            error = _check_ops(prev, op, oracle, memory_model)
            if error is not None:
                errors.append(error)
        entry.append(op)

    # step 2: local operations at each target vs recorded remote ops
    for la in region_locals:
        for (win_id, target), entry in vector.items():
            if target != la.rank:
                continue
            window = pre.window(win_id)
            la_in_window = la.intervals.intersection(
                window.exposure(la.rank))
            if not la_in_window:
                continue
            for op in entry:
                error = _check_local_vs_op(la, la_in_window, op, oracle,
                                           lock_index, memory_model)
                if error is not None:
                    errors.append(error)
    return errors


def detect_cross_process_naive(pre: PreprocessedTrace, model: AccessModel,
                               regions: RegionIndex,
                               oracle: ConcurrencyOracle,
                               epoch_index: EpochIndex,
                               memory_model: str = "separate"
                               ) -> List[ConsistencyError]:
    """Combinatorial strawman: compare *every* pair of accesses in each
    region, with no window-vector keying.  Same findings, quadratic time —
    the baseline the paper's section IV-C-4 improves upon."""
    errors: List[ConsistencyError] = []
    lock_index = _LocalLockIndex(epoch_index, pre.nranks)

    ops_by_region: Dict[int, List[RMAOpView]] = {}
    for op in sorted(model.ops, key=lambda o: (o.rank, o.seq)):
        for region_index in regions.regions_of_span(op.span):
            ops_by_region.setdefault(region_index, []).append(op)
    locals_by_region: Dict[int, List[LocalAccess]] = {}
    for la in model.local:
        for region_index in regions.regions_of_span(la.span):
            locals_by_region.setdefault(region_index, []).append(la)

    for region in regions:
        region_ops = ops_by_region.get(region.index, [])
        region_locals = locals_by_region.get(region.index, [])
        for i, op_a in enumerate(region_ops):
            for op_b in region_ops[i + 1:]:
                if op_a.win_id != op_b.win_id or op_a.target != op_b.target:
                    continue  # still must touch the same target window
                error = _check_ops(op_a, op_b, oracle, memory_model)
                if error is not None:
                    errors.append(error)
        for la in region_locals:
            for op in region_ops:
                if op.target != la.rank:
                    continue
                window = pre.window(op.win_id)
                la_in_window = la.intervals.intersection(
                    window.exposure(la.rank))
                if not la_in_window:
                    continue
                error = _check_local_vs_op(la, la_in_window, op, oracle,
                                           lock_index, memory_model)
                if error is not None:
                    errors.append(error)
    return errors


#: public alias for the streaming checker
LocalLockIndex = _LocalLockIndex
