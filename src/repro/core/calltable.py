"""Columnar control plane: struct-of-arrays call tables.

The data plane went columnar in PRs 3-8 (packed MemBlock columns flow from
the tracer through the sweep engine without ever becoming Python objects);
this module does the same for the *control* plane.  A :class:`CallTable` is
a per-rank struct-of-arrays view over the call stream — seq numbers, fn
codes, a sync-class code, and the handful of argument columns the matching
/ epoch / clock passes actually read (communicator, window, peer, tag,
request, lock target, PSCW group) — built once per rank during ingest and
shared by every control-plane consumer:

* :func:`match_synchronization_columnar` re-implements Algorithm 1 as
  per-channel occurrence-index zips over the class-filtered columns (the
  k-th collective on a communicator at each member is one match; the k-th
  send on a (src, dst, comm, tag) channel pairs with the k-th receive),
  replacing the per-event progress-counter walk;
* ``EpochIndex`` walks only the epoch-relevant rows (mask + take instead
  of a full event scan);
* ``ConcurrencyOracle`` builds its clock matrix from numpy sync arrays
  derived from the same matches.

The plane is selected by ``MCCHECKER_CONTROL_PLANE`` (``columnar`` by
default; ``object`` keeps the per-event reference pipeline).  Reports are
byte-identical across planes — the differential suite pins that.
"""

from __future__ import annotations

import os
from sys import intern as _intern
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.matching import (
    KIND_COLLECTIVE, KIND_COMPLETE_WAIT, KIND_P2P, KIND_POST_START,
    SEND_CALLS, SyncMatch,
)
from repro.core.preprocess import PreprocessedTrace
from repro.profiler.events import (
    COLLECTIVE_CALLS, DATATYPE_CALLS, NB_COLLECTIVE_CALLS, ONE_SIDED_CALLS,
    SUPPORT_CALLS, SYNC_CALLS, CallEvent,
)
from repro.util.errors import AnalysisError
from repro.util.location import SourceLocation
from repro.util.records import decode_value

CONTROL_PLANE_ENV = "MCCHECKER_CONTROL_PLANE"
PLANE_COLUMNAR = "columnar"
PLANE_OBJECT = "object"


def control_plane() -> str:
    """The active control-plane implementation (env-selected)."""
    plane = os.environ.get(CONTROL_PLANE_ENV, PLANE_COLUMNAR)
    if plane not in (PLANE_COLUMNAR, PLANE_OBJECT):
        raise AnalysisError(
            f"{CONTROL_PLANE_ENV} must be {PLANE_COLUMNAR!r} or "
            f"{PLANE_OBJECT!r}, not {plane!r}")
    return plane


# ----------------------------------------------------------------------
# fn codes (shared, process-local interning; tables that cross a process
# boundary carry their name snapshot and remap on arrival)
# ----------------------------------------------------------------------

FN_NAMES: List[str] = sorted(
    ONE_SIDED_CALLS | DATATYPE_CALLS | SYNC_CALLS | SUPPORT_CALLS)
_FN_CODES: Dict[str, int] = {fn: i for i, fn in enumerate(FN_NAMES)}


def fn_code(fn: str) -> int:
    code = _FN_CODES.get(fn)
    if code is None:
        code = len(FN_NAMES)
        FN_NAMES.append(fn)
        _FN_CODES[fn] = code
    return code


#: sync-class codes stored in ``CallTable.cls``
CLS_OTHER = 0
CLS_COLL = 1
CLS_SEND = 2
CLS_RECV = 3
CLS_POST = 4
CLS_START = 5
CLS_COMPLETE = 6
CLS_WAIT = 7        # Win_wait (PSCW exposure close)
CLS_ICOLL_WAIT = 8  # Wait completing a nonblocking collective

#: human-readable names of the sync-class codes (trace_stats, dashboards)
CLS_NAMES = {
    CLS_OTHER: "other", CLS_COLL: "collective", CLS_SEND: "send",
    CLS_RECV: "recv", CLS_POST: "post", CLS_START: "start",
    CLS_COMPLETE: "complete", CLS_WAIT: "wait",
    CLS_ICOLL_WAIT: "icoll_wait",
}

#: lock-type codes stored in ``CallTable.lock`` (3 = see ``lock_types``)
LOCK_NONE = 0
LOCK_SHARED = 1
LOCK_EXCLUSIVE = 2
LOCK_OTHER = 3
_LOCK_CODES = {"shared": LOCK_SHARED, "exclusive": LOCK_EXCLUSIVE}
_LOCK_NAMES = {LOCK_SHARED: "shared", LOCK_EXCLUSIVE: "exclusive"}

_REQ_KIND_NONE = 0
_REQ_KIND_IRECV = 1
_REQ_KIND_ICOLL = 2
_REQ_KIND_OTHER = 3

#: the row tuple for calls that touch no control-plane column
_PLAIN_ROW = (CLS_OTHER, -1, -1, -1, -1, -1, _REQ_KIND_NONE, -1,
              LOCK_NONE, ())


def classify_call(fn: str, args: Dict[str, Any]
                  ) -> Tuple[Tuple[int, ...], Optional[str]]:
    """The :class:`CallTable` row for one call: ``((fn_code, cls, comm,
    win, peer, tag, req, req_kind, target, lock, group), lock_str)``.

    ``peer`` is the *raw* (communicator-relative) dest/source — world
    resolution needs the merged registries and happens vectorized in the
    matcher.  Missing columns are -1.
    """
    cls = CLS_OTHER
    comm = win = peer = tag = req = target = -1
    req_kind = _REQ_KIND_NONE
    lock = LOCK_NONE
    lock_str: Optional[str] = None
    group: Tuple[int, ...] = ()
    if fn in COLLECTIVE_CALLS:
        cls = CLS_COLL
        if "comm" in args:
            comm = int(args["comm"])
        if "win" in args:
            win = int(args["win"])
        if fn in NB_COLLECTIVE_CALLS:
            req = int(args["req"])
    elif fn in SEND_CALLS:
        cls = CLS_SEND
        comm = int(args["comm"])
        peer = int(args["dest"])
        tag = int(args["tag"])
    elif fn == "Recv":
        cls = CLS_RECV
        comm = int(args["comm"])
        peer = int(args["source"])
        tag = int(args["tag"])
    elif fn == "Wait":
        rk = args.get("req_kind")
        if rk == "irecv" and "source" in args:
            cls = CLS_RECV
            req_kind = _REQ_KIND_IRECV
            comm = int(args["comm"])
            peer = int(args["source"])
            tag = int(args["tag"])
        elif rk == "icoll":
            cls = CLS_ICOLL_WAIT
            req_kind = _REQ_KIND_ICOLL
            req = int(args["req"])
        elif rk is not None:
            req_kind = _REQ_KIND_OTHER
    elif fn == "Win_post":
        cls = CLS_POST
        win = int(args["win"])
        group = tuple(int(r) for r in args["group"])
    elif fn == "Win_start":
        cls = CLS_START
        win = int(args["win"])
        group = tuple(int(r) for r in args["group"])
    elif fn == "Win_complete":
        cls = CLS_COMPLETE
        win = int(args["win"])
    elif fn == "Win_wait":
        cls = CLS_WAIT
        win = int(args["win"])
    elif fn == "Win_lock":
        win = int(args["win"])
        target = int(args["target"])
        lock_str = str(args["lock_type"])
        lock = _LOCK_CODES.get(lock_str, LOCK_OTHER)
    elif fn == "Win_lock_all":
        win = int(args["win"])
        lock = LOCK_SHARED
    elif fn in ("Win_unlock", "Win_flush"):
        win = int(args["win"])
        target = int(args["target"])
    elif fn in ("Win_unlock_all", "Win_flush_all"):
        win = int(args["win"])
    elif fn == "Rma_wait":
        win = int(args["win"])
        req = int(args["req"])
    else:
        return (fn_code(fn),) + _PLAIN_ROW, None
    return ((fn_code(fn), cls, comm, win, peer, tag, req, req_kind, target,
             lock, group), lock_str)


class CallTable:
    """Struct-of-arrays view of one rank's call stream.

    Parallel int columns over the ``n`` calls, in trace order; ``group``
    is ragged (``group_off``/``group_val`` CSR pair).  ``lock_types``
    carries the rare lock-type strings that are neither ``shared`` nor
    ``exclusive`` (row index -> string).
    """

    __slots__ = ("rank", "n", "seq", "fn", "cls", "comm", "win", "peer",
                 "tag", "req", "req_kind", "target", "lock",
                 "group_off", "group_val", "lock_types")

    def __init__(self, rank: int, n: int, seq: np.ndarray, fn: np.ndarray,
                 cls: np.ndarray, comm: np.ndarray, win: np.ndarray,
                 peer: np.ndarray, tag: np.ndarray, req: np.ndarray,
                 req_kind: np.ndarray, target: np.ndarray, lock: np.ndarray,
                 group_off: np.ndarray, group_val: np.ndarray,
                 lock_types: Dict[int, str]):
        self.rank = rank
        self.n = n
        self.seq = seq
        self.fn = fn
        self.cls = cls
        self.comm = comm
        self.win = win
        self.peer = peer
        self.tag = tag
        self.req = req
        self.req_kind = req_kind
        self.target = target
        self.lock = lock
        self.group_off = group_off
        self.group_val = group_val
        self.lock_types = lock_types

    def group(self, i: int) -> Tuple[int, ...]:
        lo, hi = self.group_off[i], self.group_off[i + 1]
        return tuple(self.group_val[lo:hi].tolist())

    def lock_type(self, i: int) -> Optional[str]:
        code = self.lock[i]
        if code == LOCK_NONE:
            return None
        if code == LOCK_OTHER:
            return self.lock_types[i]
        return _LOCK_NAMES[int(code)]

    # -- construction ---------------------------------------------------

    @classmethod
    def from_rows(cls, rank: int, seqs: List[int],
                  rows: List[Tuple[int, ...]],
                  lock_types: Dict[int, str]) -> "CallTable":
        n = len(seqs)
        if not n:
            e8 = np.empty(0, dtype=np.int64)
            return cls(rank, 0, e8, np.empty(0, np.int32),
                       np.empty(0, np.uint8), e8, e8, e8, e8, e8,
                       np.empty(0, np.uint8), e8, np.empty(0, np.uint8),
                       np.zeros(1, dtype=np.int64), e8, {})
        cols = list(zip(*rows))
        groups = cols[10]
        group_off = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.fromiter(map(len, groups), dtype=np.int64, count=n),
                  out=group_off[1:])
        total = int(group_off[-1])
        if total:
            group_val = np.fromiter(
                (v for g in groups for v in g), dtype=np.int64, count=total)
        else:
            group_val = np.empty(0, dtype=np.int64)
        return cls(
            rank, n,
            np.asarray(seqs, dtype=np.int64),
            np.asarray(cols[0], dtype=np.int32),
            np.asarray(cols[1], dtype=np.uint8),
            np.asarray(cols[2], dtype=np.int64),
            np.asarray(cols[3], dtype=np.int64),
            np.asarray(cols[4], dtype=np.int64),
            np.asarray(cols[5], dtype=np.int64),
            np.asarray(cols[6], dtype=np.int64),
            np.asarray(cols[7], dtype=np.uint8),
            np.asarray(cols[8], dtype=np.int64),
            np.asarray(cols[9], dtype=np.uint8),
            group_off, group_val, dict(lock_types))

    @classmethod
    def from_events(cls, rank: int, events: Sequence[Any]) -> "CallTable":
        """Build from already-materialized events (non-call events are
        skipped, exactly like the object control-plane scans)."""
        seqs: List[int] = []
        rows: List[Tuple[int, ...]] = []
        lock_types: Dict[int, str] = {}
        for event in events:
            if not isinstance(event, CallEvent):
                continue
            row, lock_str = classify_call(event.fn, event.args)
            if lock_str is not None and row[9] == LOCK_OTHER:
                lock_types[len(seqs)] = lock_str
            seqs.append(event.seq)
            rows.append(row)
        return cls.from_rows(rank, seqs, rows, lock_types)

    # -- pickling (cross-process fn-code remapping) ---------------------

    def __getstate__(self) -> dict:
        return {
            "rank": self.rank, "n": self.n, "seq": self.seq,
            "fn": self.fn, "cls": self.cls, "comm": self.comm,
            "win": self.win, "peer": self.peer, "tag": self.tag,
            "req": self.req, "req_kind": self.req_kind,
            "target": self.target, "lock": self.lock,
            "group_off": self.group_off, "group_val": self.group_val,
            "lock_types": self.lock_types,
            "fn_names": list(FN_NAMES),
        }

    def __setstate__(self, state: dict) -> None:
        for name in self.__slots__:
            setattr(self, name, state[name])
        self.fn = _remap_fn_codes(self.fn, state["fn_names"])


def _remap_fn_codes(codes: np.ndarray, names: List[str]) -> np.ndarray:
    """Translate fn codes minted in another process into local codes."""
    if names == FN_NAMES[:len(names)]:
        return codes  # identical prefix — the common (static-table) case
    remap = np.fromiter((fn_code(fn) for fn in names), dtype=np.int64,
                        count=len(names))
    return remap[codes].astype(np.int32)


def ensure_call_tables(pre: PreprocessedTrace) -> Dict[int, CallTable]:
    """The per-rank call tables of ``pre``, building and caching them from
    the materialized events if ingest did not already attach them."""
    tables = getattr(pre, "call_tables", None)
    if tables is None:
        tables = {rank: CallTable.from_events(rank, pre.events[rank])
                  for rank in range(pre.nranks)}
        pre.call_tables = tables
    return tables


def total_calls(pre: PreprocessedTrace) -> int:
    """Number of call events in the trace (table-backed when available)."""
    tables = getattr(pre, "call_tables", None)
    if tables is not None:
        return sum(t.n for t in tables.values())
    return sum(
        1 for events in pre.events.values()
        for e in events if isinstance(e, CallEvent))


# ----------------------------------------------------------------------
# shared-memory shipping (worker-side scan -> parent, no pickled calls)
# ----------------------------------------------------------------------

#: fixed column order for the packed shared-memory layout
_SHIP_COLUMNS = ("seq", "fn", "cls", "comm", "win", "peer", "tag", "req",
                 "req_kind", "target", "lock", "group_off", "group_val")


def share_table(table: CallTable, name: str):
    """Copy a table's columns into one named shared-memory segment.

    Returns ``(desc, handle)``: a picklable descriptor for
    :func:`attach_table` plus the open handle the creator must close.
    """
    from multiprocessing import shared_memory

    blocks = [getattr(table, col) for col in _SHIP_COLUMNS]
    total = sum(b.nbytes for b in blocks)
    shm = shared_memory.SharedMemory(name=name, create=True,
                                     size=max(total, 1))
    offset = 0
    meta = []
    for col, block in zip(_SHIP_COLUMNS, blocks):
        if block.nbytes:
            dst = np.ndarray(block.shape, dtype=block.dtype,
                             buffer=shm.buf, offset=offset)
            dst[:] = block
        meta.append((col, str(block.dtype), int(block.size)))
        offset += block.nbytes
    desc = {
        "name": name, "rank": table.rank, "n": table.n, "columns": meta,
        "lock_types": dict(table.lock_types),
        "fn_names": list(FN_NAMES), "nbytes": total,
    }
    return desc, shm


def attach_table(desc: dict) -> CallTable:
    """Rebuild a :class:`CallTable` from a shared segment (copying out,
    so the segment can be unlinked immediately afterwards)."""
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=desc["name"])
    try:
        offset = 0
        cols = {}
        for col, dtype, size in desc["columns"]:
            dt = np.dtype(dtype)
            view = np.ndarray((size,), dtype=dt, buffer=shm.buf,
                              offset=offset)
            cols[col] = view.copy()
            offset += size * dt.itemsize
    finally:
        shm.close()
    cols["fn"] = _remap_fn_codes(cols["fn"], desc["fn_names"]) \
        .astype(np.int32)
    return CallTable(desc["rank"], desc["n"],
                     cols["seq"], cols["fn"], cols["cls"], cols["comm"],
                     cols["win"], cols["peer"], cols["tag"], cols["req"],
                     cols["req_kind"], cols["target"], cols["lock"],
                     cols["group_off"], cols["group_val"],
                     {int(k): v for k, v in desc["lock_types"].items()})


# ----------------------------------------------------------------------
# vectorized synchronization matching (Algorithm 1 on columns)
# ----------------------------------------------------------------------

_FENCE_FREE_CODES = None


def _fence_free_codes() -> np.ndarray:
    global _FENCE_FREE_CODES
    if _FENCE_FREE_CODES is None:
        _FENCE_FREE_CODES = np.asarray(
            [fn_code("Win_fence"), fn_code("Win_free")], dtype=np.int64)
    return _FENCE_FREE_CODES


def _resolve_world(pre: PreprocessedTrace, comms: np.ndarray,
                   peers: np.ndarray) -> np.ndarray:
    """Vectorized ``world_of_comm_rank`` over parallel arrays."""
    out = np.empty_like(peers)
    for c in np.unique(comms).tolist():
        m = comms == c
        members = np.asarray(pre.comm_members(int(c)), dtype=np.int64)
        p = peers[m]
        bad = (p < 0) | (p >= members.size)
        if bad.any():
            raise AnalysisError(
                f"comm {int(c)} has no rank {int(p[bad][0])} "
                f"(size {members.size})")
        out[m] = members[p]
    return out


def match_synchronization_columnar(
        pre: PreprocessedTrace,
        tables: Dict[int, CallTable]) -> List[SyncMatch]:
    """Algorithm 1 over :class:`CallTable` columns.

    Produces the same match *set* as the object walk (differentially
    tested): collectives by per-communicator slot index, point-to-point
    as per-(src, dst, comm, tag)-channel FIFO zips, PSCW by per-(rank,
    window, peer)-channel occurrence index.  Match-list order differs
    from the walk (grouped by kind instead of progress-interleaved);
    no consumer is order-sensitive — regions sort their cuts, the clock
    fixpoint is order-independent, and the incremental fingerprints sort
    their buckets.
    """
    nranks = pre.nranks
    matches: List[SyncMatch] = []
    # comm -> rank -> (seqs, fn codes, wins, reqs) in trace order
    coll: Dict[int, Dict[int, Tuple[List[int], ...]]] = {}
    sends: Dict[Tuple[int, int, int, int],
                Tuple[List[int], List[int]]] = {}
    recvs: Dict[Tuple[int, int, int, int], List[int]] = {}
    starts: Dict[Tuple[int, int, int], List[int]] = {}
    waits: Dict[Tuple[int, int, int], List[int]] = {}
    icoll_waits: Dict[Tuple[int, int], int] = {}
    # (rank, seq, win, group) in trace order, per initiating side
    post_events: List[Tuple[int, int, int, Tuple[int, ...]]] = []
    complete_events: List[Tuple[int, int, int, Tuple[int, ...]]] = []

    for rank in range(nranks):
        t = tables.get(rank)
        if t is None or not t.n:
            continue
        cls = t.cls

        idx = np.nonzero(cls == CLS_COLL)[0]
        if idx.size:
            seqs = t.seq[idx]
            comms = t.comm[idx].copy()
            wins = t.win[idx]
            fns = t.fn[idx]
            reqs = t.req[idx]
            missing = comms < 0
            if missing.any():
                mf = fns[missing]
                not_win = ~np.isin(mf, _fence_free_codes())
                if not_win.any():
                    k = int(np.nonzero(missing)[0][np.nonzero(not_win)[0][0]])
                    raise AnalysisError(
                        f"collective event {FN_NAMES[int(fns[k])]} "
                        f"(rank {rank}, seq {int(seqs[k])}) "
                        "carries no communicator")
                mw = wins[missing]
                sub = comms[missing]
                for w in np.unique(mw).tolist():
                    sub[mw == w] = pre.window(int(w)).comm_id
                comms[missing] = sub
            for c in np.unique(comms).tolist():
                m = comms == c
                coll.setdefault(int(c), {})[rank] = (
                    seqs[m].tolist(), fns[m].tolist(), wins[m].tolist(),
                    reqs[m].tolist())

        idx = np.nonzero(cls == CLS_ICOLL_WAIT)[0]
        if idx.size:
            for i in idx.tolist():
                icoll_waits[(rank, int(t.req[i]))] = int(t.seq[i])

        idx = np.nonzero(cls == CLS_SEND)[0]
        if idx.size:
            dsts = _resolve_world(pre, t.comm[idx], t.peer[idx]).tolist()
            comms = t.comm[idx].tolist()
            tags = t.tag[idx].tolist()
            seqs = t.seq[idx].tolist()
            fns = t.fn[idx].tolist()
            for i, dst in enumerate(dsts):
                chan = sends.setdefault((rank, dst, comms[i], tags[i]),
                                        ([], []))
                chan[0].append(seqs[i])
                chan[1].append(fns[i])

        idx = np.nonzero(cls == CLS_RECV)[0]
        if idx.size:
            srcs = _resolve_world(pre, t.comm[idx], t.peer[idx]).tolist()
            comms = t.comm[idx].tolist()
            tags = t.tag[idx].tolist()
            seqs = t.seq[idx].tolist()
            for i, src in enumerate(srcs):
                recvs.setdefault((rank, src, comms[i], tags[i]),
                                 []).append(seqs[i])

        idx = np.nonzero((cls >= CLS_POST) & (cls <= CLS_WAIT))[0]
        if idx.size:
            # per-rank sequential mini-walk mirroring _Streams._scan's
            # access/exposure group state (one variable per rank, not
            # per window — faithfully so)
            access_group: Optional[Tuple[int, ...]] = None
            exposure_group: Optional[Tuple[int, ...]] = None
            for i in idx.tolist():
                c = int(cls[i])
                win = int(t.win[i])
                seq = int(t.seq[i])
                if c == CLS_POST:
                    exposure_group = t.group(i)
                    post_events.append((rank, seq, win, exposure_group))
                elif c == CLS_START:
                    access_group = t.group(i)
                    for target in access_group:
                        starts.setdefault((rank, win, target),
                                          []).append(seq)
                elif c == CLS_COMPLETE:
                    complete_events.append(
                        (rank, seq, win, access_group or ()))
                    access_group = None
                else:  # CLS_WAIT
                    for origin in (exposure_group or ()):
                        waits.setdefault((rank, win, origin),
                                         []).append(seq)
                    exposure_group = None

    # collectives: one match per (comm, slot)
    for comm in sorted(coll):
        members = pre.comm_members(comm)
        per = coll[comm]
        streams = [per.get(m) for m in members]
        nslots = max((len(s[0]) for s in streams if s is not None),
                     default=0)
        for k in range(nslots):
            fnc = -1
            win_val = -1
            init_rank = -1
            mdict: Dict[int, int] = {}
            for mi, member in enumerate(members):
                s = streams[mi]
                if s is None or k >= len(s[0]):
                    continue  # ragged trace: partial match
                if fnc < 0:
                    fnc, win_val, init_rank = s[1][k], s[2][k], member
                elif s[1][k] != fnc:
                    raise AnalysisError(
                        f"collective mismatch on comm {comm}: rank "
                        f"{init_rank} calls {FN_NAMES[fnc]} but rank "
                        f"{member} calls {FN_NAMES[s[1][k]]} "
                        f"(seq {s[0][k]})")
                mdict[member] = s[0][k]
            if fnc < 0:
                continue
            fn = FN_NAMES[fnc]
            match = SyncMatch(
                kind=KIND_COLLECTIVE, fn=fn, comm_id=comm,
                win_id=(int(win_val) if win_val >= 0 else None),
                members=mdict, index=k)
            if fn in NB_COLLECTIVE_CALLS:
                for mi, member in enumerate(members):
                    s = streams[mi]
                    if s is None or k >= len(s[0]):
                        continue
                    wait_seq = icoll_waits.get((member, s[3][k]))
                    if wait_seq is not None:
                        match.exits[member] = wait_seq
            matches.append(match)

    # point-to-point: FIFO zip per (src, dst, comm, tag) channel
    channels = set(sends)
    channels.update((src, dst, comm, tag)
                    for (dst, src, comm, tag) in recvs)
    for key in sorted(channels):
        src, dst, comm, tag = key
        send_seqs, send_fns = sends.get(key, ((), ()))
        recv_seqs = recvs.get((dst, src, comm, tag), ())
        for k in range(max(len(send_seqs), len(recv_seqs))):
            has_send = k < len(send_seqs)
            matches.append(SyncMatch(
                kind=KIND_P2P,
                fn=(FN_NAMES[send_fns[k]] if has_send else "Send"),
                comm_id=comm,
                src=((src, send_seqs[k]) if has_send else None),
                dst=((dst, recv_seqs[k]) if k < len(recv_seqs) else None)))

    # PSCW: k-th post at (rank, win, origin) <-> k-th start at
    # (origin, win, rank); symmetrically complete <-> wait
    cursors: Dict[Tuple[int, int, int], int] = {}
    for rank, seq, win, group in post_events:
        for origin in group:
            k = cursors.get((rank, win, origin), 0)
            cursors[(rank, win, origin)] = k + 1
            start_seqs = starts.get((origin, win, rank), ())
            matches.append(SyncMatch(
                kind=KIND_POST_START, fn="Win_post", win_id=win,
                src=(rank, seq),
                dst=((origin, start_seqs[k])
                     if k < len(start_seqs) else None)))
    cursors = {}
    for rank, seq, win, group in complete_events:
        for target in group:
            k = cursors.get((rank, win, target), 0)
            cursors[(rank, win, target)] = k + 1
            wait_seqs = waits.get((target, win, rank), ())
            matches.append(SyncMatch(
                kind=KIND_COMPLETE_WAIT, fn="Win_complete", win_id=win,
                src=(rank, seq),
                dst=((target, wait_seqs[k])
                     if k < len(wait_seqs) else None)))
    return matches


# ----------------------------------------------------------------------
# vectorized call ingest (the tracer's per-line fast path)
# ----------------------------------------------------------------------

#: loc-text -> SourceLocation memo; the key set is small and immortal
#: (one entry per distinct call site), same argument as capture_location's
_LOC_CACHE: Dict[str, Any] = {}

_MEMO_CAP = 1 << 16

_NEW_EVENT = object.__new__


class CallIngest:
    """Single-pass call-line decoder building CallEvents *and* the rank's
    :class:`CallTable` together.

    Call lines repeat heavily modulo their seq number (a fence loop emits
    the same ``fn=``/``loc=``/``win=`` tail millions of times), so the
    tail after the seq token is memoized: the memo entry carries a
    prebuilt ``CallEvent.__dict__`` template, making a repeated line one
    dict hit, one int parse, and one shallow dict copy.  Events decoded
    from the same tail share one (never-mutated) args dict — the analyzer
    treats event args as frozen throughout.  Misses fall back to the
    canonical record codec, so errors and results are exactly those of
    :func:`repro.profiler.events.decode_event`.
    """

    __slots__ = ("rank", "_memo", "_seqs", "_rows", "_lock_types")

    def __init__(self, rank: int):
        self.rank = rank
        self._memo: Dict[str, tuple] = {}
        self._seqs: List[int] = []
        self._rows: List[Tuple[int, ...]] = []
        self._lock_types: Dict[int, str] = {}

    def add(self, line: str):
        """Decode one trace line, recording its table row; returns the
        event (a CallEvent unless the line is not a call record)."""
        parts = line.split(" ", 2)
        if len(parts) == 3 and parts[0] == "C" and \
                parts[1].startswith("seq="):
            entry = self._memo.get(parts[2])
            if entry is None:
                entry = self._parse_rest(parts[2])
            if entry is not None:
                try:
                    seq = int(parts[1][4:])
                except ValueError:
                    return self._add_slow(line)
                tpl, row, lock_str = entry
                if lock_str is not None:
                    self._lock_types[len(self._seqs)] = lock_str
                self._seqs.append(seq)
                self._rows.append(row)
                event = _NEW_EVENT(CallEvent)
                state = dict(tpl)
                state["seq"] = seq
                event.__dict__ = state
                return event
        return self._add_slow(line)

    def _parse_rest(self, rest: str):
        """Parse the post-seq tail once; ``None`` on any structural
        surprise (the slow path then reproduces canonical errors)."""
        try:
            fields: Dict[str, Any] = {}
            for part in rest.split(" "):
                key, raw = part.split("=", 1)
                fields[key] = decode_value(raw)
            fn = _intern(str(fields.pop("fn")))
            loc_text = str(fields.pop("loc"))
            loc = _LOC_CACHE.get(loc_text)
            if loc is None:
                loc = SourceLocation.decode(loc_text)
                _LOC_CACHE[loc_text] = loc
            row, lock_str = classify_call(fn, fields)
        except Exception:
            return None
        tpl = {"rank": self.rank, "seq": -1, "fn": fn, "args": fields,
               "loc": loc}
        entry = (tpl, row,
                 lock_str if (lock_str is not None
                              and row[9] == LOCK_OTHER) else None)
        if len(self._memo) < _MEMO_CAP:
            self._memo[rest] = entry
        return entry

    def _add_slow(self, line: str):
        from repro.profiler.events import decode_event
        event = decode_event(self.rank, line)
        if isinstance(event, CallEvent):
            row, lock_str = classify_call(event.fn, event.args)
            if lock_str is not None and row[9] == LOCK_OTHER:
                self._lock_types[len(self._seqs)] = lock_str
            self._seqs.append(event.seq)
            self._rows.append(row)
        return event

    def finish(self) -> CallTable:
        return CallTable.from_rows(self.rank, self._seqs, self._rows,
                                   self._lock_types)
