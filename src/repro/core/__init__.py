"""DN-Analyzer — offline trace analysis and consistency-error detection.

This package is the paper's primary contribution (sections III and IV-C):

1. :mod:`~repro.core.preprocess` rebuilds communicators, windows, and
   datatype data-maps from the per-rank traces;
2. :mod:`~repro.core.matching` matches synchronization calls across ranks
   (Algorithm 1, progress-counter driven);
3. :mod:`~repro.core.clocks` derives a happens-before oracle (vector
   clocks over the synchronization graph);
4. :mod:`~repro.core.dag` materializes the data-access DAG (Figure 4);
5. :mod:`~repro.core.regions` extracts concurrent regions between global
   synchronization cuts;
6. :mod:`~repro.core.epochs` / :mod:`~repro.core.model` identify epochs
   and lift trace events into analyzable access views;
7. :mod:`~repro.core.intra` and :mod:`~repro.core.inter` detect
   conflicting operations within an epoch and across processes, using the
   compatibility rules of :mod:`~repro.core.compat` (Table I);
8. :mod:`~repro.core.checker` wires it all together as :class:`MCChecker`.
"""

from repro.core.checker import CheckReport, MCChecker, check_app, check_traces
from repro.core.compat import (
    BOTH, ERROR, NONOV, MODEL_SEPARATE, MODEL_UNIFIED, compat_verdict,
)
from repro.core.config import CheckConfig
from repro.core.diagnostics import ConsistencyError
from repro.core.streaming import StreamingChecker, check_streaming

__all__ = [
    "CheckConfig", "CheckReport", "MCChecker", "check_app", "check_traces",
    "BOTH", "ERROR", "NONOV", "MODEL_SEPARATE", "MODEL_UNIFIED",
    "compat_verdict",
    "ConsistencyError",
    "StreamingChecker", "check_streaming",
]
