"""Happens-before oracle: vector clocks over the synchronization graph.

Checking whether two trace events are concurrent is the innermost query of
both detection passes.  Rather than answering it with DAG reachability
(quadratic in trace length), DN-Analyzer assigns *vector clocks* to
synchronization events only:

* the sync events of each rank form a chain (program order);
* a collective match fuses its member events into one *unit* whose clock
  joins all members' histories (everything before the barrier at any
  member happens-before everything after it at any member);
* directed matches (send->recv, post->start, complete->wait) contribute a
  one-way edge.

For arbitrary events, ``a happens-before b`` iff the first sync at
``rank(a)`` at-or-after ``a`` is known to the last sync at ``rank(b)``
at-or-before ``b`` — two binary searches and one integer compare.

Nonblocking RMA operations are compared by their *spans*: an operation
issued at ``seq_i`` whose epoch closes at ``seq_c`` may touch memory at any
instant in between, so span ``[seq_i, seq_c]`` is ordered after another
access only if the access happens-before the issue, and before it only if
the close happens-before the access (section II-B's consistency order).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

_EMPTY_I64 = np.empty(0, dtype=np.int64)

from repro.core.matching import KIND_COLLECTIVE, SyncMatch
from repro.core.preprocess import PreprocessedTrace
from repro.util.errors import AnalysisError


@dataclass(frozen=True)
class Span:
    """The influence interval of an access: ``[start_seq, end_seq]`` at a rank.

    Point accesses (loads/stores) have ``start == end``; a nonblocking RMA
    operation spans issue to epoch close.
    """

    rank: int
    start_seq: int
    end_seq: int

    @classmethod
    def point(cls, rank: int, seq: int) -> "Span":
        return cls(rank, seq, seq)


class ConcurrencyOracle:
    """Vector-clock-based happens-before and concurrency queries."""

    def __init__(self, pre: PreprocessedTrace, matches: Sequence[SyncMatch]):
        self.nranks = pre.nranks
        self._build(pre, matches)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _build(self, pre: PreprocessedTrace,
               matches: Sequence[SyncMatch]) -> None:
        from repro.core.calltable import PLANE_COLUMNAR, control_plane
        if control_plane() == PLANE_COLUMNAR:
            self._build_arrays(matches)
        else:
            self._build_reference(pre, matches)

    def _build_arrays(self, matches: Sequence[SyncMatch]) -> None:
        """Vectorized construction (the columnar control plane).

        Sync points, unit ids, and graph edges are assembled as numpy
        arrays (``np.unique`` replaces the participant dedup set and the
        per-point ``sync_index``/``unit_of`` dicts; ``searchsorted``
        replaces the point lookups), and the clock fixpoint batches work
        along *chains*: maximal paths of units with in/out degree one —
        the overwhelming shape of sync graphs, e.g. a fence loop is one
        chain of collective units — are condensed so one
        ``np.maximum.accumulate`` sweep propagates clocks down an entire
        chain, with the scalar Kahn loop left only for the condensed DAG
        of forks/joins.  Clock *values* are the unique fixpoint of the
        same constraints the reference build solves, so queries agree
        exactly (unit numbering may differ; it is internal).
        """
        n = self.nranks
        coll_s: List[List[int]] = [[] for _ in range(n)]
        coll_u: List[List[int]] = [[] for _ in range(n)]
        coll_nb: List[List[int]] = [[] for _ in range(n)]
        oth_s: List[List[int]] = [[] for _ in range(n)]
        exit_u: List[int] = []
        exit_r: List[int] = []
        exit_s: List[int] = []
        dir_sr: List[int] = []
        dir_ss: List[int] = []
        dir_dr: List[int] = []
        dir_ds: List[int] = []
        n_coll = 0
        for m in matches:
            if m.kind == KIND_COLLECTIVE:
                if not m.members:
                    continue
                uid = n_coll
                n_coll += 1
                nb = 1 if m.exits else 0
                for r, s in m.members.items():
                    coll_s[r].append(s)
                    coll_u[r].append(uid)
                    coll_nb[r].append(nb)
                for r, s in m.exits.items():
                    oth_s[r].append(s)
                    exit_u.append(uid)
                    exit_r.append(r)
                    exit_s.append(s)
            else:
                if m.src is not None:
                    oth_s[m.src[0]].append(m.src[1])
                if m.dst is not None:
                    oth_s[m.dst[0]].append(m.dst[1])
                if m.src is not None and m.dst is not None:
                    dir_sr.append(m.src[0])
                    dir_ss.append(m.src[1])
                    dir_dr.append(m.dst[0])
                    dir_ds.append(m.dst[1])

        # per-rank sorted unique sync positions + owning-unit arrays;
        # singleton units are minted per rank in position order
        sync_np: List[np.ndarray] = []
        unit_at: List[np.ndarray] = []
        coll_at: List[np.ndarray] = []
        nb_skip: List[np.ndarray] = []
        next_uid = n_coll
        for r in range(n):
            cs = np.asarray(coll_s[r], dtype=np.int64)
            alls = np.concatenate(
                [cs, np.asarray(oth_s[r], dtype=np.int64)])
            uniq = np.unique(alls)
            ua = np.full(uniq.size, -1, dtype=np.int64)
            nb = np.zeros(uniq.size, dtype=bool)
            if cs.size:
                pos = np.searchsorted(uniq, cs)
                ua[pos] = np.asarray(coll_u[r], dtype=np.int64)
                nb[pos] = np.asarray(coll_nb[r], dtype=bool)
            single = ua < 0
            cnt = int(single.sum())
            if cnt:
                ua[single] = np.arange(next_uid, next_uid + cnt)
                next_uid += cnt
            sync_np.append(uniq)
            unit_at.append(ua)
            coll_at.append(ua < n_coll)
            idx = np.arange(uniq.size, dtype=np.int64)
            nb_skip.append(np.maximum.accumulate(np.where(nb, -1, idx))
                           if uniq.size else idx)
        n_units = next_uid

        def lookup(ranks: List[int], seqs: List[int]) -> np.ndarray:
            rr = np.asarray(ranks, dtype=np.int64)
            ss = np.asarray(seqs, dtype=np.int64)
            out = np.empty(rr.size, dtype=np.int64)
            for r in np.unique(rr).tolist():
                mask = rr == r
                out[mask] = unit_at[r][
                    np.searchsorted(sync_np[r], ss[mask])]
            return out

        eu: List[np.ndarray] = []
        ev: List[np.ndarray] = []
        for r in range(n):
            ua = unit_at[r]
            if ua.size >= 2:  # program-order chain
                eu.append(ua[:-1])
                ev.append(ua[1:])
        if dir_sr:
            eu.append(lookup(dir_sr, dir_ss))
            ev.append(lookup(dir_dr, dir_ds))
        if exit_u:
            eu.append(np.asarray(exit_u, dtype=np.int64))
            ev.append(lookup(exit_r, exit_s))
        if eu:
            e_u = np.concatenate(eu)
            e_v = np.concatenate(ev)
            keep = e_u != e_v
            e_u = e_u[keep]
            e_v = e_v[keep]
            if e_u.size:
                _, first = np.unique(e_u * n_units + e_v,
                                     return_index=True)
                e_u = e_u[first]
                e_v = e_v[first]
        else:
            e_u = e_v = np.empty(0, dtype=np.int64)

        # per-unit own entries (sync position + 1 at the owning rank)
        clocks = np.zeros((n_units, n), dtype=np.int64)
        for r in range(n):
            ua = unit_at[r]
            if ua.size:
                clocks[ua, r] = np.arange(1, ua.size + 1)

        # chain condensation: an edge u->v with outdeg(u)==indeg(v)==1
        # is interior to a path; paths are vertex-disjoint, all external
        # edges attach at a path's head or tail
        outdeg = np.bincount(e_u, minlength=n_units)
        indeg = np.bincount(e_v, minlength=n_units)
        chain = (outdeg[e_u] == 1) & (indeg[e_v] == 1)
        nxt = np.full(n_units, -1, dtype=np.int64)
        nxt[e_u[chain]] = e_v[chain]
        is_head = np.ones(n_units, dtype=bool)
        is_head[e_v[chain]] = False
        path_units = np.empty(n_units, dtype=np.int64)
        path_of = np.empty(n_units, dtype=np.int64)
        path_off = [0]
        nxt_l = nxt.tolist()
        w = 0
        p = 0
        for h in np.nonzero(is_head)[0].tolist():
            u = h
            while u != -1:
                path_units[w] = u
                path_of[u] = p
                w += 1
                u = nxt_l[u]
            path_off.append(w)
            p += 1
        if w != n_units:  # a pure chain cycle never reaches a head
            raise AnalysisError(
                "synchronization graph contains a cycle — inconsistent "
                "trace")
        n_paths = p

        # condensed DAG over paths: the non-chain edges
        nc_u = e_u[~chain]
        nc_v = e_v[~chain]
        ce_u = path_of[nc_u]
        ce_v = path_of[nc_v]
        cind = np.bincount(ce_v, minlength=n_paths)
        order = np.argsort(ce_u, kind="stable")
        out_src = ce_u[order]
        out_dst = ce_v[order]
        out_lo = np.searchsorted(out_src, np.arange(n_paths), side="left")
        out_hi = np.searchsorted(out_src, np.arange(n_paths), side="right")
        iorder = np.argsort(ce_v, kind="stable")
        in_units = nc_u[iorder]  # source *unit* of each incoming edge
        in_dst = ce_v[iorder]
        in_lo = np.searchsorted(in_dst, np.arange(n_paths), side="left")
        in_hi = np.searchsorted(in_dst, np.arange(n_paths), side="right")

        ready = np.nonzero(cind == 0)[0].tolist()
        cind_l = cind.tolist()
        done = 0
        while ready:
            pth = ready.pop()
            done += 1
            lo, hi = path_off[pth], path_off[pth + 1]
            units = path_units[lo:hi]
            a, b = in_lo[pth], in_hi[pth]
            if b > a:  # join external preds into the path head
                srcs = in_units[a:b]
                head = units[0]
                if srcs.size == 1:
                    np.maximum(clocks[head], clocks[srcs[0]],
                               out=clocks[head])
                else:
                    np.maximum(clocks[head], clocks[srcs].max(axis=0),
                               out=clocks[head])
            if hi - lo > 1:  # sweep the chain in one accumulate pass
                clocks[units] = np.maximum.accumulate(clocks[units],
                                                      axis=0)
            for q in out_dst[out_lo[pth]:out_hi[pth]].tolist():
                cind_l[q] -= 1
                if cind_l[q] == 0:
                    ready.append(q)
        if done != n_paths:
            raise AnalysisError(
                "synchronization graph contains a cycle — inconsistent "
                "trace")

        self.sync_seqs = [a.tolist() for a in sync_np]
        self._sync_np = [a if a.size else _EMPTY_I64 for a in sync_np]
        self._unit_at = unit_at
        self._coll_at = coll_at
        self._nb_skip = nb_skip
        self._clocks = clocks

    def _build_reference(self, pre: PreprocessedTrace,
                         matches: Sequence[SyncMatch]) -> None:
        """The object control plane's dict-based construction (kept as
        the differential reference for :meth:`_build_arrays`)."""
        participants: List[Tuple[int, int]] = []
        seen = set()
        for match in matches:
            for rank, seq in match.participants():
                if (rank, seq) not in seen:
                    seen.add((rank, seq))
                    participants.append((rank, seq))

        # per-rank ordered sync positions
        self.sync_seqs: List[List[int]] = [[] for _ in range(self.nranks)]
        for rank, seq in participants:
            self.sync_seqs[rank].append(seq)
        for seqs in self.sync_seqs:
            seqs.sort()
        sync_index = {
            (rank, seq): i
            for rank in range(self.nranks)
            for i, seq in enumerate(self.sync_seqs[rank])
        }

        # units: collective matches fuse members; everything else singleton
        unit_of: Dict[Tuple[int, int], int] = {}
        unit_events: List[List[Tuple[int, int]]] = []

        def unit_for(point: Tuple[int, int]) -> int:
            uid = unit_of.get(point)
            if uid is None:
                uid = len(unit_events)
                unit_of[point] = uid
                unit_events.append([point])
            return uid

        collective_units = set()
        #: initiation points of nonblocking collectives: their unit's join
        #: is never readable through the init itself, only via the Wait
        nb_inits = set()
        #: (collective unit id, exit point) pairs for nonblocking
        #: collectives: the join becomes visible at each rank's Wait
        exit_edges: List[Tuple[int, Tuple[int, int]]] = []
        for match in matches:
            if match.kind == KIND_COLLECTIVE and match.members:
                uid = len(unit_events)
                members = sorted(match.members.items())
                unit_events.append([(r, s) for r, s in members])
                collective_units.add(uid)
                for r, s in members:
                    unit_of[(r, s)] = uid
                if match.exits:
                    nb_inits.update((r, s) for r, s in members)
                for r, s in match.exits.items():
                    exit_edges.append((uid, (r, s)))

        edges: List[Tuple[int, int]] = []
        for rank in range(self.nranks):
            seqs = self.sync_seqs[rank]
            for prev_seq, next_seq in zip(seqs, seqs[1:]):
                u, v = unit_for((rank, prev_seq)), unit_for((rank, next_seq))
                if u != v:
                    edges.append((u, v))
        for match in matches:
            if match.kind != KIND_COLLECTIVE and match.src and match.dst:
                u, v = unit_for(match.src), unit_for(match.dst)
                if u != v:
                    edges.append((u, v))
        for uid, exit_point in exit_edges:
            v = unit_for(exit_point)
            if uid != v:
                edges.append((uid, v))

        n_units = len(unit_events)
        preds: List[List[int]] = [[] for _ in range(n_units)]
        out: List[List[int]] = [[] for _ in range(n_units)]
        indegree = [0] * n_units
        for u, v in set(edges):
            preds[v].append(u)
            out[u].append(v)
            indegree[v] += 1

        # Kahn topological pass computing clocks
        clocks = np.zeros((n_units, self.nranks), dtype=np.int64)
        ready = [u for u in range(n_units) if indegree[u] == 0]
        done = 0
        while ready:
            u = ready.pop()
            done += 1
            clock = clocks[u]
            for p in preds[u]:
                np.maximum(clock, clocks[p], out=clock)
            for rank, seq in unit_events[u]:
                idx = sync_index[(rank, seq)] + 1
                if clock[rank] < idx:
                    clock[rank] = idx
            for v in out[u]:
                indegree[v] -= 1
                if indegree[v] == 0:
                    ready.append(v)
        if done != n_units:
            raise AnalysisError(
                "synchronization graph contains a cycle — inconsistent trace")

        self._unit_of = unit_of
        self._collective_units = collective_units
        self._nb_inits = nb_inits
        self._clocks = clocks
        self._finalize()

    def _finalize(self) -> None:
        """Derive the per-rank numpy lookup tables the batched queries use.

        For each rank's sorted sync positions: the owning unit id, whether
        that unit is a collective (its join is invisible at the member call
        itself), and the nearest at-or-before position that is *not* a
        nonblocking-collective initiation (whose join only lands at the
        Wait).  These tables make one ``ordered_batch`` call a handful of
        ``searchsorted``/fancy-index passes instead of a Python loop.
        """
        self._sync_np: List[np.ndarray] = []
        self._unit_at: List[np.ndarray] = []
        self._coll_at: List[np.ndarray] = []
        self._nb_skip: List[np.ndarray] = []
        for rank, seqs in enumerate(self.sync_seqs):
            n = len(seqs)
            self._sync_np.append(np.asarray(seqs, dtype=np.int64)
                                 if n else _EMPTY_I64)
            units = np.fromiter((self._unit_of[(rank, s)] for s in seqs),
                                dtype=np.int64, count=n)
            self._unit_at.append(units)
            coll = np.fromiter(
                (self._unit_of[(rank, s)] in self._collective_units
                 for s in seqs), dtype=bool, count=n)
            self._coll_at.append(coll)
            skip = np.empty(n, dtype=np.int64)
            last = -1
            for j, s in enumerate(seqs):
                if (rank, s) not in self._nb_inits:
                    last = j
                skip[j] = last
            self._nb_skip.append(skip)

    # ------------------------------------------------------------------
    # serialization (the compact worker-shippable form)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Compact picklable state: the per-rank lookup arrays and the
        unit-clock matrix — every query reads only these, so both control
        planes ship the same (cheap, dict-free) form."""
        return {
            "nranks": self.nranks,
            "sync": self._sync_np,
            "unit_at": self._unit_at,
            "coll_at": self._coll_at,
            "nb_skip": self._nb_skip,
            "clocks": self._clocks,
        }

    def __setstate__(self, state: dict) -> None:
        self.nranks = state["nranks"]
        self._sync_np = state["sync"]
        self.sync_seqs = [a.tolist() for a in state["sync"]]
        self._unit_at = state["unit_at"]
        self._coll_at = state["coll_at"]
        self._nb_skip = state["nb_skip"]
        self._clocks = state["clocks"]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _visible_unit(self, b_rank: int, b_seq: int) -> int:
        """The unit whose clock is visible at ``(b_rank, b_seq)``, or -1.

        The last sync at ``b_rank`` at-or-before ``b_seq``.  If that sync
        *is* a collective member call, the collective's join becomes
        visible only after it (its call vertex only feeds the synthetic
        sync node), so step back to the previous sync; a directed
        destination (recv, start, wait) does receive its incoming edge at
        the call itself.  Nonblocking-collective initiations carry no
        incoming knowledge (the join lands at their Wait), so step past
        them too.
        """
        b_syncs = self.sync_seqs[b_rank]
        j = bisect_right(b_syncs, b_seq) - 1
        if j >= 0 and b_syncs[j] == b_seq and self._coll_at[b_rank][j]:
            j -= 1
        if j >= 0:  # nearest at-or-before non-initiation position
            j = int(self._nb_skip[b_rank][j])
        if j < 0:
            return -1  # b's rank has not synchronized yet
        return int(self._unit_at[b_rank][j])

    def happens_before(self, a_rank: int, a_seq: int, b_rank: int,
                       b_seq: int) -> bool:
        """True iff the event at ``(a_rank, a_seq)`` happens-before (or is
        program-order-before) the event at ``(b_rank, b_seq)``."""
        if a_rank == b_rank:
            return a_seq <= b_seq
        # first sync at a_rank at-or-after a
        a_syncs = self.sync_seqs[a_rank]
        i = bisect_left(a_syncs, a_seq)
        if i >= len(a_syncs):
            return False  # a's rank never synchronizes again
        b_unit = self._visible_unit(b_rank, b_seq)
        if b_unit < 0:
            return False
        return bool(self._clocks[b_unit][a_rank] >= i + 1)

    def ordered(self, a: Span, b: Span) -> bool:
        """True iff the spans are ordered (either direction) by
        happens-before + consistency order."""
        if a.rank == b.rank:
            return a.end_seq <= b.start_seq or b.end_seq <= a.start_seq
        return (self.happens_before(a.rank, a.end_seq, b.rank, b.start_seq)
                or self.happens_before(b.rank, b.end_seq, a.rank,
                                       a.start_seq))

    def concurrent(self, a: Span, b: Span) -> bool:
        return not self.ordered(a, b)

    # ------------------------------------------------------------------
    # batched queries
    # ------------------------------------------------------------------

    def _hb_many_to_one(self, a_ranks: np.ndarray, a_seqs: np.ndarray,
                        b_rank: int, b_seq: int) -> np.ndarray:
        """Vectorized ``happens_before(a_ranks[k], a_seqs[k], b, b)``;
        callers guarantee ``a_ranks[k] != b_rank``."""
        out = np.zeros(len(a_ranks), dtype=bool)
        b_unit = self._visible_unit(b_rank, b_seq)
        if b_unit < 0:
            return out
        row = self._clocks[b_unit]
        for r in np.unique(a_ranks):
            m = a_ranks == r
            sync = self._sync_np[r]
            i = np.searchsorted(sync, a_seqs[m], side="left")
            out[m] = (i < len(sync)) & (row[r] >= i + 1)
        return out

    def _hb_one_to_many(self, a_rank: int, a_seq: int, b_ranks: np.ndarray,
                        b_seqs: np.ndarray) -> np.ndarray:
        """Vectorized ``happens_before(a, a, b_ranks[k], b_seqs[k])``;
        callers guarantee ``b_ranks[k] != a_rank``."""
        out = np.zeros(len(b_ranks), dtype=bool)
        a_syncs = self.sync_seqs[a_rank]
        i = bisect_left(a_syncs, a_seq)
        if i >= len(a_syncs):
            return out
        for r in np.unique(b_ranks):
            m = b_ranks == r
            sync = self._sync_np[r]
            if not len(sync):
                continue
            seqs = b_seqs[m]
            # the vectorized form of _visible_unit
            j = np.searchsorted(sync, seqs, side="right") - 1
            j_safe = np.maximum(j, 0)
            exact_coll = (j >= 0) & (sync[j_safe] == seqs) \
                & self._coll_at[r][j_safe]
            j = np.where(exact_coll, j - 1, j)
            j_safe = np.maximum(j, 0)
            j = np.where(j >= 0, self._nb_skip[r][j_safe], -1)
            valid = j >= 0
            res = np.zeros(len(seqs), dtype=bool)
            if valid.any():
                units = self._unit_at[r][j[valid]]
                res[valid] = self._clocks[units, a_rank] >= i + 1
            out[m] = res
        return out

    def ordered_batch(self, ranks: Sequence[int], starts: Sequence[int],
                      ends: Sequence[int], b: Span) -> np.ndarray:
        """Vectorized :meth:`ordered` of many spans against one.

        ``ranks``/``starts``/``ends`` are parallel arrays describing spans
        ``Span(ranks[k], starts[k], ends[k])``; the result is a boolean
        mask with ``mask[k] == ordered(spans[k], b)``.  One call replaces
        the per-pair Python queries of a detection inner loop.
        """
        ranks = np.asarray(ranks, dtype=np.int64)
        starts = np.asarray(starts, dtype=np.int64)
        ends = np.asarray(ends, dtype=np.int64)
        out = np.empty(len(ranks), dtype=bool)
        same = ranks == b.rank
        if same.any():
            out[same] = (ends[same] <= b.start_seq) \
                | (b.end_seq <= starts[same])
        diff = ~same
        if diff.any():
            out[diff] = self._hb_many_to_one(
                ranks[diff], ends[diff], b.rank, b.start_seq) \
                | self._hb_one_to_many(
                    b.rank, b.end_seq, ranks[diff], starts[diff])
        return out

    def _hb_pairs(self, a_ranks: np.ndarray, a_seqs: np.ndarray,
                  b_ranks: np.ndarray, b_seqs: np.ndarray) -> np.ndarray:
        """Elementwise ``happens_before(a[k], b[k])`` over pair arrays;
        callers guarantee ``a_ranks[k] != b_ranks[k]``."""
        n = len(a_ranks)
        out = np.zeros(n, dtype=bool)
        # index of a's first sync at-or-after a_seq, grouped per a-rank
        sync_i = np.zeros(n, dtype=np.int64)
        a_has_sync = np.zeros(n, dtype=bool)
        for r in np.unique(a_ranks):
            m = a_ranks == r
            sync = self._sync_np[r]
            i = np.searchsorted(sync, a_seqs[m], side="left")
            sync_i[m] = i
            a_has_sync[m] = i < len(sync)
        # the unit visible at (b_rank, b_seq), grouped per b-rank (the
        # vectorized form of _visible_unit, as in _hb_one_to_many)
        unit = np.full(n, -1, dtype=np.int64)
        for r in np.unique(b_ranks):
            m = b_ranks == r
            sync = self._sync_np[r]
            if not len(sync):
                continue
            seqs = b_seqs[m]
            j = np.searchsorted(sync, seqs, side="right") - 1
            j_safe = np.maximum(j, 0)
            exact_coll = (j >= 0) & (sync[j_safe] == seqs) \
                & self._coll_at[r][j_safe]
            j = np.where(exact_coll, j - 1, j)
            j_safe = np.maximum(j, 0)
            j = np.where(j >= 0, self._nb_skip[r][j_safe], -1)
            units = np.full(len(seqs), -1, dtype=np.int64)
            valid = j >= 0
            if valid.any():
                units[valid] = self._unit_at[r][j[valid]]
            unit[m] = units
        ok = a_has_sync & (unit >= 0)
        if ok.any():
            out[ok] = self._clocks[unit[ok], a_ranks[ok]] >= sync_i[ok] + 1
        return out

    def ordered_pairs(self, a_ranks: Sequence[int], a_starts: Sequence[int],
                      a_ends: Sequence[int], b_ranks: Sequence[int],
                      b_starts: Sequence[int], b_ends: Sequence[int]
                      ) -> np.ndarray:
        """Vectorized :meth:`ordered` over parallel pair arrays:
        ``mask[k] == ordered(Span(a...[k]), Span(b...[k]))``.

        Where :meth:`ordered_batch` compares many spans against one fixed
        span (one call per inner-loop *group*), this batches over both
        sides at once, so a detection pass needs a single oracle query
        for *all* its candidate pairs."""
        a_ranks = np.asarray(a_ranks, dtype=np.int64)
        a_starts = np.asarray(a_starts, dtype=np.int64)
        a_ends = np.asarray(a_ends, dtype=np.int64)
        b_ranks = np.asarray(b_ranks, dtype=np.int64)
        b_starts = np.asarray(b_starts, dtype=np.int64)
        b_ends = np.asarray(b_ends, dtype=np.int64)
        out = np.empty(len(a_ranks), dtype=bool)
        same = a_ranks == b_ranks
        if same.any():
            out[same] = (a_ends[same] <= b_starts[same]) \
                | (b_ends[same] <= a_starts[same])
        diff = ~same
        if diff.any():
            out[diff] = self._hb_pairs(
                a_ranks[diff], a_ends[diff], b_ranks[diff],
                b_starts[diff]) \
                | self._hb_pairs(
                    b_ranks[diff], b_ends[diff], a_ranks[diff],
                    a_starts[diff])
        return out

    def ordered_spans(self, spans: Sequence[Span], b: Span) -> np.ndarray:
        """:meth:`ordered_batch` convenience over :class:`Span` objects."""
        n = len(spans)
        ranks = np.fromiter((s.rank for s in spans), dtype=np.int64, count=n)
        starts = np.fromiter((s.start_seq for s in spans), dtype=np.int64,
                             count=n)
        ends = np.fromiter((s.end_seq for s in spans), dtype=np.int64,
                           count=n)
        return self.ordered_batch(ranks, starts, ends, b)
