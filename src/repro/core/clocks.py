"""Happens-before oracle: vector clocks over the synchronization graph.

Checking whether two trace events are concurrent is the innermost query of
both detection passes.  Rather than answering it with DAG reachability
(quadratic in trace length), DN-Analyzer assigns *vector clocks* to
synchronization events only:

* the sync events of each rank form a chain (program order);
* a collective match fuses its member events into one *unit* whose clock
  joins all members' histories (everything before the barrier at any
  member happens-before everything after it at any member);
* directed matches (send->recv, post->start, complete->wait) contribute a
  one-way edge.

For arbitrary events, ``a happens-before b`` iff the first sync at
``rank(a)`` at-or-after ``a`` is known to the last sync at ``rank(b)``
at-or-before ``b`` — two binary searches and one integer compare.

Nonblocking RMA operations are compared by their *spans*: an operation
issued at ``seq_i`` whose epoch closes at ``seq_c`` may touch memory at any
instant in between, so span ``[seq_i, seq_c]`` is ordered after another
access only if the access happens-before the issue, and before it only if
the close happens-before the access (section II-B's consistency order).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

_EMPTY_I64 = np.empty(0, dtype=np.int64)

from repro.core.matching import KIND_COLLECTIVE, SyncMatch
from repro.core.preprocess import PreprocessedTrace
from repro.util.errors import AnalysisError


@dataclass(frozen=True)
class Span:
    """The influence interval of an access: ``[start_seq, end_seq]`` at a rank.

    Point accesses (loads/stores) have ``start == end``; a nonblocking RMA
    operation spans issue to epoch close.
    """

    rank: int
    start_seq: int
    end_seq: int

    @classmethod
    def point(cls, rank: int, seq: int) -> "Span":
        return cls(rank, seq, seq)


class ConcurrencyOracle:
    """Vector-clock-based happens-before and concurrency queries."""

    def __init__(self, pre: PreprocessedTrace, matches: Sequence[SyncMatch]):
        self.nranks = pre.nranks
        self._build(pre, matches)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _build(self, pre: PreprocessedTrace,
               matches: Sequence[SyncMatch]) -> None:
        participants: List[Tuple[int, int]] = []
        seen = set()
        for match in matches:
            for rank, seq in match.participants():
                if (rank, seq) not in seen:
                    seen.add((rank, seq))
                    participants.append((rank, seq))

        # per-rank ordered sync positions
        self.sync_seqs: List[List[int]] = [[] for _ in range(self.nranks)]
        for rank, seq in participants:
            self.sync_seqs[rank].append(seq)
        for seqs in self.sync_seqs:
            seqs.sort()
        sync_index = {
            (rank, seq): i
            for rank in range(self.nranks)
            for i, seq in enumerate(self.sync_seqs[rank])
        }

        # units: collective matches fuse members; everything else singleton
        unit_of: Dict[Tuple[int, int], int] = {}
        unit_events: List[List[Tuple[int, int]]] = []

        def unit_for(point: Tuple[int, int]) -> int:
            uid = unit_of.get(point)
            if uid is None:
                uid = len(unit_events)
                unit_of[point] = uid
                unit_events.append([point])
            return uid

        collective_units = set()
        #: initiation points of nonblocking collectives: their unit's join
        #: is never readable through the init itself, only via the Wait
        nb_inits = set()
        #: (collective unit id, exit point) pairs for nonblocking
        #: collectives: the join becomes visible at each rank's Wait
        exit_edges: List[Tuple[int, Tuple[int, int]]] = []
        for match in matches:
            if match.kind == KIND_COLLECTIVE and match.members:
                uid = len(unit_events)
                members = sorted(match.members.items())
                unit_events.append([(r, s) for r, s in members])
                collective_units.add(uid)
                for r, s in members:
                    unit_of[(r, s)] = uid
                if match.exits:
                    nb_inits.update((r, s) for r, s in members)
                for r, s in match.exits.items():
                    exit_edges.append((uid, (r, s)))

        edges: List[Tuple[int, int]] = []
        for rank in range(self.nranks):
            seqs = self.sync_seqs[rank]
            for prev_seq, next_seq in zip(seqs, seqs[1:]):
                u, v = unit_for((rank, prev_seq)), unit_for((rank, next_seq))
                if u != v:
                    edges.append((u, v))
        for match in matches:
            if match.kind != KIND_COLLECTIVE and match.src and match.dst:
                u, v = unit_for(match.src), unit_for(match.dst)
                if u != v:
                    edges.append((u, v))
        for uid, exit_point in exit_edges:
            v = unit_for(exit_point)
            if uid != v:
                edges.append((uid, v))

        n_units = len(unit_events)
        preds: List[List[int]] = [[] for _ in range(n_units)]
        out: List[List[int]] = [[] for _ in range(n_units)]
        indegree = [0] * n_units
        for u, v in set(edges):
            preds[v].append(u)
            out[u].append(v)
            indegree[v] += 1

        # Kahn topological pass computing clocks
        clocks = np.zeros((n_units, self.nranks), dtype=np.int64)
        ready = [u for u in range(n_units) if indegree[u] == 0]
        done = 0
        while ready:
            u = ready.pop()
            done += 1
            clock = clocks[u]
            for p in preds[u]:
                np.maximum(clock, clocks[p], out=clock)
            for rank, seq in unit_events[u]:
                idx = sync_index[(rank, seq)] + 1
                if clock[rank] < idx:
                    clock[rank] = idx
            for v in out[u]:
                indegree[v] -= 1
                if indegree[v] == 0:
                    ready.append(v)
        if done != n_units:
            raise AnalysisError(
                "synchronization graph contains a cycle — inconsistent trace")

        self._unit_of = unit_of
        self._collective_units = collective_units
        self._nb_inits = nb_inits
        self._clocks = clocks
        self._finalize()

    def _finalize(self) -> None:
        """Derive the per-rank numpy lookup tables the batched queries use.

        For each rank's sorted sync positions: the owning unit id, whether
        that unit is a collective (its join is invisible at the member call
        itself), and the nearest at-or-before position that is *not* a
        nonblocking-collective initiation (whose join only lands at the
        Wait).  These tables make one ``ordered_batch`` call a handful of
        ``searchsorted``/fancy-index passes instead of a Python loop.
        """
        self._sync_np: List[np.ndarray] = []
        self._unit_at: List[np.ndarray] = []
        self._coll_at: List[np.ndarray] = []
        self._nb_skip: List[np.ndarray] = []
        for rank, seqs in enumerate(self.sync_seqs):
            n = len(seqs)
            self._sync_np.append(np.asarray(seqs, dtype=np.int64)
                                 if n else _EMPTY_I64)
            units = np.fromiter((self._unit_of[(rank, s)] for s in seqs),
                                dtype=np.int64, count=n)
            self._unit_at.append(units)
            coll = np.fromiter(
                (self._unit_of[(rank, s)] in self._collective_units
                 for s in seqs), dtype=bool, count=n)
            self._coll_at.append(coll)
            skip = np.empty(n, dtype=np.int64)
            last = -1
            for j, s in enumerate(seqs):
                if (rank, s) not in self._nb_inits:
                    last = j
                skip[j] = last
            self._nb_skip.append(skip)

    # ------------------------------------------------------------------
    # serialization (the compact worker-shippable form)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Compact picklable state: sync positions, the unit map, and the
        unit-clock matrix.  The derived numpy tables are rebuilt on load."""
        return {
            "nranks": self.nranks,
            "sync_seqs": self.sync_seqs,
            "unit_of": self._unit_of,
            "collective_units": self._collective_units,
            "nb_inits": self._nb_inits,
            "clocks": self._clocks,
        }

    def __setstate__(self, state: dict) -> None:
        self.nranks = state["nranks"]
        self.sync_seqs = state["sync_seqs"]
        self._unit_of = state["unit_of"]
        self._collective_units = state["collective_units"]
        self._nb_inits = state["nb_inits"]
        self._clocks = state["clocks"]
        self._finalize()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _visible_unit(self, b_rank: int, b_seq: int) -> int:
        """The unit whose clock is visible at ``(b_rank, b_seq)``, or -1.

        The last sync at ``b_rank`` at-or-before ``b_seq``.  If that sync
        *is* a collective member call, the collective's join becomes
        visible only after it (its call vertex only feeds the synthetic
        sync node), so step back to the previous sync; a directed
        destination (recv, start, wait) does receive its incoming edge at
        the call itself.  Nonblocking-collective initiations carry no
        incoming knowledge (the join lands at their Wait), so step past
        them too.
        """
        b_syncs = self.sync_seqs[b_rank]
        j = bisect_right(b_syncs, b_seq) - 1
        if j >= 0 and b_syncs[j] == b_seq and \
                self._unit_of[(b_rank, b_seq)] in self._collective_units:
            j -= 1
        while j >= 0 and (b_rank, b_syncs[j]) in self._nb_inits:
            j -= 1
        if j < 0:
            return -1  # b's rank has not synchronized yet
        return self._unit_of[(b_rank, b_syncs[j])]

    def happens_before(self, a_rank: int, a_seq: int, b_rank: int,
                       b_seq: int) -> bool:
        """True iff the event at ``(a_rank, a_seq)`` happens-before (or is
        program-order-before) the event at ``(b_rank, b_seq)``."""
        if a_rank == b_rank:
            return a_seq <= b_seq
        # first sync at a_rank at-or-after a
        a_syncs = self.sync_seqs[a_rank]
        i = bisect_left(a_syncs, a_seq)
        if i >= len(a_syncs):
            return False  # a's rank never synchronizes again
        b_unit = self._visible_unit(b_rank, b_seq)
        if b_unit < 0:
            return False
        return bool(self._clocks[b_unit][a_rank] >= i + 1)

    def ordered(self, a: Span, b: Span) -> bool:
        """True iff the spans are ordered (either direction) by
        happens-before + consistency order."""
        if a.rank == b.rank:
            return a.end_seq <= b.start_seq or b.end_seq <= a.start_seq
        return (self.happens_before(a.rank, a.end_seq, b.rank, b.start_seq)
                or self.happens_before(b.rank, b.end_seq, a.rank,
                                       a.start_seq))

    def concurrent(self, a: Span, b: Span) -> bool:
        return not self.ordered(a, b)

    # ------------------------------------------------------------------
    # batched queries
    # ------------------------------------------------------------------

    def _hb_many_to_one(self, a_ranks: np.ndarray, a_seqs: np.ndarray,
                        b_rank: int, b_seq: int) -> np.ndarray:
        """Vectorized ``happens_before(a_ranks[k], a_seqs[k], b, b)``;
        callers guarantee ``a_ranks[k] != b_rank``."""
        out = np.zeros(len(a_ranks), dtype=bool)
        b_unit = self._visible_unit(b_rank, b_seq)
        if b_unit < 0:
            return out
        row = self._clocks[b_unit]
        for r in np.unique(a_ranks):
            m = a_ranks == r
            sync = self._sync_np[r]
            i = np.searchsorted(sync, a_seqs[m], side="left")
            out[m] = (i < len(sync)) & (row[r] >= i + 1)
        return out

    def _hb_one_to_many(self, a_rank: int, a_seq: int, b_ranks: np.ndarray,
                        b_seqs: np.ndarray) -> np.ndarray:
        """Vectorized ``happens_before(a, a, b_ranks[k], b_seqs[k])``;
        callers guarantee ``b_ranks[k] != a_rank``."""
        out = np.zeros(len(b_ranks), dtype=bool)
        a_syncs = self.sync_seqs[a_rank]
        i = bisect_left(a_syncs, a_seq)
        if i >= len(a_syncs):
            return out
        for r in np.unique(b_ranks):
            m = b_ranks == r
            sync = self._sync_np[r]
            if not len(sync):
                continue
            seqs = b_seqs[m]
            # the vectorized form of _visible_unit
            j = np.searchsorted(sync, seqs, side="right") - 1
            j_safe = np.maximum(j, 0)
            exact_coll = (j >= 0) & (sync[j_safe] == seqs) \
                & self._coll_at[r][j_safe]
            j = np.where(exact_coll, j - 1, j)
            j_safe = np.maximum(j, 0)
            j = np.where(j >= 0, self._nb_skip[r][j_safe], -1)
            valid = j >= 0
            res = np.zeros(len(seqs), dtype=bool)
            if valid.any():
                units = self._unit_at[r][j[valid]]
                res[valid] = self._clocks[units, a_rank] >= i + 1
            out[m] = res
        return out

    def ordered_batch(self, ranks: Sequence[int], starts: Sequence[int],
                      ends: Sequence[int], b: Span) -> np.ndarray:
        """Vectorized :meth:`ordered` of many spans against one.

        ``ranks``/``starts``/``ends`` are parallel arrays describing spans
        ``Span(ranks[k], starts[k], ends[k])``; the result is a boolean
        mask with ``mask[k] == ordered(spans[k], b)``.  One call replaces
        the per-pair Python queries of a detection inner loop.
        """
        ranks = np.asarray(ranks, dtype=np.int64)
        starts = np.asarray(starts, dtype=np.int64)
        ends = np.asarray(ends, dtype=np.int64)
        out = np.empty(len(ranks), dtype=bool)
        same = ranks == b.rank
        if same.any():
            out[same] = (ends[same] <= b.start_seq) \
                | (b.end_seq <= starts[same])
        diff = ~same
        if diff.any():
            out[diff] = self._hb_many_to_one(
                ranks[diff], ends[diff], b.rank, b.start_seq) \
                | self._hb_one_to_many(
                    b.rank, b.end_seq, ranks[diff], starts[diff])
        return out

    def _hb_pairs(self, a_ranks: np.ndarray, a_seqs: np.ndarray,
                  b_ranks: np.ndarray, b_seqs: np.ndarray) -> np.ndarray:
        """Elementwise ``happens_before(a[k], b[k])`` over pair arrays;
        callers guarantee ``a_ranks[k] != b_ranks[k]``."""
        n = len(a_ranks)
        out = np.zeros(n, dtype=bool)
        # index of a's first sync at-or-after a_seq, grouped per a-rank
        sync_i = np.zeros(n, dtype=np.int64)
        a_has_sync = np.zeros(n, dtype=bool)
        for r in np.unique(a_ranks):
            m = a_ranks == r
            sync = self._sync_np[r]
            i = np.searchsorted(sync, a_seqs[m], side="left")
            sync_i[m] = i
            a_has_sync[m] = i < len(sync)
        # the unit visible at (b_rank, b_seq), grouped per b-rank (the
        # vectorized form of _visible_unit, as in _hb_one_to_many)
        unit = np.full(n, -1, dtype=np.int64)
        for r in np.unique(b_ranks):
            m = b_ranks == r
            sync = self._sync_np[r]
            if not len(sync):
                continue
            seqs = b_seqs[m]
            j = np.searchsorted(sync, seqs, side="right") - 1
            j_safe = np.maximum(j, 0)
            exact_coll = (j >= 0) & (sync[j_safe] == seqs) \
                & self._coll_at[r][j_safe]
            j = np.where(exact_coll, j - 1, j)
            j_safe = np.maximum(j, 0)
            j = np.where(j >= 0, self._nb_skip[r][j_safe], -1)
            units = np.full(len(seqs), -1, dtype=np.int64)
            valid = j >= 0
            if valid.any():
                units[valid] = self._unit_at[r][j[valid]]
            unit[m] = units
        ok = a_has_sync & (unit >= 0)
        if ok.any():
            out[ok] = self._clocks[unit[ok], a_ranks[ok]] >= sync_i[ok] + 1
        return out

    def ordered_pairs(self, a_ranks: Sequence[int], a_starts: Sequence[int],
                      a_ends: Sequence[int], b_ranks: Sequence[int],
                      b_starts: Sequence[int], b_ends: Sequence[int]
                      ) -> np.ndarray:
        """Vectorized :meth:`ordered` over parallel pair arrays:
        ``mask[k] == ordered(Span(a...[k]), Span(b...[k]))``.

        Where :meth:`ordered_batch` compares many spans against one fixed
        span (one call per inner-loop *group*), this batches over both
        sides at once, so a detection pass needs a single oracle query
        for *all* its candidate pairs."""
        a_ranks = np.asarray(a_ranks, dtype=np.int64)
        a_starts = np.asarray(a_starts, dtype=np.int64)
        a_ends = np.asarray(a_ends, dtype=np.int64)
        b_ranks = np.asarray(b_ranks, dtype=np.int64)
        b_starts = np.asarray(b_starts, dtype=np.int64)
        b_ends = np.asarray(b_ends, dtype=np.int64)
        out = np.empty(len(a_ranks), dtype=bool)
        same = a_ranks == b_ranks
        if same.any():
            out[same] = (a_ends[same] <= b_starts[same]) \
                | (b_ends[same] <= a_starts[same])
        diff = ~same
        if diff.any():
            out[diff] = self._hb_pairs(
                a_ranks[diff], a_ends[diff], b_ranks[diff],
                b_starts[diff]) \
                | self._hb_pairs(
                    b_ranks[diff], b_ends[diff], a_ranks[diff],
                    a_starts[diff])
        return out

    def ordered_spans(self, spans: Sequence[Span], b: Span) -> np.ndarray:
        """:meth:`ordered_batch` convenience over :class:`Span` objects."""
        n = len(spans)
        ranks = np.fromiter((s.rank for s in spans), dtype=np.int64, count=n)
        starts = np.fromiter((s.start_seq for s in spans), dtype=np.int64,
                             count=n)
        ends = np.fromiter((s.end_seq for s in spans), dtype=np.int64,
                           count=n)
        return self.ordered_batch(ranks, starts, ends, b)
