"""Trace preprocessing (section IV-C-1): communicators, windows, datatypes.

The per-rank traces record MPI calls with the arguments visible at the PMPI
layer.  Before any analysis, DN-Analyzer must rebuild three registries:

a. **communicators/groups** — membership and rank order of every
   communicator, so group-relative ranks can be resolved to absolute
   (world) ranks;
b. **window buffers** — which byte range each rank exposes in each window;
c. **datatypes** — the data-map of every derived datatype, reconstructed
   by replaying each rank's ``Type_*`` calls (datatype ids are per-rank,
   exactly as MPI handles are local).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.profiler.events import CallEvent, Event, MemEvent
from repro.profiler.tracer import TraceSet
from repro.simmpi.comm import WORLD_COMM_ID
from repro.simmpi.datatypes import Datatype, DatatypeFactory, PRIMITIVES_BY_ID
from repro.util.errors import AnalysisError
from repro.util.intervals import IntervalSet


@dataclass
class WindowInfo:
    """Per-window registry entry: what every rank exposes."""

    win_id: int
    comm_id: int
    bases: Dict[int, int] = field(default_factory=dict)
    sizes: Dict[int, int] = field(default_factory=dict)
    disp_units: Dict[int, int] = field(default_factory=dict)
    var_names: Dict[int, str] = field(default_factory=dict)

    def exposure(self, rank: int) -> IntervalSet:
        """The byte interval rank ``rank`` exposes (empty if none)."""
        size = self.sizes.get(rank, 0)
        if size <= 0:
            return IntervalSet()
        return IntervalSet.single(self.bases[rank], size)

    def target_intervals(self, target: int, target_disp: int, count: int,
                         dtype: Datatype) -> IntervalSet:
        """Absolute byte intervals a remote op touches at ``target``."""
        base = self.bases[target] + target_disp * self.disp_units[target]
        return dtype.intervals(base, count)


class PreprocessedTrace:
    """All per-rank events plus the reconstructed registries."""

    def __init__(self, events: Dict[int, List[Event]]):
        self.events = events
        self.nranks = len(events)
        self.comms: Dict[int, Tuple[int, ...]] = {
            WORLD_COMM_ID: tuple(range(self.nranks))
        }
        self.windows: Dict[int, WindowInfo] = {}
        self.datatypes: Dict[int, Dict[int, Datatype]] = {
            rank: dict(PRIMITIVES_BY_ID) for rank in range(self.nranks)
        }
        self._build()

    # ------------------------------------------------------------------

    def comm_members(self, comm_id: int) -> Tuple[int, ...]:
        try:
            return self.comms[comm_id]
        except KeyError:
            raise AnalysisError(f"unknown communicator id {comm_id}") from None

    def world_of_comm_rank(self, comm_id: int, comm_rank: int) -> int:
        members = self.comm_members(comm_id)
        if not 0 <= comm_rank < len(members):
            raise AnalysisError(
                f"comm {comm_id} has no rank {comm_rank} "
                f"(size {len(members)})")
        return members[comm_rank]

    def datatype(self, rank: int, type_id: int) -> Datatype:
        try:
            return self.datatypes[rank][type_id]
        except KeyError:
            raise AnalysisError(
                f"rank {rank}: unknown datatype id {type_id}") from None

    def window(self, win_id: int) -> WindowInfo:
        try:
            return self.windows[win_id]
        except KeyError:
            raise AnalysisError(f"unknown window id {win_id}") from None

    # ------------------------------------------------------------------

    def _build(self) -> None:
        split_members: Dict[int, Tuple[int, List[Tuple[int, int]]]] = {}
        create_members: Dict[int, Tuple[int, ...]] = {}
        dup_parents: Dict[int, int] = {}

        for rank in range(self.nranks):
            factory = DatatypeFactory()
            for event in self.events[rank]:
                if not isinstance(event, CallEvent):
                    continue
                fn, args = event.fn, event.args
                if fn == "Win_create":
                    info = self.windows.setdefault(
                        int(args["win"]),
                        WindowInfo(int(args["win"]), int(args["comm"])))
                    info.bases[rank] = int(args["base"])
                    info.sizes[rank] = int(args["size"])
                    info.disp_units[rank] = int(args["disp_unit"])
                    if "var" in args:
                        info.var_names[rank] = str(args["var"])
                elif fn == "Comm_split":
                    newcomm = int(args["newcomm"])
                    if newcomm >= 0:
                        parent = int(args["comm"])
                        split_members.setdefault(newcomm, (parent, []))[1] \
                            .append((int(args["key"]), rank))
                elif fn == "Comm_dup":
                    dup_parents[int(args["newcomm"])] = int(args["comm"])
                elif fn == "Comm_create":
                    newcomm = int(args["newcomm"])
                    if newcomm >= 0:
                        create_members[newcomm] = tuple(
                            int(r) for r in args["group"])
                elif fn == "Type_contiguous":
                    dt = factory.contiguous(
                        int(args["count"]),
                        self.datatype(rank, int(args["oldtype"])))
                    self.datatypes[rank][dt.type_id] = dt
                elif fn == "Type_vector":
                    dt = factory.vector(
                        int(args["count"]), int(args["blocklength"]),
                        int(args["stride"]),
                        self.datatype(rank, int(args["oldtype"])))
                    self.datatypes[rank][dt.type_id] = dt
                elif fn == "Type_indexed":
                    dt = factory.indexed(
                        list(args["blocklengths"]),
                        list(args["displacements"]),
                        self.datatype(rank, int(args["oldtype"])))
                    self.datatypes[rank][dt.type_id] = dt
                elif fn == "Type_struct":
                    dt = factory.struct(
                        list(args["blocklengths"]),
                        list(args["displacements"]),
                        [self.datatype(rank, t) for t in args["oldtypes"]])
                    self.datatypes[rank][dt.type_id] = dt

        # Communicator ids are assigned in creation order, so a parent
        # always has a smaller id than its children — resolving ascending
        # guarantees the parent's rank order is available when needed.
        for comm_id, members in create_members.items():
            self.comms[comm_id] = members
        pending_ids = sorted(set(split_members) | set(dup_parents))
        for comm_id in pending_ids:
            if comm_id in dup_parents:
                parent = dup_parents[comm_id]
                if parent not in self.comms:
                    raise AnalysisError(
                        f"Comm_dup of unknown parent comm {parent}")
                self.comms[comm_id] = self.comms[parent]
            else:
                parent, entries = split_members[comm_id]
                if parent not in self.comms:
                    raise AnalysisError(
                        f"Comm_split of unknown parent comm {parent}")
                parent_order = {w: i for i, w in enumerate(self.comms[parent])}
                # MPI_Comm_split rank order: by key, ties by parent rank
                self.comms[comm_id] = tuple(
                    w for _k, _pr, w in sorted(
                        (key, parent_order[w], w) for key, w in entries))


def preprocess(traces: TraceSet) -> PreprocessedTrace:
    """Load all rank traces and build the registries."""
    return PreprocessedTrace(traces.all_events())
