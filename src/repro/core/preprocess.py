"""Trace preprocessing (section IV-C-1): communicators, windows, datatypes.

The per-rank traces record MPI calls with the arguments visible at the PMPI
layer.  Before any analysis, DN-Analyzer must rebuild three registries:

a. **communicators/groups** — membership and rank order of every
   communicator, so group-relative ranks can be resolved to absolute
   (world) ranks;
b. **window buffers** — which byte range each rank exposes in each window;
c. **datatypes** — the data-map of every derived datatype, reconstructed
   by replaying each rank's ``Type_*`` calls (datatype ids are per-rank,
   exactly as MPI handles are local).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.profiler.events import CallEvent, Event, MemEvent
from repro.profiler.tracer import TraceSet
from repro.simmpi.comm import WORLD_COMM_ID
from repro.simmpi.datatypes import Datatype, DatatypeFactory, PRIMITIVES_BY_ID
from repro.util.errors import AnalysisError
from repro.util.intervals import IntervalSet


@dataclass
class WindowInfo:
    """Per-window registry entry: what every rank exposes."""

    win_id: int
    comm_id: int
    bases: Dict[int, int] = field(default_factory=dict)
    sizes: Dict[int, int] = field(default_factory=dict)
    disp_units: Dict[int, int] = field(default_factory=dict)
    var_names: Dict[int, str] = field(default_factory=dict)
    #: memoized per-rank exposure sets (IntervalSet is immutable; the
    #: detectors query the same (window, rank) exposure per access)
    _exposure_cache: Dict[int, IntervalSet] = \
        field(default_factory=dict, repr=False, compare=False)

    def exposure(self, rank: int) -> IntervalSet:
        """The byte interval rank ``rank`` exposes (empty if none)."""
        cached = self._exposure_cache.get(rank)
        if cached is None:
            size = self.sizes.get(rank, 0)
            cached = (IntervalSet.single(self.bases[rank], size)
                      if size > 0 else IntervalSet())
            self._exposure_cache[rank] = cached
        return cached

    def target_intervals(self, target: int, target_disp: int, count: int,
                         dtype: Datatype) -> IntervalSet:
        """Absolute byte intervals a remote op touches at ``target``."""
        base = self.bases[target] + target_disp * self.disp_units[target]
        return dtype.intervals(base, count)


@dataclass
class RankScan:
    """The registry-relevant facts of one rank's trace, as picklable
    records — the per-rank shard a preprocessing worker ships back for the
    deterministic merge (``Comm_split`` ordering, window exposure maps,
    and per-rank datatype tables are all order-independent across ranks
    once each rank's own records are kept in trace order)."""

    rank: int
    #: (win, comm, base, size, disp_unit, var-or-None), in trace order
    windows: List[Tuple[int, int, int, int, int, Optional[str]]] = \
        field(default_factory=list)
    #: (newcomm, parent, key), in trace order
    splits: List[Tuple[int, int, int]] = field(default_factory=list)
    #: (newcomm, parent), in trace order
    dups: List[Tuple[int, int]] = field(default_factory=list)
    #: (newcomm, world-rank members), in trace order
    creates: List[Tuple[int, Tuple[int, ...]]] = field(default_factory=list)
    #: derived datatypes replayed from this rank's ``Type_*`` calls
    datatypes: Dict[int, Datatype] = field(default_factory=dict)
    #: total events in the rank's trace (calls + loads/stores)
    n_events: int = 0


def scan_rank(rank: int, events: List[Event],
              n_events: Optional[int] = None) -> RankScan:
    """Single pass over one rank's events collecting registry records.

    ``n_events`` overrides the recorded trace-event total for call-only
    event lists (the memory events were counted elsewhere, e.g. by a v2
    trace footer, and never materialized)."""
    scan = RankScan(rank=rank,
                    n_events=len(events) if n_events is None else n_events)
    factory = DatatypeFactory()

    def resolve(type_id: int) -> Datatype:
        dt = scan.datatypes.get(type_id) or PRIMITIVES_BY_ID.get(type_id)
        if dt is None:
            raise AnalysisError(f"rank {rank}: unknown datatype id {type_id}")
        return dt

    for event in events:
        if not isinstance(event, CallEvent):
            continue
        fn, args = event.fn, event.args
        if fn == "Win_create":
            scan.windows.append((
                int(args["win"]), int(args["comm"]), int(args["base"]),
                int(args["size"]), int(args["disp_unit"]),
                str(args["var"]) if "var" in args else None))
        elif fn == "Comm_split":
            newcomm = int(args["newcomm"])
            if newcomm >= 0:
                scan.splits.append((newcomm, int(args["comm"]),
                                    int(args["key"])))
        elif fn == "Comm_dup":
            scan.dups.append((int(args["newcomm"]), int(args["comm"])))
        elif fn == "Comm_create":
            newcomm = int(args["newcomm"])
            if newcomm >= 0:
                scan.creates.append((newcomm, tuple(
                    int(r) for r in args["group"])))
        elif fn == "Type_contiguous":
            dt = factory.contiguous(int(args["count"]),
                                    resolve(int(args["oldtype"])))
            scan.datatypes[dt.type_id] = dt
        elif fn == "Type_vector":
            dt = factory.vector(
                int(args["count"]), int(args["blocklength"]),
                int(args["stride"]), resolve(int(args["oldtype"])))
            scan.datatypes[dt.type_id] = dt
        elif fn == "Type_indexed":
            dt = factory.indexed(
                list(args["blocklengths"]), list(args["displacements"]),
                resolve(int(args["oldtype"])))
            scan.datatypes[dt.type_id] = dt
        elif fn == "Type_struct":
            dt = factory.struct(
                list(args["blocklengths"]), list(args["displacements"]),
                [resolve(t) for t in args["oldtypes"]])
            scan.datatypes[dt.type_id] = dt
    return scan


class PreprocessedTrace:
    """All per-rank events plus the reconstructed registries.

    ``scans`` short-circuits the per-rank registry scan: the parallel
    engine computes :class:`RankScan` shards in worker processes and the
    merge here is deterministic in rank order, so a serial and a sharded
    build produce identical registries.
    """

    def __init__(self, events: Dict[int, List[Event]],
                 scans: Optional[List[RankScan]] = None):
        self.events = events
        self.nranks = len(events)
        self.comms: Dict[int, Tuple[int, ...]] = {
            WORLD_COMM_ID: tuple(range(self.nranks))
        }
        self.windows: Dict[int, WindowInfo] = {}
        self.datatypes: Dict[int, Dict[int, Datatype]] = {
            rank: dict(PRIMITIVES_BY_ID) for rank in range(self.nranks)
        }
        #: per-rank columnar CallTables (repro.core.calltable), attached
        #: by ingest when the columnar control plane is active; ``None``
        #: until built (ensure_call_tables derives them from events)
        self.call_tables = None
        if scans is None:
            scans = [scan_rank(rank, events[rank])
                     for rank in range(self.nranks)]
        #: total trace events (calls + loads/stores); may exceed the
        #: materialized ``events`` when the build was call-only
        self.total_events = sum(scan.n_events for scan in scans)
        self._merge(scans)

    # ------------------------------------------------------------------

    def registry_view(self) -> "PreprocessedTrace":
        """Registries-only copy for cross-process installs.

        Shares the merged communicator/window/datatype registries (and
        ``nranks``/``total_events``) with this trace but carries empty
        per-rank event lists, so pickling it costs kilobytes instead of
        the full call stream.  Safe wherever the consumer only resolves
        registries — the parallel lift reads its events from disk and
        the detectors only call :meth:`window` — and never for code
        that walks ``events``.
        """
        view = copy.copy(self)
        view.events = {rank: [] for rank in self.events}
        view.call_tables = None
        return view

    def comm_members(self, comm_id: int) -> Tuple[int, ...]:
        try:
            return self.comms[comm_id]
        except KeyError:
            raise AnalysisError(f"unknown communicator id {comm_id}") from None

    def world_of_comm_rank(self, comm_id: int, comm_rank: int) -> int:
        members = self.comm_members(comm_id)
        if not 0 <= comm_rank < len(members):
            raise AnalysisError(
                f"comm {comm_id} has no rank {comm_rank} "
                f"(size {len(members)})")
        return members[comm_rank]

    def datatype(self, rank: int, type_id: int) -> Datatype:
        try:
            return self.datatypes[rank][type_id]
        except KeyError:
            raise AnalysisError(
                f"rank {rank}: unknown datatype id {type_id}") from None

    def window(self, win_id: int) -> WindowInfo:
        try:
            return self.windows[win_id]
        except KeyError:
            raise AnalysisError(f"unknown window id {win_id}") from None

    # ------------------------------------------------------------------

    def _merge(self, scans: List[RankScan]) -> None:
        split_members: Dict[int, Tuple[int, List[Tuple[int, int]]]] = {}
        create_members: Dict[int, Tuple[int, ...]] = {}
        dup_parents: Dict[int, int] = {}

        for scan in sorted(scans, key=lambda s: s.rank):
            rank = scan.rank
            for win, comm, base, size, disp_unit, var in scan.windows:
                info = self.windows.setdefault(win, WindowInfo(win, comm))
                info.bases[rank] = base
                info.sizes[rank] = size
                info.disp_units[rank] = disp_unit
                if var is not None:
                    info.var_names[rank] = var
            for newcomm, parent, key in scan.splits:
                split_members.setdefault(newcomm, (parent, []))[1] \
                    .append((key, rank))
            for newcomm, parent in scan.dups:
                dup_parents[newcomm] = parent
            for newcomm, members in scan.creates:
                create_members[newcomm] = members
            self.datatypes[rank].update(scan.datatypes)

        # Communicator ids are assigned in creation order, so a parent
        # always has a smaller id than its children — resolving ascending
        # guarantees the parent's rank order is available when needed.
        for comm_id, members in create_members.items():
            self.comms[comm_id] = members
        pending_ids = sorted(set(split_members) | set(dup_parents))
        for comm_id in pending_ids:
            if comm_id in dup_parents:
                parent = dup_parents[comm_id]
                if parent not in self.comms:
                    raise AnalysisError(
                        f"Comm_dup of unknown parent comm {parent}")
                self.comms[comm_id] = self.comms[parent]
            else:
                parent, entries = split_members[comm_id]
                if parent not in self.comms:
                    raise AnalysisError(
                        f"Comm_split of unknown parent comm {parent}")
                parent_order = {w: i for i, w in enumerate(self.comms[parent])}
                # MPI_Comm_split rank order: by key, ties by parent rank
                self.comms[comm_id] = tuple(
                    w for _k, _pr, w in sorted(
                        (key, parent_order[w], w) for key, w in entries))


def preprocess(traces: TraceSet) -> PreprocessedTrace:
    """Load all rank traces and build the registries."""
    return PreprocessedTrace(traces.all_events())


def preprocess_calls(traces: TraceSet) -> PreprocessedTrace:
    """Call-only preprocess: every pipeline phase except the access model
    is derivable from call events alone (the observation the streaming
    checker exploits), so the memory events — which dominate trace volume
    — are never turned into Python objects here.  Exact event totals
    still land in ``total_events`` via the readers' per-class counts
    (free for v2 traces, one cheap scan for text)."""
    pre, _counts = preprocess_calls_with_counts(traces)
    return pre


def preprocess_calls_with_counts(
        traces: TraceSet
) -> Tuple[PreprocessedTrace, Dict[int, Dict[str, int]]]:
    """:func:`preprocess_calls` plus the per-rank per-class event counts
    the readers produced along the way — the incremental checker needs
    them to derive report statistics without touching memory events."""
    call_events: Dict[int, List[Event]] = {}
    scans: List[RankScan] = []
    counts_by_rank: Dict[int, Dict[str, int]] = {}
    tables: Dict[int, object] = {}
    for rank in range(traces.nranks):
        with traces.reader(rank) as reader:
            calls, counts = reader.read_calls()
            table = getattr(reader, "call_table", None)
        call_events[rank] = calls
        counts_by_rank[rank] = counts
        if table is not None:
            tables[rank] = table
        scans.append(scan_rank(rank, calls,
                               n_events=counts["call"] + counts["mem"]))
    pre = PreprocessedTrace(call_events, scans=scans)
    if len(tables) == pre.nranks:
        pre.call_tables = tables
    return pre, counts_by_rank
