"""CheckConfig — one immutable value describing how to run an analysis.

Historically :class:`~repro.core.checker.MCChecker`, ``check_traces`` and
``check_app`` each grew their own copy of the tuning kwargs
(``memory_model``, ``jobs``, ``engine``, ...).  ``CheckConfig``
consolidates them: every entry point accepts ``config=CheckConfig(...)``,
and the old kwargs keep working through a deprecation shim that warns
once per process and forwards into a config.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Optional

MEMORY_MODELS = ("separate", "unified")

#: sentinel distinguishing "kwarg not passed" from any real value
_UNSET = object()

_legacy_warning_emitted = False


@dataclass(frozen=True)
class CheckConfig:
    """How one MC-Checker analysis should run.

    Immutable so it can double as (part of) a cache key; derive variants
    with :func:`dataclasses.replace`.
    """

    #: MPI-3 RMA memory model assumed for Table-I verdicts
    memory_model: str = "separate"
    #: conflict engine: ``"sweep"`` (default) or ``"pairwise"``
    engine: str = "sweep"
    #: analysis worker processes (0 = all cores)
    jobs: int = 1
    #: bounded-memory streaming pipeline instead of the batch pipeline
    streaming: bool = False
    #: combinatorial cross-process strawman (ablation baseline;
    #: implies the pairwise engine)
    naive_inter: bool = False
    #: on-disk result cache directory (required for ``incremental``)
    cache_dir: Optional[str] = None
    #: reuse cached per-region findings; only re-analyze regions whose
    #: inputs changed
    incremental: bool = False

    def __post_init__(self) -> None:
        if self.memory_model not in MEMORY_MODELS:
            raise ValueError(
                f"unknown memory model {self.memory_model!r} "
                f"(expected one of {MEMORY_MODELS})")
        from repro.core.engine import resolve_engine
        resolve_engine(self.engine)
        if self.incremental:
            if not self.cache_dir:
                raise ValueError(
                    "incremental checking requires cache_dir")
            if self.streaming:
                raise ValueError(
                    "incremental checking is incompatible with streaming")
            if self.naive_inter:
                raise ValueError(
                    "incremental checking is incompatible with naive_inter")
            if self.engine != "sweep":
                raise ValueError(
                    "incremental checking requires engine='sweep'")

    def replace(self, **changes) -> "CheckConfig":
        return replace(self, **changes)


def coerce_config(config: Optional[CheckConfig], caller: str,
                  **legacy) -> CheckConfig:
    """Merge legacy kwargs into ``config`` (or a default one).

    ``legacy`` maps field names to either :data:`_UNSET` or an
    explicitly passed value; any explicit value triggers a one-time
    :class:`DeprecationWarning` and overrides the config field.
    """
    passed = {name: value for name, value in legacy.items()
              if value is not _UNSET}
    if passed:
        _warn_legacy(caller, sorted(passed))
    base = config if config is not None else CheckConfig()
    if not isinstance(base, CheckConfig):
        raise TypeError(
            f"{caller}: config must be a CheckConfig, "
            f"got {type(base).__name__}")
    return base.replace(**passed) if passed else base


def _warn_legacy(caller: str, names) -> None:
    global _legacy_warning_emitted
    if _legacy_warning_emitted:
        return
    _legacy_warning_emitted = True
    warnings.warn(
        f"{caller}: passing {', '.join(names)} as keyword arguments is "
        "deprecated; pass config=CheckConfig(...) instead",
        DeprecationWarning, stacklevel=3)


def _reset_legacy_warning() -> None:
    """Test hook: allow the one-time deprecation warning to fire again."""
    global _legacy_warning_emitted
    _legacy_warning_emitted = False
