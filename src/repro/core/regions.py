"""Concurrent-region extraction (section III-B, last paragraph).

Global synchronization events — collectives in which *every* rank
participates — partition the execution into sequentially ordered regions.
Two accesses in different regions are always ordered (through the
intervening global barrier), so detection only ever compares accesses
sharing a region; this is the truncation the paper uses "to improve the
efficiency of the analysis".

A nonblocking RMA operation whose epoch closes after a global cut (e.g. a
lock epoch spanning a barrier on another communicator — impossible for a
world barrier, but spans are handled generally) is a member of every
region its span intersects.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.clocks import Span
from repro.core.matching import SyncMatch
from repro.core.preprocess import PreprocessedTrace
from repro.util.errors import AnalysisError


@dataclass
class Region:
    """One concurrent region: per-rank exclusive (lo, hi) seq bounds."""

    index: int
    bounds: Dict[int, Tuple[int, int]]

    def contains_seq(self, rank: int, seq: int) -> bool:
        lo, hi = self.bounds[rank]
        return lo < seq < hi

    def intersects_span(self, span: Span) -> bool:
        lo, hi = self.bounds[span.rank]
        return span.start_seq < hi and span.end_seq > lo


class RegionIndex:
    """All concurrent regions plus span -> region lookup."""

    def __init__(self, pre: PreprocessedTrace,
                 matches: Sequence[SyncMatch]):
        self.nranks = pre.nranks
        from repro.core.calltable import PLANE_COLUMNAR, control_plane
        glob = [match.members for match in matches
                if match.is_global(pre.nranks)]
        if glob and control_plane() == PLANE_COLUMNAR:
            # columnar: one (cuts x ranks) seq matrix; sorting by rank 0
            # orders every column at once and one diff pass checks that
            # the cuts are monotone at every rank simultaneously
            mat = np.empty((len(glob), pre.nranks), dtype=np.int64)
            for i, members in enumerate(glob):
                for r, s in members.items():
                    mat[i, r] = s
            mat = mat[np.argsort(mat[:, 0], kind="stable")]
            if mat.shape[0] > 1 and (np.diff(mat, axis=0) <= 0).any():
                raise AnalysisError(
                    "global synchronization cuts are not consistently "
                    "ordered across ranks — inconsistent trace")
            cuts: List[Dict[int, int]] = [
                dict(enumerate(row)) for row in mat.tolist()]
            cut_seqs = [mat[:, r].tolist() for r in range(pre.nranks)]
        else:
            cuts = [dict(members) for members in glob]
            # order cuts by (any) rank's seq — global collectives are
            # totally ordered, so every rank induces the same order
            cuts.sort(key=lambda members: members.get(0, -1))
            for earlier, later in zip(cuts, cuts[1:]):
                if any(earlier[r] >= later[r]
                       for r in earlier if r in later):
                    raise AnalysisError(
                        "global synchronization cuts are not consistently "
                        "ordered across ranks — inconsistent trace")
            cut_seqs = [[cut[r] for cut in cuts]
                        for r in range(pre.nranks)]

        self.regions: List[Region] = []
        n_regions = len(cuts) + 1
        #: per-rank sorted cut seqs, for bisect lookup
        self._cut_seqs: List[List[int]] = cut_seqs
        for i in range(n_regions):
            bounds = {}
            for rank in range(pre.nranks):
                lo = cuts[i - 1][rank] if i > 0 else -1
                hi = cuts[i][rank] if i < len(cuts) else (1 << 62)
                bounds[rank] = (lo, hi)
            self.regions.append(Region(index=i, bounds=bounds))

    def __len__(self) -> int:
        return len(self.regions)

    def __iter__(self):
        return iter(self.regions)

    def region_of_seq(self, rank: int, seq: int) -> int:
        """Region index of a point event (cut events belong to no region;
        they are mapped to the region they open)."""
        return bisect_right(self._cut_seqs[rank], seq - 1)

    def regions_of_span(self, span: Span) -> range:
        """All region indices a span intersects."""
        first = bisect_right(self._cut_seqs[span.rank], span.start_seq - 1)
        last = bisect_left(self._cut_seqs[span.rank], span.end_seq)
        return range(first, min(last, len(self.regions) - 1) + 1)
