"""Epoch identification (section IV-C-3, first half).

An epoch is the completion unit of RMA operations: it starts at an RMA
synchronization call and ends at the matching one.  Per rank and window,
DN-Analyzer recognizes:

* **fence epochs** — between consecutive ``Win_fence`` calls (each fence
  closes the previous epoch and opens the next);
* **lock epochs** — ``Win_lock(target)`` .. ``Win_unlock(target)``,
  carrying the lock type (the exclusive/shared distinction decides
  error-vs-warning severity later);
* **PSCW access epochs** — ``Win_start(group)`` .. ``Win_complete``;
* **PSCW exposure epochs** — ``Win_post(group)`` .. ``Win_wait``.

An RMA operation belongs to the innermost epoch covering its issue point
and its target; its memory effects may occur anywhere up to the epoch's
closing call (its *span*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.preprocess import PreprocessedTrace
from repro.profiler.events import CallEvent
from repro.util.errors import AnalysisError

#: the calls the epoch state machine reads — everything else is skipped
_EPOCH_FNS = ("Win_fence", "Win_free", "Win_lock", "Win_lock_all",
              "Win_unlock_all", "Win_flush", "Win_flush_all", "Rma_wait",
              "Win_unlock", "Win_start", "Win_complete", "Win_post",
              "Win_wait")

#: Sentinel close for epochs never closed in the trace (program ended or
#: crashed mid-epoch): orders after every real seq.
OPEN_ENDED = 1 << 60

KIND_FENCE = "fence"
KIND_LOCK = "lock"
KIND_PSCW_ACCESS = "pscw_access"
KIND_PSCW_EXPOSURE = "pscw_exposure"


@dataclass
class Epoch:
    """One epoch at one rank on one window."""

    rank: int
    win_id: int
    kind: str
    open_seq: int
    close_seq: int = OPEN_ENDED
    target: Optional[int] = None  # lock epochs: the locked target
    lock_type: Optional[str] = None
    group: Tuple[int, ...] = ()  # PSCW epochs: the partner group

    def contains_seq(self, seq: int) -> bool:
        return self.open_seq < seq < self.close_seq

    def covers_target(self, target: int) -> bool:
        if self.kind == KIND_FENCE:
            return True
        if self.kind == KIND_LOCK:
            # ``target is None`` marks an MPI-3 lock_all epoch
            return self.target is None or self.target == target
        if self.kind == KIND_PSCW_ACCESS:
            return target in self.group
        return False

    @property
    def is_access(self) -> bool:
        return self.kind in (KIND_FENCE, KIND_LOCK, KIND_PSCW_ACCESS)

    def describe(self) -> str:
        close = "<open>" if self.close_seq == OPEN_ENDED else self.close_seq
        extra = ""
        if self.kind == KIND_LOCK:
            extra = f" target={self.target} type={self.lock_type}"
        elif self.group:
            extra = f" group={list(self.group)}"
        return (f"{self.kind} epoch win={self.win_id} rank={self.rank} "
                f"[{self.open_seq}..{close}]{extra}")


class EpochIndex:
    """All epochs of a preprocessed trace, with lookup by op issue point.

    Epoch recognition is a per-rank scan, so a worker holding only one
    rank's events can build the index for just that rank by passing
    ``ranks`` — the result matches the corresponding slice of a full
    build exactly.
    """

    def __init__(self, pre: PreprocessedTrace,
                 ranks: Optional[Sequence[int]] = None):
        self.epochs: List[Epoch] = []
        # (rank, win) -> epochs at that rank/window, in open order
        self._by_rank_win: Dict[Tuple[int, int], List[Epoch]] = {}
        # (rank, win) -> sorted [(seq, target-or-None)] of MPI-3 flushes
        self._flushes: Dict[Tuple[int, int], List[Tuple[int, Optional[int]]]] = {}
        # (rank, win, req) -> seq of the Rma_wait completing that request
        self._req_waits: Dict[Tuple[int, int, int], int] = {}
        self._build(pre, ranks)

    def _add(self, epoch: Epoch) -> None:
        self.epochs.append(epoch)
        self._by_rank_win.setdefault((epoch.rank, epoch.win_id), []) \
            .append(epoch)

    def _build(self, pre: PreprocessedTrace,
               ranks: Optional[Sequence[int]] = None) -> None:
        tables = getattr(pre, "call_tables", None)
        if tables is not None:
            from repro.core.calltable import PLANE_COLUMNAR, control_plane
            if control_plane() == PLANE_COLUMNAR:
                self._build_from_tables(tables, pre.nranks, ranks)
                return
        self._build_from_events(pre, ranks)

    def _build_from_tables(self, tables, nranks: int,
                           ranks: Optional[Sequence[int]] = None) -> None:
        """Columnar build: a mask selects the epoch-relevant rows, then
        the same sequential state machine as :meth:`_build_from_events`
        runs over just those — identical epochs in identical order."""
        from repro.core import calltable as ct
        names = {ct.fn_code(fn): fn for fn in _EPOCH_FNS}
        codes = np.asarray(sorted(names), dtype=np.int64)
        for rank in (range(nranks) if ranks is None else ranks):
            t = tables.get(rank)
            fence_open: Dict[int, int] = {}
            lock_open: Dict[Tuple[int, Optional[int]], Epoch] = {}
            pscw_access: Dict[int, Epoch] = {}
            pscw_exposure: Dict[int, Epoch] = {}
            if t is not None and t.n:
                idx = np.nonzero(np.isin(t.fn, codes))[0]
                # single bulk extraction: python-int lists beat
                # per-element numpy scalar indexing in the loop below
                l_fn = t.fn[idx].tolist()
                l_seq = t.seq[idx].tolist()
                l_win = t.win[idx].tolist()
                l_target = t.target[idx].tolist()
                l_req = t.req[idx].tolist()
                rows = idx.tolist()
            else:
                rows = []
            for k, i in enumerate(rows):
                fn = names[l_fn[k]]
                seq = l_seq[k]
                win = l_win[k]
                if fn == "Win_fence":
                    if win in fence_open:
                        self._add(Epoch(rank, win, KIND_FENCE,
                                        open_seq=fence_open[win],
                                        close_seq=seq))
                    fence_open[win] = seq
                elif fn == "Win_free":
                    if win in fence_open:
                        self._add(Epoch(rank, win, KIND_FENCE,
                                        open_seq=fence_open.pop(win),
                                        close_seq=seq))
                elif fn == "Win_lock":
                    target = l_target[k]
                    lock_open[(win, target)] = Epoch(
                        rank, win, KIND_LOCK, open_seq=seq, target=target,
                        lock_type=t.lock_type(i))
                elif fn == "Win_lock_all":
                    lock_open[(win, None)] = Epoch(
                        rank, win, KIND_LOCK, open_seq=seq, target=None,
                        lock_type="shared")
                elif fn == "Win_unlock_all":
                    epoch = lock_open.pop((win, None), None)
                    if epoch is None:
                        raise AnalysisError(
                            f"rank {rank} seq {seq}: Win_unlock_all "
                            "without matching Win_lock_all")
                    epoch.close_seq = seq
                    self._add(epoch)
                elif fn == "Win_flush":
                    self._flushes.setdefault((rank, win), []).append(
                        (seq, l_target[k]))
                elif fn == "Win_flush_all":
                    self._flushes.setdefault((rank, win), []).append(
                        (seq, None))
                elif fn == "Rma_wait":
                    self._req_waits[(rank, win, l_req[k])] = seq
                elif fn == "Win_unlock":
                    target = l_target[k]
                    epoch = lock_open.pop((win, target), None)
                    if epoch is None:
                        raise AnalysisError(
                            f"rank {rank} seq {seq}: Win_unlock of "
                            f"target {target} without matching Win_lock")
                    epoch.close_seq = seq
                    self._add(epoch)
                elif fn == "Win_start":
                    pscw_access[win] = Epoch(
                        rank, win, KIND_PSCW_ACCESS, open_seq=seq,
                        group=t.group(i))
                elif fn == "Win_complete":
                    epoch = pscw_access.pop(win, None)
                    if epoch is None:
                        raise AnalysisError(
                            f"rank {rank} seq {seq}: Win_complete "
                            "without matching Win_start")
                    epoch.close_seq = seq
                    self._add(epoch)
                elif fn == "Win_post":
                    pscw_exposure[win] = Epoch(
                        rank, win, KIND_PSCW_EXPOSURE, open_seq=seq,
                        group=t.group(i))
                else:  # Win_wait
                    epoch = pscw_exposure.pop(win, None)
                    if epoch is None:
                        raise AnalysisError(
                            f"rank {rank} seq {seq}: Win_wait without "
                            "matching Win_post")
                    epoch.close_seq = seq
                    self._add(epoch)
            for win, open_seq in fence_open.items():
                self._add(Epoch(rank, win, KIND_FENCE, open_seq=open_seq))
            for epoch in lock_open.values():
                self._add(epoch)
            for epoch in pscw_access.values():
                self._add(epoch)
            for epoch in pscw_exposure.values():
                self._add(epoch)

    def _build_from_events(self, pre: PreprocessedTrace,
                           ranks: Optional[Sequence[int]] = None) -> None:
        for rank in (range(pre.nranks) if ranks is None else ranks):
            # per-window running state
            fence_open: Dict[int, int] = {}
            lock_open: Dict[Tuple[int, int], Epoch] = {}
            pscw_access: Dict[int, Epoch] = {}
            pscw_exposure: Dict[int, Epoch] = {}
            for event in pre.events[rank]:
                if not isinstance(event, CallEvent):
                    continue
                fn, args = event.fn, event.args
                if fn == "Win_fence":
                    win = int(args["win"])
                    if win in fence_open:
                        self._add(Epoch(rank, win, KIND_FENCE,
                                        open_seq=fence_open[win],
                                        close_seq=event.seq))
                    fence_open[win] = event.seq
                elif fn == "Win_free":
                    win = int(args["win"])
                    if win in fence_open:
                        # final fence epoch closes at Win_free
                        self._add(Epoch(rank, win, KIND_FENCE,
                                        open_seq=fence_open.pop(win),
                                        close_seq=event.seq))
                elif fn == "Win_lock":
                    win = int(args["win"])
                    target = int(args["target"])
                    epoch = Epoch(rank, win, KIND_LOCK, open_seq=event.seq,
                                  target=target,
                                  lock_type=str(args["lock_type"]))
                    lock_open[(win, target)] = epoch
                elif fn == "Win_lock_all":
                    win = int(args["win"])
                    epoch = Epoch(rank, win, KIND_LOCK, open_seq=event.seq,
                                  target=None, lock_type="shared")
                    lock_open[(win, None)] = epoch
                elif fn == "Win_unlock_all":
                    win = int(args["win"])
                    epoch = lock_open.pop((win, None), None)
                    if epoch is None:
                        raise AnalysisError(
                            f"rank {rank} seq {event.seq}: Win_unlock_all "
                            "without matching Win_lock_all")
                    epoch.close_seq = event.seq
                    self._add(epoch)
                elif fn == "Win_flush":
                    win = int(args["win"])
                    self._flushes.setdefault((rank, win), []).append(
                        (event.seq, int(args["target"])))
                elif fn == "Win_flush_all":
                    win = int(args["win"])
                    self._flushes.setdefault((rank, win), []).append(
                        (event.seq, None))
                elif fn == "Rma_wait":
                    win = int(args["win"])
                    self._req_waits[(rank, win, int(args["req"]))] = \
                        event.seq
                elif fn == "Win_unlock":
                    win = int(args["win"])
                    target = int(args["target"])
                    epoch = lock_open.pop((win, target), None)
                    if epoch is None:
                        raise AnalysisError(
                            f"rank {rank} seq {event.seq}: Win_unlock of "
                            f"target {target} without matching Win_lock")
                    epoch.close_seq = event.seq
                    self._add(epoch)
                elif fn == "Win_start":
                    win = int(args["win"])
                    pscw_access[win] = Epoch(
                        rank, win, KIND_PSCW_ACCESS, open_seq=event.seq,
                        group=tuple(int(r) for r in args["group"]))
                elif fn == "Win_complete":
                    win = int(args["win"])
                    epoch = pscw_access.pop(win, None)
                    if epoch is None:
                        raise AnalysisError(
                            f"rank {rank} seq {event.seq}: Win_complete "
                            "without matching Win_start")
                    epoch.close_seq = event.seq
                    self._add(epoch)
                elif fn == "Win_post":
                    win = int(args["win"])
                    pscw_exposure[win] = Epoch(
                        rank, win, KIND_PSCW_EXPOSURE, open_seq=event.seq,
                        group=tuple(int(r) for r in args["group"]))
                elif fn == "Win_wait":
                    win = int(args["win"])
                    epoch = pscw_exposure.pop(win, None)
                    if epoch is None:
                        raise AnalysisError(
                            f"rank {rank} seq {event.seq}: Win_wait without "
                            "matching Win_post")
                    epoch.close_seq = event.seq
                    self._add(epoch)
            # unterminated epochs (crashed/truncated programs) stay open
            for win, open_seq in fence_open.items():
                self._add(Epoch(rank, win, KIND_FENCE, open_seq=open_seq))
            for epoch in lock_open.values():
                self._add(epoch)
            for epoch in pscw_access.values():
                self._add(epoch)
            for epoch in pscw_exposure.values():
                self._add(epoch)

    # ------------------------------------------------------------------

    def of_rank_win(self, rank: int, win_id: int) -> List[Epoch]:
        return self._by_rank_win.get((rank, win_id), [])

    def enclosing(self, rank: int, win_id: int, seq: int,
                  target: int) -> Optional[Epoch]:
        """The access epoch an RMA op issued at ``seq`` belongs to.

        Lock and PSCW epochs take precedence over fence epochs (they are
        more specific); a correct execution has exactly one candidate.
        """
        fence_hit: Optional[Epoch] = None
        for epoch in self.of_rank_win(rank, win_id):
            if not (epoch.is_access and epoch.contains_seq(seq)
                    and epoch.covers_target(target)):
                continue
            if epoch.kind in (KIND_LOCK, KIND_PSCW_ACCESS):
                return epoch
            fence_hit = epoch
        return fence_hit

    def access_epochs(self) -> List[Epoch]:
        return [e for e in self.epochs if e.is_access]

    def completion_seq(self, rank: int, win_id: int, issue_seq: int,
                       target: int, epoch: Optional[Epoch],
                       req: Optional[int] = None) -> int:
        """When an op issued at ``issue_seq`` is guaranteed complete.

        Normally the epoch's closing synchronization; an MPI-3
        ``Win_flush``/``Win_flush_all`` covering the target — or, for a
        request-based operation, the MPI_Wait on its request — completes
        it earlier without closing the epoch.
        """
        close = epoch.close_seq if epoch is not None else OPEN_ENDED
        if req is not None:
            wait_seq = self._req_waits.get((rank, win_id, req))
            if wait_seq is not None and issue_seq < wait_seq < close:
                close = wait_seq
        for seq, flush_target in self._flushes.get((rank, win_id), ()):
            if issue_seq < seq < close and \
                    (flush_target is None or flush_target == target):
                return seq
        return close
