"""The RMA operation compatibility matrix (the paper's Table I).

The matrix classifies every pair of operation kinds touching the same
window at a target process:

* ``BOTH``   — both overlapping and nonoverlapping combinations are legal;
* ``NONOV``  — only nonoverlapping combinations are legal (overlap is a
  memory consistency error);
* ``ERROR``  — the combination is erroneous even without byte overlap
  (MPI-2.2: a local store may not be combined with any concurrent Put or
  Accumulate on the same window, period — section IV-C-4's special rule).

The matrix here is the symmetric MPI-2.2/3.0 table; the copy printed in
the paper contains two asymmetric cells (Load/Acc and Store/Acc) that
contradict both its own prose and the MPI specification, so symmetry is
restored per the standard (see DESIGN.md).

The one exception: two ``Accumulate`` operations are compatible *even when
overlapping* iff they use the same reduction op and the same basic
datatype (they commute); otherwise they are NONOV.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

# access kinds
LOAD = "load"
STORE = "store"
GET = "get"
PUT = "put"
ACC = "acc"

KINDS = (LOAD, STORE, GET, PUT, ACC)

# verdicts
BOTH = "BOTH"
NONOV = "NONOV"
ERROR = "ERROR"

_HALF_TABLE: Dict[Tuple[str, str], str] = {
    (LOAD, LOAD): BOTH,
    (LOAD, STORE): BOTH,
    (LOAD, GET): BOTH,
    (LOAD, PUT): NONOV,
    (LOAD, ACC): NONOV,
    (STORE, STORE): BOTH,
    (STORE, GET): NONOV,
    (STORE, PUT): ERROR,
    (STORE, ACC): ERROR,
    (GET, GET): BOTH,
    (GET, PUT): NONOV,
    (GET, ACC): NONOV,
    (PUT, PUT): NONOV,
    (PUT, ACC): NONOV,
    (ACC, ACC): BOTH,  # refined by the same-op/same-type exception
}

#: The full symmetric compatibility matrix (MPI-2.2 / MPI-3 *separate*
#: memory model — the paper's Table I).
TABLE: Dict[Tuple[str, str], str] = {}
for (_a, _b), _v in _HALF_TABLE.items():
    TABLE[(_a, _b)] = _v
    TABLE[(_b, _a)] = _v

# memory models (MPI-3 section 11.4): the paper works in the *separate*
# model; under the *unified* model public and private window copies are
# identical, so a local store merely races with overlapping RMA updates
# instead of corrupting the whole window — the ERROR cells soften to NONOV
MODEL_SEPARATE = "separate"
MODEL_UNIFIED = "unified"

UNIFIED_TABLE: Dict[Tuple[str, str], str] = {
    key: (NONOV if value == ERROR else value)
    for key, value in TABLE.items()
}

_TABLES = {MODEL_SEPARATE: TABLE, MODEL_UNIFIED: UNIFIED_TABLE}


def table_entry(a: str, b: str, model: str = MODEL_SEPARATE) -> str:
    """Raw Table-I cell for a pair of access kinds under a memory model."""
    try:
        table = _TABLES[model]
    except KeyError:
        raise KeyError(f"unknown memory model {model!r}") from None
    try:
        return table[(a, b)]
    except KeyError:
        raise KeyError(f"unknown access kind pair ({a!r}, {b!r})") from None


def accumulate_exception(a_op: Optional[str], a_base: Optional[str],
                         b_op: Optional[str], b_base: Optional[str]) -> bool:
    """True iff two accumulates commute (same op, same basic datatype)."""
    return (a_op is not None and a_op == b_op
            and a_base is not None and a_base == b_base)


def compat_verdict(a_kind: str, b_kind: str, overlapping: bool,
                   acc_same: bool = False,
                   model: str = MODEL_SEPARATE) -> Optional[str]:
    """Classify a concurrent pair of accesses.

    Returns ``None`` when the combination is permitted, otherwise the
    violated rule (``NONOV`` or ``ERROR``).
    """
    cell = table_entry(a_kind, b_kind, model)
    if a_kind == ACC and b_kind == ACC:
        cell = BOTH if acc_same else NONOV
    if cell == ERROR:
        return ERROR
    if cell == NONOV and overlapping:
        return NONOV
    return None
