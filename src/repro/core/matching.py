"""Synchronization-call matching across processes (Algorithm 1).

The paper's DN-Analyzer matches every synchronization call with its
counterparts in other ranks using a vector of *progress counters*: at each
step the least-progressed rank's next unmatched entry is examined; non-sync
entries are skipped, sync entries are matched by consulting the target
ranks' traces from their current scan position (never from the beginning).

Matched call classes:

* **collectives** — Barrier, Bcast, reductions, ``Win_create``/``free``/
  ``fence``, communicator constructors; matched by per-communicator call
  order (the k-th collective on a communicator at each member is one
  match).  ``Win_fence``/``Win_free`` participate in the stream of their
  window's communicator, exactly as MPI requires.
* **point-to-point** — Send/Isend matched to the Recv (or the Wait
  completing an Irecv) that consumed the message; since the Profiler logs
  the *actual* source/tag at receive completion, matching is a per-channel
  FIFO zip.
* **PSCW** — the k-th ``Win_post`` at a target exposing origin *o* matches
  the k-th ``Win_start`` at *o* naming that target (happens-before
  post -> start), and symmetrically ``Win_complete`` -> ``Win_wait``.

:func:`match_synchronization_naive` is the strawman the paper argues
against (scan other traces from the beginning for every sync call); it is
kept for the E8 ablation benchmark and as a differential-testing oracle.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.preprocess import PreprocessedTrace
from repro.profiler.events import (
    COLLECTIVE_CALLS, NB_COLLECTIVE_CALLS, CallEvent,
)
from repro.util.errors import AnalysisError

SEND_CALLS = frozenset({"Send", "Isend"})
#: fn names that may be receive endpoints (Wait only when completing irecv)
RECV_CALLS = frozenset({"Recv", "Wait"})

KIND_COLLECTIVE = "collective"
KIND_P2P = "p2p"
KIND_POST_START = "post_start"
KIND_COMPLETE_WAIT = "complete_wait"


@dataclass
class SyncMatch:
    """One matched synchronization: either a collective slot or a directed
    pair (send->recv, post->start, complete->wait)."""

    kind: str
    fn: str
    members: Dict[int, int] = field(default_factory=dict)  # rank -> seq
    src: Optional[Tuple[int, int]] = None  # (rank, seq) for directed kinds
    dst: Optional[Tuple[int, int]] = None
    comm_id: Optional[int] = None
    win_id: Optional[int] = None
    index: int = 0
    #: nonblocking collectives: rank -> seq of the completing Wait; the
    #: match's entry points are ``members``, its exit points these
    exits: Dict[int, int] = field(default_factory=dict)

    def participants(self) -> List[Tuple[int, int]]:
        if self.kind == KIND_COLLECTIVE:
            return sorted(list(self.members.items())
                          + list(self.exits.items()))
        out = []
        if self.src is not None:
            out.append(self.src)
        if self.dst is not None:
            out.append(self.dst)
        return out

    def is_global(self, nranks: int) -> bool:
        """True iff this match is a valid global region cut: every rank
        participates AND the synchronization is blocking (a nonblocking
        collective does not order the events between its initiation and
        its completing Wait, so it cannot truncate the trace)."""
        return (self.kind == KIND_COLLECTIVE
                and len(self.members) == nranks and not self.exits)


def _is_recv_endpoint(event: CallEvent) -> bool:
    if event.fn == "Recv":
        return True
    return event.fn == "Wait" and event.args.get("req_kind") == "irecv" \
        and "source" in event.args


def _effective_comm(event: CallEvent, pre: PreprocessedTrace) -> int:
    """The communicator whose collective stream this event belongs to."""
    if "comm" in event.args:
        return int(event.args["comm"])
    if event.fn in ("Win_fence", "Win_free"):
        return pre.window(int(event.args["win"])).comm_id
    raise AnalysisError(
        f"collective event {event.fn} (rank {event.rank}, seq {event.seq}) "
        "carries no communicator")


def _is_sync_event(event: CallEvent) -> bool:
    if event.fn in COLLECTIVE_CALLS or event.fn in SEND_CALLS:
        return True
    if _is_recv_endpoint(event):
        return True
    return event.fn in ("Win_post", "Win_start", "Win_complete", "Win_wait")


class _Streams:
    """Precomputed per-rank event streams keyed by matching dimension."""

    def __init__(self, pre: PreprocessedTrace):
        self.pre = pre
        # (rank, comm) -> ordered collective seqs
        self.collectives: Dict[Tuple[int, int], List[int]] = {}
        # (src, dst, comm, tag) -> ordered send seqs
        self.sends: Dict[Tuple[int, int, int, int], List[int]] = {}
        # (dst, src, comm, tag) -> ordered recv-endpoint seqs
        self.recvs: Dict[Tuple[int, int, int, int], List[int]] = {}
        # (rank, win, peer) -> ordered post/start/complete/wait seqs; PSCW
        # endpoints pair per (window, origin, target) channel.
        self.posts: Dict[Tuple[int, int, int], List[int]] = {}
        self.starts: Dict[Tuple[int, int, int], List[int]] = {}
        self.completes: Dict[Tuple[int, int, int], List[int]] = {}
        self.waits: Dict[Tuple[int, int, int], List[int]] = {}
        # (rank, seq) of a Win_complete -> targets of its access epoch
        self.complete_targets: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        # (rank, req) -> seq of the Wait completing a nonblocking collective
        self.icoll_waits: Dict[Tuple[int, int], int] = {}
        self._scan()

    def _scan(self) -> None:
        pre = self.pre
        for rank in range(pre.nranks):
            access_group: Optional[Tuple[int, ...]] = None
            exposure_group: Optional[Tuple[int, ...]] = None
            for event in pre.events[rank]:
                if not isinstance(event, CallEvent):
                    continue
                fn = event.fn
                if fn in COLLECTIVE_CALLS:
                    comm = _effective_comm(event, pre)
                    self.collectives.setdefault((rank, comm), []).append(
                        event.seq)
                elif fn == "Wait" and \
                        event.args.get("req_kind") == "icoll":
                    self.icoll_waits[(rank, int(event.args["req"]))] = \
                        event.seq
                elif fn in SEND_CALLS:
                    comm = int(event.args["comm"])
                    dst = pre.world_of_comm_rank(comm,
                                                 int(event.args["dest"]))
                    tag = int(event.args["tag"])
                    self.sends.setdefault((rank, dst, comm, tag), []).append(
                        event.seq)
                elif _is_recv_endpoint(event):
                    comm = int(event.args["comm"])
                    src = pre.world_of_comm_rank(comm,
                                                 int(event.args["source"]))
                    tag = int(event.args["tag"])
                    self.recvs.setdefault((rank, src, comm, tag), []).append(
                        event.seq)
                elif fn == "Win_post":
                    win = int(event.args["win"])
                    exposure_group = tuple(int(r) for r in event.args["group"])
                    for origin in exposure_group:
                        self.posts.setdefault((rank, win, origin), []).append(
                            event.seq)
                elif fn == "Win_start":
                    win = int(event.args["win"])
                    access_group = tuple(int(r) for r in event.args["group"])
                    for target in access_group:
                        self.starts.setdefault((rank, win, target), []).append(
                            event.seq)
                elif fn == "Win_complete":
                    win = int(event.args["win"])
                    self.complete_targets[(rank, event.seq)] = \
                        access_group or ()
                    for target in access_group or ():
                        self.completes.setdefault(
                            (rank, win, target), []).append(event.seq)
                    access_group = None
                elif fn == "Win_wait":
                    win = int(event.args["win"])
                    for origin in exposure_group or ():
                        self.waits.setdefault(
                            (rank, win, origin), []).append(event.seq)
                    exposure_group = None


def match_synchronization(pre: PreprocessedTrace) -> List[SyncMatch]:
    """Match all synchronization calls — the paper's Algorithm 1.

    Dispatches on the active control plane: the columnar matcher runs
    per-channel occurrence-index joins over :class:`CallTable` columns;
    the object walk below is the per-event reference implementation.
    Both produce the same match set (differentially tested)."""
    from repro.core.calltable import (
        PLANE_COLUMNAR, control_plane, ensure_call_tables,
        match_synchronization_columnar,
    )
    if control_plane() == PLANE_COLUMNAR:
        return match_synchronization_columnar(pre, ensure_call_tables(pre))
    return match_synchronization_object(pre)


def match_synchronization_object(pre: PreprocessedTrace) -> List[SyncMatch]:
    """The object control plane's Algorithm 1: a per-event walk.

    The progress-counter loop drives matching; per-stream cursors ensure
    each trace is consulted from its current position, never rescanned.
    """
    streams = _Streams(pre)
    events = pre.events
    totals = {r: len(events[r]) for r in range(pre.nranks)}
    pos = {r: 0 for r in range(pre.nranks)}
    matched: Dict[Tuple[int, int], SyncMatch] = {}
    matches: List[SyncMatch] = []
    # per-key cursors: how many entries of each stream are already matched
    cursors: Dict[Tuple, int] = {}
    coll_counter: Dict[int, Dict[Tuple[int, int], int]] = {}

    def progress(rank: int) -> float:
        total = totals[rank]
        return pos[rank] / total if total else 1.0

    def next_in_stream(stream_map: Dict, key: Tuple) -> Optional[int]:
        seqs = stream_map.get(key)
        cursor_key = (id(stream_map), key)
        cursor = cursors.get(cursor_key, 0)
        if seqs is None or cursor >= len(seqs):
            return None
        cursors[cursor_key] = cursor + 1
        return seqs[cursor]

    def handle(rank: int, event: CallEvent) -> None:
        fn = event.fn
        if fn in COLLECTIVE_CALLS:
            if (rank, event.seq) in matched:
                return
            comm = _effective_comm(event, pre)
            members = pre.comm_members(comm)
            match = SyncMatch(kind=KIND_COLLECTIVE, fn=fn, comm_id=comm,
                              win_id=(int(event.args["win"])
                                      if "win" in event.args else None))
            counters = coll_counter.setdefault(comm, {})
            match.index = counters.get(("n", comm), 0)
            counters[("n", comm)] = match.index + 1
            for member in members:
                seq = next_in_stream(streams.collectives, (member, comm))
                if seq is None:
                    continue  # ragged trace (rank died mid-run): partial
                member_event = _event_at(pre, member, seq)
                if member_event.fn != fn:
                    raise AnalysisError(
                        f"collective mismatch on comm {comm}: rank {rank} "
                        f"calls {fn} but rank {member} calls "
                        f"{member_event.fn} (seq {seq})")
                match.members[member] = seq
                matched[(member, seq)] = match
                if fn in NB_COLLECTIVE_CALLS:
                    req_id = int(member_event.args["req"])
                    wait_seq = streams.icoll_waits.get((member, req_id))
                    if wait_seq is not None:
                        match.exits[member] = wait_seq
                        matched[(member, wait_seq)] = match
            matches.append(match)
        elif fn in SEND_CALLS:
            if (rank, event.seq) in matched:
                return  # already paired from the receive side
            comm = int(event.args["comm"])
            dst = pre.world_of_comm_rank(comm, int(event.args["dest"]))
            tag = int(event.args["tag"])
            # consume my own slot in the send stream
            next_in_stream(streams.sends, (rank, dst, comm, tag))
            recv_seq = next_in_stream(streams.recvs, (dst, rank, comm, tag))
            match = SyncMatch(kind=KIND_P2P, fn=fn, comm_id=comm,
                              src=(rank, event.seq),
                              dst=((dst, recv_seq)
                                   if recv_seq is not None else None))
            matched[(rank, event.seq)] = match
            if recv_seq is not None:
                matched[(dst, recv_seq)] = match
            matches.append(match)
        elif _is_recv_endpoint(event):
            if (rank, event.seq) in matched:
                return
            comm = int(event.args["comm"])
            src = pre.world_of_comm_rank(comm, int(event.args["source"]))
            tag = int(event.args["tag"])
            next_in_stream(streams.recvs, (rank, src, comm, tag))
            send_seq = next_in_stream(streams.sends, (src, rank, comm, tag))
            send_fn = (_event_at(pre, src, send_seq).fn
                       if send_seq is not None else "Send")
            match = SyncMatch(kind=KIND_P2P, fn=send_fn, comm_id=comm,
                              src=((src, send_seq)
                                   if send_seq is not None else None),
                              dst=(rank, event.seq))
            matched[(rank, event.seq)] = match
            if send_seq is not None:
                matched[(src, send_seq)] = match
            matches.append(match)
        elif fn == "Win_post":
            win = int(event.args["win"])
            for origin in (int(r) for r in event.args["group"]):
                next_in_stream(streams.posts, (rank, win, origin))
                start_seq = next_in_stream(streams.starts,
                                           (origin, win, rank))
                match = SyncMatch(kind=KIND_POST_START, fn="Win_post",
                                  win_id=win, src=(rank, event.seq),
                                  dst=((origin, start_seq)
                                       if start_seq is not None else None))
                matches.append(match)
                matched[(rank, event.seq)] = match
        elif fn == "Win_complete":
            win = int(event.args["win"])
            for target in streams.complete_targets.get((rank, event.seq), ()):
                next_in_stream(streams.completes, (rank, win, target))
                wait_seq = next_in_stream(streams.waits, (target, win, rank))
                match = SyncMatch(kind=KIND_COMPLETE_WAIT, fn="Win_complete",
                                  win_id=win, src=(rank, event.seq),
                                  dst=((target, wait_seq)
                                       if wait_seq is not None else None))
                matches.append(match)
                matched[(rank, event.seq)] = match
        # Win_start / Win_wait are matched from the initiating side

    live = [r for r in range(pre.nranks) if totals[r] > 0]
    while live:
        rank = min(live, key=progress)
        event = events[rank][pos[rank]]
        if isinstance(event, CallEvent) and _is_sync_event(event):
            handle(rank, event)
        pos[rank] += 1
        if pos[rank] >= totals[rank]:
            live.remove(rank)
    return matches


def match_synchronization_naive(pre: PreprocessedTrace) -> List[SyncMatch]:
    """Quadratic strawman: for every sync call, scan the other traces from
    the beginning.  Produces the same matches as :func:`match_synchronization`
    (differential-tested); exists for the E8 ablation benchmark."""
    events = pre.events
    matched: Dict[Tuple[int, int], bool] = {}
    matches: List[SyncMatch] = []

    def scan_for(rank: int, want) -> Optional[int]:
        """First unmatched event seq at ``rank`` satisfying ``want``."""
        for event in events[rank]:  # always from the beginning (the point)
            if isinstance(event, CallEvent) and \
                    not matched.get((rank, event.seq)) and want(event):
                return event.seq
        return None

    for rank in range(pre.nranks):
        for event in events[rank]:
            if not isinstance(event, CallEvent):
                continue
            if matched.get((rank, event.seq)):
                continue
            fn = event.fn
            if fn in COLLECTIVE_CALLS:
                comm = _effective_comm(event, pre)
                match = SyncMatch(kind=KIND_COLLECTIVE, fn=fn, comm_id=comm)
                for member in pre.comm_members(comm):
                    seq = (event.seq if member == rank else scan_for(
                        member,
                        lambda e: e.fn in COLLECTIVE_CALLS and
                        _effective_comm(e, pre) == comm))
                    if seq is None:
                        continue
                    match.members[member] = seq
                    matched[(member, seq)] = True
                matches.append(match)
            elif fn in SEND_CALLS:
                comm = int(event.args["comm"])
                dst = pre.world_of_comm_rank(comm, int(event.args["dest"]))
                tag = int(event.args["tag"])
                matched[(rank, event.seq)] = True
                recv_seq = scan_for(
                    dst, lambda e: _is_recv_endpoint(e) and
                    int(e.args["comm"]) == comm and
                    int(e.args["tag"]) == tag and
                    pre.world_of_comm_rank(comm, int(e.args["source"]))
                    == rank)
                if recv_seq is not None:
                    matched[(dst, recv_seq)] = True
                matches.append(SyncMatch(
                    kind=KIND_P2P, fn=fn, comm_id=comm,
                    src=(rank, event.seq),
                    dst=(dst, recv_seq) if recv_seq is not None else None))
            elif _is_recv_endpoint(event):
                comm = int(event.args["comm"])
                src = pre.world_of_comm_rank(comm, int(event.args["source"]))
                tag = int(event.args["tag"])
                matched[(rank, event.seq)] = True
                send_seq = scan_for(
                    src, lambda e: e.fn in SEND_CALLS and
                    int(e.args["comm"]) == comm and
                    int(e.args["tag"]) == tag and
                    pre.world_of_comm_rank(comm, int(e.args["dest"]))
                    == rank)
                if send_seq is not None:
                    matched[(src, send_seq)] = True
                send_fn = (_event_at(pre, src, send_seq).fn
                           if send_seq is not None else "Send")
                matches.append(SyncMatch(
                    kind=KIND_P2P, fn=send_fn, comm_id=comm,
                    src=(src, send_seq) if send_seq is not None else None,
                    dst=(rank, event.seq)))
    return matches


def _event_at(pre: PreprocessedTrace, rank: int, seq: int) -> CallEvent:
    events = pre.events[rank]
    # per-rank seq numbers are dense when the full trace is materialized,
    # so seq often doubles as the list index
    if seq < len(events) and events[seq].seq == seq:
        event = events[seq]
    else:
        # sparse traces (call-only preprocess, filtered or hand-written):
        # per-rank seqs are still strictly increasing, so binary-search
        i = bisect_left(events, seq, key=lambda e: e.seq)
        if i == len(events) or events[i].seq != seq:
            raise AnalysisError(f"rank {rank} has no event with seq {seq}")
        event = events[i]
    if not isinstance(event, CallEvent):
        raise AnalysisError(
            f"rank {rank} seq {seq}: expected a call event")
    return event
