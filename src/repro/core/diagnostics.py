"""Consistency-error reports with the paper's diagnostic payload.

When DN-Analyzer finds a pair of conflicting operations it reports the
error "along with useful diagnostic information ... such as pairs of
conflicting operations and operation locations including file names,
routine names, and line numbers" (section III / IV-C).  That payload lives
in :class:`ConsistencyError`; reports deduplicate structurally identical
findings (same statement pair racing every loop iteration counts once,
with an occurrence counter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.util.intervals import Interval, IntervalSet
from repro.util.location import SourceLocation

# error kinds
INTRA_EPOCH = "intra_epoch"
CROSS_PROCESS = "cross_process"

# severities
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass
class AccessDesc:
    """One side of a conflicting pair."""

    rank: int
    kind: str  # load | store | get | put | acc
    fn: str  # MPI call name or "mem"
    var: str
    loc: SourceLocation
    intervals: IntervalSet
    #: trace sequence number of the access (issue point for RMA ops)
    seq: int = -1

    def describe(self) -> str:
        if self.kind in ("put", "get", "acc"):
            # prefer the concrete call name (MPI-3 atomics map to "acc")
            op = (f"MPI_{self.fn}" if self.fn and self.fn != "mem" else
                  {"put": "MPI_Put", "get": "MPI_Get",
                   "acc": "MPI_Accumulate"}[self.kind])
        elif self.fn == "mem":
            op = f"local {self.kind}"
        else:
            op = f"{self.kind} via MPI_{self.fn}"
        return f"{op} of '{self.var}' by rank {self.rank} at {self.loc.short}"


@dataclass
class ConsistencyError:
    """One detected memory consistency error (or warning)."""

    kind: str  # intra_epoch | cross_process
    severity: str  # error | warning
    rule: str  # violated Table-I cell: NONOV | ERROR | ORIGIN
    win_id: Optional[int]
    a: AccessDesc
    b: AccessDesc
    overlap: IntervalSet
    note: str = ""
    occurrences: int = 1
    #: why the pair was flagged: detection phase/pattern, the two
    #: influence spans (``[rank, start_seq, end_seq]`` trace references),
    #: the enclosing epoch (intra) and the happens-before edge that
    #: failed.  Set by the five shared pair checkers from pair-derived
    #: facts only, so structurally identical findings carry identical
    #: provenance on every engine / job count / cache path.
    provenance: dict = field(default_factory=dict)
    #: run-context annotation (engine, jobs, cache status, shard) — set
    #: after detection by the run that produced the report.  Never
    #: serialized and excluded from comparison: it describes *how this
    #: run found the error*, not the error itself, and varies across
    #: execution paths that must stay byte-identical.
    context: Optional[dict] = field(default=None, compare=False,
                                    repr=False)

    def suggestion(self) -> str:
        """A repair hint matched to the conflict class — the paper's goal
        of diagnostics that "help programmers locate and fix the bugs"."""
        rma_kinds = {"put", "get", "acc"}
        local_side = None
        if self.a.kind not in rma_kinds or self.a.fn == "mem":
            local_side = self.a
        elif self.b.kind not in rma_kinds or self.b.fn == "mem":
            local_side = self.b
        if self.kind == INTRA_EPOCH:
            if self.rule == "ORIGIN" and local_side is not None:
                return ("move the local access past the epoch-closing "
                        "synchronization (unlock/fence/complete), or "
                        "complete the operation early with an MPI-3 "
                        "Win_flush before touching its buffer")
            if self.rule == "ORIGIN":
                return ("give each operation its own local buffer, or "
                        "separate them with an MPI-3 Win_flush")
            return ("split the conflicting operations into separate "
                    "epochs (close and reopen the synchronization between "
                    "them), or make them same-op accumulates")
        # cross-process
        if self.severity == SEVERITY_WARNING:
            return ("the exclusive locks serialize these accesses but not "
                    "their order; if the order matters, add explicit "
                    "synchronization (e.g. send/recv or a barrier) "
                    "between the epochs")
        if local_side is not None:
            return (f"synchronize rank {local_side.rank}'s local access "
                    "with the remote epoch: separate them with a barrier/"
                    "send-recv, or protect both sides with exclusive locks")
        if self.a.kind == "acc" and self.b.kind == "acc":
            return ("use the same reduction op and basic datatype for "
                    "concurrent accumulates (they are then permitted to "
                    "overlap), or serialize the epochs")
        return ("order the conflicting epochs (barrier, send/recv, or "
                "post/start-complete/wait), target disjoint window "
                "regions, or replace the updates with same-op "
                "accumulates")

    @property
    def dedup_key(self) -> Tuple:
        sides = sorted([
            (self.a.rank, self.a.kind, self.a.fn, self.a.loc),
            (self.b.rank, self.b.kind, self.b.fn, self.b.loc),
        ])
        return (self.kind, self.severity, self.rule, self.win_id,
                tuple(sides))

    def to_dict(self) -> dict:
        """JSON-ready representation (for ``mc-checker check --json``)."""
        def side(desc: AccessDesc) -> dict:
            return {
                "rank": desc.rank, "kind": desc.kind, "fn": desc.fn,
                "var": desc.var, "seq": desc.seq,
                "file": desc.loc.filename, "line": desc.loc.lineno,
                "function": desc.loc.function,
                "intervals": [[iv.start, iv.stop]
                              for iv in desc.intervals],
            }

        return {
            "kind": self.kind,
            "severity": self.severity,
            "rule": self.rule,
            "window": self.win_id,
            "a": side(self.a),
            "b": side(self.b),
            "overlap_bytes": self.overlap.byte_count(),
            "overlap": [[iv.start, iv.stop] for iv in self.overlap],
            "note": self.note,
            "suggestion": self.suggestion(),
            "occurrences": self.occurrences,
            "provenance": dict(self.provenance),
        }

    def to_payload(self) -> dict:
        """Lossless JSON-ready form (the incremental result cache).

        Unlike :meth:`to_dict` — a presentation format that flattens
        locations and derives the suggestion — this round-trips through
        :meth:`from_payload` into a finding that is indistinguishable
        from the original: same dedup key, same sort key, same
        ``to_dict()`` output."""
        def side(desc: AccessDesc) -> dict:
            return {
                "rank": desc.rank, "kind": desc.kind, "fn": desc.fn,
                "var": desc.var, "seq": desc.seq,
                "loc": desc.loc.encode(),
                "iv": [[iv.start, iv.stop] for iv in desc.intervals],
            }

        return {
            "kind": self.kind, "severity": self.severity,
            "rule": self.rule, "win": self.win_id,
            "a": side(self.a), "b": side(self.b),
            "overlap": [[iv.start, iv.stop] for iv in self.overlap],
            "note": self.note, "occurrences": self.occurrences,
            "prov": dict(self.provenance),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ConsistencyError":
        def side(data: dict) -> AccessDesc:
            return AccessDesc(
                rank=int(data["rank"]), kind=str(data["kind"]),
                fn=str(data["fn"]), var=str(data["var"]),
                loc=SourceLocation.decode(str(data["loc"])),
                intervals=IntervalSet(
                    Interval(int(s), int(t)) for s, t in data["iv"]),
                seq=int(data["seq"]))

        win = payload["win"]
        return cls(
            kind=str(payload["kind"]), severity=str(payload["severity"]),
            rule=str(payload["rule"]),
            win_id=None if win is None else int(win),
            a=side(payload["a"]), b=side(payload["b"]),
            overlap=IntervalSet(
                Interval(int(s), int(t)) for s, t in payload["overlap"]),
            note=str(payload["note"]),
            occurrences=int(payload["occurrences"]),
            provenance=dict(payload.get("prov", {})))

    def provenance_line(self) -> str:
        """One-line rendering of the provenance record (text reports)."""
        prov = self.provenance
        parts = [f"{prov.get('phase', '?')}/{prov.get('pattern', '?')}"]
        spans = prov.get("spans")
        if spans:
            def one(span) -> str:
                rank, start, end = span
                return f"rank{rank}[{start},{end}]"
            parts.append(f"spans {one(spans['a'])} vs {one(spans['b'])}")
        epoch = prov.get("epoch")
        if epoch:
            parts.append(
                f"epoch {epoch['kind']}@rank{epoch['rank']}"
                f"[{epoch['open_seq']},{epoch['close_seq']}]")
        hb = prov.get("hb")
        if hb:
            parts.append(f"hb={hb.get('edge', '?')}")
        return "; ".join(parts)

    def format(self) -> str:
        head = ("WARNING" if self.severity == SEVERITY_WARNING else "ERROR")
        where = ("within an epoch" if self.kind == INTRA_EPOCH
                 else "across processes")
        lines = [
            f"{head}: memory consistency conflict {where}"
            + (f" on window {self.win_id}" if self.win_id is not None
               else ""),
            f"  (1) {self.a.describe()}",
            f"  (2) {self.b.describe()}",
        ]
        if self.overlap:
            b = self.overlap.bounds()
            lines.append(
                f"  overlapping bytes: [{b.start:#x}, {b.stop:#x}) "
                f"({self.overlap.byte_count()} bytes)")
        else:
            lines.append("  no byte overlap, but the combination is "
                         "erroneous under the MPI memory model")
        if self.note:
            lines.append(f"  note: {self.note}")
        if self.provenance:
            lines.append(f"  provenance: {self.provenance_line()}")
        lines.append(f"  suggested fix: {self.suggestion()}")
        if self.occurrences > 1:
            lines.append(f"  seen {self.occurrences} times")
        return "\n".join(lines)


def annotate_context(findings: List[ConsistencyError],
                     **context) -> List[ConsistencyError]:
    """Overlay run-context keys (engine, jobs, cache status, ...) onto
    each finding's non-serialized ``context`` annotation."""
    for finding in findings:
        merged = dict(finding.context or {})
        merged.update(context)
        finding.context = merged
    return findings


def _side_sort_key(desc: AccessDesc) -> Tuple:
    return (desc.rank, desc.seq, desc.loc.filename, desc.loc.lineno,
            desc.loc.function, desc.kind, desc.fn, desc.var)


def sort_findings(errors: List[ConsistencyError]) -> List[ConsistencyError]:
    """Deterministic report order: by (rank, seq, location) of the two
    sides, then the structural fields.

    Detection engines may discover the same multiset of findings in
    different orders (pairwise enumeration vs sweep-line joins, serial vs
    sharded merges).  Sorting *before* :func:`dedupe` makes both the
    surviving representative of each duplicate group and the final report
    order functions of the findings themselves, never of discovery order
    — which is what lets ``--engine sweep`` and ``--engine pairwise``
    produce byte-identical reports.
    """
    def key(error: ConsistencyError) -> Tuple:
        return (error.kind, error.severity, error.rule,
                -1 if error.win_id is None else error.win_id,
                _side_sort_key(error.a), _side_sort_key(error.b),
                error.note)

    return sorted(errors, key=key)


def dedupe(errors: List[ConsistencyError]) -> List[ConsistencyError]:
    """Collapse structurally identical findings, keeping counts."""
    seen = {}
    out: List[ConsistencyError] = []
    for error in errors:
        key = error.dedup_key
        if key in seen:
            seen[key].occurrences += 1
        else:
            seen[key] = error
            out.append(error)
    return out
