"""Streaming (online) analysis — the paper's stated future work.

Section VII-B: "While MC-Checker analyzes the traces offline, we can
extend it to perform online analysis by leveraging streaming processing
algorithms in the future."  This module is that extension: a region-at-a-
time checker whose memory footprint is bounded by the synchronization
structure plus a *single concurrent region's* load/store events, rather
than the full trace.

Two passes over the per-rank trace files:

1. **Control pass** — retain only MPI *call* events (synchronization,
   RMA, datatype, support).  These suffice to rebuild the registries,
   match synchronization, build the happens-before oracle, identify
   epochs, and lift the RMA operation views.  Call events are typically a
   small fraction of a trace; the load/store events the Profiler emits
   for compute-heavy applications dominate (Figure 10).
2. **Data pass** — stream the load/store events region by region (the
   global synchronization cuts are known after pass 1).  Each region is
   analyzed with the same :func:`~repro.core.inter.detect_region` pass the
   batch checker uses and then discarded; epoch-local accesses are held
   only until their epoch's closing synchronization has been passed, at
   which point :func:`~repro.core.intra.check_epoch` runs and the buffer
   is freed.

Findings are identical to the batch pipeline (differential-tested), and
:class:`StreamingChecker.peak_buffered_mems` records the bound actually
achieved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.clocks import ConcurrencyOracle
from repro.core.diagnostics import (
    SEVERITY_ERROR, ConsistencyError, dedupe, sort_findings,
)
from repro.core.engine import (
    check_epoch_sweep, detect_region_sweep, resolve_engine,
)
from repro.core.epochs import Epoch, EpochIndex
from repro.core.inter import LocalLockIndex, bucket_by_region, detect_region
from repro.core.intra import check_epoch
from repro.core.matching import match_synchronization
from repro.core.model import (
    AccessModel, LocalAccess, MemRows, build_access_model,
)
from repro.core.preprocess import (
    PreprocessedTrace, preprocess_calls_with_counts,
)
from repro.core.regions import RegionIndex
from repro.profiler.events import ACCESS_NAMES
from repro.profiler.tracer import TraceSet
from repro.util.intervals import IntervalSet


@dataclass
class RegionReport:
    """Findings of one concurrent region, emitted as it closes."""

    index: int
    findings: List[ConsistencyError]
    mem_events: int


@dataclass
class ControlState:
    """Everything the control pass derives from call events alone.

    Shared by the streaming checker (pass 1) and the incremental checker
    (whose cache planning is exactly a control pass): registries,
    synchronization matches, the happens-before oracle, epochs, the
    call-derived access model, concurrent regions, and the call-derived
    accesses pre-bucketed by region and epoch."""

    pre: PreprocessedTrace
    matches: list
    oracle: ConcurrencyOracle
    epochs: EpochIndex
    call_model: AccessModel
    regions: RegionIndex
    lock_index: LocalLockIndex
    #: per-rank per-class event counts from the trace readers
    counts: Dict[int, Dict[str, int]]
    ops_by_region: Dict[int, list]
    call_locals_by_region: Dict[int, List[LocalAccess]]
    #: keyed by ``id(epoch)`` (epochs are interned in ``epochs``)
    ops_by_epoch: Dict[int, list]
    attached_by_epoch: Dict[int, List[LocalAccess]]

    @property
    def total_mem_events(self) -> int:
        return sum(c["mem"] for c in self.counts.values())


def build_control_state(traces: TraceSet, timed=None,
                        pool=None) -> ControlState:
    """Run the call-only control pass over a trace set.

    ``timed(name, fn, **attrs)`` optionally wraps each phase (the
    incremental checker threads its phase-timing helper through); the
    default runs the phases untimed.  ``pool`` optionally provides an
    acquired :class:`~repro.core.parallel.WorkerPool` — the per-rank
    scan then fans out over its workers instead of running serially
    (the result is identical either way)."""
    if timed is None:
        def timed(_name, fn, **_attrs):
            return fn()
    if pool is not None:
        from repro.core.parallel import scan_traceset
        pre, counts = timed("preprocess",
                            lambda: scan_traceset(pool, traces))
    else:
        pre, counts = timed("preprocess",
                            lambda: preprocess_calls_with_counts(traces))
    matches = timed("matching", lambda: match_synchronization(pre),
                    nranks=pre.nranks, events=pre.total_events)
    oracle = timed("clocks", lambda: ConcurrencyOracle(pre, matches))
    epochs = timed("epochs", lambda: EpochIndex(pre))
    call_model = timed("model", lambda: build_access_model(pre, epochs))
    regions = timed("regions", lambda: RegionIndex(pre, matches))
    lock_index = LocalLockIndex(epochs, pre.nranks)

    # pre-bucket the call-derived accesses by region / epoch
    ops_by_region, call_locals_by_region = \
        bucket_by_region(call_model, regions)
    ops_by_epoch: Dict[int, list] = {}
    attached_by_epoch: Dict[int, List[LocalAccess]] = {}
    for op in call_model.ops:
        if op.epoch is not None:
            ops_by_epoch.setdefault(id(op.epoch), []).append(op)
    for la in call_model.local:
        if la.origin_of is not None and la.origin_of.epoch is not None:
            attached_by_epoch.setdefault(
                id(la.origin_of.epoch), []).append(la)
    return ControlState(
        pre=pre, matches=matches, oracle=oracle, epochs=epochs,
        call_model=call_model, regions=regions, lock_index=lock_index,
        counts=counts, ops_by_region=ops_by_region,
        call_locals_by_region=call_locals_by_region,
        ops_by_epoch=ops_by_epoch, attached_by_epoch=attached_by_epoch)


class StreamingChecker:
    """Region-at-a-time DN-Analyzer with bounded data-event memory."""

    def __init__(self, traces: TraceSet, memory_model: str = "separate",
                 engine: str = "sweep"):
        self.traces = traces
        self.memory_model = memory_model
        self.engine = resolve_engine(engine)
        self.peak_buffered_mems = 0
        self._control_pass()

    # ------------------------------------------------------------------

    def _control_pass(self) -> None:
        """Pass 1: everything derivable from call events alone.  Memory
        events are skipped without decoding (binary traces step over
        whole packed blocks via their frame length)."""
        state = build_control_state(self.traces)
        self.control = state
        self.pre = state.pre
        self.matches = state.matches
        self.oracle = state.oracle
        self.epochs = state.epochs
        self.call_model = state.call_model
        self.regions = state.regions
        self.lock_index = state.lock_index
        self._ops_by_region = state.ops_by_region
        self._call_locals_by_region = state.call_locals_by_region
        self._ops_by_epoch = state.ops_by_epoch
        self._attached_by_epoch = state.attached_by_epoch

    # ------------------------------------------------------------------

    def _rank_accesses(self, rank: int) -> Iterator[LocalAccess]:
        """One rank's instrumented loads/stores as LocalAccess views, in
        seq order, built straight from packed memory blocks (call events
        never materialize in the data pass)."""
        names = ACCESS_NAMES
        single = IntervalSet.single
        with self.traces.reader(rank) as reader:
            for block in reader.mem_blocks():
                table = block.table
                seqs, addrs, sizes, var_ids, loc_ids, accs = \
                    block.columns()
                for i in range(len(seqs)):
                    yield LocalAccess(
                        rank=rank, seq=seqs[i], access=names[accs[i]],
                        intervals=single(addrs[i], sizes[i]),
                        var=table.string(var_ids[i]),
                        loc=table.loc(loc_ids[i]), fn="mem")

    def _rank_blocks(self, rank: int):
        """One rank's packed memory blocks ``(table, struct array)``, in
        seq order, never decoded to objects (sweep data pass)."""
        with self.traces.reader(rank) as reader:
            for block in reader.mem_blocks():
                yield block.table, block.array

    def run(self) -> Iterator[RegionReport]:
        """Pass 2: stream memory events, yielding per-region findings."""
        if self.engine == "sweep":
            yield from self._run_sweep()
        else:
            yield from self._run_pairwise()

    def _run_pairwise(self) -> Iterator[RegionReport]:
        readers = [self._rank_accesses(rank)
                   for rank in range(self.pre.nranks)]
        lookahead: List[Optional[LocalAccess]] = [None] * self.pre.nranks
        # per-epoch buffered plain memory accesses, freed at epoch close
        epoch_mems: Dict[int, List[LocalAccess]] = {}
        open_epochs: List[Epoch] = sorted(
            self.epochs.access_epochs(),
            key=lambda e: (e.rank, e.open_seq))

        def next_mem(rank: int, upto: int) -> Iterator[LocalAccess]:
            """Drain rank's mem accesses with seq < upto."""
            pending = lookahead[rank]
            if pending is not None:
                if pending.seq >= upto:
                    return
                lookahead[rank] = None
                yield pending
            for access in readers[rank]:
                if access.seq >= upto:
                    lookahead[rank] = access
                    return
                yield access

        for region in self.regions:
            findings: List[ConsistencyError] = []
            region_mems: List[LocalAccess] = []
            consumed_upto = {}
            for rank in range(self.pre.nranks):
                _lo, hi = region.bounds[rank]
                upto = min(hi + 1, 1 << 62)
                consumed_upto[rank] = upto
                for la in next_mem(rank, upto):
                    region_mems.append(la)
                    for epoch in open_epochs:
                        if epoch.rank == rank and \
                                epoch.contains_seq(la.seq):
                            epoch_mems.setdefault(id(epoch), []).append(la)

            buffered = len(region_mems) + sum(
                len(v) for v in epoch_mems.values())
            self.peak_buffered_mems = max(self.peak_buffered_mems, buffered)

            # cross-process pass over this region
            region_ops = self._ops_by_region.get(region.index, [])
            if region_ops:
                locals_here = (self._call_locals_by_region.get(
                    region.index, []) + region_mems)
                findings.extend(detect_region(
                    self.pre, region_ops, locals_here, self.oracle,
                    self.lock_index, self.memory_model))

            # close every epoch whose closing sync has been passed
            still_open: List[Epoch] = []
            for epoch in open_epochs:
                if epoch.close_seq < consumed_upto.get(epoch.rank, 0):
                    findings.extend(check_epoch(
                        epoch,
                        self._ops_by_epoch.get(id(epoch), []),
                        self._attached_by_epoch.get(id(epoch), []),
                        epoch_mems.pop(id(epoch), []),
                        self.memory_model))
                else:
                    still_open.append(epoch)
            open_epochs = still_open

            yield RegionReport(index=region.index, findings=findings,
                               mem_events=len(region_mems))

        # epochs never closed in the trace (truncated programs)
        for epoch in open_epochs:
            findings = check_epoch(
                epoch, self._ops_by_epoch.get(id(epoch), []),
                self._attached_by_epoch.get(id(epoch), []),
                epoch_mems.pop(id(epoch), []), self.memory_model)
            if findings:
                yield RegionReport(index=len(self.regions), mem_events=0,
                                   findings=findings)

    def _run_sweep(self) -> Iterator[RegionReport]:
        """Sweep data pass: memory events stay packed as struct-array
        pieces — sliced per region (and per open epoch) with
        ``searchsorted``, handed to the sweep detectors, then discarded.
        The region walk, buffering bound, and epoch-close points mirror
        :meth:`_run_pairwise` exactly."""
        nranks = self.pre.nranks
        streams = [self._rank_blocks(rank) for rank in range(nranks)]
        tables: List = [None] * nranks
        pending: List[Optional[np.ndarray]] = [None] * nranks
        # per-epoch buffered row pieces, freed at epoch close
        epoch_pieces: Dict[int, List[np.ndarray]] = {}
        open_epochs: List[Epoch] = sorted(
            self.epochs.access_epochs(),
            key=lambda e: (e.rank, e.open_seq))

        def take(rank: int, upto: int) -> List[np.ndarray]:
            """Drain rank's packed rows with seq < upto."""
            pieces: List[np.ndarray] = []
            arr = pending[rank]
            if arr is not None:
                cut = int(np.searchsorted(arr["seq"], upto, side="left"))
                pieces.append(arr[:cut])
                if cut < len(arr):
                    pending[rank] = arr[cut:]
                    return pieces
                pending[rank] = None
            for table, block_arr in streams[rank]:
                tables[rank] = table
                block_arr = np.array(block_arr)  # detach from the mmap
                cut = int(np.searchsorted(block_arr["seq"], upto,
                                          side="left"))
                pieces.append(block_arr[:cut])
                if cut < len(block_arr):
                    pending[rank] = block_arr[cut:]
                    break
            return [p for p in pieces if len(p)]

        for region in self.regions:
            findings: List[ConsistencyError] = []
            region_pieces: Dict[int, List[np.ndarray]] = {}
            consumed_upto = {}
            for rank in range(nranks):
                _lo, hi = region.bounds[rank]
                upto = min(hi + 1, 1 << 62)
                consumed_upto[rank] = upto
                pieces = take(rank, upto)
                if not pieces:
                    continue
                region_pieces[rank] = pieces
                for epoch in open_epochs:
                    if epoch.rank != rank:
                        continue
                    for piece in pieces:
                        seqs = piece["seq"]
                        lo = int(np.searchsorted(seqs, epoch.open_seq,
                                                 side="right"))
                        hi_row = int(np.searchsorted(seqs, epoch.close_seq,
                                                     side="left"))
                        if hi_row > lo:
                            epoch_pieces.setdefault(id(epoch), []).append(
                                piece[lo:hi_row])

            mem_events = sum(len(p) for pieces in region_pieces.values()
                             for p in pieces)
            buffered = mem_events + sum(
                len(p) for plist in epoch_pieces.values() for p in plist)
            self.peak_buffered_mems = max(self.peak_buffered_mems, buffered)

            # cross-process pass over this region
            region_ops = self._ops_by_region.get(region.index, [])
            if region_ops:
                region_mems = {
                    rank: MemRows.from_struct(
                        rank, tables[rank],
                        pieces[0] if len(pieces) == 1
                        else np.concatenate(pieces))
                    for rank, pieces in region_pieces.items()}
                findings.extend(detect_region_sweep(
                    self.pre, region_ops,
                    self._call_locals_by_region.get(region.index, []),
                    region_mems, self.oracle, self.lock_index,
                    self.memory_model))

            # close every epoch whose closing sync has been passed
            still_open: List[Epoch] = []
            for epoch in open_epochs:
                if epoch.close_seq < consumed_upto.get(epoch.rank, 0):
                    findings.extend(self._close_epoch_sweep(epoch,
                                                            epoch_pieces,
                                                            tables))
                else:
                    still_open.append(epoch)
            open_epochs = still_open

            yield RegionReport(index=region.index, findings=findings,
                               mem_events=mem_events)

        # epochs never closed in the trace (truncated programs)
        for epoch in open_epochs:
            findings = self._close_epoch_sweep(epoch, epoch_pieces, tables)
            if findings:
                yield RegionReport(index=len(self.regions), mem_events=0,
                                   findings=findings)

    def _close_epoch_sweep(self, epoch: Epoch,
                           epoch_pieces: Dict[int, List[np.ndarray]],
                           tables: List) -> List[ConsistencyError]:
        """Run the sweep within-epoch check and free the epoch's rows.

        Like the pairwise data pass, only *instrumented* rows are
        buffered per epoch, so ``obj_mems`` stays empty."""
        pieces = epoch_pieces.pop(id(epoch), [])
        rows = None
        if pieces:
            rows = MemRows.from_struct(
                epoch.rank, tables[epoch.rank],
                pieces[0] if len(pieces) == 1 else np.concatenate(pieces))
        return check_epoch_sweep(
            epoch, self._ops_by_epoch.get(id(epoch), []),
            self._attached_by_epoch.get(id(epoch), []), [], rows,
            self.memory_model)


def check_streaming(traces: TraceSet,
                    memory_model: str = "separate",
                    engine: str = "sweep"
                    ) -> Tuple[List[ConsistencyError], StreamingChecker]:
    """Run the streaming pipeline to completion; returns deduplicated
    findings plus the checker (for its memory statistics)."""
    checker = StreamingChecker(traces, memory_model=memory_model,
                               engine=engine)
    findings: List[ConsistencyError] = []
    for report in checker.run():
        findings.extend(report.findings)
    return dedupe(sort_findings(findings)), checker
