"""Incremental checking with a content-addressed result cache.

MC-Checker's workflow is profile-then-analyze, and the same trace set is
typically analyzed many times — after a re-run that perturbed only a few
ranks, while bisecting with ``minimize``, or under CI.  This module makes
the warm path cheap: findings are cached per *shard* (a group of
concurrent regions) under a key derived purely from the shard's inputs,
so a warm ``check`` re-runs the sweep detectors only for shards whose
inputs changed and merges cached and fresh findings into a report that is
byte-identical to a cold run.

Two cache levels stack:

* **the whole-report fast path** — the run manifest records every
  rank's full-trace content digest alongside the finished (deduplicated)
  report.  When all digests and the engine version match, the stored
  report is served outright: identical inputs produce identical output,
  so even the control pass is skipped and a fully warm run costs little
  more than reading the trace trailers;
* **the per-shard cache** — when any rank changed, the control pass
  re-runs (invalidation soundness is decided fresh, never cached) and
  only the shards whose content keys moved are re-analyzed.

How the cache key covers every detector input
---------------------------------------------

A shard's findings are produced by :func:`check_epoch_sweep` (per access
epoch) and :func:`detect_region_sweep` (per region).  Their inputs are:

* **the shard's calls** — ops, attached/plain call-derived locals, and
  epoch structure all lift from call events.  Covered by a per-rank
  digest of the call events with ``lo < seq <= hi`` (inclusive upper
  bound: the global cut that *closes* a region maps to that region via
  :meth:`RegionIndex.region_of_seq`, and its buffer arguments feed that
  region's locals);
* **the shard's memory rows** — covered by per-rank digests over the
  ``row_range`` slice of the packed columns (prefixed with the rank's
  string-table digest, since ``var``/``loc`` ids are table-relative);
* **epoch structure** — epochs are grouped into the shard (see below)
  and canonicalized into the key outright, which also covers the lock
  index (it is a pure function of the epoch list);
* **the registries** — window bases/sizes, communicators, and datatypes
  may be created by calls *anywhere* in the trace but affect lifted
  intervals everywhere, so one global registry digest enters every key;
* **happens-before verdicts** — covered by the synchronization prefix
  fingerprint, below;
* **memory model / engine semantics** — literal config fields plus
  :data:`ENGINE_VERSION`, which must be bumped whenever detector
  semantics change.

Soundness of the synchronization fingerprint
--------------------------------------------

Every oracle query a shard issues is about two spans that end at or
before the shard's last region ``R`` (op spans and region-sliced locals
never extend past a region's closing cut).  Global cuts totally order
regions, so a synchronization match whose *every* participant lies in a
region ``> R`` cannot influence the verdict: any happens-before path
between the two queried spans that visited such a match would have to
cross the cut after ``R`` forward and return backward, and program order
plus send→recv edges never point backward across a global cut (that
would make a cycle through the cut's collective).  Hence the verdicts
depend only on matches whose *minimum* participant region is ``<= R`` —
exactly the prefix the fingerprint chains up.  Any change to any rank's
synchronization calls therefore dirties every shard whose fingerprint
prefix can see it (its own region and everything downstream), not just
the changed rank's shard.

Shard grouping
--------------

Regions are grouped into maximal contiguous shards such that no epoch
*interior*, op span, or local-access span crosses a shard boundary.  The
interior — ``contains_seq`` is exclusive on both ends — is what matters
for epochs: every detector input of an epoch unit (its ops, attached and
plain locals, and memory rows) lies strictly between the opening and
closing synchronization, while the boundary seqs themselves enter the
key through the epoch canon.  Grouping by the full span instead would
chain-merge every fence-delimited region (consecutive fence epochs share
their boundary cut) into one shard and destroy all reuse.  An epoch left
open to the end of the trace merges everything from its opening region
onward — coarse, but sound.  Within a shard, findings are stored
keyed by epoch position / region index, so the global merge can
reproduce the cold pipeline's concatenation order exactly; ``dedupe``
then runs once, in the parent, on the merged list — and because
``dedupe`` mutates its survivors' occurrence counters in place, shard
payloads are always serialized *before* the merge.
"""

from __future__ import annotations

import hashlib
import json
import os
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.checker import (
    CheckReport, CheckStats, publish_control_plane_obs, publish_report_obs,
)
from repro.core.clocks import Span
from repro.core.config import CheckConfig
from repro.core.diagnostics import (
    SEVERITY_ERROR, SEVERITY_WARNING, ConsistencyError, annotate_context,
    dedupe, sort_findings,
)
from repro.core.engine import check_epoch_sweep, detect_region_sweep
from repro.core.model import MemRows
from repro.core.model import share_rows
from repro.core.parallel import (
    _WORKER, _export, _pool_task, _task_recorder, absorb_export,
    acquire_pool, resolve_jobs, worker_rows,
)
from repro.core.streaming import ControlState, build_control_state
from repro.profiler.tracer import TraceSet
from repro.util.cachestore import CORRUPT, HIT, CacheStore
from repro.util.hashing import chain_hash, hash_lines, hash_strings, stable_hash

#: bump whenever detector semantics change — it is part of every shard
#: key, so stale findings can never be served across engine revisions
#: ("2": finding payloads gained the provenance record; "3": the
#: columnar control plane — sync matching, clocks, and epochs rebuilt
#: over CallTable columns)
ENGINE_VERSION = "3"

_SHARDS = "shards"
_MANIFESTS = "manifests"


# ----------------------------------------------------------------- plan


@dataclass
class ShardPlan:
    """One contiguous group of regions with its content-addressed key."""

    index: int
    first: int  # first region index (inclusive)
    last: int   # last region index (inclusive)
    key: str = ""

    @property
    def n_regions(self) -> int:
        return self.last - self.first + 1


@dataclass
class CachePlan:
    """Everything the resolve/detect/persist phases need."""

    cfg_key: str
    registry_digest: str
    shards: List[ShardPlan]
    #: per-shard access-epoch work: shard index -> [(position, epoch)]
    shard_epochs: Dict[int, List[Tuple[int, Any]]]
    #: slice digests used this run (written into the new manifest)
    slices: Dict[str, str]
    #: per-rank whole-trace content digests
    ranks: Dict[int, str]
    #: previous manifest's shard keys by (first, last)
    prev_shard_keys: Dict[Tuple[int, int], str]


def _epoch_regions(regions, epoch) -> range:
    """Regions an epoch's detector inputs can occupy: its *interior*
    (``contains_seq`` is exclusive, so ops/locals/rows all have
    ``open_seq < seq < close_seq``; the boundary seqs are covered by the
    epoch canon in the shard key, not by slice digests)."""
    rng = regions.regions_of_span(
        Span(epoch.rank, epoch.open_seq + 1, epoch.close_seq - 1))
    if rng.start >= rng.stop:  # empty interior
        r = min(rng.start, len(regions) - 1)
        return range(r, r + 1)
    return rng


class _RowLoader:
    """Loads each rank's packed memory rows (and the string-table digest)
    at most once per run; a fully warm run never calls it."""

    def __init__(self, traces: TraceSet):
        self._traces = traces
        self._cache: Dict[int, Tuple[MemRows, str]] = {}

    def load(self, rank: int) -> Tuple[MemRows, str]:
        entry = self._cache.get(rank)
        if entry is None:
            with self._traces.reader(rank) as reader:
                blocks = list(reader.mem_blocks())
            rows = MemRows.from_blocks(rank, blocks)
            strings = hash_strings(
                rows.table.strings if rows.table is not None else [])
            entry = self._cache[rank] = (rows, strings)
        return entry

    def rows(self, rank: int) -> MemRows:
        return self.load(rank)[0]

    @property
    def ranks_loaded(self) -> int:
        return len(self._cache)


# ----------------------------------------------------- canonical digests


def _canon_match(match) -> str:
    """Canonical serialization of one synchronization match."""
    return json.dumps({
        "kind": match.kind, "fn": match.fn,
        "members": sorted(match.members.items()),
        "src": match.src, "dst": match.dst,
        "comm": match.comm_id, "win": match.win_id,
        "index": match.index,
        "exits": sorted(match.exits.items()),
    }, sort_keys=True, separators=(",", ":"))


def _canon_epoch(epoch) -> list:
    return [epoch.rank, epoch.win_id, epoch.kind, epoch.open_seq,
            epoch.close_seq, epoch.target, epoch.lock_type,
            list(epoch.group)]


def _registry_digest(pre) -> str:
    """Digest of the merged registries (windows, comms, datatypes).

    Registry-building calls can appear anywhere in a trace but affect
    lifted intervals everywhere, so this digest goes into *every* shard
    key: a changed ``Win_create`` argument soundly dirties everything.
    """
    windows = sorted(
        [win_id, info.comm_id,
         sorted(info.bases.items()), sorted(info.sizes.items()),
         sorted(info.disp_units.items()), sorted(info.var_names.items())]
        for win_id, info in pre.windows.items())
    comms = sorted([cid, list(members)]
                   for cid, members in pre.comms.items())
    datatypes = [
        [rank, sorted(
            [tid, dt.name, [list(seg) for seg in dt.datamap],
             dt.extent, dt.base or ""]
            for tid, dt in pre.datatypes[rank].items())]
        for rank in range(pre.nranks)]
    return stable_hash({"nranks": pre.nranks, "windows": windows,
                        "comms": comms, "datatypes": datatypes})


def _sync_fingerprints(control: ControlState) -> List[str]:
    """``fp[r]`` = rolling hash over matches whose minimum participant
    region is ``<= r`` (the prefix the soundness argument needs)."""
    regions = control.regions
    n = len(regions)
    buckets: List[List[str]] = [[] for _ in range(n)]
    for match in control.matches:
        parts = match.participants()
        if parts:
            r_min = min(regions.region_of_seq(rank, seq)
                        for rank, seq in parts)
        else:
            r_min = 0
        buckets[min(r_min, n - 1)].append(_canon_match(match))
    fps: List[str] = []
    running = "sync-fp-v1"
    for bucket in buckets:
        running = chain_hash(running, stable_hash(sorted(bucket)))
        fps.append(running)
    return fps


def _mem_slice_digest(rows: MemRows, strings_digest: str,
                      lo_seq: int, hi_seq: int) -> str:
    """Digest of the packed rows with ``lo_seq < seq < hi_seq``."""
    lo, hi = rows.row_range(lo_seq, hi_seq)
    digest = hashlib.sha256()
    digest.update(strings_digest.encode("ascii"))
    for col in (rows.seq, rows.addr, rows.size, rows.var, rows.loc,
                rows.access):
        digest.update(np.ascontiguousarray(col[lo:hi]).tobytes())
    return digest.hexdigest()


# ----------------------------------------------------------- the checker


class IncrementalChecker:
    """Cache-aware DN-Analyzer: control pass, plan, resolve, re-run only
    the dirty shards, merge byte-identically."""

    #: keys of ``CheckStats.phase_seconds`` (control-pass phases reuse
    #: the batch pipeline's names); a fast-path run records only
    #: ``digests`` and ``resolve``
    PHASES = ("digests", "resolve", "preprocess", "matching", "clocks",
              "epochs", "model", "regions", "plan", "detect", "merge")

    def __init__(self, traces: TraceSet, config: CheckConfig):
        if not config.incremental or not config.cache_dir:
            raise ValueError(
                "IncrementalChecker requires CheckConfig(incremental=True,"
                " cache_dir=...)")
        self.traces = traces
        self.config = config
        self.jobs = resolve_jobs(config.jobs)
        self.store = CacheStore(config.cache_dir)
        # populated by run(); public for tests
        self.control: Optional[ControlState] = None
        self.plan: Optional[CachePlan] = None
        self.dirty_shards: List[ShardPlan] = []
        #: the run's persistent worker pool, acquired lazily on first
        #: parallelizable phase and shared with every later one (the
        #: control pass *and* the dirty-shard recompute reuse it)
        self._pool = None

    def _get_pool(self):
        if self._pool is None:
            self._pool = acquire_pool(self.jobs)
            self._pool.begin_run()
        return self._pool

    def run(self) -> CheckReport:
        try:
            with obs.span("analyzer.run",
                          memory_model=self.config.memory_model,
                          incremental=True) as run_span:
                report = self._run_phases()
        finally:
            if self._pool is not None:
                self._pool.end_run()
        publish_report_obs(report, run_span.duration)
        return report

    # ------------------------------------------------------------------

    def _run_phases(self) -> CheckReport:
        stats = CheckStats()
        timings = stats.phase_seconds
        rec = obs.get_recorder()

        def timed(name, fn, **attrs):
            with rec.span(f"analyzer.{name}", **attrs) as sp:
                result = fn()
            timings[name] = timings.get(name, 0.0) + sp.duration
            return result

        whole = timed("digests", self._rank_digests)
        report = timed("resolve",
                       lambda: self._load_whole_report(whole, rec, stats))
        if report is not None:
            return report

        pool = (self._get_pool()
                if self.jobs > 1 and self.traces.nranks > 1 else None)
        control = self.control = build_control_state(self.traces, timed,
                                                     pool=pool)
        stats.nranks = control.pre.nranks
        stats.events = control.pre.total_events
        stats.sync_matches = len(control.matches)
        stats.epochs = len(control.epochs.epochs)
        stats.regions = len(control.regions)
        stats.rma_ops = len(control.call_model.ops)
        # the sweep model's MemRows hold exactly the instrumented rows,
        # so the batch pipeline's total is call-derived locals + mems
        stats.local_accesses = (len(control.call_model.local)
                                + control.total_mem_events)
        publish_control_plane_obs(control.pre, stats.phase_seconds)

        loader = _RowLoader(self.traces)
        plan = self.plan = timed(
            "plan", lambda: self._build_plan(control, whole, loader))

        cached, dirty = timed("resolve",
                              lambda: self._resolve(plan, rec))
        self.dirty_shards = dirty
        computed = timed(
            "detect", lambda: self._detect(control, plan, dirty, loader),
            shards=len(dirty), jobs=self.jobs)
        findings = timed("merge", lambda: self._merge(
            plan, cached, computed, stats))
        if rec.enabled:
            rec.gauge("incremental_ranks_loaded", loader.ranks_loaded,
                      help="Ranks whose memory rows were read this run")

        annotate_context(findings, engine=self.config.engine,
                         jobs=self.jobs, mode="incremental")
        errors = [f for f in findings if f.severity == SEVERITY_ERROR]
        warnings = [f for f in findings if f.severity == SEVERITY_WARNING]
        return CheckReport(errors=errors, warnings=warnings, stats=stats)

    # -------------------------------------------------------- fast path

    def _cfg_key(self) -> str:
        return stable_hash({
            "kind": "incremental-manifest",
            "memory_model": self.config.memory_model,
            "engine": self.config.engine,
            "nranks": self.traces.nranks,
        })

    def _load_whole_report(self, whole: Dict[int, str], rec,
                           stats: CheckStats) -> Optional[CheckReport]:
        """Whole-report fast path: if every rank's full-trace content
        digest matches the manifest's (and the engine version is
        current), the stored deduplicated report *is* this run's report
        — identical inputs, identical output.  Any mismatch, decode
        error, or pre-fast-path manifest falls through to the shard
        path, which re-derives everything."""
        manifest, _status = self.store.load(_MANIFESTS, self._cfg_key())
        if manifest is None:
            return None
        try:
            if manifest.get("engine_version") != ENGINE_VERSION:
                return None
            ranks = {int(r): str(d)
                     for r, d in manifest["ranks"].items()}
            if ranks != whole:
                return None
            payload = manifest["report"]
            findings = [ConsistencyError.from_payload(p)
                        for p in payload["findings"]]
            for name in ("nranks", "events", "rma_ops", "local_accesses",
                         "sync_matches", "regions", "epochs"):
                setattr(stats, name, int(payload["stats"][name]))
            n_shards = len(manifest["shards"])
        except (KeyError, TypeError, ValueError, AttributeError):
            return None
        if rec.enabled:
            rec.count("incremental_cache_shards_total", n_shards,
                      outcome="hit",
                      help="Shard cache lookups by outcome")
            rec.count("incremental_regions_total", stats.regions,
                      state="clean",
                      help="Regions reused vs re-analyzed")
            rec.gauge("incremental_ranks_loaded", 0,
                      help="Ranks whose memory rows were read this run")
        annotate_context(findings, engine=self.config.engine,
                         jobs=self.jobs, mode="incremental",
                         cache="manifest")
        errors = [f for f in findings if f.severity == SEVERITY_ERROR]
        warnings = [f for f in findings
                    if f.severity == SEVERITY_WARNING]
        return CheckReport(errors=errors, warnings=warnings, stats=stats)

    # ------------------------------------------------------------- plan

    def _rank_digests(self) -> Dict[int, str]:
        whole: Dict[int, str] = {}
        for rank in range(self.traces.nranks):
            with self.traces.reader(rank) as reader:
                whole[rank] = reader.content_digest()
        return whole

    def _group_regions(self, control: ControlState) -> List[Tuple[int, int]]:
        """Maximal contiguous region groups closed under every epoch, op,
        and local-access span."""
        regions = control.regions
        n = len(regions)
        merge = [False] * max(n - 1, 0)

        def mark(hit: range) -> None:
            for i in range(hit.start, hit.stop - 1):
                merge[i] = True

        for epoch in control.epochs.epochs:
            mark(_epoch_regions(regions, epoch))
        for op in control.call_model.ops:
            mark(regions.regions_of_span(op.span))
        for la in control.call_model.local:
            mark(regions.regions_of_span(la.span))

        groups: List[Tuple[int, int]] = []
        start = 0
        for i in range(n - 1):
            if not merge[i]:
                groups.append((start, i))
                start = i + 1
        groups.append((start, n - 1))
        return groups

    def _build_plan(self, control: ControlState, whole: Dict[int, str],
                    loader: _RowLoader) -> CachePlan:
        pre = control.pre
        regions = control.regions
        cfg_key = self._cfg_key()
        manifest, _status = self.store.load(_MANIFESTS, cfg_key)
        prev_ranks: Dict[int, str] = {}
        prev_slices: Dict[str, str] = {}
        prev_shard_keys: Dict[Tuple[int, int], str] = {}
        if manifest is not None:
            try:
                prev_ranks = {int(r): str(d) for r, d in
                              manifest.get("ranks", {}).items()}
                prev_slices = {str(k): str(v) for k, v in
                               manifest.get("slices", {}).items()}
                prev_shard_keys = {
                    (int(s["regions"][0]), int(s["regions"][1])):
                        str(s["key"])
                    for s in manifest.get("shards", [])}
            except (KeyError, TypeError, ValueError, AttributeError):
                prev_ranks, prev_slices, prev_shard_keys = {}, {}, {}

        groups = self._group_regions(control)
        shards = [ShardPlan(index=i, first=first, last=last)
                  for i, (first, last) in enumerate(groups)]
        shard_of_region: Dict[int, int] = {}
        for shard in shards:
            for r in range(shard.first, shard.last + 1):
                shard_of_region[r] = shard.index

        # epoch structure per shard: every epoch (access and exposure)
        # enters the key canon; access epochs with ops become intra units
        epoch_canon: Dict[int, list] = {s.index: [] for s in shards}
        for epoch in control.epochs.epochs:
            s = shard_of_region[_epoch_regions(regions, epoch).start]
            epoch_canon[s].append(_canon_epoch(epoch))
        shard_epochs: Dict[int, List[Tuple[int, Any]]] = {
            s.index: [] for s in shards}
        for pos, epoch in enumerate(control.epochs.access_epochs()):
            if not control.ops_by_epoch.get(id(epoch)):
                continue
            s = shard_of_region[_epoch_regions(regions, epoch).start]
            shard_epochs[s].append((pos, epoch))

        registry = _registry_digest(pre)
        fps = _sync_fingerprints(control)

        # per-rank call-event seq arrays for slice digests (the table's
        # seq column is the same sequence, already packed)
        tables = getattr(pre, "call_tables", None)
        call_seqs: Dict[int, List[int]] = {
            rank: (tables[rank].seq.tolist() if tables is not None
                   else [e.seq for e in pre.events[rank]])
            for rank in range(pre.nranks)}

        slices: Dict[str, str] = {}

        def mem_digest(rank: int, lo: int, hi: int) -> str:
            key = f"{rank}:{lo}:{hi}"
            cached = slices.get(key)
            if cached is not None:
                return cached
            if whole.get(rank) == prev_ranks.get(rank) and \
                    key in prev_slices:
                # the rank's file is byte-identical to the manifest's,
                # so its recorded slice digest is still valid — no
                # memory I/O on the warm path
                digest = prev_slices[key]
            else:
                rows, strings_digest = loader.load(rank)
                digest = _mem_slice_digest(rows, strings_digest, lo, hi)
            slices[key] = digest
            return digest

        for shard in shards:
            bounds = {}
            calls = {}
            mems = {}
            for rank in range(pre.nranks):
                lo = regions.regions[shard.first].bounds[rank][0]
                hi = regions.regions[shard.last].bounds[rank][1]
                bounds[rank] = [
                    list(regions.regions[r].bounds[rank])
                    for r in range(shard.first, shard.last + 1)]
                seqs = call_seqs[rank]
                i = bisect_right(seqs, lo)
                j = bisect_right(seqs, hi)
                calls[rank] = hash_lines(
                    e.encode() for e in pre.events[rank][i:j])
                mems[rank] = mem_digest(rank, lo, hi)
            shard.key = stable_hash({
                "kind": "incremental-shard",
                "engine_version": ENGINE_VERSION,
                "memory_model": self.config.memory_model,
                "engine": self.config.engine,
                "nranks": pre.nranks,
                "registry": registry,
                "sync": fps[shard.last],
                "regions": [shard.first, shard.last],
                "bounds": [[rank, bounds[rank]]
                           for rank in range(pre.nranks)],
                "epochs": epoch_canon[shard.index],
                "calls": [[rank, calls[rank]]
                          for rank in range(pre.nranks)],
                "mems": [[rank, mems[rank]]
                         for rank in range(pre.nranks)],
            })

        return CachePlan(cfg_key=cfg_key, registry_digest=registry,
                         shards=shards, shard_epochs=shard_epochs,
                         slices=slices, ranks=whole,
                         prev_shard_keys=prev_shard_keys)

    # ---------------------------------------------------------- resolve

    def _resolve(self, plan: CachePlan, rec):
        """Split shards into cache hits (decoded findings) and dirty."""
        cached: Dict[int, Tuple[list, list]] = {}
        dirty: List[ShardPlan] = []
        for shard in plan.shards:
            payload, status = self.store.load(_SHARDS, shard.key)
            decoded = None
            if status == HIT:
                try:
                    decoded = _decode_shard_payload(payload)
                except (KeyError, TypeError, ValueError, AttributeError):
                    decoded = None
                    status = CORRUPT
            if decoded is not None:
                _annotate_decoded(decoded, shard.index, "hit")
                cached[shard.index] = decoded
                outcome = "hit"
            else:
                dirty.append(shard)
                if status == CORRUPT:
                    outcome = "corrupt"
                else:
                    prev = plan.prev_shard_keys.get(
                        (shard.first, shard.last))
                    outcome = ("invalidated"
                               if prev is not None and prev != shard.key
                               else "miss")
            if rec.enabled:
                rec.count("incremental_cache_shards_total", 1,
                          outcome=outcome,
                          help="Shard cache lookups by outcome")
                rec.count("incremental_regions_total", shard.n_regions,
                          state="clean" if outcome == "hit" else "dirty",
                          help="Regions reused vs re-analyzed")
                rec.count("incremental_shard_regions", shard.n_regions,
                          shard=str(shard.index), outcome=outcome,
                          help="Per-shard region counts by cache outcome")
        return cached, dirty

    # ----------------------------------------------------------- detect

    def _shard_unit(self, control: ControlState, plan: CachePlan,
                    shard: ShardPlan, loader: _RowLoader,
                    plain_by_rank: Dict[int, List]) -> Dict[str, list]:
        """Describe one dirty shard's detector inputs, mirroring
        :func:`bucket_by_epoch_sweep` / :func:`bucket_by_region_sweep`
        over the full-rank rows.

        Memory rows enter the unit as ``(rank, lo, hi)`` range tuples,
        never as materialized slices — the serial path resolves them
        through the loader, the parallel path through the shared
        segments, so a unit pickles without dragging row data along."""
        regions = control.regions
        epoch_units = []
        for pos, epoch in plan.shard_epochs[shard.index]:
            ops = control.ops_by_epoch[id(epoch)]
            attached = control.attached_by_epoch.get(id(epoch), [])
            obj_mems = [la for la in plain_by_rank.get(epoch.rank, ())
                        if epoch.contains_seq(la.seq)]
            rows = loader.rows(epoch.rank)
            lo, hi = rows.row_range(epoch.open_seq, epoch.close_seq)
            epoch_units.append((pos, epoch, ops, attached, obj_mems,
                                epoch.rank, lo, hi))
        region_units = []
        for r in range(shard.first, shard.last + 1):
            region_ops = control.ops_by_region.get(r, [])
            if not region_ops:
                continue
            region = regions.regions[r]
            bounds: Dict[int, Tuple[int, int]] = {}
            for rank in range(control.pre.nranks):
                rows = loader.rows(rank)
                if not len(rows):
                    continue
                lo_seq, hi_seq = region.bounds[rank]
                lo, hi = rows.row_range(lo_seq, hi_seq)
                if hi > lo:
                    bounds[rank] = (lo, hi)
            region_units.append(
                (r, region_ops,
                 control.call_locals_by_region.get(r, []), bounds))
        return {"shard": shard.index, "epochs": epoch_units,
                "regions": region_units}

    def _detect(self, control: ControlState, plan: CachePlan,
                dirty: List[ShardPlan], loader: _RowLoader
                ) -> Dict[int, Tuple[list, list]]:
        if not dirty:
            return {}
        plain_by_rank: Dict[int, List] = {}
        for la in control.call_model.local:
            if la.origin_of is None:
                plain_by_rank.setdefault(la.rank, []).append(la)
        units = [self._shard_unit(control, plan, shard, loader,
                                  plain_by_rank)
                 for shard in dirty]
        memory_model = self.config.memory_model
        if self.jobs > 1 and len(units) > 1:
            # publish the needed ranks' rows as shared segments (reusing
            # the run's pool — the same workers that ran the control
            # scan) and ship each unit once, to one worker, as a task
            # argument; the rows themselves never cross the pipe
            pool = self._get_pool()
            needed = sorted(
                {unit_rank for unit in units
                 for *_fields, unit_rank, _lo, _hi in unit["epochs"]}
                | {rank for unit in units
                   for _r, _ops, _locals, bounds in unit["regions"]
                   for rank in bounds})
            descs = {}
            for rank in needed:
                name = pool.new_segment_name(rank)
                pool.expect_segment(name)
                desc, handle = share_rows(loader.rows(rank), name)
                if handle is not None:
                    pool.adopt_segment(name, handle)
                    obs.count("parallel_shm_bytes_total", handle.size,
                              phase="incremental",
                              help="Bytes published to shared MemRows "
                                   "segments, by phase")
                descs[rank] = desc
            # shard compute only resolves windows through ``pre``; the
            # registries-only view keeps the install pickle small
            pool.install("incremental", {
                "pre": control.pre.registry_view(),
                "oracle": control.oracle,
                "lock_index": control.lock_index,
                "memory_model": memory_model, "mems_shm": descs,
                "obs": obs.is_enabled()})
            results = pool.run("incremental", "incremental_shard", units)
            payloads = []
            for intra, inter, export in results:
                absorb_export(export)
                payloads.append((intra, inter))
        else:
            payloads = [
                _compute_shard(unit, control.pre, control.oracle,
                               control.lock_index, memory_model,
                               loader.rows)
                for unit in units]

        computed: Dict[int, Tuple[list, list]] = {}
        for shard, (intra, inter) in zip(dirty, payloads):
            # persist *before* the merge: dedupe mutates occurrence
            # counters on the very objects the payload describes
            self.store.store(_SHARDS, shard.key, {
                "regions": [shard.first, shard.last],
                "intra": intra, "inter": inter})
            decoded = _decode_shard_payload(
                {"intra": intra, "inter": inter})
            _annotate_decoded(decoded, shard.index, "computed")
            computed[shard.index] = decoded
        return computed

    # ------------------------------------------------------------ merge

    def _merge(self, plan: CachePlan,
               cached: Dict[int, Tuple[list, list]],
               computed: Dict[int, Tuple[list, list]],
               stats: CheckStats) -> List[ConsistencyError]:
        intra_by_pos: Dict[int, List[ConsistencyError]] = {}
        inter_by_region: Dict[int, List[ConsistencyError]] = {}
        for source in (cached, computed):
            for intra, inter in source.values():
                for pos, findings in intra:
                    intra_by_pos[pos] = findings
                for r, findings in inter:
                    inter_by_region[r] = findings
        # cold concatenation order: intra findings in epoch-index order,
        # then inter findings in region order — the pre-sort list order
        # decides each duplicate group's surviving representative
        findings: List[ConsistencyError] = []
        for pos in sorted(intra_by_pos):
            findings.extend(intra_by_pos[pos])
        for r in sorted(inter_by_region):
            findings.extend(inter_by_region[r])
        findings = dedupe(sort_findings(findings))

        self.store.store(_MANIFESTS, plan.cfg_key, {
            "version": 1,
            "engine_version": ENGINE_VERSION,
            "memory_model": self.config.memory_model,
            "engine": self.config.engine,
            "nranks": self.traces.nranks,
            "registry": plan.registry_digest,
            "ranks": {str(r): d for r, d in plan.ranks.items()},
            "slices": plan.slices,
            "shards": [{"regions": [s.first, s.last], "key": s.key}
                       for s in plan.shards],
            # the finished report, serialized *after* dedupe so the
            # fast path serves final occurrence counts
            "report": {
                "findings": [f.to_payload() for f in findings],
                "stats": {
                    "nranks": stats.nranks, "events": stats.events,
                    "rma_ops": stats.rma_ops,
                    "local_accesses": stats.local_accesses,
                    "sync_matches": stats.sync_matches,
                    "regions": stats.regions, "epochs": stats.epochs,
                },
            },
        })
        return findings


# ------------------------------------------------------- shard compute


def _compute_shard(unit: Dict[str, list], pre, oracle, lock_index,
                   memory_model: str, rows_of) -> Tuple[list, list]:
    """Run the sweep detectors over one shard; findings are serialized
    immediately (raw detector output always has ``occurrences == 1``).

    ``rows_of(rank)`` resolves a rank's full :class:`MemRows` — the
    row-loader in the serial path, the attached shared segments in a
    pool worker — and the unit's ``(lo, hi)`` ranges slice into it."""
    intra = []
    for pos, epoch, ops, attached, obj_mems, rank, lo, hi \
            in unit["epochs"]:
        found = check_epoch_sweep(epoch, ops, attached, obj_mems,
                                  rows_of(rank).slice(lo, hi),
                                  memory_model)
        intra.append([pos, [f.to_payload() for f in found]])
    inter = []
    for r, region_ops, region_locals, bounds in unit["regions"]:
        region_mems: Dict[int, MemRows] = {
            rank: rows_of(rank).slice(lo, hi)
            for rank, (lo, hi) in bounds.items()}
        found = detect_region_sweep(pre, region_ops, region_locals,
                                    region_mems, oracle, lock_index,
                                    memory_model)
        inter.append([r, [f.to_payload() for f in found]])
    return intra, inter


@_pool_task("incremental_shard")
def _shard_task(unit: Dict[str, list]):
    """Worker-pool task: compute one dirty shard (shipped as the task
    argument) against installed control state and shared row segments."""
    rec = _task_recorder()
    descs = _WORKER["mems_shm"]
    with rec.span("analyzer.incremental.shard", shard=unit["shard"],
                  pid=os.getpid()):
        intra, inter = _compute_shard(
            unit, _WORKER["pre"], _WORKER["oracle"],
            _WORKER["lock_index"], _WORKER["memory_model"],
            lambda rank: worker_rows(descs[rank]))
    rec.count("parallel_tasks_total", phase="incremental")
    return intra, inter, _export(rec)


def _annotate_decoded(decoded: Tuple[list, list], shard_index: int,
                      cache_status: str) -> None:
    """Stamp one shard's findings with how the cache resolved them."""
    intra, inter = decoded
    for _pos, findings in intra:
        annotate_context(findings, cache=cache_status, shard=shard_index)
    for _r, findings in inter:
        annotate_context(findings, cache=cache_status, shard=shard_index)


def _decode_shard_payload(payload: dict) -> Tuple[list, list]:
    """Payload -> ``(intra, inter)`` finding lists; raises on any shape
    mismatch (the caller treats that as a corrupt entry)."""
    intra = [(int(pos), [ConsistencyError.from_payload(p) for p in items])
             for pos, items in payload["intra"]]
    inter = [(int(r), [ConsistencyError.from_payload(p) for p in items])
             for r, items in payload["inter"]]
    return intra, inter


def check_incremental(traces: TraceSet, config: CheckConfig) -> CheckReport:
    """Entry point used by :func:`repro.core.checker.check_traces`."""
    return IncrementalChecker(traces, config).run()
