"""repro.core.engine — the sweep-line columnar conflict engine.

The pairwise detectors (:mod:`repro.core.intra`, :mod:`repro.core.inter`)
enumerate access pairs and then test each for byte overlap.  This module
inverts that: per bucket (epoch or ``(window, target)`` vector entry) the
access intervals go into :class:`~repro.util.intervals.IntervalTable`
columns and one sort+``searchsorted`` sweep
(:func:`~repro.util.intervals.overlap_join`) yields *only the candidate
pairs that actually share bytes*; Table-I compatibility, happens-before
pruning, and diagnostic payloads then run on that (usually tiny) survivor
set — by delegating to the very same per-pair check functions the
pairwise engine uses, so the two engines emit the same findings by
construction.

Completeness of the join: among the RMA kinds (put/get/acc) Table I has
no ``ERROR`` cells, and its ``NONOV`` cells fire only on overlap, so
every op-op (and every attached-origin) finding requires byte overlap —
the join loses nothing.  The one Table-I rule that fires *without*
overlap is the MPI-2.2 store-vs-Put/Accumulate ``ERROR`` cell (separate
memory model only): those pairs are enumerated explicitly as the
stores-inside-the-exposed-window × put/acc-ops product, which is
output-bounded by the same quantity the pairwise scan walks.

Candidate-pair counts per phase land in the obs metric
``engine_candidate_pairs_total{phase,stage}`` so pruning effectiveness is
observable (they are deliberately *not* part of ``CheckStats`` — the
canonical report must stay engine-invariant byte for byte).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.clocks import ConcurrencyOracle
from repro.core.compat import GET, MODEL_SEPARATE
from repro.core.diagnostics import ConsistencyError
from repro.core.epochs import Epoch, EpochIndex
from repro.core.inter import (
    _LocalLockIndex, _OpVector, _check_concurrent_local_vs_op,
    _check_concurrent_ops, bucket_by_region, check_local_against_entries,
)
from repro.core.intra import (
    _check_attached_pair, _check_attached_vs_plain, _check_target_pair,
    bucket_by_epoch,
)
from repro.core.model import AccessModel, LocalAccess, MemRows, RMAOpView
from repro.core.preprocess import PreprocessedTrace
from repro.core.regions import RegionIndex
from repro.profiler.events import ACCESS_CODES
from repro.util.intervals import IntervalTable, overlap_join

#: recognized values of the ``engine=`` / ``--engine`` switch
ENGINES = ("sweep", "pairwise")

_STORE_CODE = ACCESS_CODES["store"]


def resolve_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r} (expected one of {ENGINES})")
    return engine


def _record_candidates(phase: str, stage: str, n: int) -> None:
    if n:
        rec = obs.get_recorder()
        if rec.enabled:
            rec.count("engine_candidate_pairs_total", n, phase=phase,
                      stage=stage,
                      help="Candidate pairs surviving the sweep-engine "
                           "interval join, per phase and stage")


# ----------------------------------------------------------------------
# intra-epoch detection
# ----------------------------------------------------------------------

#: one epoch's sweep work unit: the object populations of
#: :data:`repro.core.intra.EpochUnit` plus the (lo, hi) row range of the
#: epoch's rank inside that rank's MemRows columns
SweepEpochUnit = Tuple[Epoch, List[RMAOpView], List[LocalAccess],
                       List[LocalAccess], int, int, int]


def bucket_by_epoch_sweep(model: AccessModel,
                          epoch_index: EpochIndex) -> List[SweepEpochUnit]:
    """Per-epoch sweep units, in ``epoch_index`` order.

    Object populations (ops, attached origins, call-derived plain locals)
    come from the shared :func:`bucket_by_epoch`; the packed memory rows
    are addressed as a ``searchsorted`` range instead of a filter scan.
    """
    units: List[SweepEpochUnit] = []
    for epoch, ops, attached, obj_mems in bucket_by_epoch(model,
                                                          epoch_index):
        rows = model.mems.get(epoch.rank)
        if rows is not None and len(rows):
            lo, hi = rows.row_range(epoch.open_seq, epoch.close_seq)
        else:
            lo = hi = 0
        units.append((epoch, ops, attached, obj_mems, epoch.rank, lo, hi))
    return units


def detect_intra_epoch_sweep(model: AccessModel, epoch_index: EpochIndex,
                             memory_model: str = MODEL_SEPARATE
                             ) -> List[ConsistencyError]:
    """Sweep counterpart of :func:`repro.core.intra.detect_intra_epoch`."""
    errors: List[ConsistencyError] = []
    for epoch, ops, attached, obj_mems, rank, lo, hi in \
            bucket_by_epoch_sweep(model, epoch_index):
        rows = model.mems.get(rank)
        rows = rows.slice(lo, hi) if rows is not None else None
        errors.extend(check_epoch_sweep(epoch, ops, attached, obj_mems,
                                        rows, memory_model))
    return errors


def check_epoch_sweep(epoch: Epoch, ops: List[RMAOpView],
                      attached: List[LocalAccess],
                      obj_mems: List[LocalAccess],
                      rows: Optional[MemRows],
                      memory_model: str = MODEL_SEPARATE
                      ) -> List[ConsistencyError]:
    """Within-epoch ruleset over one epoch, joins first.

    Same verdicts as :func:`repro.core.intra.check_epoch` with ``mems =
    obj_mems + rows-as-objects``: every candidate pair the joins produce
    is handed to the pairwise per-pair checker, and no intra finding can
    exist without byte overlap (op-op NONOV cells and both ORIGIN rules
    all require it), so nothing outside the joins can fire.
    """
    errors: List[ConsistencyError] = []

    # (a) RMA op pairs on the same target: self-join of target intervals
    if len(ops) > 1:
        by_target: Dict[int, List[int]] = {}
        for i, op in enumerate(ops):
            by_target.setdefault(op.target, []).append(i)
        for idxs in by_target.values():
            if len(idxs) < 2:
                continue
            table = IntervalTable.from_sets(
                [ops[i].target_intervals for i in idxs], owners=idxs)
            pair_a, pair_b = overlap_join(table, table)
            keep = pair_a < pair_b
            pair_a, pair_b = pair_a[keep], pair_b[keep]
            _record_candidates("intra", "op_pair", len(pair_a))
            for i, j in zip(pair_a.tolist(), pair_b.tolist()):
                error = _check_target_pair(ops[i], ops[j], memory_model)
                if error is not None:
                    errors.append(error)

    if not attached:
        return errors

    # (b) attached origin buffers vs plain locals (columnar rows first,
    # then the call-derived objects) and vs each other
    att_table = IntervalTable.from_sets([a.intervals for a in attached])
    n_rows = len(rows) if rows is not None else 0
    plain_parts = []
    if n_rows:
        plain_parts.append(IntervalTable.from_columns(rows.addr, rows.size))
    if obj_mems:
        plain_parts.append(IntervalTable.from_sets(
            [la.intervals for la in obj_mems],
            owners=[n_rows + i for i in range(len(obj_mems))]))
    if plain_parts:
        plain_table = IntervalTable.concat(plain_parts)
        pair_a, pair_p = overlap_join(att_table, plain_table)
        if len(pair_a):
            # vectorized prefilter mirroring _check_attached_vs_plain's
            # seq-window and store conditions; survivors re-run the full
            # scalar check for the identical payload
            att_seq = np.array([a.origin_of.seq for a in attached],
                               dtype=np.int64)
            att_complete = np.array(
                [a.origin_of.complete_seq for a in attached],
                dtype=np.int64)
            att_store = np.array([a.access == "store" for a in attached])
            if n_rows:
                plain_seq = np.concatenate(
                    [rows.seq, np.array([la.seq for la in obj_mems],
                                        dtype=np.int64)]) \
                    if obj_mems else rows.seq
                plain_store = np.concatenate(
                    [rows.access == _STORE_CODE,
                     np.array([la.access == "store" for la in obj_mems],
                              dtype=bool)]) \
                    if obj_mems else rows.access == _STORE_CODE
            else:
                plain_seq = np.array([la.seq for la in obj_mems],
                                     dtype=np.int64)
                plain_store = np.array(
                    [la.access == "store" for la in obj_mems], dtype=bool)
            keep = ((plain_seq[pair_p] >= att_seq[pair_a])
                    & (plain_seq[pair_p] <= att_complete[pair_a])
                    & (att_store[pair_a] | plain_store[pair_p]))
            pair_a, pair_p = pair_a[keep], pair_p[keep]
            _record_candidates("intra", "origin_vs_plain", len(pair_a))
            for k, m in zip(pair_a.tolist(), pair_p.tolist()):
                la = (rows.local_access(m) if m < n_rows
                      else obj_mems[m - n_rows])
                errors.extend(_check_attached_vs_plain(attached[k], la))

    if len(attached) > 1:
        pair_a, pair_b = overlap_join(att_table, att_table)
        keep = pair_a < pair_b
        pair_a, pair_b = pair_a[keep], pair_b[keep]
        _record_candidates("intra", "origin_pair", len(pair_a))
        for k, m in zip(pair_a.tolist(), pair_b.tolist()):
            acc_a, acc_b = attached[k], attached[m]
            if acc_a.origin_of is acc_b.origin_of:
                continue  # one call's own buffers don't self-conflict
            errors.extend(_check_attached_pair(acc_a, acc_b))
    return errors


# ----------------------------------------------------------------------
# cross-process detection
# ----------------------------------------------------------------------

#: one region's sweep work unit: ``(region_ops, region_locals,
#: {rank: (lo, hi) row range})``
SweepRegionUnit = Tuple[List[RMAOpView], List[LocalAccess],
                        Dict[int, Tuple[int, int]]]


def bucket_by_region_sweep(model: AccessModel,
                           regions: RegionIndex) -> List[SweepRegionUnit]:
    """Per-region sweep units for regions that contain at least one op
    (others cannot produce cross-process findings), in region order."""
    ops_by_region, locals_by_region = bucket_by_region(model, regions)
    units: List[SweepRegionUnit] = []
    for region in regions:
        region_ops = ops_by_region.get(region.index, [])
        if not region_ops:
            continue
        bounds: Dict[int, Tuple[int, int]] = {}
        for rank, rows in model.mems.items():
            if not len(rows):
                continue
            lo_seq, hi_seq = region.bounds[rank]
            lo, hi = rows.row_range(lo_seq, hi_seq)
            if hi > lo:
                bounds[rank] = (lo, hi)
        units.append((region_ops,
                      locals_by_region.get(region.index, []), bounds))
    return units


def detect_cross_process_sweep(pre: PreprocessedTrace, model: AccessModel,
                               regions: RegionIndex,
                               oracle: ConcurrencyOracle,
                               epoch_index: EpochIndex,
                               memory_model: str = MODEL_SEPARATE
                               ) -> List[ConsistencyError]:
    """Sweep counterpart of :func:`repro.core.inter.detect_cross_process`."""
    errors: List[ConsistencyError] = []
    lock_index = _LocalLockIndex(epoch_index, pre.nranks)
    for region_ops, region_locals, bounds in \
            bucket_by_region_sweep(model, regions):
        region_mems = {rank: model.mems[rank].slice(lo, hi)
                       for rank, (lo, hi) in bounds.items()}
        errors.extend(detect_region_sweep(
            pre, region_ops, region_locals, region_mems, oracle,
            lock_index, memory_model))
    return errors


def detect_region_sweep(pre: PreprocessedTrace,
                        region_ops: List[RMAOpView],
                        region_locals: List[LocalAccess],
                        region_mems: Dict[int, MemRows],
                        oracle: ConcurrencyOracle,
                        lock_index: _LocalLockIndex,
                        memory_model: str = MODEL_SEPARATE
                        ) -> List[ConsistencyError]:
    """One concurrent region, joins first.

    Mirrors :func:`repro.core.inter.detect_region` with ``region_locals +
    region_mems-as-objects`` as the local population: object locals reuse
    the pairwise step-2 loop verbatim, op-op pairs and the packed memory
    rows go through interval joins with a batched happens-before filter,
    and the no-overlap store-vs-put/acc ``ERROR`` rule (separate model)
    is enumerated as an explicit product over the stores that touch the
    exposed window.
    """
    errors: List[ConsistencyError] = []

    # step 1: bucket ops into (window, target) vector entries, then
    # self-join each entry's target intervals
    vector: Dict[Tuple[int, int], _OpVector] = {}
    entries_by_rank: Dict[int, List[_OpVector]] = {}
    for op in region_ops:
        key = (op.win_id, op.target)
        entry = vector.get(key)
        if entry is None:
            entry = vector[key] = _OpVector(op.win_id, op.target)
            entries_by_rank.setdefault(op.target, []).append(entry)
        entry.append(op)

    for entry in vector.values():
        entry_ops = entry.ops
        if len(entry_ops) < 2:
            continue
        table = IntervalTable.from_sets(
            [op.target_intervals for op in entry_ops])
        pair_a, pair_b = overlap_join(table, table)
        keep = pair_a < pair_b
        pair_a, pair_b = pair_a[keep], pair_b[keep]
        if not len(pair_a):
            continue
        ranks, starts, ends = entry.arrays()
        keep = ranks[pair_a] != ranks[pair_b]  # same-rank: intra's job
        pair_a, pair_b = pair_a[keep], pair_b[keep]
        _record_candidates("inter", "op_pair", len(pair_a))
        concurrent = ~oracle.ordered_pairs(
            ranks[pair_a], starts[pair_a], ends[pair_a],
            ranks[pair_b], starts[pair_b], ends[pair_b])
        for k in np.nonzero(concurrent)[0].tolist():
            error = _check_concurrent_ops(entry_ops[pair_a[k]],
                                          entry_ops[pair_b[k]],
                                          memory_model)
            if error is not None:
                errors.append(error)

    # step 2a: call-derived local objects — the pairwise inner loop
    for la in region_locals:
        check_local_against_entries(
            pre, la, entries_by_rank.get(la.rank, ()), oracle, lock_index,
            memory_model, errors)

    # step 2b: packed memory rows, columnar per entry
    for target, entries in entries_by_rank.items():
        rows = region_mems.get(target)
        if rows is None or not len(rows):
            continue
        for entry in entries:
            _check_rows_against_entry(pre, rows, entry, oracle, lock_index,
                                      memory_model, errors)
    return errors


def _check_rows_against_entry(pre: PreprocessedTrace, rows: MemRows,
                              entry: _OpVector, oracle: ConcurrencyOracle,
                              lock_index: _LocalLockIndex,
                              memory_model: str,
                              errors: List[ConsistencyError]) -> None:
    """One rank's memory rows vs one ``(window, target)`` vector entry."""
    target = entry.target
    exposure = pre.window(entry.win_id).exposure(target)
    if not exposure:
        return
    # clip rows to the exposed window: a row matters only through its
    # bytes inside the exposure (the pairwise `la_in_window` clip)
    expo_lo = np.array([iv.start for iv in exposure], dtype=np.int64)
    expo_hi = np.array([iv.stop for iv in exposure], dtype=np.int64)
    row_table = IntervalTable.from_columns(rows.addr, rows.size)
    row_idx, expo_idx = overlap_join(row_table,
                                     IntervalTable(expo_lo, expo_hi))
    if not len(row_idx):
        return
    clipped = IntervalTable(
        np.maximum(rows.addr[row_idx], expo_lo[expo_idx]),
        np.minimum(rows.addr[row_idx] + rows.size[row_idx],
                   expo_hi[expo_idx]),
        owner=row_idx)

    entry_ops = entry.ops
    op_is_update = np.array([op.kind != GET for op in entry_ops])

    # overlap-born candidates (Table-I NONOV cells)
    tgt_table = IntervalTable.from_sets(
        [op.target_intervals for op in entry_ops])
    pair_r, pair_o = overlap_join(clipped, tgt_table)
    if len(pair_r):
        row_is_store = rows.access[pair_r] == _STORE_CODE
        update = op_is_update[pair_o]
        if memory_model == MODEL_SEPARATE:
            # store vs put/acc is the ERROR rule, enumerated below
            # without the overlap requirement; load-load and load-get
            # cells are BOTH — never errors
            keep = (~row_is_store & update) | (row_is_store & ~update)
        else:
            keep = update | row_is_store  # only load-vs-get drops
        pair_r, pair_o = pair_r[keep], pair_o[keep]

    # the MPI-2.2 special rule: a store inside the exposed window vs any
    # concurrent put/acc on it, byte overlap not required
    if memory_model == MODEL_SEPARATE and op_is_update.any():
        window_rows = np.unique(row_idx)
        store_rows = window_rows[
            rows.access[window_rows] == _STORE_CODE]
        if len(store_rows):
            update_ops = np.nonzero(op_is_update)[0]
            pair_r = np.concatenate(
                [pair_r, np.tile(store_rows, len(update_ops))])
            pair_o = np.concatenate(
                [pair_o, np.repeat(update_ops, len(store_rows))])

    if not len(pair_r):
        return
    _record_candidates("inter", "local_vs_op", len(pair_r))

    # happens-before filter, one batched query for every candidate pair;
    # survivors materialize a LocalAccess and take the pairwise per-pair
    # verdict path
    op_ranks, op_starts, op_ends = entry.arrays()
    seqs = rows.seq[pair_r]
    concurrent = ~oracle.ordered_pairs(
        np.full(seqs.shape, target, dtype=np.int64), seqs, seqs,
        op_ranks[pair_o], op_starts[pair_o], op_ends[pair_o])
    for k in np.nonzero(concurrent)[0].tolist():
        op = entry_ops[pair_o[k]]
        la = rows.local_access(int(pair_r[k]))
        error = _check_concurrent_local_vs_op(
            la, la.intervals.intersection(exposure), op, lock_index,
            memory_model)
        if error is not None:
            errors.append(error)


# ----------------------------------------------------------------------
# shared unit construction (parallel workers + parent)
# ----------------------------------------------------------------------


def build_detect_units(engine: str, model: AccessModel,
                       epoch_index: EpochIndex, regions: RegionIndex):
    """The ``(intra_units, inter_units)`` lists both detector phases
    iterate, in deterministic order.

    This is the single constructor the parallel pipeline relies on for
    its zero-copy contract: the parent builds the lists once to size the
    chunk bounds, every worker rebuilds the *identical* lists from its
    installed ops/regions, and only ``(lo, hi)`` indices into them cross
    the pipe.  Determinism holds because both bucketing passes iterate
    ``model`` and ``regions`` in their stored order and the sweep units
    carry plain ``(rank, lo, hi)`` row ranges rather than object slices.
    """
    if engine == "sweep":
        intra_units = bucket_by_epoch_sweep(model, epoch_index)
        inter_units = bucket_by_region_sweep(model, regions)
    else:
        intra_units = bucket_by_epoch(model, epoch_index)
        ops_by_region, locals_by_region = bucket_by_region(model, regions)
        inter_units = []
        for region in regions:
            region_ops = ops_by_region.get(region.index, [])
            if not region_ops:
                continue
            inter_units.append(
                (region_ops, locals_by_region.get(region.index, [])))
    return intra_units, inter_units
