"""Typed trace events and the MPI call taxonomy of section IV-B.

The Profiler collects four types of MPI calls (paper, section IV-B):

1. **one-sided** — initialization, communication, and synchronization calls
   of the RMA interface;
2. **datatype** — derived-datatype constructors, needed to rebuild
   data-maps during preprocessing;
3. **sync** — two-sided and collective calls that order operations across
   processes (these become happens-before edges);
4. **support** — rank/group/communicator bookkeeping needed to resolve
   relative ranks.

Plus memory events: the load/store accesses of instrumented buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Union

from repro.util.location import SourceLocation, UNKNOWN_LOCATION
from repro.util.records import Record, decode_record, encode_record

CATEGORY_ONE_SIDED = "one_sided"
CATEGORY_DATATYPE = "datatype"
CATEGORY_SYNC = "sync"
CATEGORY_SUPPORT = "support"

ONE_SIDED_CALLS = frozenset({
    "Win_create", "Win_free", "Put", "Get", "Accumulate",
    "Win_fence", "Win_lock", "Win_unlock",
    "Win_post", "Win_start", "Win_complete", "Win_wait",
    # MPI-3 extensions (paper section V)
    "Get_accumulate", "Compare_and_swap",
    "Win_lock_all", "Win_unlock_all", "Win_flush", "Win_flush_all",
    "Rput", "Rget", "Raccumulate", "Rma_wait",
})

DATATYPE_CALLS = frozenset({
    "Type_contiguous", "Type_vector", "Type_indexed", "Type_struct",
})

SYNC_CALLS = frozenset({
    "Barrier", "Bcast", "Reduce", "Allreduce", "Scan", "Exscan",
    "Reduce_scatter",
    "Gather", "Allgather", "Scatter", "Alltoall",
    "Send", "Recv", "Isend", "Irecv", "Wait",
    # MPI-3 nonblocking collectives: initiation events; the
    # synchronization effect lands at the completing Wait
    "Ibarrier", "Ibcast",
})

SUPPORT_CALLS = frozenset({
    "Comm_rank", "Comm_size", "Comm_group", "Group_incl", "Group_excl",
    "Comm_dup", "Comm_split", "Comm_create",
})

#: Collective call names (matched by per-communicator slot order; MPI
#: requires a single initiation order per communicator, so nonblocking
#: initiations share the stream with blocking collectives).
COLLECTIVE_CALLS = frozenset({
    "Barrier", "Bcast", "Reduce", "Allreduce", "Scan", "Exscan",
    "Reduce_scatter", "Gather",
    "Allgather", "Scatter", "Alltoall",
    "Win_create", "Win_free", "Win_fence",
    "Comm_dup", "Comm_split", "Comm_create",
    "Ibarrier", "Ibcast",
})

#: Nonblocking collectives: the match's happens-before entry is the
#: initiation, its exit the per-rank completing Wait.
NB_COLLECTIVE_CALLS = frozenset({"Ibarrier", "Ibcast"})

#: Remote (window-targeting) one-sided communication calls.
RMA_COMM_CALLS = frozenset({"Put", "Get", "Accumulate", "Get_accumulate",
                            "Compare_and_swap",
                            "Rput", "Rget", "Raccumulate"})

ACCESS_LOAD = "load"
ACCESS_STORE = "store"

#: numeric access codes used by the binary trace format's packed memory
#: blocks (see :data:`repro.profiler.tracer.MEM_DTYPE`)
ACCESS_CODES = {ACCESS_LOAD: 0, ACCESS_STORE: 1}
ACCESS_NAMES = (ACCESS_LOAD, ACCESS_STORE)


def call_category(fn: str) -> str:
    if fn in ONE_SIDED_CALLS:
        return CATEGORY_ONE_SIDED
    if fn in DATATYPE_CALLS:
        return CATEGORY_DATATYPE
    if fn in SYNC_CALLS:
        return CATEGORY_SYNC
    if fn in SUPPORT_CALLS:
        return CATEGORY_SUPPORT
    raise KeyError(f"unknown MPI call {fn!r}")


@dataclass
class CallEvent:
    """One intercepted MPI call at one rank."""

    rank: int
    seq: int
    fn: str
    args: Dict[str, Any] = field(default_factory=dict)
    loc: SourceLocation = UNKNOWN_LOCATION

    KIND = "C"

    @property
    def category(self) -> str:
        return call_category(self.fn)

    def encode(self) -> str:
        fields: Dict[str, Any] = {"seq": self.seq, "fn": self.fn,
                                  "loc": self.loc.encode()}
        fields.update(self.args)
        return encode_record(self.KIND, fields)

    @classmethod
    def from_record(cls, rank: int, rec: Record) -> "CallEvent":
        from repro.util.errors import TraceFormatError

        fields = dict(rec.fields)
        try:
            seq = int(fields.pop("seq"))
            fn = str(fields.pop("fn"))
            loc = SourceLocation.decode(str(fields.pop("loc")))
        except (KeyError, ValueError) as exc:
            raise TraceFormatError(
                f"malformed call event record: {exc}") from exc
        return cls(rank=rank, seq=seq, fn=fn, args=fields, loc=loc)


@dataclass
class MemEvent:
    """One instrumented load/store at one rank."""

    rank: int
    seq: int
    access: str  # "load" | "store"
    addr: int
    size: int
    var: str
    loc: SourceLocation = UNKNOWN_LOCATION

    KIND = "M"

    def encode(self) -> str:
        return encode_record(self.KIND, {
            "seq": self.seq, "a": self.access, "addr": self.addr,
            "size": self.size, "var": self.var, "loc": self.loc.encode(),
        })

    @classmethod
    def from_record(cls, rank: int, rec: Record) -> "MemEvent":
        return cls(
            rank=rank, seq=rec.get_int("seq"), access=rec.get_str("a"),
            addr=rec.get_int("addr"), size=rec.get_int("size"),
            var=rec.get_str("var"),
            loc=SourceLocation.decode(rec.get_str("loc")),
        )


Event = Union[CallEvent, MemEvent]


def decode_event(rank: int, line: str) -> Event:
    rec = decode_record(line)
    if rec.kind == CallEvent.KIND:
        return CallEvent.from_record(rank, rec)
    if rec.kind == MemEvent.KIND:
        return MemEvent.from_record(rank, rec)
    from repro.util.errors import TraceFormatError
    raise TraceFormatError(f"unknown record kind {rec.kind!r}")
