"""Profiler — online event collection (the paper's PMPI + LLVM-pass layer).

Registers an :class:`~repro.simmpi.runtime.EventHook` on the simulated
world, logging the four MPI call categories of section IV-B plus the
load/store accesses of ST-Analyzer-selected buffers into one trace file per
rank.  :func:`repro.profiler.session.profile_run` is the one-call entry
point: run an app under profiling and get back a
:class:`~repro.profiler.tracer.TraceSet`.
"""

from repro.profiler.events import (
    CallEvent,
    MemEvent,
    Event,
    call_category,
    CATEGORY_ONE_SIDED,
    CATEGORY_DATATYPE,
    CATEGORY_SYNC,
    CATEGORY_SUPPORT,
)
from repro.profiler.tracer import (
    FORMAT_BINARY, FORMAT_TEXT, MemBlock, TraceReader, TraceSet, TraceWriter,
)
from repro.profiler.interpose import ProfilerHook, SCOPE_ALL, SCOPE_NONE, SCOPE_REPORT
from repro.profiler.session import ProfiledRun, profile_run

__all__ = [
    "CallEvent", "MemEvent", "Event", "call_category",
    "CATEGORY_ONE_SIDED", "CATEGORY_DATATYPE", "CATEGORY_SYNC",
    "CATEGORY_SUPPORT",
    "TraceReader", "TraceSet", "TraceWriter", "MemBlock",
    "FORMAT_TEXT", "FORMAT_BINARY",
    "ProfilerHook", "SCOPE_ALL", "SCOPE_NONE", "SCOPE_REPORT",
    "ProfiledRun", "profile_run",
]
