"""One-call profiled runs: app -> per-rank trace files.

:func:`profile_run` wires the pieces of Figure 5 together: ST-Analyzer
produces the instrumentation report, the Profiler hook is attached to a
fresh simulated world, the application runs, and the resulting
:class:`~repro.profiler.tracer.TraceSet` is handed back for DN-Analyzer.

Timing goes through :mod:`repro.obs` spans — ``profiler.run`` wraps the
instrumented execution (its duration is ``ProfiledRun.elapsed``),
``profiler.baseline`` the native arm of the Figure-8 comparison — and,
when observability is enabled, each run publishes profiler throughput
metrics (events/bytes per rank, events per second) plus the simulated
world's scheduler totals.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro import obs
from repro.profiler.interpose import (
    SCOPE_ALL, SCOPE_NONE, SCOPE_REPORT, ProfilerHook,
)
from repro.profiler.tracer import TraceSet
from repro.simmpi.runtime import World
from repro.stanalyzer import InstrumentationReport, analyze_app


@dataclass
class ProfiledRun:
    """Everything a profiled execution produced."""

    traces: TraceSet
    results: List[Any]
    report: Optional[InstrumentationReport]
    world_stats: Dict[str, int]
    elapsed: float
    events_written: int


def _publish_profiler_metrics(hook: ProfilerHook, elapsed: float) -> None:
    rec = obs.get_recorder()
    if not rec.enabled:
        return
    for rank, events in enumerate(hook.events_by_rank()):
        rec.count("profiler_events_written_total", events, rank=rank,
                  help="Trace events written, per rank")
    for rank, nbytes in enumerate(hook.bytes_by_rank()):
        rec.count("profiler_bytes_written_total", nbytes, rank=rank,
                  help="Trace bytes written, per rank")
    for kind, lanes in hook.lane_counts().items():
        for lane, n in lanes.items():
            if n:
                rec.count("profiler_emitted_events_total", n, kind=kind,
                          lane=lane,
                          help="Events emitted, by kind and producer lane "
                               "(scalar objects vs bulk columns)")
    rec.gauge("profiler_emission_seconds", elapsed,
              help="Wall time of the last instrumented execution "
                   "(simulate + profile + write)")
    if elapsed > 0:
        rec.gauge("profiler_events_per_second",
                  hook.events_written / elapsed,
                  help="Aggregate trace-event write rate of the last run")


def profile_run(app: Callable, nranks: int,
                trace_dir: Optional[str] = None,
                params: Optional[Dict[str, Any]] = None,
                scope: str = SCOPE_REPORT,
                report: Optional[InstrumentationReport] = None,
                sched_policy: str = "round_robin",
                seed: int = 0,
                delivery: str = "random",
                capture_locations: bool = True,
                app_name: Optional[str] = None,
                trace_format: str = "text",
                bulk: bool = True) -> ProfiledRun:
    """Run ``app`` on ``nranks`` simulated ranks with the Profiler attached.

    With ``scope="report"`` (the paper's configuration) and no explicit
    ``report``, ST-Analyzer runs automatically on the app's defining module.
    ``bulk=False`` forces the scalar emission lane (every access becomes
    one ``MemEvent``), the reference arm for producer differentials and
    the generation benchmark baseline.
    """
    if trace_dir is None:
        trace_dir = tempfile.mkdtemp(prefix="mcchecker-trace-")
    os.makedirs(trace_dir, exist_ok=True)
    if scope == SCOPE_REPORT and report is None:
        report = analyze_app(app)
    relevant = report.buffer_names if report is not None else set()
    app_name = app_name or getattr(app, "__name__", "app")

    hook = ProfilerHook(trace_dir, nranks, app=app_name, scope=scope,
                        relevant_vars=relevant,
                        capture_locations=capture_locations,
                        trace_format=trace_format, bulk=bulk)
    world = World(nranks, sched_policy=sched_policy, seed=seed,
                  delivery=delivery)
    world.hooks.append(hook)
    span = obs.span("profiler.run", app=app_name, ranks=nranks, scope=scope)
    with span:
        try:
            results = world.run(app, params)
        finally:
            hook.close()
    world.publish_obs()
    _publish_profiler_metrics(hook, span.duration)
    return ProfiledRun(
        traces=TraceSet(trace_dir),
        results=results,
        report=report,
        world_stats=dict(world.stats),
        elapsed=span.duration,
        events_written=hook.events_written,
    )


def baseline_run(app: Callable, nranks: int,
                 params: Optional[Dict[str, Any]] = None,
                 sched_policy: str = "round_robin", seed: int = 0,
                 delivery: str = "random") -> float:
    """Run ``app`` without any profiling and return the elapsed time.

    This is the "native execution" arm of the Figure 8 overhead
    comparison.
    """
    world = World(nranks, sched_policy=sched_policy, seed=seed,
                  delivery=delivery)
    span = obs.span("profiler.baseline",
                    app=getattr(app, "__name__", "app"), ranks=nranks)
    with span:
        world.run(app, params)
    world.publish_obs()
    return span.duration
