"""Per-rank trace files: buffered writers, readers, and the TraceSet handle.

Each rank logs to its own file (``trace.<rank>.log``), independently — the
property the paper credits for the Profiler's scalability (section VII-B:
"Profiler logs the runtime events into the local disk independently for
each process").
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro import obs
from repro.profiler.events import CallEvent, Event, MemEvent, decode_event
from repro.util.errors import TraceFormatError
from repro.util.records import decode_record, encode_record

TRACE_VERSION = 1
_FLUSH_EVERY = 4096  # buffered lines between writes


class TraceWriter:
    """Buffered line writer for one rank's event stream."""

    def __init__(self, path: str, rank: int, nranks: int, app: str = ""):
        self.path = path
        self.rank = rank
        self._buffer: List[str] = [
            encode_record("H", {"v": TRACE_VERSION, "rank": rank,
                                "nranks": nranks, "app": app})
        ]
        self._fh = open(path, "w", encoding="utf-8")
        self.events_written = 0
        self.bytes_written = 0
        # recorder captured once at construction: the per-event write path
        # never re-checks global state, and the disabled drain is exactly
        # the seed code plus one length bookkeeping add
        self._obs = obs.get_recorder() if obs.is_enabled() else None

    def write(self, event: Event) -> None:
        self._buffer.append(event.encode())
        self.events_written += 1
        if len(self._buffer) >= _FLUSH_EVERY:
            self._drain()

    def _drain(self) -> None:
        if not self._buffer:
            return
        chunk = "\n".join(self._buffer) + "\n"
        if self._obs is not None:
            start = time.perf_counter()
            self._fh.write(chunk)
            self._obs.observe(
                "profiler_flush_seconds", time.perf_counter() - start,
                help="Trace-buffer flush latency", rank=self.rank)
        else:
            self._fh.write(chunk)
        self.bytes_written += len(chunk)
        self._buffer.clear()

    def close(self) -> None:
        self._drain()
        self._fh.close()


@dataclass
class TraceHeader:
    version: int
    rank: int
    nranks: int
    app: str


class TraceReader:
    """Reads one rank's trace back into typed events."""

    def __init__(self, path: str):
        self.path = path
        with open(path, encoding="utf-8") as fh:
            first = fh.readline()
        rec = decode_record(first)
        if rec.kind != "H":
            raise TraceFormatError(f"{path}: missing trace header")
        self.header = TraceHeader(
            version=rec.get_int("v"), rank=rec.get_int("rank"),
            nranks=rec.get_int("nranks"), app=rec.get_str("app", ""))
        if self.header.version != TRACE_VERSION:
            raise TraceFormatError(
                f"{path}: unsupported trace version {self.header.version}")

    def __iter__(self) -> Iterator[Event]:
        with open(self.path, encoding="utf-8") as fh:
            fh.readline()  # header
            for line in fh:
                line = line.rstrip("\n")
                if line:
                    yield decode_event(self.header.rank, line)

    def events(self) -> List[Event]:
        return list(self)


class TraceSet:
    """All per-rank traces of one profiled run."""

    def __init__(self, directory: str):
        self.directory = directory
        self._paths: Dict[int, str] = {}
        for name in sorted(os.listdir(directory)):
            if name.startswith("trace.") and name.endswith(".log"):
                rank = int(name.split(".")[1])
                self._paths[rank] = os.path.join(directory, name)
        if not self._paths:
            raise TraceFormatError(f"no trace files found in {directory}")
        self.nranks = TraceReader(self._paths[min(self._paths)]).header.nranks
        if sorted(self._paths) != list(range(self.nranks)):
            raise TraceFormatError(
                f"{directory}: expected traces for ranks 0..{self.nranks - 1}, "
                f"found {sorted(self._paths)}")

    @staticmethod
    def rank_path(directory: str, rank: int) -> str:
        return os.path.join(directory, f"trace.{rank}.log")

    def reader(self, rank: int) -> TraceReader:
        return TraceReader(self._paths[rank])

    def events(self, rank: int) -> List[Event]:
        return self.reader(rank).events()

    def all_events(self) -> Dict[int, List[Event]]:
        return {rank: self.events(rank) for rank in range(self.nranks)}

    def event_counts(self) -> Dict[str, int]:
        """Aggregate event counts by class (for the Figure 10 experiment)."""
        counts = {"call": 0, "mem": 0, "load": 0, "store": 0}
        for rank in range(self.nranks):
            for event in self.reader(rank):
                if isinstance(event, CallEvent):
                    counts["call"] += 1
                else:
                    assert isinstance(event, MemEvent)
                    counts["mem"] += 1
                    counts[event.access] += 1
        return counts
