"""Per-rank trace files: buffered writers, readers, and the TraceSet handle.

Each rank logs to its own file, independently — the property the paper
credits for the Profiler's scalability (section VII-B: "Profiler logs the
runtime events into the local disk independently for each process").

Two on-disk formats (see ``docs/trace-format.md``):

* **text (v1)** — ``trace.<rank>.log``, one self-describing record per
  line (the seed format, still the default);
* **binary (v2)** — ``trace.<rank>.bin``, where call events remain
  self-describing records but memory events — the bulk of a compute-heavy
  trace (Figure 10) — are packed into columnar numpy blocks, with a
  footer carrying exact per-class event counts and a string table for
  buffer names / source locations.  The reader memory-maps the file and
  exposes the blocks directly (:meth:`TraceReader.mem_blocks`), so the
  analyzer ingests load/store events without constructing one Python
  object per event.

Readers sniff the format per file; every consumer-facing API
(:meth:`TraceReader.__iter__`, :meth:`TraceReader.stream`, ...) behaves
identically over both formats.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.profiler.events import (
    ACCESS_CODES, ACCESS_NAMES, CallEvent, Event, MemEvent, decode_event,
)
from repro.util.errors import TraceFormatError
from repro.util.hashing import hash_file, hash_strings, stable_hash
from repro.util.location import SourceLocation, UNKNOWN_LOCATION
from repro.util.records import decode_record, encode_record, encode_value

TRACE_VERSION = 1        # text (v1) format version
BINARY_VERSION = 2       # binary (v2) format version

FORMAT_TEXT = "text"
FORMAT_BINARY = "binary"
FORMATS = (FORMAT_TEXT, FORMAT_BINARY)

_FLUSH_EVERY = 4096      # buffered events between writes / per mem block

#: v2 framing constants
_MAGIC = b"MCT2"         # file magic (doubles as the format sniff)
_END_MAGIC = b"MCT2TRLR"  # trailer magic; absent => unclosed/truncated
_TRAILER_LEN = 8 + len(_END_MAGIC)  # u64 footer offset + end magic
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

#: columnar layout of one packed memory event (33 bytes, little-endian):
#: ``var``/``loc`` index the footer string table, ``access`` is an
#: :data:`~repro.profiler.events.ACCESS_CODES` code.
MEM_DTYPE = np.dtype([("seq", "<i8"), ("addr", "<i8"), ("size", "<i8"),
                      ("var", "<i4"), ("loc", "<i4"), ("access", "u1")])


class _StringTable:
    """Interned strings shared by every mem block of one trace file.

    Holds buffer names and encoded source locations; locations are
    decoded to :class:`SourceLocation` lazily and cached, so a location
    string is parsed once per file instead of once per event.
    """

    __slots__ = ("strings", "_ids", "_locs")

    def __init__(self, strings: Optional[List[str]] = None):
        self.strings: List[str] = list(strings or ())
        self._ids: Dict[str, int] = {s: i for i, s in
                                     enumerate(self.strings)}
        self._locs: List[Optional[SourceLocation]] = [None] * len(
            self.strings)

    def intern(self, text: str) -> int:
        sid = self._ids.get(text)
        if sid is None:
            sid = self._ids[text] = len(self.strings)
            self.strings.append(text)
            self._locs.append(None)
        return sid

    def string(self, sid: int) -> str:
        try:
            return self.strings[sid]
        except IndexError:
            raise TraceFormatError(
                f"string id {sid} outside table of {len(self.strings)}"
            ) from None

    def loc(self, sid: int) -> SourceLocation:
        if not 0 <= sid < len(self.strings):
            raise TraceFormatError(
                f"location id {sid} outside table of {len(self.strings)}")
        cached = self._locs[sid]
        if cached is None:
            cached = self._locs[sid] = SourceLocation.decode(
                self.strings[sid])
        return cached


class MemBlock:
    """A packed run of consecutive memory events of one rank.

    The vectorized unit of trace ingest: columns are numpy arrays
    (:data:`MEM_DTYPE`), string-valued fields are ids into ``table``.
    Binary readers hand out zero-copy views of the memory-mapped file;
    text readers batch decoded lines into the same shape, so consumers
    never branch on the on-disk format.
    """

    __slots__ = ("rank", "table", "_array", "_cols")

    def __init__(self, rank: int, table: _StringTable,
                 array: Optional[np.ndarray] = None,
                 cols: Optional[Tuple[list, ...]] = None):
        self.rank = rank
        self.table = table
        self._array = array
        self._cols = cols

    def __len__(self) -> int:
        if self._cols is not None:
            return len(self._cols[0])
        return len(self._array)

    @property
    def array(self) -> np.ndarray:
        """The events as one structured numpy array (materialized lazily
        for text-backed blocks)."""
        if self._array is None:
            arr = np.empty(len(self._cols[0]), dtype=MEM_DTYPE)
            for name, col in zip(("seq", "addr", "size", "var", "loc",
                                  "access"), self._cols):
                arr[name] = col
            self._array = arr
        return self._array

    def columns(self) -> Tuple[list, list, list, list, list, list]:
        """``(seq, addr, size, var_id, loc_id, access_code)`` as plain
        Python lists — the fastest shape for building detector objects."""
        if self._cols is None:
            a = self._array
            self._cols = (a["seq"].tolist(), a["addr"].tolist(),
                          a["size"].tolist(), a["var"].tolist(),
                          a["loc"].tolist(), a["access"].tolist())
        return self._cols

    def iter_events(self) -> Iterator[MemEvent]:
        """Typed-event view (one :class:`MemEvent` per row)."""
        table = self.table
        seqs, addrs, sizes, var_ids, loc_ids, accs = self.columns()
        for i in range(len(seqs)):
            yield MemEvent(rank=self.rank, seq=seqs[i],
                           access=ACCESS_NAMES[accs[i]], addr=addrs[i],
                           size=sizes[i], var=table.string(var_ids[i]),
                           loc=table.loc(loc_ids[i]))

    def to_events(self) -> List[MemEvent]:
        return list(self.iter_events())


#: what :meth:`TraceReader.stream` yields: call events stay typed, memory
#: events arrive packed.
StreamItem = Union[CallEvent, MemBlock]


class TraceWriter:
    """Buffered writer for one rank's event stream (text or binary)."""

    def __init__(self, path: str, rank: int, nranks: int, app: str = "",
                 format: str = FORMAT_TEXT):
        if format not in FORMATS:
            raise ValueError(f"unknown trace format {format!r}")
        self.path = path
        self.rank = rank
        self.format = format
        self.events_written = 0
        self.bytes_written = 0
        self._closed = False
        self._counts = {"call": 0, "mem": 0, "load": 0, "store": 0}
        # recorder captured once at construction: the per-event write path
        # never re-checks global state
        self._obs = obs.get_recorder() if obs.is_enabled() else None
        if format == FORMAT_BINARY:
            self._fh = open(path, "wb")
            self._offset = 0  # bytes already drained to the file
            self._out = bytearray(_MAGIC)
            self._frame(b"H", encode_record("H", {
                "v": BINARY_VERSION, "rank": rank, "nranks": nranks,
                "app": app}).encode("utf-8"))
            self._table = _StringTable()
            #: pending mem columns: seq, addr, size, var, loc, access
            self._pending: Tuple[list, ...] = tuple([] for _ in range(6))
            # content digests accumulated at write time and recorded in
            # the footer, so incremental checking can detect unchanged
            # ranks without re-reading event payloads
            self._hash_calls = hashlib.sha256()
            self._hash_mems = hashlib.sha256()
        else:
            self._buffer: List[str] = [
                encode_record("H", {"v": TRACE_VERSION, "rank": rank,
                                    "nranks": nranks, "app": app})
            ]
            self._fh = open(path, "w", encoding="utf-8")

    # -- shared ---------------------------------------------------------

    def write(self, event: Event) -> None:
        if self.format == FORMAT_BINARY:
            self._write_binary(event)
        else:
            self._buffer.append(event.encode())
            if len(self._buffer) >= _FLUSH_EVERY:
                self._drain()
        self.events_written += 1

    def append_call(self, fn: str, args: Dict[str, Any],
                    loc: Optional[SourceLocation], seq: int) -> None:
        """Call fast path: write one call record without building a
        :class:`CallEvent` — the line is byte-identical to
        ``CallEvent(seq=seq, fn=fn, args=args, loc=loc).encode()``."""
        loc_text = (loc if loc is not None else UNKNOWN_LOCATION).encode()
        parts = [f"C seq={seq} fn={encode_value(fn)}"
                 f" loc={encode_value(loc_text)}"]
        for key, value in args.items():
            if value is not None:
                parts.append(f"{key}={encode_value(value)}")
        line = " ".join(parts)
        if self.format == FORMAT_BINARY:
            self._flush_mem_block()  # preserve on-disk event order
            payload = line.encode("utf-8")
            self._frame(b"C", payload)
            self._hash_calls.update(_U32.pack(len(payload)))
            self._hash_calls.update(payload)
            self._counts["call"] += 1
            if len(self._out) >= 1 << 20:
                self._drain()
        else:
            self._buffer.append(line)
            if len(self._buffer) >= _FLUSH_EVERY:
                self._drain()
        self.events_written += 1

    def append_mem_columns(self, access: str, var: str,
                           loc: Optional[SourceLocation], seq0: int,
                           addr: int, size: int, count: int,
                           stride: int = 0) -> None:
        """Bulk fast path: append ``count`` memory rows without building
        per-event objects.  Row *i* is ``(seq0 + i, addr + i * stride,
        size, var, loc, access)`` — byte-identical on disk (and in the
        content digests) to ``count`` :meth:`write` calls with the
        matching :class:`MemEvent`\\ s.

        Binary traces extend the pending packed-column lists directly;
        the mems digest hashes packed content without block-length
        prefixes, so block boundaries introduced by bulk appends cannot
        perturb it.  Text traces replicate ``MemEvent.encode()`` output
        from one pre-encoded template.
        """
        if count <= 0:
            return
        if stride < 0:
            raise TraceFormatError(
                f"append_mem_columns: negative stride {stride}")
        loc_text = (loc if loc is not None else UNKNOWN_LOCATION).encode()
        if self.format == FORMAT_BINARY:
            try:
                code = ACCESS_CODES[access]
            except KeyError:
                raise TraceFormatError(
                    f"unknown access kind {access!r}") from None
            counts = self._counts
            seqs, addrs, sizes, var_ids, loc_ids, accs = self._pending
            seqs.extend(range(seq0, seq0 + count))
            if stride:
                addrs.extend(range(addr, addr + count * stride, stride))
            else:
                addrs.extend([addr] * count)
            sizes.extend([size] * count)
            var_ids.extend([self._table.intern(var)] * count)
            loc_ids.extend([self._table.intern(loc_text)] * count)
            accs.extend([code] * count)
            counts["mem"] += count
            counts[access] += count
            if len(seqs) >= _FLUSH_EVERY:
                self._flush_mem_block()
        else:
            if access not in ACCESS_CODES:
                raise TraceFormatError(
                    f"unknown access kind {access!r}")
            buffer = self._buffer
            mid = f" a={encode_value(access)} addr="
            tail = (f" size={size} var={encode_value(var)}"
                    f" loc={encode_value(loc_text)}")
            if stride:
                buffer.extend(
                    f"M seq={seq0 + i}{mid}{addr + i * stride}{tail}"
                    for i in range(count))
            else:
                line_tail = f"{mid}{addr}{tail}"
                buffer.extend(f"M seq={seq0 + i}{line_tail}"
                              for i in range(count))
            if len(buffer) >= _FLUSH_EVERY:
                self._drain()
        self.events_written += count

    def close(self) -> None:
        """Flush everything and finalize the file (footer + trailer for
        binary).  Idempotent."""
        if self._closed:
            return
        if self.format == FORMAT_BINARY:
            self._flush_mem_block()
            footer = json.dumps(
                {"version": BINARY_VERSION, "counts": self._counts,
                 "strings": self._table.strings,
                 "digests": {
                     "calls": self._hash_calls.hexdigest(),
                     "mems": self._hash_mems.hexdigest(),
                     "strings": hash_strings(self._table.strings)}},
                ensure_ascii=False, separators=(",", ":")).encode("utf-8")
            footer_offset = self._offset + len(self._out)
            self._frame(b"F", footer)
            self._out += _U64.pack(footer_offset) + _END_MAGIC
        self._drain()
        self._fh.close()
        self._closed = True

    def abort(self) -> None:
        """Drain buffered bytes and close the OS handle *without*
        finalizing — used on error so a partially written file stays
        detectable (a binary file without its trailer is rejected by the
        reader)."""
        if not self._closed:
            if self.format == FORMAT_BINARY:
                self._flush_mem_block()
            self._drain()
            self._fh.close()
            self._closed = True

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.abort()
        else:
            self.close()
        return False

    # -- text -----------------------------------------------------------

    def _drain_text(self) -> None:
        if not self._buffer:
            return
        chunk = "\n".join(self._buffer) + "\n"
        self._fh.write(chunk)
        self.bytes_written += len(chunk)
        self._buffer.clear()

    # -- binary ---------------------------------------------------------

    def _frame(self, tag: bytes, payload: bytes) -> None:
        self._out += tag
        self._out += _U32.pack(len(payload))
        self._out += payload

    def _write_binary(self, event: Event) -> None:
        counts = self._counts
        if type(event) is MemEvent or isinstance(event, MemEvent):
            seqs, addrs, sizes, var_ids, loc_ids, accs = self._pending
            seqs.append(event.seq)
            addrs.append(event.addr)
            sizes.append(event.size)
            var_ids.append(self._table.intern(event.var))
            loc_ids.append(self._table.intern(event.loc.encode()))
            try:
                accs.append(ACCESS_CODES[event.access])
            except KeyError:
                raise TraceFormatError(
                    f"unknown access kind {event.access!r}") from None
            counts["mem"] += 1
            counts[event.access] += 1
            if len(seqs) >= _FLUSH_EVERY:
                self._flush_mem_block()
        else:
            self._flush_mem_block()  # preserve on-disk event order
            payload = event.encode().encode("utf-8")
            self._frame(b"C", payload)
            self._hash_calls.update(_U32.pack(len(payload)))
            self._hash_calls.update(payload)
            counts["call"] += 1
            if len(self._out) >= 1 << 20:
                self._drain()

    def _flush_mem_block(self) -> None:
        seqs = self._pending[0]
        if not seqs:
            return
        arr = np.empty(len(seqs), dtype=MEM_DTYPE)
        for name, col in zip(("seq", "addr", "size", "var", "loc",
                              "access"), self._pending):
            arr[name] = col
        self._out += b"M"
        self._out += _U32.pack(len(seqs))
        payload = arr.tobytes()
        self._out += payload
        # no length prefix: rows are fixed-width, so the mems digest is a
        # pure function of the packed content regardless of where the
        # writer happened to cut its blocks
        self._hash_mems.update(payload)
        for col in self._pending:
            col.clear()
        if len(self._out) >= 1 << 20:
            self._drain()

    def _drain(self) -> None:
        if self.format != FORMAT_BINARY:
            if self._obs is not None:
                start = time.perf_counter()
                self._drain_text()
                self._obs.observe(
                    "profiler_flush_seconds", time.perf_counter() - start,
                    help="Trace-buffer flush latency", rank=self.rank)
            else:
                self._drain_text()
            return
        if not self._out:
            return
        if self._obs is not None:
            start = time.perf_counter()
            self._fh.write(self._out)
            self._obs.observe(
                "profiler_flush_seconds", time.perf_counter() - start,
                help="Trace-buffer flush latency", rank=self.rank)
        else:
            self._fh.write(self._out)
        self._offset += len(self._out)
        self.bytes_written += len(self._out)
        self._out = bytearray()


@dataclass
class TraceHeader:
    version: int
    rank: int
    nranks: int
    app: str


class TraceReader:
    """Reads one rank's trace back (format sniffed from the file).

    The header is read once at construction and the open handle is
    reused by every iteration method (no double-open).  Iteration
    methods share the handle, so at most one text iterator should be
    live at a time; binary iteration walks the memory map and is
    reentrant.
    """

    def __init__(self, path: str):
        self.path = path
        #: the rank's columnar CallTable, populated as a side product of
        #: :meth:`read_calls` when the columnar control plane is active
        self.call_table = None
        fh = open(path, "rb")
        magic = fh.read(len(_MAGIC))
        if magic == _MAGIC:
            self.format = FORMAT_BINARY
            self._init_binary(fh)
        else:
            fh.close()
            if not magic:
                raise TraceFormatError(
                    f"{path}: empty trace file (unclosed writer?)")
            self.format = FORMAT_TEXT
            self._init_text()

    # -- construction ---------------------------------------------------

    def _init_text(self) -> None:
        self._mm = None
        self._fh = open(self.path, encoding="utf-8")
        first = self._fh.readline()
        rec = decode_record(first)
        if rec.kind != "H":
            raise TraceFormatError(f"{self.path}: missing trace header")
        self.header = TraceHeader(
            version=rec.get_int("v"), rank=rec.get_int("rank"),
            nranks=rec.get_int("nranks"), app=rec.get_str("app", ""))
        if self.header.version != TRACE_VERSION:
            raise TraceFormatError(
                f"{self.path}: unsupported trace version "
                f"{self.header.version}")
        self._data_pos = self._fh.tell()
        self._table = _StringTable()
        self._counts: Optional[Dict[str, int]] = None
        self._digests: Optional[Dict[str, str]] = None

    def _init_binary(self, fh) -> None:
        self._fh = fh
        size = os.fstat(fh.fileno()).st_size
        if size < len(_MAGIC) + _TRAILER_LEN:
            fh.close()
            raise TraceFormatError(
                f"{self.path}: truncated binary trace (unclosed writer?)")
        self._mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        trailer = self._mm[size - _TRAILER_LEN:]
        if trailer[8:] != _END_MAGIC:
            raise TraceFormatError(
                f"{self.path}: missing end-of-trace trailer — the writer "
                "was not closed or the file is truncated")
        footer_off = _U64.unpack(trailer[:8])[0]
        if not len(_MAGIC) <= footer_off <= size - _TRAILER_LEN - 5:
            raise TraceFormatError(
                f"{self.path}: corrupt footer offset {footer_off}")
        tag, payload, _next = self._read_frame(footer_off)
        if tag != b"F":
            raise TraceFormatError(f"{self.path}: footer frame missing "
                                   f"(found {tag!r})")
        try:
            footer = json.loads(payload.decode("utf-8"))
            counts = footer["counts"]
            self._counts = {k: int(counts[k])
                            for k in ("call", "mem", "load", "store")}
            self._table = _StringTable(
                [str(s) for s in footer["strings"]])
            digests = footer.get("digests")
            self._digests = (
                {k: str(digests[k]) for k in ("calls", "mems", "strings")}
                if isinstance(digests, dict) else None)
        except (ValueError, KeyError, TypeError) as exc:
            raise TraceFormatError(
                f"{self.path}: corrupt footer: {exc}") from exc
        tag, payload, data_start = self._read_frame(len(_MAGIC))
        if tag != b"H":
            raise TraceFormatError(f"{self.path}: missing trace header")
        rec = decode_record(payload.decode("utf-8"))
        self.header = TraceHeader(
            version=rec.get_int("v"), rank=rec.get_int("rank"),
            nranks=rec.get_int("nranks"), app=rec.get_str("app", ""))
        if self.header.version != BINARY_VERSION:
            raise TraceFormatError(
                f"{self.path}: unsupported binary trace version "
                f"{self.header.version}")
        self._data_pos = data_start
        self._footer_off = footer_off

    def _read_frame(self, pos: int) -> Tuple[bytes, bytes, int]:
        mm = self._mm
        tag = mm[pos:pos + 1]
        if tag == b"M":
            count = _U32.unpack_from(mm, pos + 1)[0]
            end = pos + 5 + count * MEM_DTYPE.itemsize
            return tag, mm[pos + 5:end], end
        length = _U32.unpack_from(mm, pos + 1)[0]
        end = pos + 5 + length
        return tag, mm[pos + 5:end], end

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        if self._mm is not None:
            try:
                self._mm.close()
            except BufferError:  # a MemBlock view is still alive
                pass
            self._mm = None
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- iteration ------------------------------------------------------

    def __iter__(self) -> Iterator[Event]:
        """Typed events, in trace order (both formats)."""
        if self.format == FORMAT_BINARY:
            for item in self._stream_binary():
                if isinstance(item, MemBlock):
                    yield from item.iter_events()
                else:
                    yield item
            return
        fh = self._fh
        fh.seek(self._data_pos)
        rank = self.header.rank
        for line in fh:
            line = line.rstrip("\n")
            if line:
                yield decode_event(rank, line)

    def events(self) -> List[Event]:
        return list(self)

    def stream(self) -> Iterator[StreamItem]:
        """Call events typed, memory events packed — the analyzer's
        ingest shape.  Consecutive memory events coalesce into one
        :class:`MemBlock`; on-disk order is preserved across the two
        populations."""
        if self.format == FORMAT_BINARY:
            yield from self._stream_binary()
        else:
            yield from self._stream_text()

    def iter_calls(self) -> Iterator[CallEvent]:
        """Call events only; memory events are skipped without decoding
        (binary: whole blocks are stepped over via the frame length)."""
        if self.format == FORMAT_BINARY:
            yield from self._stream_binary(decode_mems=False)
            return
        for item in self.stream():
            if not isinstance(item, MemBlock):
                yield item

    def read_calls(self) -> Tuple[List[CallEvent], Dict[str, int]]:
        """One pass returning every call event plus exact per-class
        event counts — the analyzer control-pass primitive.  Binary
        traces take the counts from the footer and never touch memory
        frames' payloads; text traces count memory lines without fully
        decoding them.

        Under the columnar control plane, decoding runs through
        :class:`repro.core.calltable.CallIngest` — a memoizing line
        parser that also leaves the rank's :class:`CallTable` in
        ``self.call_table`` as a free side product."""
        from repro.core.calltable import (
            PLANE_COLUMNAR, CallIngest, control_plane,
        )
        ingest = (CallIngest(self.header.rank)
                  if control_plane() == PLANE_COLUMNAR else None)
        if self.format == FORMAT_BINARY:
            if ingest is None:
                calls = list(self.iter_calls())
            else:
                calls = self._read_calls_binary(ingest)
                self.call_table = ingest.finish()
            return calls, dict(self._counts)
        calls: List[CallEvent] = []
        counts = {"call": 0, "mem": 0, "load": 0, "store": 0}
        fh = self._fh
        fh.seek(self._data_pos)
        rank = self.header.rank
        add = ingest.add if ingest is not None else None
        for line in fh:
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("M "):
                counts["mem"] += 1
                counts[self._text_mem_access(line)] += 1
            else:
                event = (add(line) if add is not None
                         else decode_event(rank, line))
                if not isinstance(event, CallEvent):
                    raise TraceFormatError(
                        f"{self.path}: unexpected {type(event).__name__} "
                        "record outside the M kind")
                calls.append(event)
                counts["call"] += 1
        if ingest is not None:
            self.call_table = ingest.finish()
        self._counts = dict(counts)
        return calls, counts

    def _read_calls_binary(self, ingest) -> List[CallEvent]:
        """Binary call pass through an ingest object: C frames decode
        via the memoizing parser, M frames are stepped over untouched."""
        mm = self._mm
        if mm is None:
            raise TraceFormatError(f"{self.path}: reader is closed")
        calls: List[CallEvent] = []
        pos = self._data_pos
        end = self._footer_off
        itemsize = MEM_DTYPE.itemsize
        add = ingest.add
        while pos < end:
            tag = mm[pos:pos + 1]
            length = _U32.unpack_from(mm, pos + 1)[0]
            start = pos + 5
            if tag == b"M":
                pos = start + length * itemsize
                if pos > end:
                    raise TraceFormatError(
                        f"{self.path}: memory block overruns the footer")
            elif tag == b"C":
                pos = start + length
                if pos > end:
                    raise TraceFormatError(
                        f"{self.path}: call record overruns the footer")
                calls.append(add(mm[start:pos].decode("utf-8")))
            else:
                raise TraceFormatError(
                    f"{self.path}: unknown frame tag {tag!r} at byte "
                    f"{pos}")
        return calls

    def counts(self) -> Dict[str, int]:
        """Per-class event counts: served from the footer for binary
        traces, from one cheap scan (cached) for text traces."""
        if self._counts is None:
            self.read_calls()
        return dict(self._counts)

    # -- content digests ------------------------------------------------

    def digests(self) -> Dict[str, str]:
        """Content digests identifying this rank's trace.

        Binary traces report the ``calls``/``mems``/``strings`` digests
        the writer recorded in the footer; v2 files predating digest
        recording get the same values recomputed from the mapped frames
        (identical formulas, so old and new files with the same content
        agree).  Text traces hash the raw file bytes.  Digests of
        different formats are never comparable — :meth:`content_digest`
        folds the format in."""
        if self._digests is None:
            if self.format == FORMAT_BINARY:
                self._digests = self._recompute_binary_digests()
            else:
                self._digests = {"file": hash_file(self.path)}
        return dict(self._digests)

    def content_digest(self) -> str:
        """One digest summarizing format + content of this rank's file."""
        return stable_hash({"format": self.format,
                            "digests": self.digests()})

    def _recompute_binary_digests(self) -> Dict[str, str]:
        mm = self._mm
        if mm is None:
            raise TraceFormatError(f"{self.path}: reader is closed")
        hash_calls = hashlib.sha256()
        hash_mems = hashlib.sha256()
        pos = self._data_pos
        end = self._footer_off
        itemsize = MEM_DTYPE.itemsize
        while pos < end:
            tag = mm[pos:pos + 1]
            length = _U32.unpack_from(mm, pos + 1)[0]
            start = pos + 5
            if tag == b"M":
                pos = start + length * itemsize
                if pos > end:
                    raise TraceFormatError(
                        f"{self.path}: memory block overruns the footer")
                hash_mems.update(mm[start:pos])
            elif tag == b"C":
                pos = start + length
                if pos > end:
                    raise TraceFormatError(
                        f"{self.path}: call record overruns the footer")
                hash_calls.update(_U32.pack(length))
                hash_calls.update(mm[start:pos])
            else:
                raise TraceFormatError(
                    f"{self.path}: unknown frame tag {tag!r} at byte "
                    f"{pos}")
        return {"calls": hash_calls.hexdigest(),
                "mems": hash_mems.hexdigest(),
                "strings": hash_strings(self._table.strings)}

    def mem_blocks(self) -> Iterator[MemBlock]:
        """Memory events only, packed (the vectorized data pass).

        Unlike :meth:`stream`, call records are stepped over without
        decoding, and consecutive on-disk blocks coalesce up to
        ``_FLUSH_EVERY`` rows: synchronization-heavy traces flush a
        small block before every call frame, and re-packing here keeps
        the per-block Python overhead out of the data pass."""
        if self.format == FORMAT_BINARY:
            yield from self._mem_blocks_binary()
        else:
            yield from self._mem_blocks_text()

    # -- binary internals ----------------------------------------------

    def _stream_binary(self, decode_mems: bool = True) -> Iterator[StreamItem]:
        mm = self._mm
        if mm is None:
            raise TraceFormatError(f"{self.path}: reader is closed")
        rank = self.header.rank
        table = self._table
        pos = self._data_pos
        end = self._footer_off
        itemsize = MEM_DTYPE.itemsize
        while pos < end:
            tag = mm[pos:pos + 1]
            if tag == b"M":
                count = _U32.unpack_from(mm, pos + 1)[0]
                start = pos + 5
                pos = start + count * itemsize
                if pos > end:
                    raise TraceFormatError(
                        f"{self.path}: memory block overruns the footer")
                if decode_mems:
                    arr = np.frombuffer(mm, dtype=MEM_DTYPE, count=count,
                                        offset=start)
                    yield MemBlock(rank, table, array=arr)
            elif tag == b"C":
                length = _U32.unpack_from(mm, pos + 1)[0]
                start = pos + 5
                pos = start + length
                if pos > end:
                    raise TraceFormatError(
                        f"{self.path}: call record overruns the footer")
                yield decode_event(rank,
                                   mm[start:pos].decode("utf-8"))
            else:
                raise TraceFormatError(
                    f"{self.path}: unknown frame tag {tag!r} at byte "
                    f"{pos}")

    def _mem_blocks_binary(self) -> Iterator[MemBlock]:
        mm = self._mm
        if mm is None:
            raise TraceFormatError(f"{self.path}: reader is closed")
        rank = self.header.rank
        table = self._table
        pos = self._data_pos
        end = self._footer_off
        itemsize = MEM_DTYPE.itemsize
        pending: List[np.ndarray] = []
        pending_rows = 0

        def flush() -> MemBlock:
            nonlocal pending_rows
            # a lone large frame stays a zero-copy view; runs of small
            # frames pay one vectorized concatenate
            arr = pending[0] if len(pending) == 1 else np.concatenate(pending)
            pending.clear()
            pending_rows = 0
            return MemBlock(rank, table, array=arr)

        while pos < end:
            tag = mm[pos:pos + 1]
            length = _U32.unpack_from(mm, pos + 1)[0]
            start = pos + 5
            if tag == b"M":
                pos = start + length * itemsize
                if pos > end:
                    raise TraceFormatError(
                        f"{self.path}: memory block overruns the footer")
                pending.append(np.frombuffer(mm, dtype=MEM_DTYPE,
                                             count=length, offset=start))
                pending_rows += length
                if pending_rows >= _FLUSH_EVERY:
                    yield flush()
            elif tag == b"C":
                pos = start + length
                if pos > end:
                    raise TraceFormatError(
                        f"{self.path}: call record overruns the footer")
            else:
                raise TraceFormatError(
                    f"{self.path}: unknown frame tag {tag!r} at byte "
                    f"{pos}")
        if pending:
            yield flush()

    # -- text internals -------------------------------------------------

    @staticmethod
    def _text_mem_access(line: str) -> str:
        for part in line.split(" "):
            if part.startswith("a="):
                value = part[2:]
                access = value[1:] if value.startswith("$") else value
                if access in ACCESS_CODES:
                    return access
                break
        raise TraceFormatError(f"memory record without a valid access "
                               f"kind: {line!r}")

    def _stream_text(self) -> Iterator[StreamItem]:
        fh = self._fh
        fh.seek(self._data_pos)
        rank = self.header.rank
        table = self._table
        cols: Tuple[list, ...] = tuple([] for _ in range(6))
        seqs, addrs, sizes, var_ids, loc_ids, accs = cols

        def flush() -> MemBlock:
            block = MemBlock(rank, table,
                             cols=tuple(list(c) for c in cols))
            for col in cols:
                col.clear()
            return block

        for line in fh:
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("M "):
                rec = decode_record(line)
                seqs.append(rec.get_int("seq"))
                addrs.append(rec.get_int("addr"))
                sizes.append(rec.get_int("size"))
                var_ids.append(table.intern(rec.get_str("var")))
                loc_ids.append(table.intern(rec.get_str("loc")))
                access = rec.get_str("a")
                try:
                    accs.append(ACCESS_CODES[access])
                except KeyError:
                    raise TraceFormatError(
                        f"unknown access kind {access!r}") from None
                if len(seqs) >= _FLUSH_EVERY:
                    yield flush()
            else:
                if seqs:
                    yield flush()
                event = decode_event(rank, line)
                if not isinstance(event, CallEvent):
                    raise TraceFormatError(
                        f"{self.path}: unexpected {type(event).__name__} "
                        "record outside the M kind")
                yield event
        if seqs:
            yield flush()

    def _mem_blocks_text(self) -> Iterator[MemBlock]:
        """Mem-only text pass: call lines are skipped after a prefix
        check instead of being decoded, and blocks coalesce across
        them."""
        fh = self._fh
        fh.seek(self._data_pos)
        rank = self.header.rank
        table = self._table
        cols: Tuple[list, ...] = tuple([] for _ in range(6))
        seqs, addrs, sizes, var_ids, loc_ids, accs = cols

        def flush() -> MemBlock:
            block = MemBlock(rank, table,
                             cols=tuple(list(c) for c in cols))
            for col in cols:
                col.clear()
            return block

        for line in fh:
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("M "):
                rec = decode_record(line)
                seqs.append(rec.get_int("seq"))
                addrs.append(rec.get_int("addr"))
                sizes.append(rec.get_int("size"))
                var_ids.append(table.intern(rec.get_str("var")))
                loc_ids.append(table.intern(rec.get_str("loc")))
                access = rec.get_str("a")
                try:
                    accs.append(ACCESS_CODES[access])
                except KeyError:
                    raise TraceFormatError(
                        f"unknown access kind {access!r}") from None
                if len(seqs) >= _FLUSH_EVERY:
                    yield flush()
            elif not line.startswith("C "):
                raise TraceFormatError(
                    f"{self.path}: unknown record kind in data section: "
                    f"{line.split(' ', 1)[0]!r}")
        if seqs:
            yield flush()


class TraceSet:
    """All per-rank traces of one profiled run (formats may mix)."""

    _SUFFIXES = {".log": FORMAT_TEXT, ".bin": FORMAT_BINARY}

    def __init__(self, directory: str):
        self.directory = directory
        self._paths: Dict[int, str] = {}
        for name in sorted(os.listdir(directory)):
            if not name.startswith("trace."):
                continue
            suffix = name[name.rfind("."):]
            if suffix not in self._SUFFIXES:
                continue
            rank = int(name.split(".")[1])
            if rank in self._paths:
                raise TraceFormatError(
                    f"{directory}: rank {rank} has both a text and a "
                    "binary trace file")
            self._paths[rank] = os.path.join(directory, name)
        if not self._paths:
            raise TraceFormatError(f"no trace files found in {directory}")
        with TraceReader(self._paths[min(self._paths)]) as reader:
            self.nranks = reader.header.nranks
        if sorted(self._paths) != list(range(self.nranks)):
            raise TraceFormatError(
                f"{directory}: expected traces for ranks 0..{self.nranks - 1}, "
                f"found {sorted(self._paths)}")

    @staticmethod
    def rank_path(directory: str, rank: int,
                  format: str = FORMAT_TEXT) -> str:
        if format not in FORMATS:
            raise ValueError(f"unknown trace format {format!r}")
        suffix = "bin" if format == FORMAT_BINARY else "log"
        return os.path.join(directory, f"trace.{rank}.{suffix}")

    def path(self, rank: int) -> str:
        """The on-disk trace file of one rank.  A ``TraceSet`` pickles
        as directory + paths only — pool workers (fork or spawn) reopen
        the file by this path and mmap the v2 blocks themselves, so the
        stable path, not an inherited file handle, is the cross-process
        contract."""
        return self._paths[rank]

    def reader(self, rank: int) -> TraceReader:
        return TraceReader(self.path(rank))

    def iter_events(self, rank: int) -> Iterator[Event]:
        """Lazily iterate one rank's typed events (no list copy)."""
        with self.reader(rank) as reader:
            yield from reader

    def stream(self, rank: int) -> Iterator[StreamItem]:
        """One rank's ingest stream (typed calls + packed mem blocks)."""
        with self.reader(rank) as reader:
            yield from reader.stream()

    def mem_blocks(self, rank: int) -> Iterator[MemBlock]:
        with self.reader(rank) as reader:
            yield from reader.mem_blocks()

    def events(self, rank: int) -> List[Event]:
        return list(self.iter_events(rank))

    def all_events(self) -> Dict[int, List[Event]]:
        return {rank: list(self.iter_events(rank))
                for rank in range(self.nranks)}

    def event_counts(self) -> Dict[str, int]:
        """Aggregate event counts by class (for the Figure 10
        experiment).  Served from the v2 footer where available — no
        event is decoded for a binary trace set."""
        counts = {"call": 0, "mem": 0, "load": 0, "store": 0}
        for rank in range(self.nranks):
            with self.reader(rank) as reader:
                for key, value in reader.counts().items():
                    counts[key] += value
        return counts
