"""The interposition layer: an EventHook that writes trace events.

This is the analogue of the paper's PMPI wrappers plus the LLVM
instrumentation pass output.  Instrumentation *scope* reproduces the
ST-Analyzer ablation:

* ``SCOPE_REPORT`` — only buffers named in an
  :class:`~repro.stanalyzer.report.InstrumentationReport` emit load/store
  events (the paper's configuration);
* ``SCOPE_ALL`` — every buffer is instrumented (the "without static
  analysis" baseline the paper says costs hundreds of times more);
* ``SCOPE_NONE`` — no memory events at all (MPI calls only).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.profiler.events import CallEvent, MemEvent
from repro.profiler.tracer import FORMAT_TEXT, FORMATS, TraceSet, TraceWriter
from repro.simmpi.memory import TrackedBuffer
from repro.simmpi.runtime import EventHook
from repro.util.location import capture_location

SCOPE_REPORT = "report"
SCOPE_ALL = "all"
SCOPE_NONE = "none"

SCOPES = (SCOPE_REPORT, SCOPE_ALL, SCOPE_NONE)


class ProfilerHook(EventHook):
    """Event hook logging every MPI call and instrumented memory access."""

    def __init__(self, directory: str, nranks: int, app: str = "",
                 scope: str = SCOPE_REPORT,
                 relevant_vars: Optional[Set[str]] = None,
                 capture_locations: bool = True,
                 trace_format: str = FORMAT_TEXT,
                 bulk: bool = True):
        if scope not in SCOPES:
            raise ValueError(f"unknown instrumentation scope {scope!r}")
        if trace_format not in FORMATS:
            raise ValueError(f"unknown trace format {trace_format!r}")
        self.scope = scope
        self.relevant_vars = set(relevant_vars or ())
        self.capture_locations = capture_locations
        #: When True, block accesses take the zero-object columnar lane
        #: (``TraceWriter.append_mem_columns``); when False they decompose
        #: into per-event ``on_mem`` calls — the scalar reference lane the
        #: differential suite compares against.
        self.bulk = bulk
        self._writers: List[TraceWriter] = [
            TraceWriter(TraceSet.rank_path(directory, rank, trace_format),
                        rank, nranks, app, format=trace_format)
            for rank in range(nranks)
        ]
        self._seq = [0] * nranks
        # lane accounting (satellite observability: scalar vs bulk mix)
        self._calls = 0
        self._scalar_mems = 0
        self._bulk_mems = 0

    # -- EventHook interface -------------------------------------------

    def on_call(self, rank: int, fn: str, args: Dict[str, Any]) -> None:
        loc = capture_location() if self.capture_locations else None
        seq = self._seq[rank]
        self._seq[rank] = seq + 1
        self._calls += 1
        self._writers[rank].append_call(fn, args, loc, seq)

    def on_mem(self, rank: int, kind: str, buf: TrackedBuffer, addr: int,
               size: int) -> None:
        loc = capture_location() if self.capture_locations else None
        seq = self._seq[rank]
        self._seq[rank] = seq + 1
        self._scalar_mems += 1
        event = MemEvent(rank=rank, seq=seq, access=kind, addr=addr,
                         size=size, var=buf.name)
        if loc is not None:
            event.loc = loc
        self._writers[rank].write(event)

    def on_mem_block(self, rank: int, kind: str, buf: TrackedBuffer,
                     addr: int, size: int, count: int, stride: int) -> None:
        if count <= 0:
            return
        if not self.bulk:
            # scalar lane: the EventHook default turns the block back
            # into count on_mem calls (one MemEvent each)
            EventHook.on_mem_block(self, rank, kind, buf, addr, size,
                                   count, stride)
            return
        loc = capture_location() if self.capture_locations else None
        seq = self._seq[rank]
        self._seq[rank] = seq + count
        self._bulk_mems += count
        self._writers[rank].append_mem_columns(
            kind, buf.name, loc, seq, addr, size, count, stride)

    def on_alloc(self, rank: int, buf: TrackedBuffer) -> None:
        """Decide, per the scope, whether this buffer's accesses are traced."""
        if self.scope == SCOPE_ALL:
            buf.instrumented = True
        elif self.scope == SCOPE_REPORT:
            if buf.name in self.relevant_vars:
                buf.instrumented = True

    def on_win_buffer(self, rank: int, buf: TrackedBuffer) -> None:
        """Window buffers are relevant by definition: instrument them even
        when the allocation site was outside ST-Analyzer's view (dynamic
        refinement of the static report)."""
        if self.scope != SCOPE_NONE:
            buf.instrumented = True

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        for writer in self._writers:
            writer.close()

    @property
    def events_written(self) -> int:
        return sum(w.events_written for w in self._writers)

    @property
    def bytes_written(self) -> int:
        return sum(w.bytes_written for w in self._writers)

    def lane_counts(self) -> Dict[str, Dict[str, int]]:
        """Emitted-event totals by event kind and producer lane."""
        return {
            "call": {"scalar": self._calls},
            "mem": {"scalar": self._scalar_mems, "bulk": self._bulk_mems},
        }

    def events_by_rank(self) -> List[int]:
        return [w.events_written for w in self._writers]

    def bytes_by_rank(self) -> List[int]:
        return [w.bytes_written for w in self._writers]
