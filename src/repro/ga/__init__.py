"""Global-Arrays-style PGAS layer over the simulated MPI RMA runtime.

The paper's overhead study runs "three applications in the GA package
(Lennard-Jones, SCF, and Boltzmann) ... We replace the ARMCI library with
ARMCI-MPI so that GA will use ARMCI-MPI as communication library" — i.e.
a Global Arrays programming model lowered onto MPI one-sided operations.
This package provides that layer: a block-distributed
:class:`~repro.ga.array.GlobalArray` whose section operations (`get`,
`put`, `acc`, `read_inc`) lower to passive-target MPI RMA, so MC-Checker
analyzes GA programs with no extra machinery — the paper's advantage #4
("the analysis techniques ... can also be applied to other one-sided
programming models").
"""

from repro.ga.array import GlobalArray
from repro.ga.array2d import GlobalArray2D

__all__ = ["GlobalArray", "GlobalArray2D"]
