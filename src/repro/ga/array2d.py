"""2-D block-row-distributed global arrays with strided section access.

The interesting part relative to the 1-D case: a 2-D section touches a
*strided* set of bytes in the owner's window, which is exactly what MPI
derived datatypes describe.  Section operations here build
``Type_vector(nrows, section_width, row_width)`` target datatypes, so the
whole data-map pipeline — runtime lowering, trace replay in DN-Analyzer's
preprocessing, interval computation for conflict detection — is exercised
with non-contiguous layouts: two sections that share rows but use disjoint
column ranges do NOT conflict, byte-for-byte, and MC-Checker agrees.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.simmpi import LOCK_SHARED, MPIContext, TrackedBuffer
from repro.simmpi.datatypes import Datatype, PRIMITIVES
from repro.simmpi.window import WinHandle
from repro.util.errors import SimMPIError


class GlobalArray2D:
    """A (rows x cols) array distributed by contiguous row blocks."""

    def __init__(self, mpi: MPIContext, name: str, rows: int, cols: int,
                 block: TrackedBuffer, win: WinHandle, base: Datatype):
        self.mpi = mpi
        self.name = name
        self.rows = rows
        self.cols = cols
        self._block = block
        self._win = win
        self._base = base
        row_capacity = self._row_bounds(0)[1]  # rank 0 holds the most rows
        self._stage = mpi.alloc(f"{name}_stage", row_capacity * cols,
                                datatype=block.array.dtype)
        self._section_types: Dict[Tuple[int, int], Datatype] = {}
        self._destroyed = False

    # ------------------------------------------------------------------

    @classmethod
    def create(cls, mpi: MPIContext, name: str, rows: int, cols: int,
               datatype: str = "DOUBLE", fill: float = 0) -> "GlobalArray2D":
        if rows < mpi.size:
            raise SimMPIError(
                f"GlobalArray2D {name!r}: {rows} rows cannot be "
                f"distributed over {mpi.size} ranks")
        base = PRIMITIVES[datatype]
        lo, hi = cls._bounds(rows, mpi.size, mpi.rank)
        block = mpi.alloc(name, (hi - lo) * cols,
                          datatype=base.numpy_dtype(), fill=fill)
        win = mpi.win_create(block, disp_unit=base.size)
        ga = cls(mpi, name, rows, cols, block, win, base)
        ga.sync()
        return ga

    @staticmethod
    def _bounds(rows: int, size: int, rank: int) -> Tuple[int, int]:
        base, extra = divmod(rows, size)
        lo = rank * base + min(rank, extra)
        return lo, lo + base + (1 if rank < extra else 0)

    def _row_bounds(self, rank: int) -> Tuple[int, int]:
        return self._bounds(self.rows, self.mpi.size, rank)

    def distribution(self, rank: Optional[int] = None) -> Tuple[int, int]:
        """Owned row range of ``rank`` (default: mine)."""
        rank = self.mpi.rank if rank is None else rank
        return self._row_bounds(rank)

    def _row_segments(self, rlo: int, rhi: int):
        """Yield (owner, local_row_lo, nrows, result_row_offset)."""
        if not (0 <= rlo <= rhi <= self.rows):
            raise IndexError(f"rows [{rlo}, {rhi}) outside array of "
                             f"{self.rows} rows")
        cursor = rlo
        while cursor < rhi:
            for owner in range(self.mpi.size):
                olo, ohi = self._row_bounds(owner)
                if olo <= cursor < ohi:
                    break
            nrows = min(rhi, ohi) - cursor
            yield owner, cursor - olo, nrows, cursor - rlo
            cursor += nrows

    def _section_type(self, nrows: int, width: int) -> Datatype:
        """Strided datatype selecting an (nrows x width) sub-block."""
        if width == self.cols:
            key = (nrows * self.cols, 0)  # fully contiguous: plain rows
        else:
            key = (nrows, width)
        dtype = self._section_types.get(key)
        if dtype is None:
            if width == self.cols:
                dtype = self.mpi.type_contiguous(nrows * self.cols,
                                                 self._base)
            else:
                dtype = self.mpi.type_vector(nrows, width, self.cols,
                                             self._base)
            self._section_types[key] = dtype
        return dtype

    def _check_section(self, clo: int, chi: int) -> None:
        if not (0 <= clo < chi <= self.cols):
            raise IndexError(f"columns [{clo}, {chi}) outside array of "
                             f"{self.cols} columns")

    # ------------------------------------------------------------------
    # strided section operations
    # ------------------------------------------------------------------

    def get(self, rlo: int, rhi: int, clo: int, chi: int) -> np.ndarray:
        """Fetch the 2-D section as an (rhi-rlo, chi-clo) array."""
        self._check_live()
        self._check_section(clo, chi)
        width = chi - clo
        out = np.empty((rhi - rlo, width), dtype=self._block.array.dtype)
        for owner, local_row, nrows, row_off in self._row_segments(rlo, rhi):
            section = self._section_type(nrows, width)
            self._win.lock(owner, LOCK_SHARED)
            self._win.get(self._stage, target=owner,
                          target_disp=local_row * self.cols + clo,
                          origin_count=nrows * width,
                          target_count=1, target_dtype=section)
            self._win.unlock(owner)
            out[row_off:row_off + nrows] = \
                self._stage.read_block(0, nrows * width).reshape(nrows, width)
        return out

    def put(self, rlo: int, rhi: int, clo: int, chi: int, values) -> None:
        """Write a 2-D section."""
        self._check_live()
        self._check_section(clo, chi)
        width = chi - clo
        values = np.asarray(values,
                            dtype=self._block.array.dtype).reshape(
            rhi - rlo, width)
        for owner, local_row, nrows, row_off in self._row_segments(rlo, rhi):
            section = self._section_type(nrows, width)
            self._stage.write_block(
                values[row_off:row_off + nrows].reshape(-1), offset=0)
            self._win.lock(owner, LOCK_SHARED)
            self._win.put(self._stage, target=owner,
                          target_disp=local_row * self.cols + clo,
                          origin_count=nrows * width,
                          target_count=1, target_dtype=section)
            self._win.unlock(owner)

    def acc(self, rlo: int, rhi: int, clo: int, chi: int, values,
            op: str = "SUM") -> None:
        """Accumulate into a 2-D section."""
        self._check_live()
        self._check_section(clo, chi)
        width = chi - clo
        values = np.asarray(values,
                            dtype=self._block.array.dtype).reshape(
            rhi - rlo, width)
        for owner, local_row, nrows, row_off in self._row_segments(rlo, rhi):
            section = self._section_type(nrows, width)
            self._stage.write_block(
                values[row_off:row_off + nrows].reshape(-1), offset=0)
            self._win.lock(owner, LOCK_SHARED)
            self._win.accumulate(self._stage, target=owner, op=op,
                                 target_disp=local_row * self.cols + clo,
                                 origin_count=nrows * width,
                                 target_count=1, target_dtype=section)
            self._win.unlock(owner)

    # ------------------------------------------------------------------
    # local access & lifecycle
    # ------------------------------------------------------------------

    def local(self) -> TrackedBuffer:
        """My row block (row-major flattened), with tracked accesses —
        misuse is visible to MC-Checker like any load/store."""
        return self._block

    def set_local(self, values) -> None:
        """Tracked write of the whole owned block from a 2-D array."""
        lo, hi = self._row_bounds(self.mpi.rank)
        values = np.asarray(values, dtype=self._block.array.dtype)
        self._block.write_block(values.reshape((hi - lo) * self.cols))

    def local_section(self, rlo: int, rhi: int, clo: int, chi: int
                      ) -> np.ndarray:
        """Tracked strided read of a 2-D section of *owned* rows: one
        columnar record covering every row run, instead of one event per
        row.  Rows must lie within this rank's block."""
        lo, hi = self._row_bounds(self.mpi.rank)
        self._check_section(clo, chi)
        if not (lo <= rlo <= rhi <= hi):
            raise IndexError(
                f"rows [{rlo}, {rhi}) outside local block [{lo}, {hi}) of "
                f"GlobalArray2D {self.name!r}")
        return self._block.read_rows((rlo - lo) * self.cols + clo,
                                     chi - clo, rhi - rlo, self.cols)

    def set_local_section(self, rlo: int, rhi: int, clo: int, chi: int,
                          values) -> None:
        """Tracked strided write of a 2-D section of owned rows (one
        columnar record) — the store-side dual of :meth:`local_section`."""
        lo, hi = self._row_bounds(self.mpi.rank)
        self._check_section(clo, chi)
        if not (lo <= rlo <= rhi <= hi):
            raise IndexError(
                f"rows [{rlo}, {rhi}) outside local block [{lo}, {hi}) of "
                f"GlobalArray2D {self.name!r}")
        values = np.asarray(values, dtype=self._block.array.dtype).reshape(
            rhi - rlo, chi - clo)
        self._block.write_rows(values, (rlo - lo) * self.cols + clo,
                               self.cols)

    def local_view(self) -> np.ndarray:
        """Raw 2-D numpy view of the owned block.  Accesses through this
        view bypass tracking (useful for verification plumbing, invisible
        to MC-Checker — the aliasing false-negative of paper section V)."""
        lo, hi = self._row_bounds(self.mpi.rank)
        return self._block.raw_elements().reshape(hi - lo, self.cols)

    def sync(self) -> None:
        self._check_live()
        self.mpi.barrier()

    def to_numpy(self) -> np.ndarray:
        self._check_live()
        self.sync()
        parts = self.mpi.allgather(self._block)
        self.sync()
        return np.concatenate([p.reshape(-1, self.cols) for p in parts])

    def destroy(self) -> None:
        if not self._destroyed:
            self.sync()
            self._win.free()
            self._destroyed = True

    def _check_live(self) -> None:
        if self._destroyed:
            raise SimMPIError(
                f"GlobalArray2D {self.name!r} already destroyed")
