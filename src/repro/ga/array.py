"""Block-distributed global arrays lowered to MPI RMA.

API modelled on Global Arrays / ARMCI essentials:

* ``GlobalArray.create(mpi, name, n)`` — collective creation, 1-D block
  distribution (rank *r* owns a contiguous slice);
* ``ga.get(lo, hi)`` / ``ga.put(lo, hi, values)`` / ``ga.acc(lo, hi,
  values, op)`` — one-sided section access, split per owning rank and
  issued under shared passive-target locks;
* ``ga.read_inc(index)`` — GA's atomic read-and-increment, lowered to the
  MPI-3 ``fetch_and_op``;
* ``ga.sync()`` — collective quiescence point (GA_Sync);
* ``ga.local()`` — direct access to the owned block (a tracked buffer, so
  misuse is visible to MC-Checker exactly like any load/store).

Every lowering is epoch-correct: staging buffers are written before the
epoch opens and read after it closes, so a GA program that only uses this
API is consistency-clean — and one that mixes in unsynchronized
``local()`` accesses produces exactly the paper's Figure 2d defect.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.simmpi import LOCK_SHARED, MPIContext, TrackedBuffer
from repro.simmpi.datatypes import Datatype, PRIMITIVES
from repro.simmpi.window import WinHandle
from repro.util.errors import SimMPIError


class GlobalArray:
    """A 1-D block-distributed array with one-sided section access."""

    def __init__(self, mpi: MPIContext, name: str, total: int,
                 block: TrackedBuffer, win: WinHandle, int_typed: bool):
        self.mpi = mpi
        self.name = name
        self.total = total
        self._block = block
        self._win = win
        self._int_typed = int_typed
        self._stage = mpi.alloc(f"{name}_stage", self._block_size(0),
                                datatype=block.array.dtype)
        self._one = mpi.alloc(f"{name}_one", 1, datatype=block.array.dtype,
                              fill=1)
        self._old = mpi.alloc(f"{name}_old", 1, datatype=block.array.dtype)
        self._destroyed = False

    # ------------------------------------------------------------------
    # creation / distribution
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, mpi: MPIContext, name: str, total: int,
               datatype: str = "DOUBLE", fill: float = 0) -> "GlobalArray":
        """Collective: create a block-distributed array of ``total`` elems."""
        if total < mpi.size:
            raise SimMPIError(
                f"GlobalArray {name!r}: {total} elements cannot be "
                f"distributed over {mpi.size} ranks")
        np_dtype = PRIMITIVES[datatype].numpy_dtype()
        lo, hi = cls._bounds(total, mpi.size, mpi.rank)
        block = mpi.alloc(name, hi - lo, datatype=np_dtype, fill=fill)
        win = mpi.win_create(block)
        ga = cls(mpi, name, total, block, win,
                 int_typed=np.issubdtype(np_dtype, np.integer))
        ga.sync()
        return ga

    @staticmethod
    def _bounds(total: int, size: int, rank: int) -> Tuple[int, int]:
        base, extra = divmod(total, size)
        lo = rank * base + min(rank, extra)
        return lo, lo + base + (1 if rank < extra else 0)

    def _block_size(self, rank: int) -> int:
        lo, hi = self._bounds(self.total, self.mpi.size, rank)
        return hi - lo

    def distribution(self, rank: Optional[int] = None) -> Tuple[int, int]:
        """Global index range owned by ``rank`` (default: mine)."""
        rank = self.mpi.rank if rank is None else rank
        return self._bounds(self.total, self.mpi.size, rank)

    def owner_of(self, index: int) -> int:
        for rank in range(self.mpi.size):
            lo, hi = self._bounds(self.total, self.mpi.size, rank)
            if lo <= index < hi:
                return rank
        raise IndexError(f"index {index} outside GlobalArray of "
                         f"{self.total} elements")

    def _segments(self, lo: int, hi: int):
        """Yield (owner, owner_lo_offset, length, result_offset) chunks."""
        if not 0 <= lo <= hi <= self.total:
            raise IndexError(f"section [{lo}, {hi}) outside GlobalArray "
                             f"of {self.total} elements")
        cursor = lo
        while cursor < hi:
            owner = self.owner_of(cursor)
            olo, ohi = self._bounds(self.total, self.mpi.size, owner)
            length = min(hi, ohi) - cursor
            yield owner, cursor - olo, length, cursor - lo
            cursor += length

    # ------------------------------------------------------------------
    # one-sided section operations
    # ------------------------------------------------------------------

    def get(self, lo: int, hi: int) -> np.ndarray:
        """Fetch the global section ``[lo, hi)`` (NGA_Get)."""
        self._check_live()
        out = np.empty(hi - lo, dtype=self._block.array.dtype)
        for owner, disp, length, off in self._segments(lo, hi):
            self._win.lock(owner, LOCK_SHARED)
            self._win.get(self._stage, target=owner, target_disp=disp,
                          origin_offset=0, origin_count=length)
            self._win.unlock(owner)  # the Get is complete here
            out[off:off + length] = self._stage.read_block(0, length)
        return out

    def put(self, lo: int, hi: int, values) -> None:
        """Write the global section ``[lo, hi)`` (NGA_Put).

        GA semantics: puts to the same section from different ranks
        without an intervening ``sync`` race — and MC-Checker will say so.
        """
        self._check_live()
        values = np.asarray(values, dtype=self._block.array.dtype)
        for owner, disp, length, off in self._segments(lo, hi):
            # stage before the epoch opens: ordered ahead of the Put
            self._stage.write_block(values[off:off + length], offset=0)
            self._win.lock(owner, LOCK_SHARED)
            self._win.put(self._stage, target=owner, target_disp=disp,
                          origin_offset=0, origin_count=length)
            self._win.unlock(owner)  # flushed: the stage is reusable

    def acc(self, lo: int, hi: int, values, op: str = "SUM") -> None:
        """Accumulate into the global section (NGA_Acc); concurrent
        same-op accumulates are legal (Table I's BOTH* cell)."""
        self._check_live()
        values = np.asarray(values, dtype=self._block.array.dtype)
        for owner, disp, length, off in self._segments(lo, hi):
            self._stage.write_block(values[off:off + length], offset=0)
            self._win.lock(owner, LOCK_SHARED)
            self._win.accumulate(self._stage, target=owner, op=op,
                                 target_disp=disp, origin_offset=0,
                                 origin_count=length)
            self._win.unlock(owner)

    def read_inc(self, index: int, inc: int = 1) -> int:
        """GA's atomic read-and-increment (NGA_Read_inc), via MPI-3
        fetch_and_op."""
        self._check_live()
        if not self._int_typed:
            raise SimMPIError("read_inc requires an integer-typed array")
        owner = self.owner_of(index)
        olo, _ohi = self._bounds(self.total, self.mpi.size, owner)
        self._one.store(0, inc)
        self._win.lock(owner, LOCK_SHARED)
        self._win.fetch_and_op(self._one, self._old, target=owner,
                               op="SUM", target_disp=index - olo)
        self._win.unlock(owner)  # fetch complete
        return int(self._old.load(0))

    # ------------------------------------------------------------------
    # local access & lifecycle
    # ------------------------------------------------------------------

    def local(self) -> TrackedBuffer:
        """The owned block.  Accesses are tracked: touching it while
        remote operations are in flight is exactly the Figure 2d bug."""
        return self._block

    def local_read(self, offset: int = 0, count: Optional[int] = None, *,
                   reps: int = 1) -> np.ndarray:
        """Vectorized tracked read of the owned block: one coalesced
        record (``reps`` of them for loop-equivalent re-reads) instead of
        per-element events.  Same consistency semantics as :meth:`local`
        element access — just coarser event granularity."""
        return self._block.read_block(offset, count, reps=reps)

    def local_write(self, values, offset: int = 0) -> None:
        """Vectorized tracked write of the owned block (one record)."""
        self._block.write_block(values, offset)

    def sync(self) -> None:
        """GA_Sync: collective quiescence (all prior ops complete)."""
        self._check_live()
        self.mpi.barrier()

    def to_numpy(self) -> np.ndarray:
        """Collective: gather the full array on every rank."""
        self._check_live()
        self.sync()
        parts = self.mpi.allgather(self._block)
        self.sync()
        return np.concatenate(parts)

    def fill(self, value) -> None:
        """Collective: every rank fills its own block."""
        self._check_live()
        self.sync()
        self._block.write(np.full(len(self._block), value,
                                  dtype=self._block.array.dtype))
        self.sync()

    def destroy(self) -> None:
        """Collective teardown (GA_Destroy)."""
        if not self._destroyed:
            self.sync()
            self._win.free()
            self._destroyed = True

    def _check_live(self) -> None:
        if self._destroyed:
            raise SimMPIError(f"GlobalArray {self.name!r} already destroyed")
