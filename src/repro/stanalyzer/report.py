"""The instrumentation report handed from ST-Analyzer to the Profiler."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple


@dataclass
class InstrumentationReport:
    """What the Profiler must instrument, and why.

    Attributes
    ----------
    relevant_vars:
        ``function name -> set of variable names`` that may alias a window
        or one-sided origin buffer inside that function.
    buffer_names:
        Allocation names (the string passed to ``mpi.alloc``) of buffers
        that a relevant variable can reach; the Profiler flips these
        buffers' ``instrumented`` bit.
    seeds:
        The ``(function, variable)`` pairs that seeded the analysis — the
        direct window/origin arguments of RMA calls.
    alloc_sites:
        ``(function, variable, buffer name, line)`` for every recognized
        ``mpi.alloc`` call, relevant or not (diagnostics).
    """

    relevant_vars: Dict[str, Set[str]] = field(default_factory=dict)
    buffer_names: Set[str] = field(default_factory=set)
    seeds: Set[Tuple[str, str]] = field(default_factory=set)
    alloc_sites: List[Tuple[str, str, str, int]] = field(default_factory=list)

    def is_relevant(self, function: str, var: str) -> bool:
        return var in self.relevant_vars.get(function, ())

    def all_relevant_vars(self) -> FrozenSet[Tuple[str, str]]:
        return frozenset(
            (fn, var) for fn, names in self.relevant_vars.items()
            for var in names)

    def summary(self) -> str:
        lines = ["ST-Analyzer instrumentation report",
                 f"  buffers to instrument: {sorted(self.buffer_names)}"]
        for fn in sorted(self.relevant_vars):
            names = ", ".join(sorted(self.relevant_vars[fn]))
            lines.append(f"  {fn}: {names}")
        return "\n".join(lines)
