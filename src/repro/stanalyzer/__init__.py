"""ST-Analyzer — static identification of window-relevant variables.

Python-AST reimplementation of the paper's Clang/LLVM-based component
(section IV-A): seed the "relevant" set with variables used as window
buffers or one-sided origin buffers, propagate labels through assignments
and function-call bindings to a fixed point, and report the variables whose
loads/stores the Profiler must instrument.

Like the original, the analysis is conservative — flow-, branch- and
loop-insensitive — so it may over-approximate (instrument more than
strictly needed) but never misses a relevant variable reachable through
assignment/call aliasing.
"""

from repro.stanalyzer.report import InstrumentationReport
from repro.stanalyzer.analyzer import (
    analyze_source,
    analyze_module,
    analyze_app,
)

__all__ = [
    "InstrumentationReport",
    "analyze_source",
    "analyze_module",
    "analyze_app",
]
