"""The AST taint analysis behind ST-Analyzer.

Model: every ``(function, variable)`` pair is a node in an alias graph.
Edges come from

* simple assignments ``a = b`` (alias, symmetric: both names now refer to
  the same buffer object);
* tuple assignments ``a, b = c, d`` pairwise;
* call bindings: passing variable ``v`` as the ``i``-th argument of a call
  to module-level function ``f`` aliases ``v`` with ``f``'s ``i``-th
  parameter (keyword arguments bind by name);
* returns: ``return x`` inside ``f`` aliases ``x`` with the synthetic node
  ``(f, "<return>")``, which in turn aliases any ``y = f(...)`` target.

Seeds are the buffer arguments of one-sided calls — ``win_create(buf)``,
``*.put(origin, ...)``, ``*.get(origin, ...)``, ``*.accumulate(origin,
...)`` — since those are exactly the variables the MPI memory model
subjects to consistency rules.  A variable is *relevant* iff its node is
connected to a seed; a buffer *name* is instrumented iff some relevant
variable is assigned from ``mpi.alloc("<name>", ...)``.

The analysis is flow-insensitive (no branch/loop reasoning) and
over-approximates, matching the paper's design choice: "ST-Analyzer may
mark some variables that do not need to be instrumented in reality, but it
will not fail to mark those that need to be instrumented."
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.stanalyzer.report import InstrumentationReport

#: Method names whose first positional argument is a one-sided buffer.
_RMA_METHODS = {"put", "get", "accumulate", "win_create",
                # MPI-3 extensions
                "get_accumulate", "fetch_and_op", "compare_and_swap",
                "rput", "rget", "raccumulate"}
#: MPI-3 fetching calls also take local result/compare buffers: how many
#: leading positional arguments are buffers.
_RMA_BUFFER_ARITY = {"get_accumulate": 2, "fetch_and_op": 2,
                     "compare_and_swap": 3}
#: Keyword names that carry a buffer in those calls.
_RMA_BUFFER_KEYWORDS = {"origin_buf", "buf", "result_buf", "compare_buf"}
#: The allocation method recognized for name binding.
_ALLOC_METHOD = "alloc"

_RETURN = "<return>"

Node = Tuple[str, str]  # (function qualname, variable name)


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[Node, Node] = {}

    def find(self, node: Node) -> Node:
        parent = self._parent.setdefault(node, node)
        if parent != node:
            parent = self.find(parent)
            self._parent[node] = parent
        return parent

    def union(self, a: Node, b: Node) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb

    def nodes(self) -> List[Node]:
        return list(self._parent)


class _FunctionIndex(ast.NodeVisitor):
    """First pass: map function names to their parameter lists."""

    def __init__(self) -> None:
        self.params: Dict[str, List[str]] = {}
        self._stack: List[str] = []

    def _visit_fn(self, node) -> None:
        name = node.name
        self.params[name] = [a.arg for a in node.args.args]
        self._stack.append(name)
        self.generic_visit(node)
        self._stack.pop()

    visit_FunctionDef = _visit_fn
    visit_AsyncFunctionDef = _visit_fn


class _AliasCollector(ast.NodeVisitor):
    """Second pass: build alias edges, seeds, and alloc sites."""

    def __init__(self, params: Dict[str, List[str]]):
        self.params = params
        self.uf = _UnionFind()
        self.seeds: Set[Node] = set()
        self.alloc_sites: List[Tuple[str, str, str, int]] = []
        self._fn_stack: List[str] = ["<module>"]
        # variables holding function references, e.g. ``f = helper`` or
        # ``f = a if cond else b`` — calls through them bind to all targets
        self.fn_aliases: Dict[Node, Set[str]] = {}

    # -- scope tracking -------------------------------------------------

    @property
    def scope(self) -> str:
        return self._fn_stack[-1]

    def _visit_fn(self, node) -> None:
        self._fn_stack.append(node.name)
        self.generic_visit(node)
        self._fn_stack.pop()

    visit_FunctionDef = _visit_fn
    visit_AsyncFunctionDef = _visit_fn

    # -- helpers ----------------------------------------------------------

    def _node_for(self, expr: ast.expr) -> Optional[Node]:
        if isinstance(expr, ast.Name):
            return (self.scope, expr.id)
        return None

    def _handle_call(self, call: ast.Call,
                     target: Optional[Node]) -> None:
        func = call.func
        # method call on some object
        if isinstance(func, ast.Attribute):
            method = func.attr
            if method in _RMA_METHODS:
                arity = _RMA_BUFFER_ARITY.get(method, 1)
                buffer_args = [self._node_for(arg)
                               for arg in call.args[:arity]]
                buffer_args += [self._node_for(kw.value)
                                for kw in call.keywords
                                if kw.arg in _RMA_BUFFER_KEYWORDS]
                for buffer_arg in buffer_args:
                    if buffer_arg is not None:
                        self.uf.find(buffer_arg)
                        self.seeds.add(buffer_arg)
            elif method == _ALLOC_METHOD and target is not None:
                if call.args and isinstance(call.args[0], ast.Constant) \
                        and isinstance(call.args[0].value, str):
                    self.alloc_sites.append(
                        (target[0], target[1], call.args[0].value,
                         call.lineno))
        # direct or aliased call to a module-level function: bind args
        elif isinstance(func, ast.Name):
            callees: Set[str] = set()
            if func.id in self.params:
                callees.add(func.id)
            callees |= self.fn_aliases.get((self.scope, func.id), set())
            for callee in callees:
                callee_params = self.params[callee]
                for i, arg in enumerate(call.args):
                    arg_node = self._node_for(arg)
                    if arg_node is not None and i < len(callee_params):
                        self.uf.union(arg_node, (callee, callee_params[i]))
                for kw in call.keywords:
                    arg_node = self._node_for(kw.value)
                    if arg_node is not None and kw.arg in callee_params:
                        self.uf.union(arg_node, (callee, kw.arg))
                if target is not None:
                    self.uf.union(target, (callee, _RETURN))

    # -- statements -------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        for target_expr in node.targets:
            # tuple unpacking: pair element-wise when shapes line up
            if isinstance(target_expr, ast.Tuple) and \
                    isinstance(value, ast.Tuple) and \
                    len(target_expr.elts) == len(value.elts):
                for t, v in zip(target_expr.elts, value.elts):
                    self._assign_one(t, v)
            else:
                self._assign_one(target_expr, value)
        self.generic_visit(node)

    def _assign_one(self, target_expr: ast.expr, value: ast.expr) -> None:
        if isinstance(value, ast.IfExp):
            # conditional alias: conservatively bind both branches
            self._assign_one(target_expr, value.body)
            self._assign_one(target_expr, value.orelse)
            return
        target = self._node_for(target_expr)
        if isinstance(value, ast.Call):
            self._handle_call(value, target)
        value_node = self._node_for(value)
        if target is not None and value_node is not None:
            self.uf.union(target, value_node)
            if value_node[1] in self.params:
                # the RHS names a module-level function: record the alias
                self.fn_aliases.setdefault(target, set()).add(value_node[1])

    def visit_Call(self, node: ast.Call) -> None:
        self._handle_call(node, target=None)
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            value_node = self._node_for(node.value)
            if value_node is not None:
                self.uf.union(value_node, (self.scope, _RETURN))
        self.generic_visit(node)


def analyze_source(source: str, filename: str = "<source>"
                   ) -> InstrumentationReport:
    """Run ST-Analyzer over Python source text."""
    tree = ast.parse(textwrap.dedent(source), filename=filename)
    index = _FunctionIndex()
    index.visit(tree)
    collector = _AliasCollector(index.params)
    collector.visit(tree)

    uf = collector.uf
    seed_roots = {uf.find(seed) for seed in collector.seeds}
    relevant: Dict[str, Set[str]] = {}
    for node in uf.nodes():
        if uf.find(node) in seed_roots:
            fn, var = node
            if var != _RETURN:
                relevant.setdefault(fn, set()).add(var)

    buffer_names: Set[str] = set()
    for fn, var, buf_name, _line in collector.alloc_sites:
        if var in relevant.get(fn, ()):
            buffer_names.add(buf_name)

    return InstrumentationReport(
        relevant_vars=relevant,
        buffer_names=buffer_names,
        seeds={(fn, var) for fn, var in collector.seeds},
        alloc_sites=collector.alloc_sites,
    )


def analyze_module(module) -> InstrumentationReport:
    """Run ST-Analyzer over an imported module's source."""
    return analyze_source(inspect.getsource(module),
                          filename=getattr(module, "__file__", "<module>"))


def analyze_app(app: Callable) -> InstrumentationReport:
    """Run ST-Analyzer over the module defining an application callable.

    Analyzing the whole module (rather than the single function) captures
    helper functions the app calls, mirroring the paper's whole-program
    static analysis.
    """
    module = inspect.getmodule(app)
    if module is not None:
        try:
            return analyze_module(module)
        except (OSError, TypeError):
            pass
    try:
        return analyze_source(inspect.getsource(app))
    except (OSError, TypeError):
        # No retrievable source (REPL / exec'd code): conservative empty
        # report — the caller may fall back to scope="all".
        return InstrumentationReport()
