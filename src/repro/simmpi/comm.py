"""Communicators: a group plus a context id for message matching."""

from __future__ import annotations

from repro.simmpi.group import Group

WORLD_COMM_ID = 0


class Comm:
    """An MPI communicator: an id (context) and an ordered member group.

    Message matching and collective matching are both scoped by
    :attr:`comm_id`, so communication on different communicators never
    interferes — the property DN-Analyzer relies on when it resolves
    group-relative ranks back to world ranks (section IV-C-1a).
    """

    __slots__ = ("comm_id", "group")

    def __init__(self, comm_id: int, group: Group):
        self.comm_id = comm_id
        self.group = group

    @property
    def size(self) -> int:
        return self.group.size

    def rank_of_world(self, world_rank: int) -> int:
        return self.group.rank_of_world(world_rank)

    def world_of_rank(self, comm_rank: int) -> int:
        return self.group.world_of_rank(comm_rank)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Comm(id={self.comm_id}, ranks={self.group.world_ranks})"
