"""Reduction operations for collectives and MPI_Accumulate."""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.util.errors import SimMPIError

#: op name -> elementwise combiner over numpy arrays (accumuland, update).
_COMBINERS: Dict[str, Callable] = {
    "SUM": lambda a, b: a + b,
    "PROD": lambda a, b: a * b,
    "MIN": np.minimum,
    "MAX": np.maximum,
    "LAND": lambda a, b: np.logical_and(a, b).astype(a.dtype),
    "LOR": lambda a, b: np.logical_or(a, b).astype(a.dtype),
    "BAND": lambda a, b: a & b,
    "BOR": lambda a, b: a | b,
    "BXOR": lambda a, b: a ^ b,
    "REPLACE": lambda a, b: b,
}

SUM = "SUM"
PROD = "PROD"
MIN = "MIN"
MAX = "MAX"
LAND = "LAND"
LOR = "LOR"
BAND = "BAND"
BOR = "BOR"
BXOR = "BXOR"
REPLACE = "REPLACE"

#: Ops usable with MPI_Accumulate in MPI-2.2 (predefined reductions plus
#: MPI_REPLACE).
ACCUMULATE_OPS = frozenset(_COMBINERS)

#: Ops usable in reduce/allreduce/scan (everything except REPLACE).
REDUCE_OPS = frozenset(op for op in _COMBINERS if op != "REPLACE")


def combine(op: str, accumuland: np.ndarray, update: np.ndarray) -> np.ndarray:
    try:
        fn = _COMBINERS[op]
    except KeyError:
        raise SimMPIError(f"unknown reduction op {op!r}") from None
    return fn(accumuland, update)
