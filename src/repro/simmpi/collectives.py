"""Collective operations over a communicator.

Each communicator carries an implicit stream of collective *slots*: the
``k``-th collective call a rank makes on a communicator joins slot ``k``.
All members must therefore call collectives on a communicator in the same
order — the MPI requirement — and a mismatch (different operation names in
the same slot) raises immediately, which doubles as a useful application
bug detector.

A slot gathers one contribution per member rank, blocks arrivals until the
slot is full, computes the result once, and releases everyone.  Reductions
combine contributions in rank order so results are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.simmpi.comm import Comm
from repro.simmpi.ops import combine
from repro.util.errors import SimMPIError


@dataclass
class _Slot:
    name: str
    size: int
    arrived: Set[int] = field(default_factory=set)
    departed: Set[int] = field(default_factory=set)
    contributions: Dict[int, Any] = field(default_factory=dict)
    meta: Dict[int, Any] = field(default_factory=dict)
    result: Any = None
    computed: bool = False

    @property
    def full(self) -> bool:
        return len(self.arrived) == self.size


class CollectiveEngine:
    """Slot-matching engine shared by all ranks of a world."""

    def __init__(self) -> None:
        self._slots: Dict[Tuple[int, int], _Slot] = {}
        # (comm_id, world_rank) -> next slot index for that rank
        self._counters: Dict[Tuple[int, int], int] = {}

    def enter(self, comm: Comm, world_rank: int, name: str,
              contribution: Any = None, meta: Any = None) -> Tuple[int, _Slot]:
        """Join this rank's next collective slot on ``comm``.

        Returns ``(slot_index, slot)``; the caller must then block until
        ``slot.full`` and finally call :meth:`leave`.
        """
        key = (comm.comm_id, world_rank)
        index = self._counters.get(key, 0)
        self._counters[key] = index + 1
        slot_key = (comm.comm_id, index)
        slot = self._slots.get(slot_key)
        if slot is None:
            slot = _Slot(name=name, size=comm.size)
            self._slots[slot_key] = slot
        if slot.name != name:
            raise SimMPIError(
                f"collective mismatch on comm {comm.comm_id} slot {index}: "
                f"rank {world_rank} called {name} but slot is {slot.name}")
        if world_rank in slot.arrived:
            raise SimMPIError(
                f"rank {world_rank} double-arrived at comm {comm.comm_id} "
                f"slot {index}")
        slot.arrived.add(world_rank)
        slot.contributions[world_rank] = contribution
        slot.meta[world_rank] = meta
        return index, slot

    def leave(self, comm: Comm, index: int, slot: _Slot, world_rank: int) -> None:
        slot.departed.add(world_rank)
        if len(slot.departed) == slot.size:
            del self._slots[(comm.comm_id, index)]


# ----------------------------------------------------------------------
# result computation helpers (called once per slot, when full)
# ----------------------------------------------------------------------

def ordered_contributions(slot: _Slot, comm: Comm) -> List[Any]:
    """Contributions in communicator rank order."""
    return [slot.contributions[comm.world_of_rank(r)] for r in range(comm.size)]


def compute_bcast(slot: _Slot, comm: Comm, root_comm_rank: int) -> Any:
    return slot.contributions[comm.world_of_rank(root_comm_rank)]


def compute_reduce(slot: _Slot, comm: Comm, op: str) -> np.ndarray:
    parts = ordered_contributions(slot, comm)
    acc = np.array(parts[0], copy=True)
    for part in parts[1:]:
        acc = combine(op, acc, np.asarray(part))
    return acc


def compute_scan(slot: _Slot, comm: Comm, op: str) -> List[np.ndarray]:
    """Inclusive prefix reduction: result[i] = parts[0] op ... op parts[i]."""
    parts = ordered_contributions(slot, comm)
    out: List[np.ndarray] = []
    acc: Optional[np.ndarray] = None
    for part in parts:
        acc = np.array(part, copy=True) if acc is None else combine(
            op, acc, np.asarray(part))
        out.append(np.array(acc, copy=True))
    return out


def compute_exscan(slot: _Slot, comm: Comm, op: str
                   ) -> List[Optional[np.ndarray]]:
    """Exclusive prefix reduction: result[0] undefined (None),
    result[i] = parts[0] op ... op parts[i-1]."""
    inclusive = compute_scan(slot, comm, op)
    return [None] + inclusive[:-1]


def compute_reduce_scatter(slot: _Slot, comm: Comm, op: str,
                           counts: List[int]) -> List[np.ndarray]:
    """Reduce element-wise, then scatter contiguous chunks of ``counts``
    elements to the members in rank order."""
    total = compute_reduce(slot, comm, op)
    out: List[np.ndarray] = []
    cursor = 0
    for count in counts:
        out.append(np.array(total[cursor:cursor + count], copy=True))
        cursor += count
    return out


def compute_gather(slot: _Slot, comm: Comm) -> List[Any]:
    return ordered_contributions(slot, comm)


def compute_alltoall(slot: _Slot, comm: Comm) -> List[List[Any]]:
    """result[dst][src] = chunk sent by src to dst (comm-rank indices)."""
    parts = ordered_contributions(slot, comm)  # parts[src] = list of chunks by dst
    return [[parts[src][dst] for src in range(comm.size)]
            for dst in range(comm.size)]
