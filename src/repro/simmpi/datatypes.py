"""MPI datatypes and their data-map lowering.

DN-Analyzer represents every datatype as a *data-map*: a list of
``(displacement, length)`` byte segments plus an extent (section IV-C-1c of
the paper).  The simulator uses exactly that representation natively, so
the trace-side reconstruction in :mod:`repro.core.preprocess` can be
validated against the runtime's own lowering.

Supported constructors mirror MPI-2.2: ``Type_contiguous``,
``Type_vector``, ``Type_indexed``, ``Type_create_struct`` (the paper's
``MPI_Type_struct``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.util.errors import SimMPIError
from repro.util.intervals import IntervalSet, datamap_intervals

DataMap = Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class Datatype:
    """An MPI datatype lowered to its byte-level data-map.

    Attributes
    ----------
    name:
        ``"INT"`` etc. for primitives; a constructor expression string for
        derived types (diagnostics only).
    datamap:
        ``((displacement, length), ...)`` segments of one instance.
    extent:
        Stride between consecutive instances in a ``count > 1`` access.
    base:
        The primitive element type underlying every segment, when unique
        (needed for the accumulate same-basic-datatype exception and for
        arithmetic); ``None`` for heterogeneous structs.
    type_id:
        Trace identifier.  Negative ids are reserved for primitives and are
        globally fixed; derived types get nonnegative per-rank ids.
    """

    name: str
    datamap: DataMap
    extent: int
    base: Optional[str]
    type_id: int

    @property
    def size(self) -> int:
        """Number of bytes actually transferred per instance."""
        return sum(length for _, length in self.datamap)

    @property
    def is_primitive(self) -> bool:
        return self.type_id < 0

    @property
    def is_contiguous(self) -> bool:
        return self.datamap == ((0, self.size),) and self.extent == self.size

    def intervals(self, base_addr: int, count: int) -> IntervalSet:
        """Byte intervals touched by ``count`` instances at ``base_addr``."""
        return datamap_intervals(base_addr, self.datamap, count, self.extent)

    def numpy_dtype(self) -> np.dtype:
        if self.base is None:
            raise SimMPIError(
                f"datatype {self.name} has no unique primitive base")
        return np.dtype(_PRIMITIVES[self.base][1])


# name -> (size, numpy dtype, fixed negative id)
_PRIMITIVES: Dict[str, Tuple[int, str, int]] = {
    "BYTE": (1, "u1", -1),
    "CHAR": (1, "i1", -2),
    "SHORT": (2, "i2", -3),
    "INT": (4, "i4", -4),
    "LONG": (8, "i8", -5),
    "FLOAT": (4, "f4", -6),
    "DOUBLE": (8, "f8", -7),
}


def _make_primitive(name: str) -> Datatype:
    size, _np, tid = _PRIMITIVES[name]
    return Datatype(name=name, datamap=((0, size),), extent=size,
                    base=name, type_id=tid)


BYTE = _make_primitive("BYTE")
CHAR = _make_primitive("CHAR")
SHORT = _make_primitive("SHORT")
INT = _make_primitive("INT")
LONG = _make_primitive("LONG")
FLOAT = _make_primitive("FLOAT")
DOUBLE = _make_primitive("DOUBLE")

PRIMITIVES: Dict[str, Datatype] = {
    t.name: t for t in (BYTE, CHAR, SHORT, INT, LONG, FLOAT, DOUBLE)
}

PRIMITIVES_BY_ID: Dict[int, Datatype] = {t.type_id: t for t in PRIMITIVES.values()}


def primitive_for_numpy(np_dtype) -> Datatype:
    """Map a numpy element dtype to the matching MPI primitive."""
    dt = np.dtype(np_dtype)
    for name, (size, npname, _tid) in _PRIMITIVES.items():
        if np.dtype(npname) == dt:
            return PRIMITIVES[name]
    raise SimMPIError(f"no MPI primitive for numpy dtype {dt}")


def _merge_segments(segments: Sequence[Tuple[int, int]]) -> DataMap:
    """Sort and coalesce adjacent/overlapping ``(disp, len)`` segments."""
    segs = sorted((d, n) for d, n in segments if n > 0)
    out = []
    for disp, length in segs:
        if out and disp <= out[-1][0] + out[-1][1]:
            prev_d, prev_n = out[-1]
            out[-1] = (prev_d, max(prev_n, disp + length - prev_d))
        else:
            out.append((disp, length))
    return tuple(out)


class DatatypeFactory:
    """Per-rank derived-datatype constructor assigning trace ids.

    MPI datatype creation is a local operation; each rank numbers its own
    derived types, and DN-Analyzer rebuilds each rank's registry from that
    rank's trace.
    """

    def __init__(self) -> None:
        self._next_id = 0

    def _fresh_id(self) -> int:
        tid = self._next_id
        self._next_id += 1
        return tid

    def contiguous(self, count: int, old: Datatype) -> Datatype:
        if count < 0:
            raise SimMPIError(f"Type_contiguous: negative count {count}")
        segs = [(rep * old.extent + d, n)
                for rep in range(count) for d, n in old.datamap]
        return Datatype(
            name=f"contig({count},{old.name})",
            datamap=_merge_segments(segs),
            extent=count * old.extent,
            base=old.base,
            type_id=self._fresh_id(),
        )

    def vector(self, count: int, blocklength: int, stride: int,
               old: Datatype) -> Datatype:
        """``count`` blocks of ``blocklength`` elements, ``stride`` elements apart."""
        if count < 0 or blocklength < 0:
            raise SimMPIError("Type_vector: negative count/blocklength")
        segs = []
        for blk in range(count):
            blk_origin = blk * stride * old.extent
            for rep in range(blocklength):
                for d, n in old.datamap:
                    segs.append((blk_origin + rep * old.extent + d, n))
        extent = ((count - 1) * stride + blocklength) * old.extent if count else 0
        return Datatype(
            name=f"vector({count},{blocklength},{stride},{old.name})",
            datamap=_merge_segments(segs),
            extent=max(extent, 0),
            base=old.base,
            type_id=self._fresh_id(),
        )

    def indexed(self, blocklengths: Sequence[int], displacements: Sequence[int],
                old: Datatype) -> Datatype:
        """Blocks of varying length at varying element displacements."""
        if len(blocklengths) != len(displacements):
            raise SimMPIError("Type_indexed: length mismatch")
        segs = []
        max_end = 0
        for blen, disp in zip(blocklengths, displacements):
            origin = disp * old.extent
            for rep in range(blen):
                for d, n in old.datamap:
                    segs.append((origin + rep * old.extent + d, n))
            max_end = max(max_end, origin + blen * old.extent)
        return Datatype(
            name=f"indexed({list(blocklengths)},{list(displacements)},{old.name})",
            datamap=_merge_segments(segs),
            extent=max_end,
            base=old.base,
            type_id=self._fresh_id(),
        )

    def struct(self, blocklengths: Sequence[int], displacements: Sequence[int],
               types: Sequence[Datatype]) -> Datatype:
        """Heterogeneous struct with byte displacements (MPI_Type_struct)."""
        if not (len(blocklengths) == len(displacements) == len(types)):
            raise SimMPIError("Type_struct: length mismatch")
        segs = []
        max_end = 0
        bases = set()
        for blen, disp, typ in zip(blocklengths, displacements, types):
            bases.add(typ.base)
            for rep in range(blen):
                for d, n in typ.datamap:
                    segs.append((disp + rep * typ.extent + d, n))
            max_end = max(max_end, disp + blen * typ.extent)
        base = bases.pop() if len(bases) == 1 else None
        return Datatype(
            name=f"struct({len(types)} members)",
            datamap=_merge_segments(segs),
            extent=max_end,
            base=base,
            type_id=self._fresh_id(),
        )
