"""The simulated MPI world and the per-rank API context.

:class:`World` owns the scheduler, message router, collective engine,
communicator/window registries, and the RMA delivery engine.
:class:`MPIContext` is the handle an application rank programs against —
its surface intentionally mirrors the MPI-2.2 subset the paper analyzes
(mpi4py-flavoured naming, world-rank orientation).

Applications are plain callables ``app(mpi: MPIContext, **params)``; run
them with :func:`run_app` (or :class:`World` directly for more control)::

    def main(mpi):
        buf = mpi.alloc("buf", 8, datatype=INT)
        win = mpi.win_create(buf)
        win.fence()
        if mpi.rank == 0:
            win.put(buf, target=1)
        win.fence()
        win.free()

    run_app(main, nranks=2)

Profiling hooks: a :class:`EventHook` registered on the world observes
every MPI call (``on_call``) and every instrumented load/store
(``on_mem``).  With no hooks registered the hot paths reduce to a single
``None``-check, which is what makes the "without Profiler" arm of the
Figure-8 overhead experiment meaningful.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.simmpi import collectives as coll
from repro.simmpi.collectives import CollectiveEngine
from repro.simmpi.comm import Comm, WORLD_COMM_ID
from repro.simmpi.datatypes import (
    DOUBLE, Datatype, DatatypeFactory, PRIMITIVES, primitive_for_numpy,
)
from repro.simmpi.group import Group
from repro.simmpi.memory import AddressSpace, TrackedBuffer
from repro.simmpi.ops import REDUCE_OPS
from repro.simmpi.p2p import (
    ANY_SOURCE, ANY_TAG, Message, MessageRouter, Request, Status,
)
from repro.simmpi.rma import DeliveryEngine, gather_typed, scatter_typed
from repro.simmpi.scheduler import Scheduler
from repro.simmpi.window import WinHandle, Window
from repro.util.errors import SimMPIError


class EventHook:
    """Observer interface for profiling (the PMPI-interposition analogue)."""

    def on_call(self, rank: int, fn: str, args: Dict[str, Any]) -> None:
        """An MPI call by ``rank``; ``args`` are trace-ready scalars."""

    def on_mem(self, rank: int, kind: str, buf: TrackedBuffer, addr: int,
               size: int) -> None:
        """An instrumented load/store by ``rank``."""

    def on_mem_block(self, rank: int, kind: str, buf: TrackedBuffer,
                     addr: int, size: int, count: int, stride: int) -> None:
        """``count`` instrumented accesses of ``size`` bytes by ``rank``,
        access *i* at ``addr + i * stride`` (``stride`` 0: the same bytes
        ``count`` times).  The default decomposes into per-access
        :meth:`on_mem` calls, so hooks that never opt into columnar
        handling observe the exact scalar event stream — which also makes
        this decomposition the reference lane for differential tests."""
        on_mem = self.on_mem
        for i in range(count):
            on_mem(rank, kind, buf, addr + i * stride, size)

    def on_alloc(self, rank: int, buf: TrackedBuffer) -> None:
        """A buffer allocation by ``rank`` (instrumentation decisions)."""

    def on_win_buffer(self, rank: int, buf: TrackedBuffer) -> None:
        """``buf`` was exposed in a window by ``rank``.  Window buffers are
        relevant by definition (the seed set of ST-Analyzer's analysis),
        so profilers instrument them even when static analysis could not
        see the allocation site (e.g. a library allocating on the
        application's behalf)."""


class World:
    """One simulated MPI job: ``nranks`` ranks plus shared runtime state."""

    def __init__(self, nranks: int, sched_policy: str = "round_robin",
                 seed: int = 0, delivery: str = "random",
                 max_steps: int = 50_000_000,
                 collect_stats: Optional[bool] = None):
        from repro import obs

        self.nranks = nranks
        # Stats feed publish_obs only, so by default they are collected
        # exactly when observability is on; with it off the hot paths
        # skip the per-call dict/counter work (and the f-string keys).
        self.collect_stats = (obs.is_enabled() if collect_stats is None
                              else bool(collect_stats))
        self.scheduler = Scheduler(nranks, policy=sched_policy, seed=seed,
                                   max_steps=max_steps)
        self.router = MessageRouter(nranks)
        self.collectives = CollectiveEngine()
        self.delivery = DeliveryEngine(policy=delivery, seed=seed + 1)
        self.world_comm = Comm(WORLD_COMM_ID, Group(range(nranks)))
        self.comms: Dict[int, Comm] = {WORLD_COMM_ID: self.world_comm}
        self.windows: Dict[int, Window] = {}
        self._next_comm_id = WORLD_COMM_ID + 1
        self._next_win_id = 0
        self.hooks: List[EventHook] = []
        self.stats: Dict[str, int] = {}
        self._obs_published: Dict[str, int] = {}
        self.contexts: List["MPIContext"] = [
            MPIContext(self, rank) for rank in range(nranks)
        ]

    # -- registries (must be called while holding the token) -----------

    def fresh_comm_id(self) -> int:
        cid = self._next_comm_id
        self._next_comm_id += 1
        return cid

    def fresh_win_id(self) -> int:
        wid = self._next_win_id
        self._next_win_id += 1
        return wid

    def bump_stat(self, key: str, n: int = 1) -> None:
        self.stats[key] = self.stats.get(key, 0) + n

    def publish_obs(self) -> None:
        """Publish one run's scheduler/runtime totals to ``repro.obs``.

        Deliberately a post-run summary rather than per-event metric
        calls: the simulator's hot paths stay untouched, so the
        "without Profiler" arm of the Figure-8 experiment is not
        polluted.  No-op (and re-invocable) when observability is off.
        """
        from repro import obs
        from repro.profiler.events import RMA_COMM_CALLS

        rec = obs.get_recorder()
        if not rec.enabled:
            return
        sched = self.scheduler
        rec.gauge("simmpi_context_switches", sched.switches,
                  help="Scheduler yield points taken during the run")
        rec.gauge("simmpi_token_grants", sched.token_grants,
                  help="Token grants issued by the scheduler")
        token_times = sched.token_seconds()
        if token_times is not None:
            for rank, seconds in enumerate(token_times):
                rec.gauge("simmpi_rank_run_seconds", seconds,
                          help="Per-rank token-hold (execution) seconds",
                          rank=rank)
        for key in sorted(self.stats):
            # counters must only grow: publish the delta since the last
            # publish so repeated calls on one world stay correct
            n = self.stats[key] - self._obs_published.get(key, 0)
            self._obs_published[key] = self.stats[key]
            if n == 0:
                continue
            if key.startswith("call:"):
                fn = key[len("call:"):]
                rec.count("simmpi_calls_total", n, fn=fn,
                          help="MPI calls executed, by function")
                if fn in RMA_COMM_CALLS:
                    rec.count("simmpi_rma_ops_total", n, kind=fn,
                              help="One-sided communication ops, by kind")
            elif key.startswith("mem:"):
                rec.count("simmpi_mem_accesses_total", n,
                          kind=key[len("mem:"):],
                          help="Instrumented load/store accesses")

    def run(self, app: Callable, params: Optional[Dict[str, Any]] = None
            ) -> List[Any]:
        """Execute ``app(mpi, **params)`` on every rank; return per-rank results."""
        params = params or {}
        results: List[Any] = [None] * self.nranks

        def body_for(rank: int) -> Callable[[], None]:
            def body() -> None:
                results[rank] = app(self.contexts[rank], **params)
            return body

        self.scheduler.start([body_for(r) for r in range(self.nranks)])
        return results


def run_app(app: Callable, nranks: int, params: Optional[Dict[str, Any]] = None,
            sched_policy: str = "round_robin", seed: int = 0,
            delivery: str = "random",
            hooks: Optional[Sequence[EventHook]] = None,
            collect_stats: Optional[bool] = None) -> List[Any]:
    """Convenience wrapper: build a world, run the app, return rank results."""
    world = World(nranks, sched_policy=sched_policy, seed=seed,
                  delivery=delivery, collect_stats=collect_stats)
    if hooks:
        world.hooks.extend(hooks)
    return world.run(app, params)


class MPIContext:
    """Per-rank MPI API facade handed to application code."""

    def __init__(self, world: World, rank: int):
        self.world = world
        self.rank = rank
        self.size = world.nranks
        self.space = AddressSpace(rank)
        self.types = DatatypeFactory()
        self._type_registry: Dict[int, Datatype] = dict(
            (t.type_id, t) for t in PRIMITIVES.values())
        self._next_req_id = 0
        self._buffers: List[TrackedBuffer] = []

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    @property
    def comm_world(self) -> Comm:
        return self.world.world_comm

    def _resolve_comm(self, comm: Optional[Comm]) -> Comm:
        return comm if comm is not None else self.world.world_comm

    def _yield_and_emit(self, fn: str, args: Dict[str, Any]) -> None:
        """One yield point + one call event; every MPI call funnels here."""
        world = self.world
        if world.collect_stats:
            world.bump_stat(f"call:{fn}")
        for hook in world.hooks:
            hook.on_call(self.rank, fn, args)
        world.scheduler.yield_point(self.rank)

    def _mem_hook(self, kind: str, buf: TrackedBuffer, addr: int,
                  size: int) -> None:
        world = self.world
        if world.collect_stats:
            world.bump_stat(f"mem:{kind}")
        for hook in world.hooks:
            hook.on_mem(self.rank, kind, buf, addr, size)

    def _mem_block_hook(self, kind: str, buf: TrackedBuffer, addr: int,
                        size: int, count: int, stride: int) -> None:
        world = self.world
        if world.collect_stats:
            world.bump_stat(f"mem:{kind}", count)
        for hook in world.hooks:
            hook.on_mem_block(self.rank, kind, buf, addr, size, count, stride)

    def _collective_barrier(self, comm: Comm, name: str,
                            contribution: Any = None, meta: Any = None):
        """Internal matched-slot barrier; no event of its own."""
        index, slot = self.world.collectives.enter(
            comm, self.rank, name, contribution, meta)
        self.world.scheduler.register_progress()
        self.world.scheduler.wait_until(
            self.rank, lambda: slot.full, f"{name} on comm {comm.comm_id}")
        return index, slot

    def register_type(self, dtype: Datatype) -> Datatype:
        self._type_registry[dtype.type_id] = dtype
        return dtype

    def type_by_id(self, type_id: int) -> Datatype:
        return self._type_registry[type_id]

    def primitive_of(self, buf: TrackedBuffer) -> Datatype:
        return primitive_for_numpy(buf.array.dtype)

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------

    def alloc(self, name: str, count: int,
              datatype: Union[Datatype, str, np.dtype] = DOUBLE,
              fill: Optional[float] = 0) -> TrackedBuffer:
        """Allocate a named, trackable application buffer."""
        if isinstance(datatype, Datatype):
            np_dtype = datatype.numpy_dtype()
        elif isinstance(datatype, str) and datatype in PRIMITIVES:
            np_dtype = PRIMITIVES[datatype].numpy_dtype()
        else:
            np_dtype = np.dtype(datatype)
        buf = TrackedBuffer(self.space, name, count, np_dtype, fill=fill)
        buf.set_hook(self._mem_hook)
        buf.set_block_hook(self._mem_block_hook)
        self._buffers.append(buf)
        if self.world.collect_stats:
            self.world.bump_stat("alloc")
        for hook in self.world.hooks:
            hook.on_alloc(self.rank, buf)
        return buf

    @property
    def buffers(self) -> Tuple[TrackedBuffer, ...]:
        return tuple(self._buffers)

    # ------------------------------------------------------------------
    # basic support calls
    # ------------------------------------------------------------------

    def comm_rank(self, comm: Optional[Comm] = None) -> int:
        comm = self._resolve_comm(comm)
        self._yield_and_emit("Comm_rank", {"comm": comm.comm_id})
        return comm.rank_of_world(self.rank)

    def comm_size(self, comm: Optional[Comm] = None) -> int:
        comm = self._resolve_comm(comm)
        self._yield_and_emit("Comm_size", {"comm": comm.comm_id})
        return comm.size

    def wtime(self) -> float:
        return time.perf_counter()

    # ------------------------------------------------------------------
    # communicator / group management
    # ------------------------------------------------------------------

    def comm_group(self, comm: Optional[Comm] = None) -> Group:
        comm = self._resolve_comm(comm)
        self._yield_and_emit("Comm_group", {"comm": comm.comm_id})
        return comm.group

    def group_incl(self, group: Group, ranks: Sequence[int]) -> Group:
        self._yield_and_emit("Group_incl", {
            "parent": list(group.world_ranks), "ranks": list(ranks)})
        return group.incl(ranks)

    def group_excl(self, group: Group, ranks: Sequence[int]) -> Group:
        self._yield_and_emit("Group_excl", {
            "parent": list(group.world_ranks), "ranks": list(ranks)})
        return group.excl(ranks)

    def comm_dup(self, comm: Optional[Comm] = None) -> Comm:
        comm = self._resolve_comm(comm)
        index, slot = self._collective_barrier(comm, f"Comm_dup:{comm.comm_id}")
        if not slot.computed:
            slot.computed = True
            slot.result = Comm(self.world.fresh_comm_id(), comm.group)
            self.world.comms[slot.result.comm_id] = slot.result
        new_comm = slot.result
        self.world.collectives.leave(comm, index, slot, self.rank)
        # logged at return so the output handle (newcomm) is known, as a
        # PMPI wrapper would do
        self._yield_and_emit("Comm_dup", {
            "comm": comm.comm_id, "newcomm": new_comm.comm_id})
        return new_comm

    def comm_split(self, color: int, key: int = 0,
                   comm: Optional[Comm] = None) -> Optional[Comm]:
        """MPI_Comm_split; ``color < 0`` (undefined) yields no communicator."""
        comm = self._resolve_comm(comm)
        index, slot = self._collective_barrier(
            comm, f"Comm_split:{comm.comm_id}", contribution=(color, key))
        if not slot.computed:
            slot.computed = True
            by_color: Dict[int, List[Tuple[int, int, int]]] = {}
            for comm_rank in range(comm.size):
                world_rank = comm.world_of_rank(comm_rank)
                c, k = slot.contributions[world_rank]
                if c >= 0:
                    by_color.setdefault(c, []).append((k, comm_rank, world_rank))
            result: Dict[int, Comm] = {}
            for c in sorted(by_color):
                members = [w for _k, _cr, w in sorted(by_color[c])]
                new_comm = Comm(self.world.fresh_comm_id(), Group(members))
                self.world.comms[new_comm.comm_id] = new_comm
                for w in members:
                    result[w] = new_comm
            slot.result = result
        new_comm = slot.result.get(self.rank)
        self.world.collectives.leave(comm, index, slot, self.rank)
        self._yield_and_emit("Comm_split", {
            "comm": comm.comm_id, "color": color, "key": key,
            "newcomm": new_comm.comm_id if new_comm is not None else -1})
        return new_comm

    def comm_create(self, group: Group, comm: Optional[Comm] = None
                    ) -> Optional[Comm]:
        comm = self._resolve_comm(comm)
        index, slot = self._collective_barrier(
            comm, f"Comm_create:{comm.comm_id}", contribution=group.world_ranks)
        if not slot.computed:
            slot.computed = True
            new_comm = Comm(self.world.fresh_comm_id(), group)
            self.world.comms[new_comm.comm_id] = new_comm
            slot.result = new_comm
        new_comm = slot.result
        self.world.collectives.leave(comm, index, slot, self.rank)
        member = self.rank in group
        self._yield_and_emit("Comm_create", {
            "comm": comm.comm_id, "group": list(group.world_ranks),
            "newcomm": new_comm.comm_id if member else -1})
        return new_comm if member else None

    # ------------------------------------------------------------------
    # datatypes
    # ------------------------------------------------------------------

    def type_contiguous(self, count: int, old: Datatype) -> Datatype:
        self._yield_and_emit("Type_contiguous", {
            "count": count, "oldtype": old.type_id})
        return self.register_type(self.types.contiguous(count, old))

    def type_vector(self, count: int, blocklength: int, stride: int,
                    old: Datatype) -> Datatype:
        self._yield_and_emit("Type_vector", {
            "count": count, "blocklength": blocklength, "stride": stride,
            "oldtype": old.type_id})
        return self.register_type(
            self.types.vector(count, blocklength, stride, old))

    def type_indexed(self, blocklengths: Sequence[int],
                     displacements: Sequence[int], old: Datatype) -> Datatype:
        self._yield_and_emit("Type_indexed", {
            "blocklengths": list(blocklengths),
            "displacements": list(displacements), "oldtype": old.type_id})
        return self.register_type(
            self.types.indexed(blocklengths, displacements, old))

    def type_struct(self, blocklengths: Sequence[int],
                    displacements: Sequence[int],
                    dtypes: Sequence[Datatype]) -> Datatype:
        self._yield_and_emit("Type_struct", {
            "blocklengths": list(blocklengths),
            "displacements": list(displacements),
            "oldtypes": [t.type_id for t in dtypes]})
        return self.register_type(
            self.types.struct(blocklengths, displacements, dtypes))

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------

    def _pack_send(self, buf, offset: int, count: Optional[int],
                   datatype: Optional[Datatype]):
        """Returns (payload, elem_count, trace-args-fragment)."""
        if isinstance(buf, TrackedBuffer):
            dtype = datatype or self.primitive_of(buf)
            count = buf.count - offset if count is None else count
            payload = gather_typed(buf, offset * buf.itemsize, dtype, count)
            frag = {"base": buf.base, "offset": offset * buf.itemsize,
                    "count": count, "dtype": dtype.type_id, "var": buf.name}
            return payload, count, frag
        return buf, 0, {"count": 0}

    def _unpack_recv(self, msg: Message, buf, offset: int,
                     count: Optional[int], datatype: Optional[Datatype]):
        if isinstance(buf, TrackedBuffer):
            dtype = datatype or self.primitive_of(buf)
            scatter_typed(buf, offset * buf.itemsize, dtype,
                          msg.elem_count if count is None else count,
                          msg.payload)
            return None
        return msg.payload

    def send(self, buf, dest: int, tag: int = 0, comm: Optional[Comm] = None,
             offset: int = 0, count: Optional[int] = None,
             datatype: Optional[Datatype] = None) -> None:
        """Blocking (buffered) standard send."""
        comm = self._resolve_comm(comm)
        payload, elem_count, frag = self._pack_send(buf, offset, count, datatype)
        args = {"dest": dest, "tag": tag, "comm": comm.comm_id, **frag}
        self._yield_and_emit("Send", args)
        self.world.router.post(Message(
            src_world=self.rank, dst_world=comm.world_of_rank(dest),
            comm_id=comm.comm_id, tag=tag, payload=payload,
            elem_count=elem_count))
        self.world.scheduler.register_progress()

    def recv(self, buf=None, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             comm: Optional[Comm] = None, offset: int = 0,
             count: Optional[int] = None,
             datatype: Optional[Datatype] = None):
        """Blocking receive; returns ``(payload_or_None, Status)``."""
        comm = self._resolve_comm(comm)
        src_world = (comm.world_of_rank(source)
                     if source != ANY_SOURCE else ANY_SOURCE)
        self.world.scheduler.yield_point(self.rank)
        router = self.world.router
        self.world.scheduler.wait_until(
            self.rank,
            lambda: router.find(self.rank, comm.comm_id, src_world, tag)
            is not None,
            f"Recv source={source} tag={tag} comm={comm.comm_id}")
        msg = router.find(self.rank, comm.comm_id, src_world, tag)
        assert msg is not None
        router.take(self.rank, msg)
        self.world.scheduler.register_progress()
        payload = self._unpack_recv(msg, buf, offset, count, datatype)
        status = Status(source=comm.rank_of_world(msg.src_world), tag=msg.tag,
                        count=msg.elem_count)
        args = {"source": status.source, "tag": msg.tag, "comm": comm.comm_id,
                "req_source": source, "req_tag": tag}
        if isinstance(buf, TrackedBuffer):
            dtype = datatype or self.primitive_of(buf)
            n = msg.elem_count if count is None else count
            args.update({"base": buf.base, "offset": offset * buf.itemsize,
                         "count": n, "dtype": dtype.type_id, "var": buf.name})
        if self.world.collect_stats:
            self.world.bump_stat("call:Recv")
        for hook in self.world.hooks:
            hook.on_call(self.rank, "Recv", args)
        return payload, status

    def sendrecv(self, sendbuf, dest: int, recvbuf=None,
                 source: int = ANY_SOURCE, sendtag: int = 0,
                 recvtag: int = ANY_TAG, comm: Optional[Comm] = None):
        """Combined send+recv (deadlock-free by construction here,
        since sends are buffered)."""
        self.send(sendbuf, dest, tag=sendtag, comm=comm)
        return self.recv(recvbuf, source=source, tag=recvtag, comm=comm)

    def isend(self, buf, dest: int, tag: int = 0,
              comm: Optional[Comm] = None, offset: int = 0,
              count: Optional[int] = None,
              datatype: Optional[Datatype] = None) -> Request:
        """Nonblocking send (buffered: complete at issue)."""
        comm = self._resolve_comm(comm)
        payload, elem_count, frag = self._pack_send(buf, offset, count, datatype)
        req_id = self._next_req_id
        self._next_req_id += 1
        args = {"dest": dest, "tag": tag, "comm": comm.comm_id,
                "req": req_id, **frag}
        self._yield_and_emit("Isend", args)
        self.world.router.post(Message(
            src_world=self.rank, dst_world=comm.world_of_rank(dest),
            comm_id=comm.comm_id, tag=tag, payload=payload,
            elem_count=elem_count))
        self.world.scheduler.register_progress()
        return Request(kind="isend", rank=self.rank, complete=True)

    def irecv(self, buf=None, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              comm: Optional[Comm] = None, offset: int = 0,
              count: Optional[int] = None,
              datatype: Optional[Datatype] = None) -> Request:
        """Nonblocking receive; completion happens in :meth:`wait`."""
        comm = self._resolve_comm(comm)
        req_id = self._next_req_id
        self._next_req_id += 1
        args: Dict[str, Any] = {"source": source, "tag": tag,
                                "comm": comm.comm_id, "req": req_id}
        if isinstance(buf, TrackedBuffer):
            args.update({"base": buf.base, "var": buf.name})
        self._yield_and_emit("Irecv", args)
        req = Request(kind="irecv", rank=self.rank)
        src_world = (comm.world_of_rank(source)
                     if source != ANY_SOURCE else ANY_SOURCE)
        req._match_spec = (comm.comm_id, src_world, tag)
        req._recv_into = buf
        req._recv_offset = offset
        req._recv_count = count
        req._recv_dtype = datatype
        req._payload = (comm, req_id)
        return req

    def wait(self, req) -> Optional[Status]:
        """Complete a nonblocking operation (MPI_Wait)."""
        if hasattr(req, "req_id") and hasattr(req, "_op"):
            req.wait()  # an RMARequest (Rput/Rget/Raccumulate)
            return None
        if req.kind == "icoll":
            return self._wait_icoll(req)
        if req.kind == "isend":
            self._yield_and_emit("Wait", {"req_kind": "isend"})
            return None
        comm, req_id = req._payload
        if req.complete:
            self._yield_and_emit("Wait", {"req_kind": "irecv", "req": req_id})
            return req.status
        comm_id, src_world, tag = req._match_spec
        self.world.scheduler.yield_point(self.rank)
        router = self.world.router
        self.world.scheduler.wait_until(
            self.rank,
            lambda: router.find(self.rank, comm_id, src_world, tag) is not None,
            f"Wait(irecv) source={src_world} tag={tag} comm={comm_id}")
        msg = router.find(self.rank, comm_id, src_world, tag)
        assert msg is not None
        router.take(self.rank, msg)
        self.world.scheduler.register_progress()
        self._unpack_recv(msg, req._recv_into, req._recv_offset,
                          req._recv_count, req._recv_dtype)
        req.complete = True
        req.status = Status(source=comm.rank_of_world(msg.src_world),
                            tag=msg.tag, count=msg.elem_count)
        args = {"req_kind": "irecv", "req": req_id,
                "source": req.status.source, "tag": msg.tag, "comm": comm_id}
        buf = req._recv_into
        if isinstance(buf, TrackedBuffer):
            dtype = req._recv_dtype or self.primitive_of(buf)
            n = msg.elem_count if req._recv_count is None else req._recv_count
            args.update({"base": buf.base,
                         "offset": req._recv_offset * buf.itemsize,
                         "count": n, "dtype": dtype.type_id, "var": buf.name})
        if self.world.collect_stats:
            self.world.bump_stat("call:Wait")
        for hook in self.world.hooks:
            hook.on_call(self.rank, "Wait", args)
        return req.status

    def waitall(self, requests: Sequence[Request]) -> List[Optional[Status]]:
        return [self.wait(r) for r in requests]

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------

    def barrier(self, comm: Optional[Comm] = None) -> None:
        comm = self._resolve_comm(comm)
        self._yield_and_emit("Barrier", {"comm": comm.comm_id})
        index, slot = self._collective_barrier(comm, "Barrier")
        self.world.collectives.leave(comm, index, slot, self.rank)

    # ------------------------------------------------------------------
    # nonblocking collectives (MPI-3): initiation is nonblocking, the
    # synchronization effect lands at the completing MPI_Wait
    # ------------------------------------------------------------------

    def ibarrier(self, comm: Optional[Comm] = None) -> Request:
        """MPI_Ibarrier: nonblocking barrier; complete with :meth:`wait`."""
        comm = self._resolve_comm(comm)
        req_id = self._next_req_id
        self._next_req_id += 1
        self._yield_and_emit("Ibarrier", {"comm": comm.comm_id,
                                          "req": req_id})
        index, slot = self.world.collectives.enter(
            comm, self.rank, "Ibarrier")
        self.world.scheduler.register_progress()
        req = Request(kind="icoll", rank=self.rank)
        req._payload = ("Ibarrier", comm, index, slot, req_id, None, None)
        return req

    def ibcast(self, buf, root: int = 0, comm: Optional[Comm] = None,
               offset: int = 0, count: Optional[int] = None,
               datatype: Optional[Datatype] = None) -> Request:
        """MPI_Ibcast on a TrackedBuffer; data lands at :meth:`wait`."""
        comm = self._resolve_comm(comm)
        is_root = comm.rank_of_world(self.rank) == root
        args: Dict[str, Any] = {"root": root, "comm": comm.comm_id}
        contribution = None
        if isinstance(buf, TrackedBuffer):
            dtype = datatype or self.primitive_of(buf)
            count = buf.count - offset if count is None else count
            args.update({"base": buf.base, "offset": offset * buf.itemsize,
                         "count": count, "dtype": dtype.type_id,
                         "var": buf.name})
            if is_root:
                contribution = gather_typed(buf, offset * buf.itemsize,
                                            dtype, count)
        elif is_root:
            contribution = buf
        req_id = self._next_req_id
        self._next_req_id += 1
        args["req"] = req_id
        self._yield_and_emit("Ibcast", args)
        index, slot = self.world.collectives.enter(
            comm, self.rank, "Ibcast", contribution=contribution)
        self.world.scheduler.register_progress()
        req = Request(kind="icoll", rank=self.rank)
        req._payload = ("Ibcast", comm, index, slot, req_id,
                        (buf, offset, count, datatype), root)
        return req

    def _wait_icoll(self, req: Request):
        fn, comm, index, slot, req_id, recv_spec, root = req._payload
        if req.complete:
            self._yield_and_emit("Wait", {"req_kind": "icoll",
                                          "coll": fn, "req": req_id,
                                          "comm": comm.comm_id})
            return None
        self.world.scheduler.yield_point(self.rank)
        self.world.scheduler.wait_until(
            self.rank, lambda: slot.full,
            f"Wait({fn}) on comm {comm.comm_id}")
        if fn == "Ibcast":
            data = coll.compute_bcast(slot, comm, root)
            buf, offset, count, datatype = recv_spec
            if isinstance(buf, TrackedBuffer) and \
                    comm.rank_of_world(self.rank) != root:
                dtype = datatype or self.primitive_of(buf)
                scatter_typed(buf, offset * buf.itemsize, dtype, count,
                              data)
        self.world.collectives.leave(comm, index, slot, self.rank)
        req.complete = True
        # logged at completion, like a PMPI wrapper observing MPI_Wait
        if self.world.collect_stats:
            self.world.bump_stat("call:Wait")
        args = {"req_kind": "icoll", "coll": fn, "req": req_id,
                "comm": comm.comm_id}
        for hook in self.world.hooks:
            hook.on_call(self.rank, "Wait", args)
        return None

    def bcast(self, buf, root: int = 0, comm: Optional[Comm] = None,
              offset: int = 0, count: Optional[int] = None,
              datatype: Optional[Datatype] = None):
        """Broadcast; for TrackedBuffers data lands in-place, for plain
        objects the root's object is returned on every rank."""
        comm = self._resolve_comm(comm)
        is_root = comm.rank_of_world(self.rank) == root
        args: Dict[str, Any] = {"root": root, "comm": comm.comm_id}
        contribution = None
        if isinstance(buf, TrackedBuffer):
            dtype = datatype or self.primitive_of(buf)
            count = buf.count - offset if count is None else count
            args.update({"base": buf.base, "offset": offset * buf.itemsize,
                         "count": count, "dtype": dtype.type_id,
                         "var": buf.name})
            if is_root:
                contribution = gather_typed(buf, offset * buf.itemsize,
                                            dtype, count)
        elif is_root:
            contribution = buf
        self._yield_and_emit("Bcast", args)
        index, slot = self._collective_barrier(comm, "Bcast",
                                               contribution=contribution)
        data = coll.compute_bcast(slot, comm, root)
        self.world.collectives.leave(comm, index, slot, self.rank)
        if isinstance(buf, TrackedBuffer):
            if not is_root:
                dtype = datatype or self.primitive_of(buf)
                scatter_typed(buf, offset * buf.itemsize, dtype, count, data)
            return None
        return data

    def _reduce_like(self, fn: str, sendbuf, op: str,
                     comm: Comm, root: Optional[int], extra_args: Dict) -> Any:
        if op not in REDUCE_OPS:
            raise SimMPIError(f"{fn}: invalid reduction op {op!r}")
        if isinstance(sendbuf, TrackedBuffer):
            contribution = sendbuf.raw_elements().copy()
            extra_args.update({"base": sendbuf.base, "offset": 0,
                               "count": sendbuf.count,
                               "dtype": self.primitive_of(sendbuf).type_id,
                               "var": sendbuf.name})
        else:
            contribution = np.asarray(sendbuf)
        self._yield_and_emit(fn, extra_args)
        index, slot = self._collective_barrier(comm, fn,
                                               contribution=contribution)
        if fn == "Scan":
            results = coll.compute_scan(slot, comm, op)
            result = results[comm.rank_of_world(self.rank)]
        else:
            result = coll.compute_reduce(slot, comm, op)
        self.world.collectives.leave(comm, index, slot, self.rank)
        return result

    def reduce(self, sendbuf, op: str = "SUM", root: int = 0,
               comm: Optional[Comm] = None, recvbuf=None):
        comm = self._resolve_comm(comm)
        result = self._reduce_like(
            "Reduce", sendbuf, op,
            comm, root, {"op": op, "root": root, "comm": comm.comm_id})
        if comm.rank_of_world(self.rank) != root:
            return None
        if isinstance(recvbuf, TrackedBuffer):
            recvbuf.raw_elements()[:result.size] = result
            return None
        return result

    def allreduce(self, sendbuf, op: str = "SUM",
                  comm: Optional[Comm] = None, recvbuf=None):
        comm = self._resolve_comm(comm)
        result = self._reduce_like(
            "Allreduce", sendbuf, op, comm, None,
            {"op": op, "comm": comm.comm_id})
        if isinstance(recvbuf, TrackedBuffer):
            recvbuf.raw_elements()[:result.size] = result
            return None
        return result

    def scan(self, sendbuf, op: str = "SUM", comm: Optional[Comm] = None):
        comm = self._resolve_comm(comm)
        return self._reduce_like("Scan", sendbuf, op, comm, None,
                                 {"op": op, "comm": comm.comm_id})

    def exscan(self, sendbuf, op: str = "SUM",
               comm: Optional[Comm] = None):
        """MPI_Exscan: exclusive prefix reduction (None at rank 0)."""
        comm = self._resolve_comm(comm)
        if op not in REDUCE_OPS:
            raise SimMPIError(f"Exscan: invalid reduction op {op!r}")
        contribution = (sendbuf.raw_elements().copy()
                        if isinstance(sendbuf, TrackedBuffer)
                        else np.asarray(sendbuf))
        self._yield_and_emit("Exscan", {"op": op, "comm": comm.comm_id})
        index, slot = self._collective_barrier(comm, "Exscan",
                                               contribution=contribution)
        results = coll.compute_exscan(slot, comm, op)
        mine = results[comm.rank_of_world(self.rank)]
        self.world.collectives.leave(comm, index, slot, self.rank)
        return mine

    def reduce_scatter(self, sendbuf, counts: Sequence[int],
                       op: str = "SUM", comm: Optional[Comm] = None):
        """MPI_Reduce_scatter: element-wise reduce, then scatter chunks of
        ``counts[i]`` elements to comm rank ``i``."""
        comm = self._resolve_comm(comm)
        if op not in REDUCE_OPS:
            raise SimMPIError(
                f"Reduce_scatter: invalid reduction op {op!r}")
        if len(counts) != comm.size:
            raise SimMPIError(
                f"Reduce_scatter: {len(counts)} counts for "
                f"{comm.size} ranks")
        contribution = (sendbuf.raw_elements().copy()
                        if isinstance(sendbuf, TrackedBuffer)
                        else np.asarray(sendbuf))
        if contribution.size != sum(counts):
            raise SimMPIError(
                f"Reduce_scatter: buffer of {contribution.size} elements "
                f"vs counts summing to {sum(counts)}")
        self._yield_and_emit("Reduce_scatter",
                             {"op": op, "comm": comm.comm_id,
                              "counts": list(counts)})
        index, slot = self._collective_barrier(comm, "Reduce_scatter",
                                               contribution=contribution)
        chunks = coll.compute_reduce_scatter(slot, comm, op, list(counts))
        mine = chunks[comm.rank_of_world(self.rank)]
        self.world.collectives.leave(comm, index, slot, self.rank)
        return mine

    def gatherv(self, sendobj, root: int = 0,
                comm: Optional[Comm] = None):
        """MPI_Gatherv-style: variable-size contributions; the root gets
        the list in comm rank order (object semantics, like gather)."""
        return self.gather(sendobj, root=root, comm=comm)

    def scatterv(self, sendchunks, root: int = 0,
                 comm: Optional[Comm] = None):
        """MPI_Scatterv-style: chunks may have different sizes."""
        return self.scatter(sendchunks, root=root, comm=comm)

    def gather(self, sendobj, root: int = 0, comm: Optional[Comm] = None):
        comm = self._resolve_comm(comm)
        contribution = (sendobj.raw_elements().copy()
                        if isinstance(sendobj, TrackedBuffer) else sendobj)
        self._yield_and_emit("Gather", {"root": root, "comm": comm.comm_id})
        index, slot = self._collective_barrier(comm, "Gather",
                                               contribution=contribution)
        parts = coll.compute_gather(slot, comm)
        self.world.collectives.leave(comm, index, slot, self.rank)
        return parts if comm.rank_of_world(self.rank) == root else None

    def allgather(self, sendobj, comm: Optional[Comm] = None):
        comm = self._resolve_comm(comm)
        contribution = (sendobj.raw_elements().copy()
                        if isinstance(sendobj, TrackedBuffer) else sendobj)
        self._yield_and_emit("Allgather", {"comm": comm.comm_id})
        index, slot = self._collective_barrier(comm, "Allgather",
                                               contribution=contribution)
        parts = coll.compute_gather(slot, comm)
        self.world.collectives.leave(comm, index, slot, self.rank)
        return parts

    def scatter(self, sendchunks, root: int = 0, comm: Optional[Comm] = None):
        """Root supplies a list of one chunk per comm rank."""
        comm = self._resolve_comm(comm)
        is_root = comm.rank_of_world(self.rank) == root
        self._yield_and_emit("Scatter", {"root": root, "comm": comm.comm_id})
        index, slot = self._collective_barrier(
            comm, "Scatter", contribution=sendchunks if is_root else None)
        chunks = coll.compute_bcast(slot, comm, root)
        mine = chunks[comm.rank_of_world(self.rank)]
        self.world.collectives.leave(comm, index, slot, self.rank)
        return mine

    def alltoall(self, sendchunks, comm: Optional[Comm] = None):
        """Each rank supplies one chunk per destination comm rank."""
        comm = self._resolve_comm(comm)
        self._yield_and_emit("Alltoall", {"comm": comm.comm_id})
        index, slot = self._collective_barrier(comm, "Alltoall",
                                               contribution=list(sendchunks))
        table = coll.compute_alltoall(slot, comm)
        mine = table[comm.rank_of_world(self.rank)]
        self.world.collectives.leave(comm, index, slot, self.rank)
        return mine

    # ------------------------------------------------------------------
    # RMA windows
    # ------------------------------------------------------------------

    def win_allocate(self, name: str, count: int,
                     datatype: Union[Datatype, str, np.dtype] = DOUBLE,
                     fill: Optional[float] = 0,
                     comm: Optional[Comm] = None) -> WinHandle:
        """MPI-3 MPI_Win_allocate: allocate memory and expose it in one
        collective call; the buffer is reachable via ``win.local_buffer``."""
        buf = self.alloc(name, count, datatype=datatype, fill=fill)
        return self.win_create(buf, comm=comm)

    def win_create(self, buf: Optional[TrackedBuffer],
                   disp_unit: Optional[int] = None,
                   comm: Optional[Comm] = None) -> WinHandle:
        """Collective window creation over ``comm`` (MPI_Win_create)."""
        comm = self._resolve_comm(comm)
        if comm.rank_of_world(self.rank) < 0:
            raise SimMPIError(
                f"rank {self.rank} is not a member of comm {comm.comm_id}")
        if disp_unit is None:
            disp_unit = buf.itemsize if buf is not None else 1
        args = {"comm": comm.comm_id, "disp_unit": disp_unit,
                "base": buf.base if buf is not None else 0,
                "size": buf.nbytes if buf is not None else 0}
        if buf is not None:
            args["var"] = buf.name
        index, slot = self._collective_barrier(
            comm, "Win_create", contribution=(buf, disp_unit))
        if not slot.computed:
            slot.computed = True
            window = Window(self.world.fresh_win_id(), comm)
            for comm_rank in range(comm.size):
                world_rank = comm.world_of_rank(comm_rank)
                member_buf, member_du = slot.contributions[world_rank]
                window.buffers[world_rank] = member_buf
                window.disp_units[world_rank] = member_du
            self.world.windows[window.win_id] = window
            slot.result = window
        window = slot.result
        self.world.collectives.leave(comm, index, slot, self.rank)
        args["win"] = window.win_id
        if buf is not None:
            for hook in self.world.hooks:
                hook.on_win_buffer(self.rank, buf)
        self._yield_and_emit("Win_create", args)
        return WinHandle(window, self)
