"""RMA windows: creation, epochs (fence / lock / PSCW), and one-sided calls.

A :class:`Window` is the collective object shared by all ranks of the
window's communicator (per-rank exposure buffers, lock table, PSCW state).
Each rank holds a :class:`WinHandle`, which carries that rank's epoch state
and pending (deferred) operations.

Epoch rules enforced (MPI-2.2):

* ``put``/``get``/``accumulate`` require an open epoch covering the target:
  an active fence epoch, a held lock on the target, or a PSCW access epoch
  whose group contains the target — otherwise :class:`RMAUsageError`.
* ``fence`` flushes all pending operations, then synchronizes the
  communicator (it is both a consistency and a synchronization point).
* ``unlock``/``complete`` flush the operations of the closing epoch.

The *memory consistency* rules (which concurrent combinations are legal)
are deliberately NOT enforced here — applications with consistency bugs
must run so MC-Checker can catch them.  The simulator only rejects
structurally invalid usage, the role the paper assigns to the MPI
implementation or Marmot (section V).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, TYPE_CHECKING

from repro.simmpi.comm import Comm
from repro.simmpi.datatypes import Datatype
from repro.simmpi.group import Group
from repro.simmpi.memory import TrackedBuffer
from repro.simmpi.rma import ACC, CAS, GET, GET_ACC, PUT, RMAOp, apply_rma
from repro.util.errors import RMAUsageError, SimMPIError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simmpi.runtime import MPIContext

LOCK_EXCLUSIVE = "exclusive"
LOCK_SHARED = "shared"


@dataclass
class _Exposure:
    """One PSCW exposure epoch at a target (post .. wait)."""

    origins: Set[int]
    completed: Set[int] = field(default_factory=set)
    started: Set[int] = field(default_factory=set)


class Window:
    """Shared (collective) window state across the communicator."""

    def __init__(self, win_id: int, comm: Comm):
        self.win_id = win_id
        self.comm = comm
        self.buffers: Dict[int, Optional[TrackedBuffer]] = {}
        self.disp_units: Dict[int, int] = {}
        # target world rank -> list of (origin world rank, lock type)
        self.lock_holders: Dict[int, List] = {}
        # target world rank -> active exposure epoch
        self.exposures: Dict[int, Optional[_Exposure]] = {}
        self.freed = False

    def buffer_of(self, world_rank: int) -> TrackedBuffer:
        buf = self.buffers.get(world_rank)
        if buf is None:
            raise RMAUsageError(
                f"window {self.win_id}: rank {world_rank} exposes no memory")
        return buf

    # -- lock table ----------------------------------------------------

    def lock_grantable(self, target: int, lock_type: str) -> bool:
        holders = self.lock_holders.get(target, [])
        if lock_type == LOCK_EXCLUSIVE:
            return not holders
        return all(t != LOCK_EXCLUSIVE for _, t in holders)

    def grant_lock(self, target: int, origin: int, lock_type: str) -> None:
        self.lock_holders.setdefault(target, []).append((origin, lock_type))

    def release_lock(self, target: int, origin: int) -> None:
        holders = self.lock_holders.get(target, [])
        for i, (o, _t) in enumerate(holders):
            if o == origin:
                del holders[i]
                return
        raise RMAUsageError(
            f"window {self.win_id}: rank {origin} unlocked target {target} "
            "without holding a lock")


class RMARequest:
    """Handle for a request-based RMA operation (MPI-3 Rput/Rget/Racc)."""

    def __init__(self, handle: "WinHandle", op: RMAOp, req_id: int):
        self._handle = handle
        self._op = op
        self.req_id = req_id
        self.complete = False

    def wait(self) -> None:
        """MPI_Wait on the request: the operation is complete afterwards
        (its buffers are safe to reuse / read)."""
        handle = self._handle
        handle.ctx._yield_and_emit(
            "Rma_wait", {"win": handle.win_id, "req": self.req_id,
                         "target": self._op.target_world})
        if not self.complete:
            handle._complete_request(self._op)
            self.complete = True

    def test(self) -> bool:
        """MPI_Test: nonblocking completion check (completes it here,
        since the simulator can always make progress)."""
        if not self.complete:
            self.wait()
        return True


class WinHandle:
    """Per-rank view of a window: epoch state plus deferred operations."""

    def __init__(self, window: Window, ctx: "MPIContext"):
        self.window = window
        self.ctx = ctx
        self.rank = ctx.rank  # world rank
        self.fence_epoch_open = False
        self.lock_epochs: Dict[int, str] = {}  # target -> lock type
        self.access_group: Optional[Group] = None  # PSCW start..complete
        self.exposure_posted = False
        self._pending: Dict[int, List[RMAOp]] = {}
        self._op_seq = 0

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------

    @property
    def win_id(self) -> int:
        return self.window.win_id

    @property
    def comm(self) -> Comm:
        return self.window.comm

    @property
    def local_buffer(self) -> Optional[TrackedBuffer]:
        return self.window.buffers.get(self.rank)

    def pending_ops(self, target: Optional[int] = None) -> List[RMAOp]:
        if target is None:
            return [op for ops in self._pending.values() for op in ops]
        return list(self._pending.get(target, ()))

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self.window.freed:
            raise RMAUsageError(f"window {self.win_id} already freed")

    def _epoch_covers(self, target: int) -> bool:
        if self.fence_epoch_open:
            return True
        if target in self.lock_epochs:
            return True
        if self.access_group is not None and target in self.access_group:
            return True
        return False

    def _target_world(self, target_comm_rank: int) -> int:
        world = self.comm.world_of_rank(target_comm_rank)
        return world

    def _flush(self, target: Optional[int] = None) -> None:
        """Apply all deferred operations (optionally to one target)."""
        targets = [target] if target is not None else sorted(self._pending)
        moved = False
        for t in targets:
            for op in self._pending.pop(t, ()):  # issue order preserved
                apply_rma(op, self.window.buffer_of(t),
                          self.window.disp_units[t])
                moved = True
        if moved:
            self.ctx.world.scheduler.register_progress()

    def _issue(self, kind: str, origin_buf: TrackedBuffer, origin_offset: int,
               origin_count: int, origin_dtype: Optional[Datatype],
               target: int, target_disp: int, target_count: Optional[int],
               target_dtype: Optional[Datatype], op: Optional[str],
               result_buf: Optional[TrackedBuffer] = None,
               result_offset: int = 0,
               compare_value: Optional[bytes] = None) -> RMAOp:
        self._check_open()
        if not isinstance(origin_buf, TrackedBuffer):
            raise RMAUsageError(
                f"{kind}: origin must be a TrackedBuffer, got "
                f"{type(origin_buf).__name__}")
        target_world = self._target_world(target)
        if not self._epoch_covers(target_world):
            raise RMAUsageError(
                f"rank {self.rank}: {kind} to target {target} on window "
                f"{self.win_id} outside any access epoch")
        if origin_dtype is None:
            origin_dtype = self.ctx.primitive_of(origin_buf)
        if target_dtype is None:
            target_dtype = origin_dtype
        if target_count is None:
            target_count = origin_count
        rma_op = RMAOp(
            kind=kind, win_id=self.win_id,
            origin_world=self.rank, target_world=target_world,
            origin_buf=origin_buf, origin_offset=origin_offset,
            origin_count=origin_count, origin_dtype=origin_dtype,
            target_disp=target_disp, target_count=target_count,
            target_dtype=target_dtype, op=op, seq=self._op_seq,
            result_buf=result_buf, result_offset=result_offset,
            compare_value=compare_value)
        self._op_seq += 1
        # validate target range eagerly so usage errors surface at issue
        tbuf = self.window.buffer_of(target_world)
        disp_unit = self.window.disp_units[target_world]
        span = target_dtype.intervals(target_disp * disp_unit, target_count)
        if span and span.bounds().stop > tbuf.nbytes:
            raise RMAUsageError(
                f"{kind}: target access [{span.bounds().start}, "
                f"{span.bounds().stop}) exceeds window size {tbuf.nbytes} "
                f"at rank {target_world}")
        if self.ctx.world.delivery.deliver_eagerly(rma_op):
            apply_rma(rma_op, tbuf, disp_unit)
            self.ctx.world.scheduler.register_progress()
        else:
            self._pending.setdefault(target_world, []).append(rma_op)
        return rma_op

    # ------------------------------------------------------------------
    # one-sided communication calls
    # ------------------------------------------------------------------

    def put(self, origin_buf: TrackedBuffer, target: int, target_disp: int = 0,
            origin_offset: int = 0, origin_count: Optional[int] = None,
            origin_dtype: Optional[Datatype] = None,
            target_count: Optional[int] = None,
            target_dtype: Optional[Datatype] = None) -> RMAOp:
        """MPI_Put: transfer origin elements into the target window."""
        if origin_count is None:
            origin_count = origin_buf.count - origin_offset
        self.ctx._yield_and_emit(
            "Put", self._call_args(origin_buf, origin_offset, origin_count,
                                   origin_dtype, target, target_disp,
                                   target_count, target_dtype))
        return self._issue(PUT, origin_buf, origin_offset, origin_count,
                           origin_dtype, target, target_disp, target_count,
                           target_dtype, None)

    def get(self, origin_buf: TrackedBuffer, target: int, target_disp: int = 0,
            origin_offset: int = 0, origin_count: Optional[int] = None,
            origin_dtype: Optional[Datatype] = None,
            target_count: Optional[int] = None,
            target_dtype: Optional[Datatype] = None) -> RMAOp:
        """MPI_Get: transfer target window contents into the origin buffer."""
        if origin_count is None:
            origin_count = origin_buf.count - origin_offset
        self.ctx._yield_and_emit(
            "Get", self._call_args(origin_buf, origin_offset, origin_count,
                                   origin_dtype, target, target_disp,
                                   target_count, target_dtype))
        return self._issue(GET, origin_buf, origin_offset, origin_count,
                           origin_dtype, target, target_disp, target_count,
                           target_dtype, None)

    def accumulate(self, origin_buf: TrackedBuffer, target: int, op: str,
                   target_disp: int = 0, origin_offset: int = 0,
                   origin_count: Optional[int] = None,
                   origin_dtype: Optional[Datatype] = None,
                   target_count: Optional[int] = None,
                   target_dtype: Optional[Datatype] = None) -> RMAOp:
        """MPI_Accumulate: combine origin elements into the target window."""
        if origin_count is None:
            origin_count = origin_buf.count - origin_offset
        args = self._call_args(origin_buf, origin_offset, origin_count,
                               origin_dtype, target, target_disp,
                               target_count, target_dtype)
        args["op"] = op
        self.ctx._yield_and_emit("Accumulate", args)
        return self._issue(ACC, origin_buf, origin_offset, origin_count,
                           origin_dtype, target, target_disp, target_count,
                           target_dtype, op)

    # ------------------------------------------------------------------
    # MPI-3 one-sided extensions (paper section V: the techniques extend
    # to the MPI-3 model; these calls exercise that claim)
    # ------------------------------------------------------------------

    def rput(self, origin_buf: TrackedBuffer, target: int,
             target_disp: int = 0, origin_offset: int = 0,
             origin_count: Optional[int] = None,
             origin_dtype: Optional[Datatype] = None,
             target_count: Optional[int] = None,
             target_dtype: Optional[Datatype] = None) -> "RMARequest":
        """MPI-3 MPI_Rput: a Put with per-operation completion."""
        if origin_count is None:
            origin_count = origin_buf.count - origin_offset
        req_id = self._fresh_req_id()
        args = self._call_args(origin_buf, origin_offset, origin_count,
                               origin_dtype, target, target_disp,
                               target_count, target_dtype)
        args["req"] = req_id
        self.ctx._yield_and_emit("Rput", args)
        op = self._issue(PUT, origin_buf, origin_offset, origin_count,
                         origin_dtype, target, target_disp, target_count,
                         target_dtype, None)
        return RMARequest(self, op, req_id)

    def rget(self, origin_buf: TrackedBuffer, target: int,
             target_disp: int = 0, origin_offset: int = 0,
             origin_count: Optional[int] = None,
             origin_dtype: Optional[Datatype] = None,
             target_count: Optional[int] = None,
             target_dtype: Optional[Datatype] = None) -> "RMARequest":
        """MPI-3 MPI_Rget: a Get with per-operation completion."""
        if origin_count is None:
            origin_count = origin_buf.count - origin_offset
        req_id = self._fresh_req_id()
        args = self._call_args(origin_buf, origin_offset, origin_count,
                               origin_dtype, target, target_disp,
                               target_count, target_dtype)
        args["req"] = req_id
        self.ctx._yield_and_emit("Rget", args)
        op = self._issue(GET, origin_buf, origin_offset, origin_count,
                         origin_dtype, target, target_disp, target_count,
                         target_dtype, None)
        return RMARequest(self, op, req_id)

    def raccumulate(self, origin_buf: TrackedBuffer, target: int, op: str,
                    target_disp: int = 0, origin_offset: int = 0,
                    origin_count: Optional[int] = None,
                    origin_dtype: Optional[Datatype] = None,
                    target_count: Optional[int] = None,
                    target_dtype: Optional[Datatype] = None
                    ) -> "RMARequest":
        """MPI-3 MPI_Raccumulate: an Accumulate with per-op completion."""
        if origin_count is None:
            origin_count = origin_buf.count - origin_offset
        req_id = self._fresh_req_id()
        args = self._call_args(origin_buf, origin_offset, origin_count,
                               origin_dtype, target, target_disp,
                               target_count, target_dtype)
        args.update({"op": op, "req": req_id})
        self.ctx._yield_and_emit("Raccumulate", args)
        rma_op = self._issue(ACC, origin_buf, origin_offset, origin_count,
                             origin_dtype, target, target_disp,
                             target_count, target_dtype, op)
        return RMARequest(self, rma_op, req_id)

    def _fresh_req_id(self) -> int:
        req_id = getattr(self, "_next_rma_req", 0)
        self._next_rma_req = req_id + 1
        return req_id

    def _complete_request(self, op: RMAOp) -> None:
        """Apply a request-based op now and drop it from the pending set."""
        target = op.target_world
        pending = self._pending.get(target, [])
        # all ops issued before it to the same target complete first
        # (MPI ordering for accumulate-family; conservative for put/get)
        while pending and pending[0].seq <= op.seq:
            earlier = pending.pop(0)
            apply_rma(earlier, self.window.buffer_of(target),
                      self.window.disp_units[target])
        if not op.applied:
            apply_rma(op, self.window.buffer_of(target),
                      self.window.disp_units[target])
        self.ctx.world.scheduler.register_progress()

    def get_accumulate(self, origin_buf: TrackedBuffer,
                       result_buf: TrackedBuffer, target: int, op: str,
                       target_disp: int = 0, origin_offset: int = 0,
                       result_offset: int = 0,
                       origin_count: Optional[int] = None,
                       origin_dtype: Optional[Datatype] = None,
                       target_count: Optional[int] = None,
                       target_dtype: Optional[Datatype] = None) -> RMAOp:
        """MPI-3 MPI_Get_accumulate: atomic fetch-and-combine."""
        if origin_count is None:
            origin_count = origin_buf.count - origin_offset
        args = self._call_args(origin_buf, origin_offset, origin_count,
                               origin_dtype, target, target_disp,
                               target_count, target_dtype)
        args.update({"op": op, "result_base": result_buf.base,
                     "result_offset": result_offset * result_buf.itemsize,
                     "result_var": result_buf.name})
        self.ctx._yield_and_emit("Get_accumulate", args)
        return self._issue(GET_ACC, origin_buf, origin_offset, origin_count,
                           origin_dtype, target, target_disp, target_count,
                           target_dtype, op, result_buf=result_buf,
                           result_offset=result_offset)

    def fetch_and_op(self, origin_buf: TrackedBuffer,
                     result_buf: TrackedBuffer, target: int, op: str,
                     target_disp: int = 0) -> RMAOp:
        """MPI-3 MPI_Fetch_and_op: single-element get_accumulate."""
        return self.get_accumulate(origin_buf, result_buf, target, op,
                                   target_disp=target_disp, origin_count=1)

    def compare_and_swap(self, origin_buf: TrackedBuffer,
                         compare_buf: TrackedBuffer,
                         result_buf: TrackedBuffer, target: int,
                         target_disp: int = 0) -> RMAOp:
        """MPI-3 MPI_Compare_and_swap on one element."""
        dtype = self.ctx.primitive_of(origin_buf)
        args = self._call_args(origin_buf, 0, 1, dtype, target, target_disp,
                               1, dtype)
        args.update({"result_base": result_buf.base,
                     "result_offset": 0, "result_var": result_buf.name,
                     "compare_var": compare_buf.name})
        self.ctx._yield_and_emit("Compare_and_swap", args)
        compare_value = compare_buf.raw_read_bytes(0, dtype.size)
        return self._issue(CAS, origin_buf, 0, 1, dtype, target,
                           target_disp, 1, dtype, None,
                           result_buf=result_buf,
                           compare_value=compare_value)

    def lock_all(self) -> None:
        """MPI-3 MPI_Win_lock_all: shared locks on every member at once."""
        self._check_open()
        self.ctx._yield_and_emit("Win_lock_all", {"win": self.win_id})
        window = self.window
        targets = [window.comm.world_of_rank(r)
                   for r in range(window.comm.size)]
        for target_world in targets:
            if target_world in self.lock_epochs:
                raise RMAUsageError(
                    f"rank {self.rank}: Win_lock_all while holding a lock "
                    f"on target {target_world}")
        for target_world in targets:
            self.ctx.world.scheduler.wait_until(
                self.rank,
                lambda t=target_world: window.lock_grantable(t, LOCK_SHARED),
                f"Win_lock_all target={target_world} win={self.win_id}")
            window.grant_lock(target_world, self.rank, LOCK_SHARED)
            self.lock_epochs[target_world] = LOCK_SHARED
        self.ctx.world.scheduler.register_progress()

    def unlock_all(self) -> None:
        """MPI-3 MPI_Win_unlock_all: flush and release every held lock."""
        self._check_open()
        self.ctx._yield_and_emit("Win_unlock_all", {"win": self.win_id})
        for target_world in sorted(self.lock_epochs):
            self._flush(target_world)
            self.window.release_lock(target_world, self.rank)
            del self.lock_epochs[target_world]
        self.ctx.world.scheduler.register_progress()

    def flush(self, target: int) -> None:
        """MPI-3 MPI_Win_flush: complete pending ops to ``target`` without
        closing the epoch (a consistency point mid-epoch)."""
        self._check_open()
        target_world = self._target_world(target)
        if target_world not in self.lock_epochs:
            raise RMAUsageError(
                f"rank {self.rank}: Win_flush of target {target_world} "
                "outside a passive-target epoch")
        self.ctx._yield_and_emit(
            "Win_flush", {"win": self.win_id, "target": target_world})
        self._flush(target_world)

    def flush_all(self) -> None:
        """MPI-3 MPI_Win_flush_all: complete all pending ops, epoch stays."""
        self._check_open()
        if not self.lock_epochs:
            raise RMAUsageError(
                f"rank {self.rank}: Win_flush_all outside any "
                "passive-target epoch")
        self.ctx._yield_and_emit("Win_flush_all", {"win": self.win_id})
        self._flush()

    def _call_args(self, origin_buf, origin_offset, origin_count,
                   origin_dtype, target, target_disp, target_count,
                   target_dtype) -> dict:
        if not isinstance(origin_buf, TrackedBuffer):
            raise RMAUsageError(
                f"one-sided origin must be a TrackedBuffer, got "
                f"{type(origin_buf).__name__}")
        if origin_dtype is None:
            origin_dtype = self.ctx.primitive_of(origin_buf)
        if target_dtype is None:
            target_dtype = origin_dtype
        if target_count is None:
            target_count = origin_count
        return {
            "win": self.win_id,
            "target": self._target_world(target),
            "origin_base": origin_buf.base,
            "origin_offset": origin_offset * origin_buf.itemsize,
            "origin_count": origin_count,
            "origin_dtype": origin_dtype.type_id,
            "target_disp": target_disp,
            "target_count": target_count,
            "target_dtype": target_dtype.type_id,
            "var": origin_buf.name,
        }

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------

    def fence(self, assertion: int = 0) -> None:
        """MPI_Win_fence: flush, synchronize the communicator, open epoch."""
        self._check_open()
        self.ctx._yield_and_emit("Win_fence",
                                 {"win": self.win_id, "assert": assertion})
        self._flush()
        index, slot = self.ctx._collective_barrier(
            self.comm, f"Win_fence:{self.win_id}")
        self.ctx.world.collectives.leave(self.comm, index, slot, self.rank)
        self.fence_epoch_open = True

    def lock(self, target: int, lock_type: str = LOCK_SHARED) -> None:
        """MPI_Win_lock: open a passive-target epoch at ``target``."""
        self._check_open()
        if lock_type not in (LOCK_SHARED, LOCK_EXCLUSIVE):
            raise RMAUsageError(f"unknown lock type {lock_type!r}")
        target_world = self._target_world(target)
        if target_world in self.lock_epochs:
            raise RMAUsageError(
                f"rank {self.rank} already holds a lock on target "
                f"{target_world} (window {self.win_id})")
        self.ctx._yield_and_emit(
            "Win_lock", {"win": self.win_id, "target": target_world,
                         "lock_type": lock_type})
        window = self.window
        self.ctx.world.scheduler.wait_until(
            self.rank,
            lambda: window.lock_grantable(target_world, lock_type),
            f"Win_lock({lock_type}) target={target_world} win={self.win_id}")
        window.grant_lock(target_world, self.rank, lock_type)
        self.ctx.world.scheduler.register_progress()
        self.lock_epochs[target_world] = lock_type

    def unlock(self, target: int) -> None:
        """MPI_Win_unlock: flush this epoch's ops and release the lock."""
        self._check_open()
        target_world = self._target_world(target)
        if target_world not in self.lock_epochs:
            raise RMAUsageError(
                f"rank {self.rank}: unlock of target {target_world} without "
                f"a held lock (window {self.win_id})")
        self.ctx._yield_and_emit(
            "Win_unlock", {"win": self.win_id, "target": target_world})
        self._flush(target_world)
        self.window.release_lock(target_world, self.rank)
        del self.lock_epochs[target_world]
        self.ctx.world.scheduler.register_progress()

    def post(self, group: Group, assertion: int = 0) -> None:
        """MPI_Win_post: expose the local window to the origin group."""
        self._check_open()
        if self.exposure_posted:
            raise RMAUsageError(
                f"rank {self.rank}: Win_post while an exposure epoch is "
                f"already open (window {self.win_id})")
        self.ctx._yield_and_emit(
            "Win_post", {"win": self.win_id,
                         "group": list(group.world_ranks),
                         "assert": assertion})
        self.window.exposures[self.rank] = _Exposure(
            origins=set(group.world_ranks))
        self.exposure_posted = True
        self.ctx.world.scheduler.register_progress()

    def start(self, group: Group, assertion: int = 0) -> None:
        """MPI_Win_start: open an access epoch to the target group."""
        self._check_open()
        if self.access_group is not None:
            raise RMAUsageError(
                f"rank {self.rank}: Win_start while an access epoch is "
                f"already open (window {self.win_id})")
        self.ctx._yield_and_emit(
            "Win_start", {"win": self.win_id,
                          "group": list(group.world_ranks),
                          "assert": assertion})
        window, me = self.window, self.rank

        def all_posted() -> bool:
            for target in group.world_ranks:
                exp = window.exposures.get(target)
                if exp is None or me not in exp.origins or me in exp.started:
                    return False
            return True

        self.ctx.world.scheduler.wait_until(
            self.rank, all_posted,
            f"Win_start targets={list(group.world_ranks)} win={self.win_id}")
        for target in group.world_ranks:
            window.exposures[target].started.add(me)
        self.access_group = group
        self.ctx.world.scheduler.register_progress()

    def complete(self) -> None:
        """MPI_Win_complete: flush and close the access epoch."""
        self._check_open()
        if self.access_group is None:
            raise RMAUsageError(
                f"rank {self.rank}: Win_complete without an open access "
                f"epoch (window {self.win_id})")
        self.ctx._yield_and_emit("Win_complete", {"win": self.win_id})
        for target in self.access_group.world_ranks:
            self._flush(target)
            self.window.exposures[target].completed.add(self.rank)
        self.access_group = None
        self.ctx.world.scheduler.register_progress()

    def wait(self) -> None:
        """MPI_Win_wait: close the exposure epoch once all origins completed."""
        self._check_open()
        if not self.exposure_posted:
            raise RMAUsageError(
                f"rank {self.rank}: Win_wait without Win_post "
                f"(window {self.win_id})")
        self.ctx._yield_and_emit("Win_wait", {"win": self.win_id})
        window, me = self.window, self.rank

        def all_completed() -> bool:
            exp = window.exposures.get(me)
            return exp is not None and exp.completed >= exp.origins

        self.ctx.world.scheduler.wait_until(
            self.rank, all_completed, f"Win_wait win={self.win_id}")
        window.exposures[me] = None
        self.exposure_posted = False
        self.ctx.world.scheduler.register_progress()

    def free(self) -> None:
        """MPI_Win_free: collective teardown."""
        self._check_open()
        self.ctx._yield_and_emit("Win_free", {"win": self.win_id})
        if self._pending:
            raise RMAUsageError(
                f"rank {self.rank}: Win_free with pending RMA operations "
                f"(window {self.win_id})")
        index, slot = self.ctx._collective_barrier(
            self.comm, f"Win_free:{self.win_id}")
        self.ctx.world.collectives.leave(self.comm, index, slot, self.rank)
        self.fence_epoch_open = False
        self.window.freed = True
