"""MPI groups: ordered sets of world ranks with the MPI-2.2 set algebra."""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from repro.util.errors import SimMPIError


class Group:
    """An immutable ordered list of *world* ranks.

    Ranks inside a group are positions in this list; DN-Analyzer's
    preprocessing resolves group-relative ranks back to world ranks the same
    way (section IV-C-1a).
    """

    __slots__ = ("world_ranks",)

    def __init__(self, world_ranks: Iterable[int]):
        ranks = tuple(int(r) for r in world_ranks)
        if len(set(ranks)) != len(ranks):
            raise SimMPIError(f"duplicate ranks in group: {ranks}")
        self.world_ranks: Tuple[int, ...] = ranks

    @property
    def size(self) -> int:
        return len(self.world_ranks)

    def rank_of_world(self, world_rank: int) -> int:
        """Group-relative rank of a world rank (-1 if not a member)."""
        try:
            return self.world_ranks.index(world_rank)
        except ValueError:
            return -1

    def world_of_rank(self, group_rank: int) -> int:
        if not 0 <= group_rank < self.size:
            raise SimMPIError(
                f"group rank {group_rank} out of range for size {self.size}")
        return self.world_ranks[group_rank]

    def __contains__(self, world_rank: int) -> bool:
        return world_rank in self.world_ranks

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Group):
            return NotImplemented
        return self.world_ranks == other.world_ranks

    def __hash__(self) -> int:
        return hash(self.world_ranks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Group{self.world_ranks}"

    # ------------------------------------------------------------------
    # MPI group constructors (MPI_Group_incl etc.)
    # ------------------------------------------------------------------

    def incl(self, ranks: Sequence[int]) -> "Group":
        """New group containing the given *group-relative* ranks, in order."""
        return Group(self.world_of_rank(r) for r in ranks)

    def excl(self, ranks: Sequence[int]) -> "Group":
        drop = {self.world_of_rank(r) for r in ranks}
        return Group(r for r in self.world_ranks if r not in drop)

    def union(self, other: "Group") -> "Group":
        extra = [r for r in other.world_ranks if r not in self.world_ranks]
        return Group(self.world_ranks + tuple(extra))

    def intersection(self, other: "Group") -> "Group":
        return Group(r for r in self.world_ranks if r in other.world_ranks)

    def difference(self, other: "Group") -> "Group":
        return Group(r for r in self.world_ranks if r not in other.world_ranks)

    def translate_ranks(self, ranks: Sequence[int], other: "Group") -> Tuple[int, ...]:
        """MPI_Group_translate_ranks: my group ranks -> other's group ranks."""
        return tuple(other.rank_of_world(self.world_of_rank(r)) for r in ranks)
