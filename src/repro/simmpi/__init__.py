"""simmpi — a deterministic MPI-2.2 simulator with one-sided communication.

This package is the substrate substituting for a real MPI library plus
cluster (see DESIGN.md, substitution #1).  Ranks are cooperative threads
under a seeded token-passing scheduler; RMA operations are genuinely
nonblocking, with data movement deferred according to a delivery policy so
memory consistency bugs manifest exactly as they do on real hardware.

Quick tour::

    from repro.simmpi import run_app, INT

    def main(mpi):
        buf = mpi.alloc("buf", 4, datatype=INT)
        win = mpi.win_create(buf)
        win.fence()
        if mpi.rank == 0:
            buf.write([1, 2, 3, 4])
            win.put(buf, target=1)
        win.fence()
        out = buf.read()
        win.free()
        return out

    results = run_app(main, nranks=2, delivery="eager")
"""

from repro.simmpi.comm import Comm, WORLD_COMM_ID
from repro.simmpi.datatypes import (
    BYTE, CHAR, SHORT, INT, LONG, FLOAT, DOUBLE,
    Datatype, DatatypeFactory, PRIMITIVES, primitive_for_numpy,
)
from repro.simmpi.group import Group
from repro.simmpi.memory import AddressSpace, TrackedBuffer
from repro.simmpi.ops import (
    SUM, PROD, MIN, MAX, LAND, LOR, BAND, BOR, BXOR, REPLACE,
)
from repro.simmpi.p2p import ANY_SOURCE, ANY_TAG, Request, Status
from repro.simmpi.rma import (
    EAGER, LAZY, RANDOM, DELIVERY_POLICIES, RMAOp, DeliveryEngine,
    PUT, GET, ACC, GET_ACC, CAS,
)
from repro.simmpi.runtime import EventHook, MPIContext, World, run_app
from repro.simmpi.scheduler import Scheduler
from repro.simmpi.window import LOCK_EXCLUSIVE, LOCK_SHARED, WinHandle, Window

__all__ = [
    "Comm", "WORLD_COMM_ID",
    "BYTE", "CHAR", "SHORT", "INT", "LONG", "FLOAT", "DOUBLE",
    "Datatype", "DatatypeFactory", "PRIMITIVES", "primitive_for_numpy",
    "Group", "AddressSpace", "TrackedBuffer",
    "SUM", "PROD", "MIN", "MAX", "LAND", "LOR", "BAND", "BOR", "BXOR",
    "REPLACE",
    "ANY_SOURCE", "ANY_TAG", "Request", "Status",
    "EAGER", "LAZY", "RANDOM", "DELIVERY_POLICIES", "RMAOp",
    "DeliveryEngine", "PUT", "GET", "ACC", "GET_ACC", "CAS",
    "EventHook", "MPIContext", "World", "run_app",
    "Scheduler",
    "LOCK_EXCLUSIVE", "LOCK_SHARED", "WinHandle", "Window",
]
