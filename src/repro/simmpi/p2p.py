"""Point-to-point messaging: buffered sends, blocking/nonblocking receives.

Sends are *buffered*: the payload is copied out of the application buffer
at send time and deposited in the destination's mailbox, so ``send``
returns immediately (the common eager-protocol behaviour of real MPIs for
small messages).  ``recv`` blocks until a matching message exists.  The
happens-before edge DN-Analyzer derives — send completes before the
matching recv returns — holds under this model.

Matching follows MPI rules: (communicator, source, tag), with
``ANY_SOURCE``/``ANY_TAG`` wildcards, FIFO (non-overtaking) per
(source, dest, comm) channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class Message:
    src_world: int
    dst_world: int
    comm_id: int
    tag: int
    payload: Any  # bytes for buffer sends, arbitrary object otherwise
    elem_count: int = 0
    seq: int = 0


@dataclass
class Status:
    """Receive status: world/comm source rank and tag of the matched message."""

    source: int
    tag: int
    count: int


class MessageRouter:
    """Mailbox per destination world rank with MPI matching semantics."""

    def __init__(self, nranks: int):
        self._boxes: Dict[int, List[Message]] = {r: [] for r in range(nranks)}
        self._seq = 0

    def post(self, msg: Message) -> None:
        msg.seq = self._seq
        self._seq += 1
        self._boxes[msg.dst_world].append(msg)

    def find(self, dst_world: int, comm_id: int, src_world: int,
             tag: int) -> Optional[Message]:
        """First (FIFO) message matching the receive spec, without removing."""
        for msg in self._boxes[dst_world]:
            if msg.comm_id != comm_id:
                continue
            if src_world != ANY_SOURCE and msg.src_world != src_world:
                continue
            if tag != ANY_TAG and msg.tag != tag:
                continue
            return msg
        return None

    def take(self, dst_world: int, msg: Message) -> None:
        self._boxes[dst_world].remove(msg)

    def pending_count(self, dst_world: int) -> int:
        return len(self._boxes[dst_world])


@dataclass
class Request:
    """Handle for a nonblocking operation (MPI_Request).

    ``isend`` requests are complete at creation (buffered send); ``irecv``
    requests complete when a matching message has been drained into the
    receive buffer by ``wait``/``test``.
    """

    kind: str  # "isend" | "irecv"
    rank: int
    complete: bool = False
    status: Optional[Status] = None
    #: irecv bookkeeping, filled by the context
    _match_spec: Optional[Tuple[int, int, int]] = None  # comm_id, src_world, tag
    _recv_into: Any = None
    _recv_offset: int = 0
    _recv_count: Optional[int] = None
    _recv_dtype: Any = None
    _payload: Any = None
