"""Fault injection: steer the simulator into the interleavings that
manifest consistency bugs.

MC-Checker detects races that *could* corrupt data whether or not they did
in a particular run.  These helpers force the runs where they DO, which the
test suite uses to prove the simulator's nonblocking semantics are real
(DESIGN.md, "failure injection"):

* :func:`force_all_lazy` — every RMA op defers its data movement to epoch
  close (the Blue Gene/Q eager-buffer-exhaustion scenario from the ADLB
  bug anecdote in section II-B).
* :func:`force_lazy_ops` — defer only selected (win, origin, seq) ops.
* :class:`AdversarialDelivery` — a delivery engine that alternates
  eager/lazy per op deterministically, maximising interleaving coverage
  across repeated runs without randomness.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.simmpi.rma import DeliveryEngine, LAZY, RMAOp
from repro.simmpi.runtime import World


def force_all_lazy(world: World) -> None:
    """Defer every RMA data movement to its epoch-closing synchronization."""
    world.delivery.policy = LAZY


def force_lazy_ops(world: World,
                   keys: Iterable[Tuple[int, int, int]]) -> None:
    """Defer the ops identified by ``(win_id, origin_rank, seq)`` triples."""
    world.delivery.forced_lazy.update(keys)


class AdversarialDelivery(DeliveryEngine):
    """Deterministically alternate eager/lazy delivery, per origin rank.

    With ``phase=0`` the first op of every origin is eager, the second
    lazy, and so on; ``phase=1`` flips the parity.  Running a test twice
    (phase 0 and 1) covers both delivery timings of every op without a
    random search.
    """

    def __init__(self, phase: int = 0):
        super().__init__(policy="random", seed=0)
        self.phase = phase
        self._counts = {}

    def deliver_eagerly(self, op: RMAOp) -> bool:
        if (op.win_id, op.origin_world, op.seq) in self.forced_lazy:
            return False
        n = self._counts.get(op.origin_world, 0)
        self._counts[op.origin_world] = n + 1
        return (n + self.phase) % 2 == 0
