"""Deferred RMA operations and the delivery engine.

MPI one-sided operations are *nonblocking*: issuing ``MPI_Put`` only
requests the transfer, and the bytes may move at any instant up to the
synchronization that closes the epoch.  This gap is the root of every bug
class in the paper (Figure 2), so the simulator models it explicitly:

* each Put/Get/Accumulate becomes an :class:`RMAOp` record;
* the :class:`DeliveryEngine` decides *when* the data movement happens:

  - ``eager``  — at issue time (what most MPIs do for small messages, and
    why the ADLB stack-buffer bug stayed latent for years);
  - ``lazy``   — at epoch close (what Blue Gene/Q did when it ran out of
    eager buffers, which is what finally exposed that bug);
  - ``random`` — a seeded per-op coin flip between the two.

Under ``lazy``, a Put reads its origin buffer at the close of the epoch, so
an application that overwrites the origin buffer after the Put genuinely
transmits corrupted data — the simulator *manifests* the consistency error
that MC-Checker is built to detect.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.simmpi.datatypes import Datatype
from repro.simmpi.memory import TrackedBuffer
from repro.simmpi.ops import ACCUMULATE_OPS, combine
from repro.util.errors import SimMPIError

PUT = "put"
GET = "get"
ACC = "acc"
GET_ACC = "get_acc"
CAS = "cas"

EAGER = "eager"
LAZY = "lazy"
RANDOM = "random"

DELIVERY_POLICIES = (EAGER, LAZY, RANDOM)


@dataclass
class RMAOp:
    """One issued one-sided operation, pending or applied."""

    kind: str  # put | get | acc
    win_id: int
    origin_world: int
    target_world: int
    origin_buf: TrackedBuffer
    origin_offset: int  # element offset into origin_buf
    origin_count: int
    origin_dtype: Datatype
    target_disp: int  # in window disp_units
    target_count: int
    target_dtype: Datatype
    op: Optional[str] = None  # accumulate op
    seq: int = 0
    applied: bool = False
    #: MPI-3 fetching operations: where the old target value lands
    result_buf: Optional[TrackedBuffer] = None
    result_offset: int = 0
    #: compare_and_swap: the comparison value
    compare_value: Optional[bytes] = None

    def transfer_bytes(self) -> int:
        return self.origin_count * self.origin_dtype.size


class DeliveryEngine:
    """Chooses, per operation, whether to deliver eagerly or lazily."""

    def __init__(self, policy: str = RANDOM, seed: int = 0):
        if policy not in DELIVERY_POLICIES:
            raise SimMPIError(f"unknown delivery policy {policy!r}")
        self.policy = policy
        self._rng = random.Random(seed)
        #: (win_id, origin, seq) entries forced lazy by fault injection.
        self.forced_lazy = set()

    def deliver_eagerly(self, op: RMAOp) -> bool:
        if (op.win_id, op.origin_world, op.seq) in self.forced_lazy:
            return False
        if self.policy == EAGER:
            return True
        if self.policy == LAZY:
            return False
        return self._rng.random() < 0.5


# ----------------------------------------------------------------------
# typed byte movement
# ----------------------------------------------------------------------

def _uniform_runs(byte_offset: int, dtype: Datatype,
                  count: int) -> Optional[np.ndarray]:
    """Start offsets of every ``(rep, segment)`` byte run, when all
    segments share one length; ``None`` for irregular datatypes (which
    take the generic per-segment path)."""
    datamap = dtype.datamap
    if not datamap:
        return None
    length = datamap[0][1]
    if any(seg_len != length for _, seg_len in datamap):
        return None
    disps = np.fromiter((disp for disp, _ in datamap), dtype=np.int64,
                        count=len(datamap))
    origins = byte_offset + np.arange(count, dtype=np.int64) * dtype.extent
    return (origins[:, None] + disps[None, :]).reshape(-1)


def _check_runs(buf: TrackedBuffer, starts: np.ndarray, length: int,
                verb: str) -> None:
    lo = int(starts.min())
    hi = int(starts.max()) + length
    if lo < 0 or hi > buf.nbytes:
        raise SimMPIError(
            f"raw {verb} [{lo}, {hi}) outside buffer {buf.name!r} of "
            f"{buf.nbytes} bytes")


def gather_typed(buf: TrackedBuffer, byte_offset: int, dtype: Datatype,
                 count: int) -> bytes:
    """Collect the bytes selected by ``count`` instances of ``dtype``.

    Data movement is bulk numpy copies, not a Python loop per element:
    contiguous types collapse to one slice, uniform-segment types (e.g.
    ``Type_vector``) to one fancy-indexed copy.
    """
    if count <= 0:
        return b""
    datamap = dtype.datamap
    if len(datamap) == 1:
        disp, length = datamap[0]
        if count == 1:
            return buf.raw_read_bytes(byte_offset + disp, length)
        if disp == 0 and length == dtype.extent:
            return buf.raw_read_bytes(byte_offset, count * length)
    starts = _uniform_runs(byte_offset, dtype, count)
    if starts is not None:
        length = datamap[0][1]
        _check_runs(buf, starts, length, "read")
        idx = starts[:, None] + np.arange(length, dtype=np.int64)
        return buf.raw_bytes_view()[idx].tobytes()
    out = bytearray()
    for rep in range(count):
        origin = byte_offset + rep * dtype.extent
        for disp, length in datamap:
            out += buf.raw_read_bytes(origin + disp, length)
    return bytes(out)


def scatter_typed(buf: TrackedBuffer, byte_offset: int, dtype: Datatype,
                  count: int, data: bytes) -> None:
    """Distribute a packed byte stream into the datatype's segments."""
    total = count * dtype.size
    datamap = dtype.datamap
    if len(datamap) == 1:
        disp, length = datamap[0]
        if count == 1 or (disp == 0 and length == dtype.extent):
            if total != len(data):
                raise SimMPIError(
                    f"typed scatter consumed {total} of {len(data)} bytes")
            buf.raw_write_bytes(byte_offset + (disp if count == 1 else 0),
                                data)
            return
    starts = _uniform_runs(byte_offset, dtype, count) if count > 0 else None
    if starts is not None:
        if total != len(data):
            raise SimMPIError(
                f"typed scatter consumed {total} of {len(data)} bytes")
        length = datamap[0][1]
        _check_runs(buf, starts, length, "write")
        idx = starts[:, None] + np.arange(length, dtype=np.int64)
        buf.raw_bytes_view()[idx] = np.frombuffer(
            data, dtype=np.uint8).reshape(len(starts), length)
        return
    cursor = 0
    for rep in range(count):
        origin = byte_offset + rep * dtype.extent
        for disp, length in datamap:
            buf.raw_write_bytes(origin + disp, data[cursor:cursor + length])
            cursor += length
    if cursor != len(data):
        raise SimMPIError(
            f"typed scatter consumed {cursor} of {len(data)} bytes")


def apply_rma(op: RMAOp, target_buf: TrackedBuffer, disp_unit: int) -> None:
    """Perform the data movement of a (possibly deferred) RMA operation.

    Crucially, the *origin buffer is read (put/acc) or written (get) now*,
    not at issue time — deferred application therefore observes any
    intervening application stores, which is exactly the undefined behaviour
    window the paper's compatibility rules exist to flag.
    """
    if op.applied:
        return
    op.applied = True
    origin_byte = op.origin_offset * op.origin_buf.itemsize
    target_byte = op.target_disp * disp_unit

    nbytes = op.origin_count * op.origin_dtype.size
    tbytes = op.target_count * op.target_dtype.size
    if nbytes != tbytes:
        raise SimMPIError(
            f"{op.kind}: origin transfers {nbytes} bytes but target "
            f"signature describes {tbytes}")

    if op.kind == PUT:
        data = gather_typed(op.origin_buf, origin_byte, op.origin_dtype,
                            op.origin_count)
        scatter_typed(target_buf, target_byte, op.target_dtype,
                      op.target_count, data)
    elif op.kind == GET:
        data = gather_typed(target_buf, target_byte, op.target_dtype,
                            op.target_count)
        scatter_typed(op.origin_buf, origin_byte, op.origin_dtype,
                      op.origin_count, data)
    elif op.kind == ACC:
        if op.op not in ACCUMULATE_OPS:
            raise SimMPIError(f"accumulate: invalid op {op.op!r}")
        if op.origin_dtype.base is None or op.target_dtype.base is None:
            raise SimMPIError(
                "accumulate requires datatypes with a unique primitive base")
        if op.origin_dtype.base != op.target_dtype.base:
            raise SimMPIError(
                f"accumulate: origin base {op.origin_dtype.base} != "
                f"target base {op.target_dtype.base}")
        np_dtype = op.origin_dtype.numpy_dtype()
        update = np.frombuffer(
            gather_typed(op.origin_buf, origin_byte, op.origin_dtype,
                         op.origin_count), dtype=np_dtype)
        current = np.frombuffer(
            gather_typed(target_buf, target_byte, op.target_dtype,
                         op.target_count), dtype=np_dtype)
        merged = combine(op.op, current.copy(), update)
        scatter_typed(target_buf, target_byte, op.target_dtype,
                      op.target_count,
                      np.ascontiguousarray(merged, dtype=np_dtype).tobytes())
    elif op.kind == GET_ACC:
        # MPI-3 MPI_Get_accumulate / MPI_Fetch_and_op: atomically fetch the
        # old target value into the result buffer and fold the origin in
        if op.op not in ACCUMULATE_OPS:
            raise SimMPIError(f"get_accumulate: invalid op {op.op!r}")
        np_dtype = op.origin_dtype.numpy_dtype()
        old = gather_typed(target_buf, target_byte, op.target_dtype,
                           op.target_count)
        scatter_typed(op.result_buf,
                      op.result_offset * op.result_buf.itemsize,
                      op.target_dtype, op.target_count, old)
        update = np.frombuffer(
            gather_typed(op.origin_buf, origin_byte, op.origin_dtype,
                         op.origin_count), dtype=np_dtype)
        current = np.frombuffer(old, dtype=np_dtype)
        merged = combine(op.op, current.copy(), update)
        scatter_typed(target_buf, target_byte, op.target_dtype,
                      op.target_count,
                      np.ascontiguousarray(merged, dtype=np_dtype).tobytes())
    elif op.kind == CAS:
        old = gather_typed(target_buf, target_byte, op.target_dtype, 1)
        scatter_typed(op.result_buf,
                      op.result_offset * op.result_buf.itemsize,
                      op.target_dtype, 1, old)
        if old == op.compare_value:
            new = gather_typed(op.origin_buf, origin_byte,
                               op.origin_dtype, 1)
            scatter_typed(target_buf, target_byte, op.target_dtype, 1, new)
    else:  # pragma: no cover - construction is validated upstream
        raise SimMPIError(f"unknown RMA op kind {op.kind!r}")
