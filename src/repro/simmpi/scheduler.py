"""Cooperative token-passing scheduler for simulated MPI ranks.

Every rank runs in its own OS thread, but exactly one thread holds the
*token* at any instant, so execution is a deterministic interleaving of
per-rank steps.  Ranks hand the token back at *yield points* (every MPI
call, plus explicit yields inside blocking waits), and the scheduler picks
the next rank according to its policy:

* ``round_robin`` — cyclic order; fully deterministic.
* ``random`` — seeded PRNG choice; deterministic for a given seed, but lets
  tests explore many interleavings (the analogue of rerunning a real MPI
  job and observing different timings).

Deadlock detection: the runtime bumps a *progress counter* on every state
mutation (message deposit, lock grant, RMA delivery, collective arrival,
rank completion).  If every live rank is blocked and a full rotation of
token grants passes with no progress, the run is declared deadlocked and a
:class:`~repro.util.errors.DeadlockError` lists what each rank was waiting
for.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Dict, List, Optional, Set

from repro import obs
from repro.util.errors import DeadlockError, SimMPIError


class _Abort(BaseException):
    """Internal signal: unwind a rank thread after the run was aborted."""


class Scheduler:
    """Token-passing scheduler over ``nranks`` cooperating threads."""

    def __init__(self, nranks: int, policy: str = "round_robin", seed: int = 0,
                 max_steps: int = 50_000_000):
        if nranks <= 0:
            raise ValueError(f"nranks must be positive, got {nranks}")
        if policy not in ("round_robin", "random"):
            raise ValueError(f"unknown scheduling policy {policy!r}")
        self.nranks = nranks
        self.policy = policy
        self._rng = random.Random(seed)
        # One lock guards all scheduler state; each rank parks on its own
        # binary lock (acquired = parked) so a token handoff wakes exactly
        # the granted thread with a single futex release.  A shared
        # condition would need notify_all() — a thundering herd of nranks
        # wakeups per switch — and even per-rank Conditions pay an
        # allocation and two extra lock round-trips per wait.
        self._lock = threading.Lock()
        self._tokens = [threading.Lock() for _ in range(nranks)]
        for token in self._tokens:
            token.acquire()
        self._current: Optional[int] = None
        self._live: Set[int] = set(range(nranks))
        #: sorted cache of _live, rebuilt only when a rank completes, so
        #: the grant path never sorts or allocates per switch
        self._order = tuple(range(nranks))
        self._blocked: Dict[int, str] = {}
        self._progress = 0
        #: ranks granted the token since the all-blocked stall began; a
        #: deadlock is declared only once EVERY live rank re-evaluated its
        #: predicate without progress (grant-counting alone would
        #: false-positive under the random policy, which may skip a rank
        #: for many grants)
        self._stall_granted: Set[int] = set()
        self._steps = 0
        self._max_steps = max_steps
        self._abort_exc: Optional[BaseException] = None
        self._abort_rank: Optional[int] = None
        self.switches = 0
        self.token_grants = 0
        # per-rank token-hold accounting exists only when observability is
        # on (decided once, here): the disabled hot path stays two integer
        # increments per switch
        self._token_times: Optional[List[float]] = (
            [0.0] * nranks if obs.is_enabled() else None)
        self._hold_start = 0.0

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------

    @property
    def live_ranks(self) -> Set[int]:
        return set(self._live)

    @property
    def progress_counter(self) -> int:
        return self._progress

    def token_seconds(self) -> Optional[List[float]]:
        """Per-rank token-hold seconds; ``None`` when observability is off."""
        return list(self._token_times) if self._token_times is not None \
            else None

    def register_progress(self) -> None:
        """Record that global state changed; resets deadlock suspicion.

        Must be called (by the runtime) under the scheduler's own
        serialization — i.e. from the token-holding thread — for any
        mutation that could unblock another rank.
        """
        self._progress += 1
        self._stall_granted.clear()

    # ------------------------------------------------------------------
    # token machinery
    # ------------------------------------------------------------------

    def _pick_next(self) -> Optional[int]:
        candidates = self._order
        if not candidates:
            return None
        if self.policy == "random":
            return self._rng.choice(candidates)
        current = self._current
        if current is not None:
            for rank in candidates:
                if rank > current:
                    return rank
        return candidates[0]

    def _grant_locked(self) -> None:
        """Pick the next rank and hand it the token.  Caller holds _lock."""
        # _blocked only ever holds live ranks, so "every live rank is
        # blocked" reduces to a length comparison
        if self._live and len(self._blocked) >= len(self._live):
            # every live rank is blocked: pick among those that have not
            # yet re-evaluated their predicate this stall; once all have,
            # with no progress, nothing can ever unblock -> deadlock
            unchecked = sorted(self._live - self._stall_granted)
            if not unchecked:
                self._current = None
                self._abort_locked(DeadlockError(self._blocked), rank=None)
                return
            nxt = (self._rng.choice(unchecked) if self.policy == "random"
                   else unchecked[0])
            self._stall_granted.add(nxt)
            self._current = nxt
            self.token_grants += 1
        else:
            self._stall_granted.clear()
            self._current = self._pick_next()
            if self._current is not None:
                self.token_grants += 1
        if self._current is not None:
            self._tokens[self._current].release()

    def _abort_locked(self, exc: BaseException, rank: Optional[int]) -> None:
        if self._abort_exc is None:
            self._abort_exc = exc
            self._abort_rank = rank
        for token in self._tokens:
            if token.locked():
                token.release()

    def _wait_for_token_locked(self, rank: int) -> None:
        # every grant releases the target's token exactly once, and every
        # waiter consumes exactly one release — including a grant issued
        # before this thread first parks, so park unconditionally
        token = self._tokens[rank]
        lock = self._lock
        while True:
            if self._abort_exc is not None:
                raise _Abort()
            lock.release()
            token.acquire()
            lock.acquire()
            if self._abort_exc is not None:
                raise _Abort()
            if self._current == rank:
                break
        self._steps += 1
        if self._steps > self._max_steps:
            self._abort_locked(
                SimMPIError(f"scheduler exceeded {self._max_steps} steps; "
                            "likely livelock"), rank)
            raise _Abort()
        if self._token_times is not None:
            self._hold_start = time.perf_counter()

    def _note_release_locked(self, rank: int) -> None:
        """Charge the ending token-hold interval to ``rank`` (obs only)."""
        if self._token_times is not None:
            self._token_times[rank] += time.perf_counter() - self._hold_start

    def yield_point(self, rank: int) -> None:
        """Hand the token back and wait until it is granted again."""
        with self._lock:
            if self._abort_exc is not None:
                raise _Abort()
            self.switches += 1
            self._note_release_locked(rank)
            self._grant_locked()
            self._wait_for_token_locked(rank)

    def wait_until(self, rank: int, pred: Callable[[], bool], reason: str) -> None:
        """Block ``rank`` until ``pred()`` is true (a blocking MPI call).

        The predicate is re-evaluated each time the rank regains the token;
        while false the rank is marked blocked with ``reason`` so deadlock
        reports can explain the cycle.
        """
        with self._lock:
            while not pred():
                if self._abort_exc is not None:
                    raise _Abort()
                self._blocked[rank] = reason
                self.switches += 1
                self._note_release_locked(rank)
                self._grant_locked()
                self._wait_for_token_locked(rank)
            self._blocked.pop(rank, None)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self, bodies: List[Callable[[], None]]) -> None:
        """Run one thread per rank body and block until all complete.

        Re-raises the first application exception (or the deadlock /
        livelock error) after all threads have unwound.
        """
        if len(bodies) != self.nranks:
            raise ValueError("need exactly one body per rank")

        def runner(rank: int, body: Callable[[], None]) -> None:
            try:
                with self._lock:
                    self._wait_for_token_locked(rank)
                body()
                with self._lock:
                    self._live.discard(rank)
                    self._order = tuple(sorted(self._live))
                    self.register_progress()
                    self._note_release_locked(rank)
                    self._grant_locked()
            except _Abort:
                pass
            except BaseException as exc:  # noqa: BLE001 - must cross threads
                with self._lock:
                    self._live.discard(rank)
                    self._order = tuple(sorted(self._live))
                    self._abort_locked(exc, rank)

        threads = [
            threading.Thread(target=runner, args=(r, b), name=f"simmpi-rank-{r}",
                             daemon=True)
            for r, b in enumerate(bodies)
        ]
        for t in threads:
            t.start()
        with self._lock:
            self._grant_locked()
        for t in threads:
            t.join()
        if self._abort_exc is not None:
            raise self._abort_exc
