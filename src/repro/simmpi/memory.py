"""Per-rank virtual memory: address spaces and load/store-tracked buffers.

The paper's Profiler instruments CPU load/store instructions selected by
ST-Analyzer (sections IV-A/IV-B).  Python has no load/store instructions to
instrument, so the substitute is :class:`TrackedBuffer`: a numpy-backed
buffer whose element reads and writes pass through ``load``/``store`` hooks
carrying a *virtual address* and byte size.  Addresses are allocated from a
per-rank :class:`AddressSpace`, so all downstream overlap logic (window
containment, conflict intervals) is byte-accurate, exactly as with real
addresses.

Two access paths exist deliberately:

* the *semantic* path (``buf[i]``, ``buf.load``, ``buf.store``, typed
  slicing) — these are the application's loads/stores and emit events when
  the buffer is instrumented;
* the *raw* path (``buf.raw_read_bytes`` / ``raw_write_bytes``) — used by
  the runtime itself to move message and RMA payloads.  Runtime data
  movement is represented in traces by the MPI call events, never by
  synthetic load/store events, matching the paper's PMPI-level view.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from repro.util.errors import SimMPIError

#: Hook signature: (kind, buffer, byte_addr, byte_size) -> None, with kind
#: one of ``"load"`` or ``"store"``.
AccessHook = Callable[[str, "TrackedBuffer", int, int], None]

#: Bulk-hook signature: (kind, buffer, byte_addr, byte_size, count,
#: byte_stride) -> None.  One call describes ``count`` accesses of
#: ``byte_size`` bytes each, access *i* at ``byte_addr + i * byte_stride``;
#: a stride of 0 means the same bytes are touched ``count`` times (a loop
#: re-reading one slice).  This is the producer-side columnar record: a
#: vectorized access reaches the profiler as one call instead of ``count``
#: scalar events.
BlockHook = Callable[[str, "TrackedBuffer", int, int, int, int], None]

_ALLOC_BASE = 0x1000
_ALIGN = 64


class AddressSpace:
    """A per-rank virtual address allocator (bump pointer, never freed).

    Buffers from different ranks may receive equal addresses — that is
    fine and realistic: conflict analysis always pairs an address with the
    rank that issued the access.
    """

    def __init__(self, rank: int):
        self.rank = rank
        self._next = _ALLOC_BASE

    def allocate(self, nbytes: int, align: int = _ALIGN) -> int:
        if nbytes < 0:
            raise ValueError(f"negative allocation size {nbytes}")
        addr = -(-self._next // align) * align
        self._next = addr + nbytes
        return addr


class TrackedBuffer:
    """A 1-D typed buffer whose element accesses can be traced.

    Parameters
    ----------
    space:
        The owning rank's :class:`AddressSpace`.
    name:
        The source-level variable name; ST-Analyzer reports are keyed by
        these names, and the profiler flips :attr:`instrumented` for the
        buffers whose names appear in the report.
    count:
        Number of elements.
    np_dtype:
        Element type (a numpy dtype).
    """

    __slots__ = ("name", "base", "array", "itemsize", "rank",
                 "instrumented", "_hook", "_block_hook")

    def __init__(self, space: AddressSpace, name: str, count: int,
                 np_dtype: Union[str, np.dtype] = np.float64,
                 fill: Optional[float] = 0):
        dtype = np.dtype(np_dtype)
        self.name = name
        self.rank = space.rank
        self.itemsize = dtype.itemsize
        self.base = space.allocate(count * dtype.itemsize)
        if fill is None:
            self.array = np.empty(count, dtype=dtype)
        else:
            self.array = np.full(count, fill, dtype=dtype)
        self.instrumented = False
        self._hook: Optional[AccessHook] = None
        self._block_hook: Optional[BlockHook] = None

    # ------------------------------------------------------------------
    # hook management (profiler attach/detach)
    # ------------------------------------------------------------------

    def set_hook(self, hook: Optional[AccessHook]) -> None:
        self._hook = hook

    def set_block_hook(self, hook: Optional[BlockHook]) -> None:
        self._block_hook = hook

    @property
    def count(self) -> int:
        return int(self.array.size)

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    @property
    def end(self) -> int:
        return self.base + self.nbytes

    def addr_of(self, index: int) -> int:
        return self.base + index * self.itemsize

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TrackedBuffer({self.name!r}, rank={self.rank}, "
                f"base={self.base:#x}, count={self.count})")

    # ------------------------------------------------------------------
    # semantic (application) accesses — these are the "loads/stores"
    # ------------------------------------------------------------------

    def _emit(self, kind: str, index: int, nelems: int) -> None:
        self._emit_block(kind, index, nelems, 1, 0)

    def _emit_block(self, kind: str, index: int, nelems: int,
                    nrows: int, row_stride: int) -> None:
        """Record ``nrows`` accesses of ``nelems`` elements, row *i* at
        element index ``index + i * row_stride``.  Prefers the bulk hook
        (one columnar record); without one, decomposes into per-row
        scalar hook calls so both lanes observe the same access stream.
        """
        if not self.instrumented or nrows <= 0 or nelems <= 0:
            return
        size = nelems * self.itemsize
        if self._block_hook is not None:
            self._block_hook(kind, self, self.addr_of(index), size,
                             nrows, row_stride * self.itemsize)
        elif self._hook is not None:
            hook = self._hook
            addr = self.addr_of(index)
            stride = row_stride * self.itemsize
            for i in range(nrows):
                hook(kind, self, addr + i * stride, size)

    def _resolve(self, key: Union[int, slice]):
        if isinstance(key, slice):
            if key.step not in (None, 1):
                raise SimMPIError(
                    f"TrackedBuffer {self.name!r} slices must be contiguous "
                    f"(step 1), got step {key.step!r}; use read_rows/"
                    f"write_rows for strided access")
            start = self._resolve_endpoint(key.start, 0, key)
            stop = self._resolve_endpoint(key.stop, self.count, key)
            return start, max(0, stop - start)
        index = int(key)
        if index < 0:
            index += self.count
        if not 0 <= index < self.count:
            raise IndexError(f"index {key} out of range for {self!r}")
        return index, 1

    def _resolve_endpoint(self, value, default: int, key: slice) -> int:
        # Unlike Python sequences, an out-of-range endpoint raises instead
        # of clamping: a simulated application indexing past a buffer is a
        # bug worth surfacing, not an access worth silently shrinking.
        if value is None:
            return default
        endpoint = int(value)
        if endpoint < 0:
            endpoint += self.count
        if not 0 <= endpoint <= self.count:
            raise IndexError(
                f"slice [{key.start!r}:{key.stop!r}] out of range for "
                f"{self!r}")
        return endpoint

    def __getitem__(self, key):
        index, nelems = self._resolve(key)
        self._emit("load", index, nelems)
        if isinstance(key, slice):
            return self.array[index:index + nelems].copy()
        return self.array[index].item()

    def __setitem__(self, key, value) -> None:
        index, nelems = self._resolve(key)
        self._emit("store", index, nelems)
        if isinstance(key, slice):
            self.array[index:index + nelems] = value
        else:
            self.array[index] = value

    def load(self, index: int):
        """Explicit load of one element (alias of ``buf[index]``)."""
        return self[index]

    def store(self, index: int, value) -> None:
        """Explicit store of one element (alias of ``buf[index] = value``)."""
        self[index] = value

    def read(self, offset: int = 0, count: Optional[int] = None) -> np.ndarray:
        """Load ``count`` elements starting at ``offset`` (copy)."""
        count = self.count - offset if count is None else count
        return self[offset:offset + count]

    def write(self, values, offset: int = 0) -> None:
        """Store an element sequence starting at ``offset``."""
        values = np.asarray(values, dtype=self.array.dtype)
        self[offset:offset + values.size] = values

    # ------------------------------------------------------------------
    # vectorized accesses — one columnar record instead of N events
    # ------------------------------------------------------------------

    def _check_span(self, what: str, offset: int, nelems: int,
                    nrows: int = 1, row_stride: int = 0) -> None:
        if nelems < 0 or nrows < 0:
            raise SimMPIError(
                f"{what} on {self.name!r}: negative extent "
                f"(count={nelems}, rows={nrows})")
        if row_stride < 0:
            raise SimMPIError(
                f"{what} on {self.name!r}: negative stride {row_stride}")
        if nrows == 0 or nelems == 0:
            return
        last = offset + (nrows - 1) * row_stride + nelems
        if offset < 0 or last > self.count:
            raise IndexError(
                f"{what} [{offset}, {last}) out of range for {self!r}")

    def read_block(self, offset: int = 0, count: Optional[int] = None, *,
                   reps: int = 1) -> np.ndarray:
        """Load ``count`` elements at ``offset``, emitting ``reps`` access
        records for the same bytes.

        ``reps > 1`` is the vectorized form of a loop that re-reads one
        slice ``reps`` times: the data is copied once, but every semantic
        read the loop would have issued still appears in the trace.
        """
        count = self.count - offset if count is None else count
        self._check_span("read_block", offset, count, reps, 0)
        self._emit_block("load", offset, count, reps, 0)
        return self.array[offset:offset + count].copy()

    def write_block(self, values, offset: int = 0, *, reps: int = 1) -> None:
        """Store an element sequence, emitting ``reps`` access records."""
        values = np.asarray(values, dtype=self.array.dtype).reshape(-1)
        self._check_span("write_block", offset, values.size, reps, 0)
        self._emit_block("store", offset, values.size, reps, 0)
        if values.size:
            self.array[offset:offset + values.size] = values

    def read_rows(self, offset: int, width: int, nrows: int,
                  row_stride: int) -> np.ndarray:
        """Load ``nrows`` runs of ``width`` elements, run *i* starting at
        element ``offset + i * row_stride`` — one strided columnar record
        instead of ``nrows`` slice events.  Returns a ``(nrows, width)``
        copy.
        """
        self._check_span("read_rows", offset, width, nrows, row_stride)
        self._emit_block("load", offset, width, nrows, row_stride)
        if nrows == 0 or width == 0:
            return np.empty((nrows, width), dtype=self.array.dtype)
        view = np.lib.stride_tricks.as_strided(
            self.array[offset:], shape=(nrows, width),
            strides=(row_stride * self.itemsize, self.itemsize))
        return view.copy()

    def write_rows(self, values, offset: int, row_stride: int) -> None:
        """Store a ``(nrows, width)`` array strided across the buffer —
        the store-side counterpart of :meth:`read_rows`."""
        values = np.asarray(values, dtype=self.array.dtype)
        if values.ndim != 2:
            raise SimMPIError(
                f"write_rows on {self.name!r}: expected a 2-D array, got "
                f"shape {values.shape}")
        nrows, width = values.shape
        self._check_span("write_rows", offset, width, nrows, row_stride)
        self._emit_block("store", offset, width, nrows, row_stride)
        if nrows == 0 or width == 0:
            return
        view = np.lib.stride_tricks.as_strided(
            self.array[offset:], shape=(nrows, width),
            strides=(row_stride * self.itemsize, self.itemsize))
        view[:] = values

    # ------------------------------------------------------------------
    # raw (runtime) accesses — no load/store events
    # ------------------------------------------------------------------

    def raw_bytes_view(self) -> np.ndarray:
        return self.array.view(np.uint8)

    def raw_read_bytes(self, byte_offset: int, nbytes: int) -> bytes:
        if byte_offset < 0 or byte_offset + nbytes > self.nbytes:
            raise SimMPIError(
                f"raw read [{byte_offset}, {byte_offset + nbytes}) outside "
                f"buffer {self.name!r} of {self.nbytes} bytes")
        return self.raw_bytes_view()[byte_offset:byte_offset + nbytes].tobytes()

    def raw_write_bytes(self, byte_offset: int, data: bytes) -> None:
        if byte_offset < 0 or byte_offset + len(data) > self.nbytes:
            raise SimMPIError(
                f"raw write [{byte_offset}, {byte_offset + len(data)}) outside "
                f"buffer {self.name!r} of {self.nbytes} bytes")
        self.raw_bytes_view()[byte_offset:byte_offset + len(data)] = \
            np.frombuffer(data, dtype=np.uint8)

    def raw_elements(self) -> np.ndarray:
        """Direct ndarray access for runtime-internal arithmetic."""
        return self.array
