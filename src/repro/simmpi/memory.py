"""Per-rank virtual memory: address spaces and load/store-tracked buffers.

The paper's Profiler instruments CPU load/store instructions selected by
ST-Analyzer (sections IV-A/IV-B).  Python has no load/store instructions to
instrument, so the substitute is :class:`TrackedBuffer`: a numpy-backed
buffer whose element reads and writes pass through ``load``/``store`` hooks
carrying a *virtual address* and byte size.  Addresses are allocated from a
per-rank :class:`AddressSpace`, so all downstream overlap logic (window
containment, conflict intervals) is byte-accurate, exactly as with real
addresses.

Two access paths exist deliberately:

* the *semantic* path (``buf[i]``, ``buf.load``, ``buf.store``, typed
  slicing) — these are the application's loads/stores and emit events when
  the buffer is instrumented;
* the *raw* path (``buf.raw_read_bytes`` / ``raw_write_bytes``) — used by
  the runtime itself to move message and RMA payloads.  Runtime data
  movement is represented in traces by the MPI call events, never by
  synthetic load/store events, matching the paper's PMPI-level view.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from repro.util.errors import SimMPIError

#: Hook signature: (kind, buffer, byte_addr, byte_size) -> None, with kind
#: one of ``"load"`` or ``"store"``.
AccessHook = Callable[[str, "TrackedBuffer", int, int], None]

_ALLOC_BASE = 0x1000
_ALIGN = 64


class AddressSpace:
    """A per-rank virtual address allocator (bump pointer, never freed).

    Buffers from different ranks may receive equal addresses — that is
    fine and realistic: conflict analysis always pairs an address with the
    rank that issued the access.
    """

    def __init__(self, rank: int):
        self.rank = rank
        self._next = _ALLOC_BASE

    def allocate(self, nbytes: int, align: int = _ALIGN) -> int:
        if nbytes < 0:
            raise ValueError(f"negative allocation size {nbytes}")
        addr = -(-self._next // align) * align
        self._next = addr + nbytes
        return addr


class TrackedBuffer:
    """A 1-D typed buffer whose element accesses can be traced.

    Parameters
    ----------
    space:
        The owning rank's :class:`AddressSpace`.
    name:
        The source-level variable name; ST-Analyzer reports are keyed by
        these names, and the profiler flips :attr:`instrumented` for the
        buffers whose names appear in the report.
    count:
        Number of elements.
    np_dtype:
        Element type (a numpy dtype).
    """

    __slots__ = ("name", "base", "array", "itemsize", "rank",
                 "instrumented", "_hook")

    def __init__(self, space: AddressSpace, name: str, count: int,
                 np_dtype: Union[str, np.dtype] = np.float64,
                 fill: Optional[float] = 0):
        dtype = np.dtype(np_dtype)
        self.name = name
        self.rank = space.rank
        self.itemsize = dtype.itemsize
        self.base = space.allocate(count * dtype.itemsize)
        if fill is None:
            self.array = np.empty(count, dtype=dtype)
        else:
            self.array = np.full(count, fill, dtype=dtype)
        self.instrumented = False
        self._hook: Optional[AccessHook] = None

    # ------------------------------------------------------------------
    # hook management (profiler attach/detach)
    # ------------------------------------------------------------------

    def set_hook(self, hook: Optional[AccessHook]) -> None:
        self._hook = hook

    @property
    def count(self) -> int:
        return int(self.array.size)

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    @property
    def end(self) -> int:
        return self.base + self.nbytes

    def addr_of(self, index: int) -> int:
        return self.base + index * self.itemsize

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TrackedBuffer({self.name!r}, rank={self.rank}, "
                f"base={self.base:#x}, count={self.count})")

    # ------------------------------------------------------------------
    # semantic (application) accesses — these are the "loads/stores"
    # ------------------------------------------------------------------

    def _emit(self, kind: str, index: int, nelems: int) -> None:
        if self.instrumented and self._hook is not None:
            self._hook(kind, self, self.addr_of(index), nelems * self.itemsize)

    def _resolve(self, key: Union[int, slice]):
        if isinstance(key, slice):
            start, stop, step = key.indices(self.count)
            if step != 1:
                raise SimMPIError("TrackedBuffer slices must be contiguous")
            return start, max(0, stop - start)
        index = int(key)
        if index < 0:
            index += self.count
        if not 0 <= index < self.count:
            raise IndexError(f"index {key} out of range for {self!r}")
        return index, 1

    def __getitem__(self, key):
        index, nelems = self._resolve(key)
        self._emit("load", index, nelems)
        if isinstance(key, slice):
            return self.array[index:index + nelems].copy()
        return self.array[index].item()

    def __setitem__(self, key, value) -> None:
        index, nelems = self._resolve(key)
        self._emit("store", index, nelems)
        if isinstance(key, slice):
            self.array[index:index + nelems] = value
        else:
            self.array[index] = value

    def load(self, index: int):
        """Explicit load of one element (alias of ``buf[index]``)."""
        return self[index]

    def store(self, index: int, value) -> None:
        """Explicit store of one element (alias of ``buf[index] = value``)."""
        self[index] = value

    def read(self, offset: int = 0, count: Optional[int] = None) -> np.ndarray:
        """Load ``count`` elements starting at ``offset`` (copy)."""
        count = self.count - offset if count is None else count
        return self[offset:offset + count]

    def write(self, values, offset: int = 0) -> None:
        """Store an element sequence starting at ``offset``."""
        values = np.asarray(values, dtype=self.array.dtype)
        self[offset:offset + values.size] = values

    # ------------------------------------------------------------------
    # raw (runtime) accesses — no load/store events
    # ------------------------------------------------------------------

    def raw_bytes_view(self) -> np.ndarray:
        return self.array.view(np.uint8)

    def raw_read_bytes(self, byte_offset: int, nbytes: int) -> bytes:
        if byte_offset < 0 or byte_offset + nbytes > self.nbytes:
            raise SimMPIError(
                f"raw read [{byte_offset}, {byte_offset + nbytes}) outside "
                f"buffer {self.name!r} of {self.nbytes} bytes")
        return self.raw_bytes_view()[byte_offset:byte_offset + nbytes].tobytes()

    def raw_write_bytes(self, byte_offset: int, data: bytes) -> None:
        if byte_offset < 0 or byte_offset + len(data) > self.nbytes:
            raise SimMPIError(
                f"raw write [{byte_offset}, {byte_offset + len(data)}) outside "
                f"buffer {self.name!r} of {self.nbytes} bytes")
        self.raw_bytes_view()[byte_offset:byte_offset + len(data)] = \
            np.frombuffer(data, dtype=np.uint8)

    def raw_elements(self) -> np.ndarray:
        """Direct ndarray access for runtime-internal arithmetic."""
        return self.array
