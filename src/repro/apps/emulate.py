"""``emulate`` — a distributed-shared-memory emulation (Table II, row 1).

Every rank exposes a page of shared memory in a window; remote pages are
read with ``dsm_read`` (lock/Get/unlock) and written with ``dsm_write``
(lock/Put/unlock).

The real-world bug (the paper's Figure 1): inside the lock epoch, the code
loads the Get's destination buffer before the epoch closes — but the Get
is nonblocking, so the data "may not be ready until the invocation of
MPI_Win_unlock"; the load can observe the stale value and the subsequent
store can be overwritten by the late-arriving Get payload.

Root cause class: conflicting MPI_Get and local load/store **within an
epoch**; 2 processes suffice.
"""

from __future__ import annotations

from repro.simmpi import DOUBLE, LOCK_SHARED, MPIContext

PAGE_WORDS = 8


def dsm_read_buggy(mpi: MPIContext, win, out, owner: int, slot: int) -> float:
    """Figure 1's pattern: Get + load + store of `out` inside one epoch."""
    win.lock(owner, LOCK_SHARED)
    win.get(out, target=owner, target_disp=slot, origin_count=1)  # line 2
    value = out[0]                 # line 3: load races with the Get
    out[0] = value + 1.0           # line 4: store races with the Get
    win.unlock(owner)              # line 6: Get completes here
    return value


def dsm_read_fixed(mpi: MPIContext, win, out, owner: int, slot: int) -> float:
    """Corrected: the epoch closes before `out` is touched."""
    win.lock(owner, LOCK_SHARED)
    win.get(out, target=owner, target_disp=slot, origin_count=1)
    win.unlock(owner)              # Get complete: out is now safe to use
    value = out[0]
    out[0] = value + 1.0
    return value


def dsm_write(mpi: MPIContext, win, src, owner: int, slot: int,
              value: float) -> None:
    src[0] = value
    win.lock(owner, LOCK_SHARED)
    win.put(src, target=owner, target_disp=slot, origin_count=1)
    win.unlock(owner)


def emulate(mpi: MPIContext, buggy: bool = True, rounds: int = 4):
    """Run the DSM emulation; returns the values this rank read."""
    page = mpi.alloc("page", PAGE_WORDS, datatype=DOUBLE,
                     fill=float(mpi.rank))
    out = mpi.alloc("out", 1, datatype=DOUBLE)
    src = mpi.alloc("src", 1, datatype=DOUBLE)
    win = mpi.win_create(page)
    mpi.barrier()

    read = dsm_read_buggy if buggy else dsm_read_fixed
    values = []
    for round_no in range(rounds):
        owner = (mpi.rank + 1) % mpi.size
        slot = round_no % PAGE_WORDS
        dsm_write(mpi, win, src, owner, slot, float(100 * mpi.rank + round_no))
        mpi.barrier()
        values.append(read(mpi, win, out, owner, slot))
        mpi.barrier()

    win.free()
    return values
