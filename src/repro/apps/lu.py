"""``LU`` — the NAS-LU stand-in used for Figures 8, 9, and 10.

Row-block LU factorization (no pivoting; the matrix is made diagonally
dominant) with the current pivot row published through an RMA window:

1. the owner of row *k* stores the row into its pivot window (tracked
   stores);
2. ``Win_fence`` exposes it;
3. every rank reads the pivot row once per local row it eliminates
   (tracked loads — the dominant, compute-proportional event class), and
   updates its rows with vectorized arithmetic;
4. a second fence closes the epoch before the next owner overwrites.

The instrumented-event profile mirrors the paper's strong-scaling story
(section VII-B): the number of MPI events per rank is constant in the rank
count, while the number of load/store events per rank shrinks as ``1/P`` —
so the per-rank profiling event *rate* falls with scale (Figure 10), and
with it the relative overhead (Figure 9).

The paper runs LU on a 1500x1500 matrix; the simulator substitutes smaller
``n`` (the shape of the scaling curves is what is being reproduced, not
the absolute times — DESIGN.md substitution #5).
"""

from __future__ import annotations

import numpy as np

from repro.simmpi import DOUBLE, MPIContext


def _block_bounds(n: int, size: int, rank: int):
    """Contiguous row-block decomposition: bounds of this rank's rows."""
    base = n // size
    extra = n % size
    lo = rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return lo, hi


def _owner_of(n: int, size: int, row: int) -> int:
    base = n // size
    extra = n % size
    threshold = extra * (base + 1)
    if row < threshold:
        return row // (base + 1)
    return extra + (row - threshold) // base if base else size - 1


def lu(mpi: MPIContext, n: int = 64, seed: int = 1, verify: bool = False,
       vectorized: bool = True):
    """Factor a deterministic dense matrix; returns this rank's residual
    contribution (0.0 when ``verify`` is off).

    ``vectorized=True`` (default) eliminates all local rows below ``k``
    in one strided update: the per-row pivot loads collapse into a single
    ``read_block(..., reps=nrows)`` record that still stands for one load
    per eliminated row, so the trace-visible event stream matches the
    ``vectorized=False`` loop exactly (same rows, same order) while the
    Python-level work per pivot drops from O(rows) statements to O(1).
    """
    lo, hi = _block_bounds(n, mpi.size, mpi.rank)
    rows = hi - lo

    # each rank generates only its own rows (seeded per rank, so the
    # global matrix is still deterministic) instead of materializing the
    # full n x n matrix everywhere; diagonal dominance keeps the
    # factorization pivot-free
    rng = np.random.default_rng((seed, mpi.rank))
    mine = rng.random((rows, n))
    mine[np.arange(rows), lo + np.arange(rows)] += n
    # the local block lives in trackable application memory, but is never
    # an RMA argument — so ST-Analyzer excludes it, and only the
    # scope="all" ablation pays for instrumenting its accesses
    a = mpi.alloc("a", rows * n, datatype=DOUBLE)
    a.write(mine.reshape(-1))

    pivot = mpi.alloc("pivot", n, datatype=DOUBLE, fill=0.0)
    row_buf = mpi.alloc("row_buf", n, datatype=DOUBLE, fill=0.0)
    win = mpi.win_create(pivot)
    win.fence()

    for k in range(n - 1):
        owner = _owner_of(n, mpi.size, k)
        if mpi.rank == owner:
            pivot.write(a.read((k - lo) * n, n))  # tracked store of the row
        win.fence()  # owner's store complete before anyone Gets
        if mpi.rank != owner and hi > k + 1:
            win.get(row_buf, target=owner, target_disp=k,
                    origin_offset=k, origin_count=n - k)
        win.fence()  # Gets complete: the row is locally readable
        source = pivot if mpi.rank == owner else row_buf
        # eliminate my rows below k
        start = max(lo, k + 1)
        nrows = hi - start
        if vectorized and nrows > 0:
            # one record = one tracked load per eliminated local row
            row_k = source.read_block(k, n - k, reps=nrows)
            sub = a.read_rows((start - lo) * n + k, n - k, nrows, n)
            factors = sub[:, 0] / row_k[0]
            sub[:, 0] = factors
            sub[:, 1:] -= factors[:, None] * row_k[1:]
            a.write_rows(sub, (start - lo) * n + k, n)
        else:
            for i in range(start, hi):
                row_k = source.read(k, n - k)  # tracked load per local row
                base = (i - lo) * n
                factor = a[base + k] / row_k[0]
                a[base + k] = factor
                rest = a.read(base + k + 1, n - k - 1)
                a.write(rest - factor * row_k[1:], offset=base + k + 1)
        win.fence()  # local reads done before the next owner's store

    win.free()
    if not verify:
        return 0.0
    # residual of my block: || (L@U - A)[lo:hi] || via reconstruction
    lu_full = np.vstack(mpi.allgather(a.read(0, rows * n).reshape(rows, n)))
    lower = np.tril(lu_full, -1) + np.eye(n)
    upper = np.triu(lu_full)
    return float(np.abs((lower @ upper)[lo:hi] - mine).max())
