"""``Lennard-Jones`` — GA-over-ARMCI-style molecular dynamics (Figure 8).

The Global Arrays version of this benchmark keeps particle positions and
forces in globally addressable arrays and moves data with one-sided
get/accumulate through ARMCI (ARMCI-MPI lowers those to MPI RMA).  The
reimplementation keeps that structure:

* ``pos`` window — this rank's particle coordinates;
* ``force`` window — this rank's force accumulator;
* per step: fetch every remote rank's positions with ``Get`` (fence
  epoch), compute pairwise LJ forces locally, push partial forces to their
  owners with ``Accumulate(SUM)`` (concurrent accumulates with the same
  op/type are compatible — Table I's one BOTH-overlap cell), then
  integrate.

All local window accesses are separated from remote epochs by fences, so
the app is consistency-clean — it exists to measure profiling overhead,
not to be a bug study.
"""

from __future__ import annotations

import numpy as np

from repro.simmpi import DOUBLE, MPIContext, SUM

_DIM = 3
_EPS = 1e-3  # softening to keep the toy dynamics finite


def _lj_force(delta: np.ndarray, r2: np.ndarray) -> np.ndarray:
    """Simplified LJ force magnitude over pair displacement vectors."""
    inv2 = 1.0 / (r2 + _EPS)
    inv6 = inv2 ** 3
    return (24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2)[:, None] * delta


def lennard_jones(mpi: MPIContext, particles_per_rank: int = 4,
                  steps: int = 3, dt: float = 1e-3,
                  vectorized: bool = True):
    """Run the MD loop; returns this rank's final kinetic-ish checksum.

    ``vectorized=True`` (default) integrates and resets the force window
    with whole-slice accesses (one load + one store record each) instead
    of per-element loops (2 x width records) — coarser event granularity,
    same epoch structure, so the app stays consistency-clean either way.
    """
    ppr = particles_per_rank
    width = ppr * _DIM
    pos = mpi.alloc("pos", width, datatype=DOUBLE)
    force = mpi.alloc("force", width, datatype=DOUBLE, fill=0.0)
    remote_pos = mpi.alloc("remote_pos", width, datatype=DOUBLE)
    fpartial = mpi.alloc("fpartial", width, datatype=DOUBLE, fill=0.0)
    pos_win = mpi.win_create(pos)
    force_win = mpi.win_create(force)

    # deterministic initial lattice, offset per rank
    init = (np.arange(width, dtype=float) / width
            + float(mpi.rank)) % float(mpi.size)
    pos.write(init)
    velocity = np.zeros(width)

    pos_win.fence()
    force_win.fence()
    for _step in range(steps):
        my_pos = pos.read(0, width).reshape(ppr, _DIM)
        total_force = np.zeros((ppr, _DIM))

        pos_win.fence()  # open the position-fetch epoch
        fetched = {}
        for other in range(mpi.size):
            if other == mpi.rank:
                continue
            pos_win.get(remote_pos, target=other, origin_count=width)
            # NOTE: read after the epoch closes would batch all targets;
            # with one staging buffer we must drain per target, so close
            # the epoch now and reopen (fence per partner keeps the code
            # simple and adds realistic synchronization traffic)
            pos_win.fence()
            fetched[other] = remote_pos.read(0, width).reshape(ppr, _DIM)
        pos_win.fence()  # every rank leaves the fetch phase together

        # pairwise forces: mine x mine, then mine x each remote block
        for i in range(ppr):
            delta = my_pos - my_pos[i]
            r2 = (delta ** 2).sum(axis=1)
            r2[i] = np.inf
            total_force[i] -= _lj_force(delta, r2).sum(axis=0)
        force_win.fence()  # open the accumulate epoch
        for other, block in fetched.items():
            contrib = np.zeros((ppr, _DIM))
            for i in range(ppr):
                delta = block - my_pos[i]
                r2 = (delta ** 2).sum(axis=1)
                pair = _lj_force(delta, r2)
                total_force[i] -= pair.sum(axis=0)
                contrib += pair
            fpartial.write(contrib.reshape(width))
            force_win.accumulate(fpartial, target=other, op=SUM,
                                 origin_count=width)
            force_win.fence()  # fpartial is reusable after the flush
        force_win.fence()  # all accumulates landed everywhere

        # integrate: own force window += my own contribution, then read
        if vectorized:
            force.write_block(force.read_block(0, width)
                              + total_force.reshape(width))
        else:
            for i in range(width):
                force[i] = force[i] + float(total_force.reshape(width)[i])
        velocity += dt * force.read(0, width)
        pos.write(pos.read(0, width) + dt * velocity)
        if vectorized:
            force.write_block(np.zeros(width))  # reset accumulator
        else:
            for i in range(width):
                force[i] = 0.0  # reset accumulator (tracked stores)
        force_win.fence()  # local resets precede the next epoch's accs
        pos_win.fence()  # position updates precede the next fetch epoch

    checksum = float(np.abs(velocity).sum())
    pos_win.free()
    force_win.free()
    return checksum
