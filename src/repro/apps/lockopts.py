"""``lockopts`` — the MPICH RMA test-case bug (Table II, row 3; case 2).

Extracted from the ``lockopts`` test in the MPICH test suite (svn r10308):
rank 0 performs direct load/store accesses on its own window memory
(section A of the paper's Figure 7) while rank 1 accesses the same window
region with ``MPI_Put``/``MPI_Get`` under passive-target locks (section D).
The remaining ranks work in private window slots, which is why the bug
needs tooling to spot at 64 processes.  The concurrent accesses make the
program "yield nondeterministic results".

Two variants of the defect, as in the paper:

* ``lock_type="shared"`` — the revised bug: the remote epochs use shared
  locks, so nothing serializes them against rank 0's local accesses —
  a hard **error**;
* ``lock_type="exclusive"`` — the original bug: rank 0 guards its local
  accesses with an exclusive self-lock and the origin uses exclusive
  locks too, so every access is serialized, but in nondeterministic
  order — MC-Checker reports a **warning** and "relies on programmers to
  identify its buggy scenario" (section VII-A-2).

The fixed variant separates section A from section D with a barrier, so
the accesses fall into different concurrent regions.
"""

from __future__ import annotations

from repro.simmpi import (
    INT, LOCK_EXCLUSIVE, LOCK_SHARED, MPIContext,
)

#: window cells 0..1 are the contended "header" rank 0 works on; each rank
#: r >= 2 owns private cell r.
HEADER_CELLS = 2


def _section_a(mpi: MPIContext, win, wbuf, round_no: int,
               exclusive: bool) -> int:
    """Rank 0's direct accesses to its own window memory (Figure 7, A)."""
    if exclusive:
        win.lock(0, LOCK_EXCLUSIVE)
        wbuf[0] = round_no + 1       # store into the contended header
        value = wbuf[1]              # load from the contended header
        win.unlock(0)
    else:
        wbuf[0] = round_no + 1       # store (completely unprotected)
        value = wbuf[1]              # load
    return value


def _section_d(mpi: MPIContext, win, src, dst, round_no: int,
               lock_type: str) -> None:
    """Rank 1's remote accesses to the contended header (Figure 7, D)."""
    src[0] = 10 * mpi.rank + round_no
    win.lock(0, lock_type)
    # Put spanning both header cells: races with rank 0's store (ERROR
    # cell: store/Put conflict even without overlap) and load (NONOV)
    win.put(src, target=0, target_disp=0, origin_count=1)
    win.unlock(0)
    win.lock(0, lock_type)
    win.get(dst, target=0, target_disp=1, origin_count=1)
    win.unlock(0)


def _private_work(mpi: MPIContext, win, src, dst, round_no: int,
                  lock_type: str) -> None:
    """Ranks >= 2 use their own private slot — no conflicts."""
    slot = HEADER_CELLS + mpi.rank
    src[0] = 10 * mpi.rank + round_no
    win.lock(0, lock_type)
    win.put(src, target=0, target_disp=slot, origin_count=1)
    win.unlock(0)
    win.lock(0, lock_type)
    win.get(dst, target=0, target_disp=slot, origin_count=1)
    win.unlock(0)


def lockopts(mpi: MPIContext, buggy: bool = True,
             lock_type: str = LOCK_SHARED, rounds: int = 2):
    """Run the lockopts pattern; returns rank 0's observed header values."""
    exclusive = lock_type == LOCK_EXCLUSIVE
    wbuf = mpi.alloc("wbuf", HEADER_CELLS + mpi.size + 1, datatype=INT,
                     fill=0)
    src = mpi.alloc("src", 1, datatype=INT)
    dst = mpi.alloc("dst", 1, datatype=INT)
    win = mpi.win_create(wbuf)
    mpi.barrier()

    observed = []
    for round_no in range(rounds):
        if buggy:
            # sections A and D run concurrently (the defect)
            if mpi.rank == 0:
                observed.append(
                    _section_a(mpi, win, wbuf, round_no, exclusive))
            elif mpi.rank == 1:
                _section_d(mpi, win, src, dst, round_no, lock_type)
            else:
                _private_work(mpi, win, src, dst, round_no, lock_type)
            mpi.barrier()
        else:
            # fixed: a barrier separates the remote epochs from rank 0's
            # local accesses
            if mpi.rank == 1:
                _section_d(mpi, win, src, dst, round_no, lock_type)
            elif mpi.rank >= 2:
                _private_work(mpi, win, src, dst, round_no, lock_type)
            mpi.barrier()
            if mpi.rank == 0:
                observed.append(
                    _section_a(mpi, win, wbuf, round_no, exclusive))
            mpi.barrier()

    mpi.barrier()
    win.free()
    return observed
