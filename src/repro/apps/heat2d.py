"""``heat2d`` — 2-D heat diffusion over a Global Array (extension app).

A realistic PGAS stencil: the temperature field lives in a
:class:`~repro.ga.GlobalArray2D` distributed by row blocks.  Each step,
every rank fetches the row above and below its block with strided section
``get``s, applies a 5-point relaxation over its rows, and writes the block
back; ``sync`` separates the read and write phases.

The ``buggy`` variant writes its block back *before* the sync, so a
neighbour's halo ``get`` can observe a half-updated field — a GA-level
read/write race that MC-Checker reports at the section-call granularity.
"""

from __future__ import annotations

import numpy as np

from repro.ga import GlobalArray2D
from repro.simmpi import MPIContext

_ALPHA = 0.2


def heat2d(mpi: MPIContext, rows: int = 12, cols: int = 8,
           steps: int = 3, buggy: bool = False):
    """Diffuse a hot spot; returns this rank's final block (ndarray)."""
    field = GlobalArray2D.create(mpi, "field", rows, cols)
    lo, hi = field.distribution()

    # initial condition: a hot row near the top of the global domain
    block = np.zeros((hi - lo, cols))
    block[np.arange(lo, hi) == 1] = 100.0
    field.set_local(block)
    field.sync()

    for _step in range(steps):
        # read phase: my block plus both halo rows in one spanning
        # section get — the same per-owner segment Gets are issued, but
        # one strided call replaces three
        glo, ghi = max(lo - 1, 0), min(hi + 1, rows)
        fetched = field.get(glo, ghi, 0, cols)
        mine = fetched[lo - glo:lo - glo + (hi - lo)]
        above = fetched[:1] if lo > 0 else mine[:1]
        below = fetched[-1:] if hi < rows else mine[-1:]
        stacked = np.vstack([above, mine, below])

        # 5-point relaxation on interior columns of my rows
        new = stacked[1:-1].copy()
        lap = (stacked[:-2, 1:-1] + stacked[2:, 1:-1]
               + stacked[1:-1, :-2] + stacked[1:-1, 2:]
               - 4.0 * stacked[1:-1, 1:-1])
        new[:, 1:-1] += _ALPHA * lap

        if not buggy:
            field.sync()  # everyone finished reading before anyone writes
        field.put(lo, hi, 0, cols, new)
        field.sync()

    result = field.get(lo, hi, 0, cols)
    field.sync()
    field.destroy()
    return result
