"""``Boltzmann`` — a D1Q3 lattice-Boltzmann strip solver (Figure 8).

The GA Boltzmann benchmark advances a lattice gas on a distributed grid.
This reimplementation uses a 1-D strip decomposition with three particle
distributions (rest, +x, -x) per cell, stored interleaved in a window with
one ghost cell per side.  Per step:

1. collide locally (vectorized relaxation toward equilibrium, through the
   tracked buffer);
2. stage the post-collide edge cells, fence, ``Put`` them into both
   neighbours' ghost cells, fence — a halo exchange identical in
   structure to the paper's stencil workloads;
3. stream: shift the +x/-x populations one cell (ghosts supply the
   neighbour fluxes), with reflective walls at the global edges.

Race-free: all local window accesses sit in epochs with no remote
operation in flight, and mass is conserved (tested).
"""

from __future__ import annotations

import numpy as np

from repro.simmpi import DOUBLE, MPIContext

_Q = 3  # rest, +x, -x
_OMEGA = 1.2  # relaxation rate


def boltzmann(mpi: MPIContext, cells_per_rank: int = 16, steps: int = 3):
    """Advance the lattice; returns this rank's final mass (conserved-ish)."""
    cells = cells_per_rank
    width = (cells + 2) * _Q  # ghost | interior cells | ghost
    lattice = mpi.alloc("lattice", width, datatype=DOUBLE, fill=0.0)
    halo_l = mpi.alloc("halo_l", _Q, datatype=DOUBLE)
    halo_r = mpi.alloc("halo_r", _Q, datatype=DOUBLE)
    win = mpi.win_create(lattice)

    # deterministic initial density bump in the middle of the global domain
    init = np.zeros(width)
    for c in range(1, cells + 1):
        gx = mpi.rank * cells + (c - 1)
        rho = 1.0 + 0.5 * np.exp(-((gx - mpi.size * cells / 2) ** 2) / 8.0)
        init[c * _Q + 0] = 4.0 * rho / 6.0
        init[c * _Q + 1] = rho / 6.0
        init[c * _Q + 2] = rho / 6.0
    lattice.write(init)

    left = mpi.rank - 1 if mpi.rank > 0 else None
    right = mpi.rank + 1 if mpi.rank < mpi.size - 1 else None

    win.fence()
    for _step in range(steps):
        # collide: relax the interior toward local equilibrium, vectorized
        # over whole cells (one tracked load + store per step and cell
        # block; local epoch: no remote operation is in flight here)
        interior = lattice.read(_Q, cells * _Q).reshape(cells, _Q)
        f0, fp, fm = interior[:, 0], interior[:, 1], interior[:, 2]
        rho = f0 + fp + fm
        vel = np.divide(fp - fm, rho, out=np.zeros_like(rho),
                        where=rho > 0)
        eq = np.empty_like(interior)
        eq[:, 0] = 4.0 * rho / 6.0
        eq[:, 1] = rho * (1.0 + 3.0 * vel) / 6.0
        eq[:, 2] = rho * (1.0 - 3.0 * vel) / 6.0
        lattice.write((interior + _OMEGA * (eq - interior)).reshape(-1),
                      offset=_Q)

        # stage the post-collide edge cells before the exchange epoch opens
        if left is not None:
            halo_l.write(lattice.read(1 * _Q, _Q))
        if right is not None:
            halo_r.write(lattice.read(cells * _Q, _Q))
        win.fence()  # open the halo-exchange epoch
        if left is not None:
            win.put(halo_l, target=left, target_disp=(cells + 1) * _Q,
                    origin_count=_Q)
        if right is not None:
            win.put(halo_r, target=right, target_disp=0, origin_count=_Q)
        win.fence()  # ghosts carry the neighbours' post-collide edges

        # stream: shift +x and -x populations (vectorized, tracked slices)
        snapshot = lattice.read(0, width).reshape(cells + 2, _Q)
        streamed = snapshot.copy()
        streamed[1:, 1] = snapshot[:-1, 1]   # +x moves right
        streamed[:-1, 2] = snapshot[1:, 2]   # -x moves left
        # reflective walls at the global domain edges
        if left is None:
            streamed[1, 1] = snapshot[1, 2]
        if right is None:
            streamed[cells, 2] = snapshot[cells, 1]
        lattice.write(streamed.reshape(width))

    mass = float(lattice.read(_Q, cells * _Q).sum())
    win.free()
    return mass
