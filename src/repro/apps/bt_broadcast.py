"""``BT-broadcast`` — binary-tree broadcast over one-sided MPI (Table II,
row 2; case study 1).

The algorithm (from the appendix of Luecke et al.): ranks form a binary
tree; each non-root polls a flag on its parent with ``MPI_Get`` until the
parent signals the payload is ready, then fetches the payload and raises
its own flag for its children.

The real-world bug: the polling loop issues the Get and tests the local
``check`` variable *inside the same lock epoch* —

.. code-block:: none

    1  Win_lock(parent)
    3  check = 0                  # store
    4  while check == 0:          # load — races with the pending Get
    5      Win_get(check, parent)
    6  ...
    8  Win_unlock(parent)         # Gets complete only here

Since the Get is nonblocking, ``check`` may never be updated inside the
epoch and "the program will execute the while loop forever".  The buggy
variant here bounds the spin (``max_spin``) so the simulation terminates
even under lazy delivery; with ``delivery="lazy"`` it genuinely livelocks
until the bound trips, reproducing the paper's hang symptom.

The fix closes the epoch around every poll, making each Get's result
visible before the test.
"""

from __future__ import annotations

from repro.simmpi import DOUBLE, INT, LOCK_SHARED, MPIContext

PAYLOAD_WORDS = 16


def _poll_parent_buggy(mpi: MPIContext, flag_win, check, parent: int,
                       max_spin: int) -> bool:
    """The defective poll: Get and load of ``check`` share one epoch."""
    flag_win.lock(parent, LOCK_SHARED)            # line 1
    check[0] = 0                                  # line 3: store
    spins = 0
    hung = False
    while check[0] == 0:                          # line 4: load (races)
        flag_win.get(check, target=parent,        # line 5
                     origin_count=1)
        spins += 1
        if spins >= max_spin:                     # livelock guard: the
            hung = True                           # real program hangs here
            break
    flag_win.unlock(parent)                       # line 8
    return hung


READY_TAG = 77


def _children(rank: int, size: int):
    for child in (2 * rank + 1, 2 * rank + 2):
        if child < size:
            yield child


def bt_broadcast(mpi: MPIContext, buggy: bool = True, max_spin: int = 32):
    """Broadcast rank 0's payload down a binary tree; returns
    ``(payload_ok, hung)`` per rank.

    Buggy variant: children spin on a one-sided flag with the defective
    poll above.  Fixed variant: the parent notifies each child with a
    two-sided message once its payload window is ready — the notification
    orders the child's Get after the parent's stores, so no polling (and
    no race) remains.
    """
    flag = mpi.alloc("flag", 1, datatype=INT, fill=0)
    data = mpi.alloc("data", PAYLOAD_WORDS, datatype=DOUBLE, fill=0.0)
    check = mpi.alloc("check", 1, datatype=INT, fill=0)
    payload = mpi.alloc("payload", PAYLOAD_WORDS, datatype=DOUBLE)
    flag_win = mpi.win_create(flag)
    data_win = mpi.win_create(data)

    if mpi.rank == 0:
        data.write([float(i) for i in range(PAYLOAD_WORDS)])
        flag.store(0, 1)
    mpi.barrier()

    hung = False
    if mpi.rank != 0:
        parent = (mpi.rank - 1) // 2
        if buggy:
            hung = _poll_parent_buggy(mpi, flag_win, check, parent, max_spin)
        else:
            mpi.recv(source=parent, tag=READY_TAG)  # parent's data is ready
        # fetch the payload from the parent, then publish our own copy
        data_win.lock(parent, LOCK_SHARED)
        data_win.get(payload, target=parent, origin_count=PAYLOAD_WORDS)
        data_win.unlock(parent)
        data.write(payload.read())
        if buggy:
            # raise own flag through the window so children's Gets see it
            # (itself concurrent with those Gets — part of the defect)
            one = mpi.alloc("one", 1, datatype=INT, fill=1)
            flag_win.lock(mpi.rank, LOCK_SHARED)
            flag_win.put(one, target=mpi.rank, origin_count=1)
            flag_win.unlock(mpi.rank)
    if not buggy:
        for child in _children(mpi.rank, mpi.size):
            mpi.send("ready", dest=child, tag=READY_TAG)

    mpi.barrier()
    payload_ok = data.read().tolist() == [float(i)
                                          for i in range(PAYLOAD_WORDS)]
    flag_win.free()
    data_win.free()
    return payload_ok, hung
