"""``ping-pong`` — ARMCI-MPI-style one-sided ping-pong (Table II, row 4).

Two ranks bounce a message buffer: the origin Puts its payload into the
peer's window, fences, the peer increments and Puts it back.  Run as a
latency benchmark (this is the pattern of the ARMCI-MPI ping-pong in the
MPICH package).

Injected bug (the paper evaluates two injected defects): the origin
*reuses the send buffer* immediately after the Put, inside the same fence
epoch — the same defect class as the ADLB stack-buffer anecdote of
section II-B.  Under lazy delivery the payload actually transmitted is the
corrupted one, which ``verify=True`` detects at the peer.
"""

from __future__ import annotations

from repro.simmpi import DOUBLE, MPIContext

MSG_WORDS = 8


def pingpong(mpi: MPIContext, buggy: bool = True, iterations: int = 4,
             verify: bool = False):
    """Bounce a payload between ranks 0 and 1; returns per-rank
    ``(corrupt_observations, last_value)``."""
    if mpi.size < 2:
        raise ValueError("pingpong needs at least 2 ranks")
    court = mpi.alloc("court", MSG_WORDS, datatype=DOUBLE, fill=-1.0)
    ball = mpi.alloc("ball", MSG_WORDS, datatype=DOUBLE, fill=0.0)
    win = mpi.win_create(court)
    win.fence()

    peer = 1 - mpi.rank
    corrupt = 0
    playing = mpi.rank in (0, 1)
    for it in range(iterations):
        serving = playing and (it % 2 == mpi.rank)
        if serving:
            ball.write([float(it)] * MSG_WORDS)
            win.put(ball, target=peer, origin_count=MSG_WORDS)
            if buggy:
                # reuse of the origin buffer before the epoch closes: the
                # Put may transmit this value instead of the serve
                ball[0] = -42.0
        win.fence()
        if playing and not serving:
            received = court.read(0, MSG_WORDS)
            if verify and any(v != float(it) for v in received):
                corrupt += 1
        win.fence()
        if buggy or not serving:
            pass
        else:
            # fixed code reuses the buffer only after the closing fence
            ball[0] = -42.0

    last = court.read(0, 1)[0] if playing else None
    win.free()
    return corrupt, last
