"""The paper's evaluated applications, reimplemented on the simulator.

Bug-study applications (Table II): :mod:`emulate`, :mod:`bt_broadcast`,
:mod:`lockopts`, :mod:`pingpong`, :mod:`jacobi` — each with a ``buggy``
parameter selecting the documented defect or the corrected code.

Overhead/scaling applications (Figures 8-10): :mod:`lennard_jones`,
:mod:`scf`, :mod:`boltzmann`, :mod:`skampi`, :mod:`lu`.

:data:`BUG_CASES` is the machine-readable Table II row list consumed by
``benchmarks/bench_table2_detection.py``; :data:`OVERHEAD_APPS` the
Figure 8 workload list.
"""

from repro.apps.registry import (
    BUG_CASES, OVERHEAD_APPS, BugCase, OverheadApp, bug_case, overhead_app,
)

__all__ = [
    "BUG_CASES", "OVERHEAD_APPS", "BugCase", "OverheadApp",
    "bug_case", "overhead_app",
]
