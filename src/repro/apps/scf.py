"""``SCF`` — a self-consistent-field iteration in the Global Arrays style
(Figure 8).

The GA SCF benchmark builds a Fock matrix from a distributed density
matrix: each rank owns a block of the density (``dens`` window) and of the
Fock matrix (``fock`` window).  Per iteration:

1. fetch every remote density block with ``Get`` (fence epochs);
2. contract: ``F_local = sum_j K[local, j] * D_j`` (vectorized);
3. write the new local Fock block (tracked stores, fenced off from the
   remote epochs);
4. derive the next density block and check convergence with an
   ``Allreduce`` over the energy change.

Race-free by construction; exercised for profiling overhead.
"""

from __future__ import annotations

import numpy as np

from repro.simmpi import DOUBLE, MPIContext


def scf(mpi: MPIContext, basis_per_rank: int = 4, iterations: int = 3):
    """Run the SCF loop; returns (converged_energy, iterations_run)."""
    nb = basis_per_rank
    dens = mpi.alloc("dens", nb, datatype=DOUBLE)
    fock = mpi.alloc("fock", nb, datatype=DOUBLE, fill=0.0)
    remote_dens = mpi.alloc("remote_dens", nb, datatype=DOUBLE)
    dens_win = mpi.win_create(dens)
    fock_win = mpi.win_create(fock)

    # deterministic "two-electron integral" couplings between my block and
    # each remote block
    rng = np.random.default_rng(100 + mpi.rank)
    couplings = {
        other: rng.random((nb, nb)) / (1.0 + abs(mpi.rank - other))
        for other in range(mpi.size)
    }
    dens.write(np.linspace(0.1, 1.0, nb) + 0.01 * mpi.rank)

    energy = 0.0
    it = 0
    dens_win.fence()
    fock_win.fence()
    for it in range(1, iterations + 1):
        my_dens = dens.read(0, nb)
        new_fock = couplings[mpi.rank] @ my_dens

        dens_win.fence()  # open remote-density fetch epoch
        for other in range(mpi.size):
            if other == mpi.rank:
                continue
            dens_win.get(remote_dens, target=other, origin_count=nb)
            dens_win.fence()  # drain the staging buffer per partner
            new_fock = new_fock + couplings[other] @ remote_dens.read(0, nb)
        dens_win.fence()  # all ranks leave the fetch phase

        # store the new Fock block element-wise (tracked stores)
        for i in range(nb):
            fock[i] = float(new_fock[i])

        # density update with damping; energy = <D, F>
        new_energy = float(my_dens @ new_fock)
        delta = abs(new_energy - energy)
        energy = new_energy
        mixed = 0.7 * my_dens + 0.3 * new_fock / (np.abs(new_fock).max()
                                                  + 1e-12)
        dens.write(mixed)
        total_delta = mpi.allreduce([delta], op="SUM")
        dens_win.fence()  # density stores precede the next fetch epoch
        if float(total_delta[0]) < 1e-9:
            break

    dens_win.free()
    fock_win.free()
    return energy, it
