"""Machine-readable experiment registry: Table II rows and Figure 8 apps.

Each :class:`BugCase` mirrors one row of the paper's Table II: the
application, the number of processes used in the paper's experiment, where
the error lives (within an epoch / across processes), its root cause
(which conflicting operation pair), and the failure symptom.  The
detection benchmark replays every case and checks MC-Checker's findings
against the expected root cause.

Applications are referenced by dotted path and resolved lazily so that
importing the registry stays cheap.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Optional, Tuple


def _resolve(dotted: str) -> Callable:
    module_name, attr = dotted.rsplit(":", 1)
    return getattr(importlib.import_module(module_name), attr)


@dataclass(frozen=True)
class BugCase:
    """One Table II row."""

    name: str
    app_path: str
    nranks: int
    buggy_params: Tuple[Tuple[str, Any], ...]
    fixed_params: Tuple[Tuple[str, Any], ...]
    #: "within an epoch" | "across processes"
    error_location: str
    #: access-kind pair expected in at least one finding
    root_cause: FrozenSet[str]
    failure_symptom: str
    #: expected severity of the principal finding
    expected_severity: str = "error"
    #: real-world vs injected (the paper evaluates 3 + 2)
    provenance: str = "real-world"

    @property
    def app(self) -> Callable:
        return _resolve(self.app_path)

    def params(self, buggy: bool) -> Dict[str, Any]:
        return dict(self.buggy_params if buggy else self.fixed_params)


@dataclass(frozen=True)
class OverheadApp:
    """One Figure 8 workload."""

    name: str
    app_path: str
    nranks: int
    params: Tuple[Tuple[str, Any], ...] = ()

    @property
    def app(self) -> Callable:
        return _resolve(self.app_path)

    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)


BUG_CASES: Tuple[BugCase, ...] = (
    BugCase(
        name="emulate",
        app_path="repro.apps.emulate:emulate",
        nranks=2,
        buggy_params=(("buggy", True),),
        fixed_params=(("buggy", False),),
        error_location="within an epoch",
        root_cause=frozenset({"get", "load", "store"}),
        failure_symptom="stale value read / update lost",
        provenance="real-world",
    ),
    BugCase(
        name="BT-broadcast",
        app_path="repro.apps.bt_broadcast:bt_broadcast",
        nranks=2,
        buggy_params=(("buggy", True),),
        fixed_params=(("buggy", False),),
        error_location="within an epoch",
        root_cause=frozenset({"get", "load"}),
        failure_symptom="infinite while loop",
        provenance="real-world",
    ),
    BugCase(
        name="lockopts",
        app_path="repro.apps.lockopts:lockopts",
        nranks=64,
        buggy_params=(("buggy", True), ("lock_type", "shared")),
        fixed_params=(("buggy", False),),
        error_location="across processes",
        root_cause=frozenset({"put", "get", "load", "store"}),
        failure_symptom="nondeterministic results",
        provenance="real-world",
    ),
    BugCase(
        name="ping-pong",
        app_path="repro.apps.pingpong:pingpong",
        nranks=2,
        buggy_params=(("buggy", True),),
        fixed_params=(("buggy", False),),
        error_location="within an epoch",
        root_cause=frozenset({"put", "store"}),
        failure_symptom="corrupted payload transmitted",
        provenance="injected",
    ),
    BugCase(
        name="jacobi",
        app_path="repro.apps.jacobi:jacobi",
        nranks=4,
        buggy_params=(("buggy", True),),
        fixed_params=(("buggy", False),),
        error_location="across processes",
        root_cause=frozenset({"put", "load", "store"}),
        failure_symptom="stale ghost cells / wrong results",
        provenance="injected",
    ),
)

#: The ADLB/GFMC stack-buffer anecdote of section II-B — not a Table II
#: row, but the paper's motivating production incident.
ADLB_ANECDOTE = BugCase(
    name="adlb",
    app_path="repro.apps.adlb:adlb",
    nranks=3,
    buggy_params=(("buggy", True),),
    fixed_params=(("buggy", False),),
    error_location="within an epoch",
    root_cause=frozenset({"put", "store"}),
    failure_symptom="stack frame transmitted after overwrite (BG/Q)",
    provenance="real-world",
)

#: PSCW exposure-epoch race (the Figure 2d class under generalized
#: active-target synchronization) — exercises post/start/complete/wait.
SWEEP_PSCW = BugCase(
    name="sweep-pscw",
    app_path="repro.apps.sweep_pscw:sweep_pscw",
    nranks=3,
    buggy_params=(("buggy", True),),
    fixed_params=(("buggy", False),),
    error_location="across processes",
    root_cause=frozenset({"put", "load"}),
    failure_symptom="stale face read during exposure epoch",
    provenance="injected",
)

#: The original (exclusive-lock) lockopts defect: detected as a warning.
LOCKOPTS_EXCLUSIVE = BugCase(
    name="lockopts-exclusive",
    app_path="repro.apps.lockopts:lockopts",
    nranks=64,
    buggy_params=(("buggy", True), ("lock_type", "exclusive")),
    fixed_params=(("buggy", False),),
    error_location="across processes",
    root_cause=frozenset({"put", "get", "load", "store"}),
    failure_symptom="nondeterministic results (serialized)",
    expected_severity="warning",
    provenance="real-world",
)

OVERHEAD_APPS: Tuple[OverheadApp, ...] = (
    OverheadApp("Lennard-Jones", "repro.apps.lennard_jones:lennard_jones",
                nranks=64, params=(("particles_per_rank", 4), ("steps", 3))),
    OverheadApp("SCF", "repro.apps.scf:scf",
                nranks=64, params=(("basis_per_rank", 4), ("iterations", 3))),
    OverheadApp("Boltzmann", "repro.apps.boltzmann:boltzmann",
                nranks=64, params=(("cells_per_rank", 16), ("steps", 3))),
    OverheadApp("SKaMPI", "repro.apps.skampi:skampi",
                nranks=64, params=(("sizes", (8, 64, 256)),
                                   ("repeats", 3))),
    OverheadApp("LU", "repro.apps.lu:lu",
                nranks=64, params=(("n", 128),)),
)


#: Cases beyond the paper's Table II, bundled for the CLI and examples.
EXTRA_CASES: Tuple[BugCase, ...] = (LOCKOPTS_EXCLUSIVE, ADLB_ANECDOTE,
                                    SWEEP_PSCW)


def bug_case(name: str) -> BugCase:
    for case in BUG_CASES + EXTRA_CASES:
        if case.name == name:
            return case
    raise KeyError(f"unknown bug case {name!r}")


def overhead_app(name: str) -> OverheadApp:
    for app in OVERHEAD_APPS:
        if app.name == name:
            return app
    raise KeyError(f"unknown overhead app {name!r}")
