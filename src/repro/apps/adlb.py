"""``adlb`` — the ADLB/GFMC stack-buffer anecdote (paper section II-B).

An older version of the Asynchronous Dynamic Load Balancing library "used
MPI_Put to transfer data from a stack variable in a function and returned
from the function without waiting for the completion of that operation,
since the epoch was closed later elsewhere in the program.  This procedure
worked correctly for several years ... on most platforms small variables
are copied into internal temporary communication buffers" — until Blue
Gene/Q ran out of eager buffers and transmitted later, by which time "the
function stack was overwritten by other functions, resulting in data
corruption".

This reimplementation models a work-queue server: workers push work
descriptors into the server's queue window with ``MPI_Put`` issued from a
helper function's *stack buffer*.  The buggy variant returns from the
helper (and lets later helpers reuse the same stack slot) before the epoch
closes — harmless under eager delivery, corrupting under lazy delivery,
and flagged by MC-Checker either way.  The fix keeps the payload alive in
a dedicated send buffer until the epoch closes.

This is the delivery-policy engine's reason to exist: the same binary
behaviour ("latent for years, bites on one machine generation") falls out
of switching ``delivery="eager"`` to ``delivery="lazy"``.
"""

from __future__ import annotations

from repro.simmpi import DOUBLE, MPIContext

SLOT_WORDS = 4  # one work descriptor


def _push_work_buggy(mpi: MPIContext, win, stack, slot: int,
                     payload: float) -> None:
    """Put from a 'stack' buffer and return immediately (the defect).

    ``stack`` models the helper's stack frame: every call reuses it, like
    successive calls reusing the same stack memory.
    """
    for i in range(SLOT_WORDS):
        stack[i] = payload + i
    win.put(stack, target=0, target_disp=slot * SLOT_WORDS,
            origin_count=SLOT_WORDS)
    # returns with the Put possibly still reading `stack` -- the caller's
    # next helper invocation will overwrite the frame


def _push_work_fixed(mpi: MPIContext, win, sendbuf, slot: int,
                     payload: float) -> None:
    """Put from a persistent send buffer dedicated to this slot."""
    for i in range(SLOT_WORDS):
        sendbuf[slot * SLOT_WORDS + i] = payload + i
    win.put(sendbuf, target=0, target_disp=slot * SLOT_WORDS,
            origin_offset=slot * SLOT_WORDS, origin_count=SLOT_WORDS)


def adlb(mpi: MPIContext, buggy: bool = True, pushes: int = 3):
    """Run the work-queue pattern; rank 0 (the server) returns the queue
    contents, workers return None."""
    slots = (mpi.size - 1) * pushes
    queue = mpi.alloc("queue", max(slots, 1) * SLOT_WORDS,
                      datatype=DOUBLE, fill=-1.0)
    stack = mpi.alloc("stack", SLOT_WORDS, datatype=DOUBLE)
    sendbuf = mpi.alloc("sendbuf", max(slots, 1) * SLOT_WORDS,
                        datatype=DOUBLE)
    win = mpi.win_create(queue)

    win.fence()  # the epoch is opened once; ADLB closed it "later
    #               elsewhere in the program"
    if mpi.rank != 0:
        for k in range(pushes):
            slot = (mpi.rank - 1) * pushes + k
            payload = float(100 * mpi.rank + 10 * k)
            if buggy:
                _push_work_buggy(mpi, win, stack, slot, payload)
            else:
                _push_work_fixed(mpi, win, sendbuf, slot, payload)
    win.fence()  # ...here: all Puts complete only now

    contents = queue.read(0, slots * SLOT_WORDS).tolist() \
        if mpi.rank == 0 else None
    win.free()
    return contents


def expected_queue(nranks: int, pushes: int = 3):
    """The uncorrupted queue contents."""
    out = []
    for rank in range(1, nranks):
        for k in range(pushes):
            payload = float(100 * rank + 10 * k)
            out.extend(payload + i for i in range(SLOT_WORDS))
    return out
