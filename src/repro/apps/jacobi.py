"""``jacobi`` — one-sided Jacobi iteration (Table II, row 5).

1-D domain decomposition of a Poisson relaxation: each rank owns a strip
of the grid plus two ghost cells, exposed in a window.  Each iteration:

1. fence — open the exchange epoch;
2. Put boundary values into both neighbours' ghost cells;
3. fence — close the exchange epoch;
4. local sweep (reads ghosts + interior, writes interior).

Injected bug: the second fence is skipped, so the local sweep reads and
writes the window while neighbours' Puts are still in flight — a
cross-process Put vs local load/store conflict (the Figure 2d class).
Under lazy delivery the sweep genuinely reads stale ghosts.
"""

from __future__ import annotations

import numpy as np

from repro.simmpi import DOUBLE, MPIContext

#: window layout: [ghost_left | interior ... | ghost_right]
GHOSTS = 2


def jacobi(mpi: MPIContext, buggy: bool = True, interior: int = 16,
           iterations: int = 4):
    """Run the relaxation; returns this rank's final strip (list)."""
    width = interior + GHOSTS
    grid = mpi.alloc("grid", width, datatype=DOUBLE, fill=0.0)
    # one staging buffer per direction: both Puts are pending in the same
    # epoch, so sharing a buffer would itself be a consistency error
    edge_l = mpi.alloc("edge_l", 1, datatype=DOUBLE)
    edge_r = mpi.alloc("edge_r", 1, datatype=DOUBLE)
    win = mpi.win_create(grid)

    # fixed boundary condition: global left edge = 1.0
    if mpi.rank == 0:
        grid[0] = 1.0
    left = mpi.rank - 1 if mpi.rank > 0 else None
    right = mpi.rank + 1 if mpi.rank < mpi.size - 1 else None

    win.fence()
    for _ in range(iterations):
        # 1-2: exchange boundary cells into neighbours' ghosts
        if left is not None:
            edge_l[0] = grid[1]
            win.put(edge_l, target=left, target_disp=width - 1,
                    origin_count=1)
        if right is not None:
            edge_r[0] = grid[interior]
            win.put(edge_r, target=right, target_disp=0, origin_count=1)
        if not buggy:
            win.fence()  # 3: the synchronization the bug omits
        # 4: local sweep over the interior (vectorized API: same single
        # slice record as read/write, minus the resolve/copy indirection)
        strip = grid.read_block(0, width)
        new = 0.5 * (strip[:-2] + strip[2:])
        grid.write_block(new, offset=1)
        win.fence()  # end of iteration (the buggy code's only fence)
    result = grid.read_block(0, width).tolist()
    win.free()
    return result
