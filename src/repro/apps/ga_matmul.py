"""``ga_matmul`` — SUMMA-style distributed matrix multiply on Global Arrays.

A realistic Global-Arrays workload in the style of the GA tutorial codes:
``C = A @ B`` with all three matrices block-row distributed as
:class:`~repro.ga.GlobalArray2D`.  Each rank computes its own row block of
``C``:

1. read my row block of ``A`` locally;
2. for each owner ``r``: ``get`` the corresponding row block of ``B``
   (a strided 2-D section fetch lowered to a ``Type_vector`` Get) and
   accumulate ``A[:, rows_r] @ B[rows_r, :]`` into a local partial;
3. write the finished block into ``C`` with a section ``put``;
4. ``sync``.

Race-free by construction (every remote read targets quiescent data,
every write lands in an exclusively-owned block) — and checkable: the
``buggy=True`` variant skips the sync between initializing ``B`` and the
gets, the classic "forgot GA_Sync after initialization" defect.
"""

from __future__ import annotations

import numpy as np

from repro.ga import GlobalArray2D
from repro.simmpi import MPIContext


def ga_matmul(mpi: MPIContext, n: int = 8, buggy: bool = False,
              verify: bool = True):
    """Multiply two deterministic n x n matrices; returns the max abs
    error of this rank's C block versus numpy (0.0 when verify=False)."""
    ga_a = GlobalArray2D.create(mpi, "ga_a", n, n)
    ga_b = GlobalArray2D.create(mpi, "ga_b", n, n)
    ga_c = GlobalArray2D.create(mpi, "ga_c", n, n)

    lo, hi = ga_a.distribution()
    rows = np.arange(lo, hi)[:, None]
    cols = np.arange(n)[None, :]
    a_block = np.sin(rows + 2.0 * cols)
    b_block = np.cos(2.0 * rows - cols)
    ga_a.set_local(a_block)
    ga_b.set_local(b_block)
    if not buggy:
        ga_a.sync()  # initialization visible before anyone reads
        ga_b.sync()

    # one spanning section get: the per-owner strided segment fetches
    # are still issued under the hood (same RMA ops, same locks), but the
    # owner loop and partial-sum accumulation collapse into one matmul
    b_all = ga_b.get(0, n, 0, n)
    partial = a_block @ b_all
    ga_c.put(lo, hi, 0, n, partial)
    ga_c.sync()

    error = 0.0
    if verify:
        full_a = np.sin(np.arange(n)[:, None] + 2.0 * np.arange(n)[None, :])
        full_b = np.cos(2.0 * np.arange(n)[:, None] - np.arange(n)[None, :])
        expected = (full_a @ full_b)[lo:hi]
        got = ga_c.get(lo, hi, 0, n)
        error = float(np.abs(got - expected).max())
    ga_a.destroy()
    ga_b.destroy()
    ga_c.destroy()
    return error
