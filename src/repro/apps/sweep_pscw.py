"""``sweep_pscw`` — wavefront sweep with generalized active-target sync.

Post/Start/Complete/Wait (PSCW) is MPI's synchronization mode for sparse
communication graphs: instead of a window-wide fence, each rank
synchronizes only with the neighbours it actually exchanges with.  This
app models a pipelined wavefront sweep (the communication skeleton of
Sweep3D-style transport codes): rank *r* receives an incoming face from
rank *r-1*, applies a relaxation, and exposes its outgoing face to rank
*r+1*:

* the downstream rank ``post``s its window to its upstream neighbour and
  ``wait``s;
* the upstream rank ``start``s an access epoch to its downstream
  neighbour, ``put``s the face, and ``complete``s.

The buggy variant reads the exposed face *during* the exposure epoch
(between post and wait) — the PSCW flavour of the Figure 2d defect: the
Put may land before, during, or after the local read.

The fixed variant reads only after ``wait`` returns, which PSCW guarantees
orders after the origin's ``complete``.
"""

from __future__ import annotations

import numpy as np

from repro.simmpi import DOUBLE, MPIContext

FACE_WORDS = 4


def sweep_pscw(mpi: MPIContext, buggy: bool = True, waves: int = 3):
    """Run the sweep; returns this rank's final face checksum."""
    face = mpi.alloc("face", FACE_WORDS, datatype=DOUBLE, fill=0.0)
    out_face = mpi.alloc("out_face", FACE_WORDS, datatype=DOUBLE)
    win = mpi.win_create(face)
    world = mpi.comm_group()
    upstream = mpi.rank - 1 if mpi.rank > 0 else None
    downstream = mpi.rank + 1 if mpi.rank < mpi.size - 1 else None

    checksum = 0.0
    for wave in range(waves):
        incoming = None
        if upstream is not None:
            win.post(world.incl([upstream]))  # expose to my upstream
            if buggy:
                # reading the face during the exposure epoch: the
                # upstream Put may not have landed (or may land mid-read)
                incoming = face.read(0, FACE_WORDS)
            win.wait()  # upstream completed: the face is consistent
            if not buggy:
                incoming = face.read(0, FACE_WORDS)
        else:
            incoming = np.full(FACE_WORDS, float(wave + 1))

        # relax and pass the wave downstream
        outgoing = 0.5 * incoming + 0.25
        checksum += float(outgoing.sum())
        if downstream is not None:
            out_face.write(outgoing)
            win.start(world.incl([downstream]))
            win.put(out_face, target=downstream, origin_count=FACE_WORDS)
            win.complete()

    mpi.barrier()
    win.free()
    return checksum


def expected_checksum(nranks: int, waves: int = 3) -> list:
    """Reference checksums computed without any communication."""
    sums = [0.0] * nranks
    for wave in range(waves):
        incoming = np.full(FACE_WORDS, float(wave + 1))
        for rank in range(nranks):
            outgoing = 0.5 * incoming + 0.25
            sums[rank] += float(outgoing.sum())
            incoming = outgoing
    return sums
