"""``work_queue`` — decentralized work claiming over MPI-3 atomics.

The production pattern behind ADLB (the paper's section II-B anecdote):
a shared pool of task descriptors claimed by competing workers.  Here the
pool is a window at rank 0 holding a ticket counter plus one ownership
word per task; workers claim tasks atomically and process them.

Variants:

* ``mode="cas"`` (default) — workers CAS-claim per-task ownership words;
  exactly one winner per task, consistency-clean;
* ``mode="fetch_add"`` — a ``fetch_and_op(SUM)`` ticket counter; also
  correct, fewer RMA ops per claim;
* ``mode="racy"`` — the naive read-check-write claim (Get, test, Put):
  tasks get double-claimed under contention AND MC-Checker flags the
  Get/Put race.
"""

from __future__ import annotations

from typing import List

from repro.simmpi import INT, LOCK_SHARED, MPIContext

FREE = 0
TAKEN = 1


def work_queue(mpi: MPIContext, tasks: int = 8, mode: str = "cas"):
    """Claim ``tasks`` tasks; returns ``(my claimed ids, ownership table)``
    (the table only at rank 0)."""
    if mode not in ("cas", "fetch_add", "racy"):
        raise ValueError(f"unknown mode {mode!r}")

    # window layout at rank 0: [ticket | owner_0 .. owner_{tasks-1}]
    pool = mpi.alloc("pool", 1 + tasks, datatype=INT, fill=FREE)
    one = mpi.alloc("one", 1, datatype=INT, fill=TAKEN)
    old = mpi.alloc("old", 1, datatype=INT, fill=-1)
    free_val = mpi.alloc("free_val", 1, datatype=INT, fill=FREE)
    win = mpi.win_create(pool)
    mpi.barrier()

    claimed: List[int] = []
    if mode == "fetch_add":
        while True:
            win.lock(0, LOCK_SHARED)
            win.fetch_and_op(one, old, target=0, op="SUM", target_disp=0)
            win.unlock(0)
            ticket = old[0]
            if ticket >= tasks:
                break
            claimed.append(ticket)
    elif mode == "cas":
        for task in range(tasks):
            win.lock(0, LOCK_SHARED)
            win.compare_and_swap(one, free_val, old, target=0,
                                 target_disp=1 + task)
            win.flush(0)
            won = old[0] == FREE
            win.unlock(0)
            if won:
                claimed.append(task)
    else:  # racy read-check-write
        for task in range(tasks):
            win.lock(0, LOCK_SHARED)
            win.get(old, target=0, target_disp=1 + task, origin_count=1)
            win.unlock(0)
            if old[0] == FREE:
                win.lock(0, LOCK_SHARED)
                win.put(one, target=0, target_disp=1 + task,
                        origin_count=1)
                win.unlock(0)
                claimed.append(task)  # possibly double-claimed!

    mpi.barrier()
    table = pool.read(1, tasks).tolist() if mpi.rank == 0 else None
    win.free()
    return claimed, table
