"""``SKaMPI`` — an RMA microbenchmark sweep (Figure 8).

SKaMPI times individual MPI operations across message sizes and
synchronization modes.  This reimplementation sweeps Put, Get, and
Accumulate over a size list in both active-target (fence) and
passive-target (lock/unlock) modes, pairing even ranks with their odd
neighbours, and returns the per-(op, mode, size) timings.

Race-free: within each measurement, only the even rank of a pair issues
operations, and epochs strictly alternate.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.simmpi import DOUBLE, LOCK_SHARED, MPIContext, SUM

OPS = ("put", "get", "acc")
MODES = ("fence", "lock")


def _issue(win, op: str, buf, peer: int, count: int) -> None:
    if op == "put":
        win.put(buf, target=peer, origin_count=count)
    elif op == "get":
        win.get(buf, target=peer, origin_count=count)
    else:
        win.accumulate(buf, target=peer, op=SUM, origin_count=count)


def skampi(mpi: MPIContext, sizes: Sequence[int] = (8, 64, 256),
           repeats: int = 3) -> List[Dict]:
    """Run the sweep; every rank returns the same list of measurement rows
    ``{"op", "mode", "size", "seconds"}`` (times from the issuing ranks,
    averaged via allreduce)."""
    max_size = max(sizes)
    wbuf = mpi.alloc("wbuf", max_size, datatype=DOUBLE, fill=0.0)
    obuf = mpi.alloc("obuf", max_size, datatype=DOUBLE, fill=1.0)
    win = mpi.win_create(wbuf)

    active = mpi.size - (mpi.size % 2)  # ranks taking part in pairs
    is_origin = mpi.rank < active and mpi.rank % 2 == 0
    peer = mpi.rank + 1 if is_origin else mpi.rank - 1

    rows: List[Dict] = []
    win.fence()
    for op in OPS:
        for mode in MODES:
            for size in sizes:
                start = mpi.wtime()
                for _rep in range(repeats):
                    if mode == "fence":
                        if is_origin:
                            _issue(win, op, obuf, peer, size)
                        win.fence()
                    else:
                        if is_origin:
                            win.lock(peer, LOCK_SHARED)
                            _issue(win, op, obuf, peer, size)
                            win.unlock(peer)
                        mpi.barrier()
                elapsed = mpi.wtime() - start
                mine = elapsed if is_origin else 0.0
                total = mpi.allreduce([mine], op="SUM")
                issuers = max(active // 2, 1)
                rows.append({
                    "op": op, "mode": mode, "size": size,
                    "seconds": float(total[0]) / issuers / repeats,
                })
    win.fence()
    win.free()
    return rows
