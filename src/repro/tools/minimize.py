"""Automatic trace minimization: shrink a failing trace set while the
error persists.

When MC-Checker flags a conflict in a large production trace, the
diagnosis is easier on a minimal reproduction.  :func:`minimize_trace`
performs greedy delta debugging over the *event population*:

1. drop whole event-kind classes (memory events not implicated, windows
   other than the finding's);
2. binary-shrink the per-rank sequence window around the finding;
3. drop unimplicated memory variables.

After every candidate reduction the analyzer re-runs; a reduction is kept
only if some finding with the same *signature* (kind, rule, both source
locations) survives.  Output: a valid trace set directory plus the
reduction log.

Synchronization calls are never dropped — removing them could *create*
spurious races rather than preserve the original one.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.core.checker import check_traces
from repro.core.diagnostics import ConsistencyError
from repro.profiler.events import CallEvent, MemEvent
from repro.profiler.tracer import TraceSet
from repro.tools.trace_filter import filter_traces


def finding_signature(finding: ConsistencyError) -> Tuple:
    sides = sorted([(finding.a.kind, finding.a.loc.short),
                    (finding.b.kind, finding.b.loc.short)])
    return (finding.kind, finding.rule, tuple(sides))


@dataclass
class MinimizationResult:
    traces: TraceSet
    original_events: int
    final_events: int
    steps: List[str] = field(default_factory=list)

    @property
    def reduction(self) -> float:
        if self.original_events == 0:
            return 0.0
        return 1.0 - self.final_events / self.original_events

    def format(self) -> str:
        lines = [f"minimized {self.original_events} -> "
                 f"{self.final_events} events "
                 f"({100 * self.reduction:.0f}% reduction)"]
        lines += [f"  - {step}" for step in self.steps]
        return "\n".join(lines)


def _total_events(traces: TraceSet) -> int:
    counts = traces.event_counts()
    return counts["call"] + counts["mem"]


def _still_fails(traces: TraceSet, signature: Tuple) -> bool:
    try:
        report = check_traces(traces)
    except Exception:  # a reduction that breaks analysis is invalid
        return False
    return any(finding_signature(f) == signature
               for f in report.findings)


def minimize_trace(traces: TraceSet, out_dir: str,
                   finding: Optional[ConsistencyError] = None
                   ) -> MinimizationResult:
    """Shrink ``traces`` while preserving ``finding`` (default: the first
    error the analyzer reports)."""
    if finding is None:
        report = check_traces(traces)
        if not report.findings:
            raise ValueError("trace set has no findings to preserve")
        finding = report.findings[0]
    signature = finding_signature(finding)

    os.makedirs(out_dir, exist_ok=True)
    result = MinimizationResult(
        traces=traces, original_events=_total_events(traces),
        final_events=_total_events(traces))
    current = traces
    stage = 0

    def attempt(label: str, **filter_kwargs) -> bool:
        nonlocal current, stage
        stage += 1
        candidate_dir = os.path.join(out_dir, f"stage{stage}")
        candidate = filter_traces(current, candidate_dir, **filter_kwargs)
        if _still_fails(candidate, signature):
            current = candidate
            result.steps.append(
                f"{label}: kept ({_total_events(candidate)} events)")
            return True
        result.steps.append(f"{label}: rejected (finding lost)")
        return False

    # 1. does the finding survive without any memory events at all?
    attempt("drop all load/store events", keep_kinds=["call"])

    # 2. restrict to the implicated window (sync calls carry no window or
    # the implicated one; RMA calls on other windows go)
    if finding.win_id is not None:
        attempt(f"restrict to window {finding.win_id}",
                keep_windows=[finding.win_id])

    # 3. restrict memory events to the implicated variables
    implicated_vars = {finding.a.var, finding.b.var} - {"?"}
    if implicated_vars and _has_mem_events(current):
        attempt(f"restrict load/store to {sorted(implicated_vars)}",
                keep_vars=sorted(implicated_vars))

    # 4. binary-shrink the trailing sequence range (events after the
    # finding's region are often irrelevant)
    hi = max((events[-1].seq + 1) if (events := current.events(r)) else 0
             for r in range(current.nranks))
    lo_bound, probe = 0, hi // 2
    while probe - lo_bound > 4:
        if attempt(f"truncate events past seq {probe}",
                   seq_range=(0, probe)):
            hi = probe
        else:
            lo_bound = probe
        probe = (lo_bound + hi) // 2

    result.traces = current
    result.final_events = _total_events(current)
    return result


def _has_mem_events(traces: TraceSet) -> bool:
    return traces.event_counts()["mem"] > 0
