"""Trace filtering: project a trace set onto a subset of its events.

Useful for bug minimization ("does the error survive with only these two
ranks' windows?") and for building analysis inputs from huge traces.  The
output is a *valid* trace set: headers preserved, per-rank files complete,
sequence numbers untouched (DN-Analyzer tolerates sparse seqs), so every
downstream tool — including MC-Checker itself — consumes filtered sets
unchanged.

Filtering is structural, not semantic: dropping synchronization events can
of course change what the analyzer concludes, which is exactly the point
when minimizing a reproduction.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Optional, Sequence

from repro.profiler.events import CallEvent, Event, MemEvent
from repro.profiler.tracer import TraceReader, TraceSet, TraceWriter

EventPredicate = Callable[[int, Event], bool]


def filter_traces(traces: TraceSet, out_dir: str,
                  predicate: Optional[EventPredicate] = None,
                  keep_kinds: Optional[Sequence[str]] = None,
                  keep_vars: Optional[Sequence[str]] = None,
                  keep_windows: Optional[Sequence[int]] = None,
                  seq_range: Optional[tuple] = None,
                  format: Optional[str] = None) -> TraceSet:
    """Write a filtered copy of ``traces`` into ``out_dir``.

    Selection is the conjunction of the provided criteria:

    * ``predicate(rank, event)`` — arbitrary custom test;
    * ``keep_kinds`` — event classes: ``"call"`` and/or ``"mem"``;
    * ``keep_vars`` — memory events only for these buffer names (call
      events are kept regardless, so synchronization structure survives);
    * ``keep_windows`` — drop one-sided calls on other windows;
    * ``seq_range`` — ``(lo, hi)`` half-open per-rank sequence window.

    ``format`` selects the output trace format; ``None`` preserves each
    rank's source format, so with no filters this doubles as a lossless
    text <-> binary trace converter.
    """
    os.makedirs(out_dir, exist_ok=True)
    keep_kind_set = set(keep_kinds) if keep_kinds is not None else None
    keep_var_set = set(keep_vars) if keep_vars is not None else None
    keep_win_set = set(keep_windows) if keep_windows is not None else None

    def selected(rank: int, event: Event) -> bool:
        if seq_range is not None:
            lo, hi = seq_range
            if not lo <= event.seq < hi:
                return False
        if isinstance(event, MemEvent):
            if keep_kind_set is not None and "mem" not in keep_kind_set:
                return False
            if keep_var_set is not None and event.var not in keep_var_set:
                return False
        else:
            assert isinstance(event, CallEvent)
            if keep_kind_set is not None and "call" not in keep_kind_set:
                return False
            if keep_win_set is not None and "win" in event.args and \
                    int(event.args["win"]) not in keep_win_set:
                return False
        if predicate is not None and not predicate(rank, event):
            return False
        return True

    for rank in range(traces.nranks):
        with traces.reader(rank) as reader:
            out_format = format if format is not None else reader.format
            with TraceWriter(TraceSet.rank_path(out_dir, rank, out_format),
                             rank, reader.header.nranks,
                             app=reader.header.app,
                             format=out_format) as writer:
                for event in reader:
                    if selected(rank, event):
                        writer.write(event)
    return TraceSet(out_dir)
