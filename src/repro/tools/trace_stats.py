"""Per-trace statistics: event mixes, rates, and hot statements.

The quantitative lens of the paper's Figure 10 ("the rate of profiling
runtime events, especially load/store events") as a reusable API:
per-rank and aggregate event counts by class and call category, bytes
moved by one-sided operations, and the hottest source statements by event
count — the first thing one inspects when profiling overhead surprises.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.core.calltable import CLS_NAMES, classify_call
from repro.profiler.events import CallEvent, call_category
from repro.profiler.tracer import MemBlock, TraceSet


@dataclass
class RankStats:
    """Event statistics of one rank."""

    rank: int
    calls: int = 0
    loads: int = 0
    stores: int = 0
    load_bytes: int = 0
    store_bytes: int = 0
    by_category: Counter = field(default_factory=Counter)
    by_fn: Counter = field(default_factory=Counter)
    #: calls per control-plane sync class (the CallTable ``cls`` codes)
    by_sync_class: Counter = field(default_factory=Counter)
    rma_bytes: int = 0  # bytes named by Put/Get/Accumulate signatures
    trace_format: str = ""
    #: the reader's authoritative per-class counts — footer-served for
    #: binary (v2) traces, so they cross-check the streamed totals
    footer_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def mems(self) -> int:
        return self.loads + self.stores

    @property
    def events(self) -> int:
        return self.calls + self.mems

    def to_dict(self) -> dict:
        return {
            "rank": self.rank, "format": self.trace_format,
            "calls": self.calls, "loads": self.loads,
            "stores": self.stores, "events": self.events,
            "load_bytes": self.load_bytes, "store_bytes": self.store_bytes,
            "rma_bytes": self.rma_bytes,
            "by_category": dict(self.by_category),
            "by_fn": dict(self.by_fn),
            "by_sync_class": dict(self.by_sync_class),
            "footer_counts": dict(self.footer_counts),
        }


@dataclass
class TraceStats:
    """Aggregate statistics of a trace set."""

    nranks: int
    per_rank: List[RankStats]
    hot_statements: List[Tuple[str, int]]  # (file:line, event count)

    @property
    def total_events(self) -> int:
        return sum(r.events for r in self.per_rank)

    @property
    def total_calls(self) -> int:
        return sum(r.calls for r in self.per_rank)

    @property
    def total_mems(self) -> int:
        return sum(r.mems for r in self.per_rank)

    def mems_per_rank(self) -> float:
        return self.total_mems / self.nranks

    def calls_per_rank(self) -> float:
        return self.total_calls / self.nranks

    def category_mix(self) -> Dict[str, int]:
        mix: Counter = Counter()
        for rank_stats in self.per_rank:
            mix.update(rank_stats.by_category)
        return dict(mix)

    def sync_class_mix(self) -> Dict[str, int]:
        """Aggregate per-sync-class call histogram (control-plane view:
        how much of the call stream Algorithm 1 actually matches on)."""
        mix: Counter = Counter()
        for rank_stats in self.per_rank:
            mix.update(rank_stats.by_sync_class)
        return dict(mix)

    @property
    def calls_to_mems_ratio(self) -> float:
        """Control-plane : data-plane event ratio (calls per load/store;
        ``inf``-free — a trace with no memory events reports 0.0)."""
        if not self.total_mems:
            return 0.0
        return self.total_calls / self.total_mems

    def to_dict(self, hot_limit: int = 8) -> dict:
        """JSON-ready statistics (``mc-checker stats --json``)."""
        return {
            "nranks": self.nranks,
            "totals": {
                "events": self.total_events,
                "calls": self.total_calls,
                "mems": self.total_mems,
                "rma_bytes": sum(r.rma_bytes for r in self.per_rank),
                "mem_bytes": sum(r.load_bytes + r.store_bytes
                                 for r in self.per_rank),
                "calls_to_mems_ratio": self.calls_to_mems_ratio,
            },
            "category_mix": self.category_mix(),
            "sync_class_mix": self.sync_class_mix(),
            "per_rank": [r.to_dict() for r in self.per_rank],
            "hot_statements": [
                {"where": where, "events": count}
                for where, count in self.hot_statements[:hot_limit]
            ],
        }

    def format(self, hot_limit: int = 8) -> str:
        lines = [
            f"trace set: {self.nranks} ranks, {self.total_events} events "
            f"({self.total_calls} MPI calls, {self.total_mems} load/store)",
            f"per rank: {self.calls_per_rank():.1f} calls, "
            f"{self.mems_per_rank():.1f} load/store",
        ]
        mix = self.category_mix()
        if mix:
            parts = ", ".join(f"{cat}={count}"
                              for cat, count in sorted(mix.items()))
            lines.append(f"call categories: {parts}")
        sync_mix = self.sync_class_mix()
        if sync_mix:
            parts = ", ".join(f"{cls}={count}"
                              for cls, count in sorted(sync_mix.items()))
            lines.append(f"sync classes: {parts}")
        lines.append(
            f"control:data ratio: {self.calls_to_mems_ratio:.4f} "
            f"calls per load/store")
        rma = sum(r.rma_bytes for r in self.per_rank)
        moved = sum(r.load_bytes + r.store_bytes for r in self.per_rank)
        lines.append(f"bytes: {rma} via one-sided signatures, "
                     f"{moved} via instrumented load/store")
        if self.hot_statements:
            lines.append("hottest statements:")
            for where, count in self.hot_statements[:hot_limit]:
                lines.append(f"  {count:8d}  {where}")
        return "\n".join(lines)


def _mem_block_stats(block: MemBlock, stats: RankStats,
                     hot: Counter) -> None:
    """Fold one packed memory block into the statistics with columnar
    reductions — per-row Python objects never materialize."""
    arr = block.array
    sizes = arr["size"]
    load_mask = arr["access"] == 0
    loads = int(load_mask.sum())
    load_bytes = int(sizes[load_mask].sum())
    stats.loads += loads
    stats.stores += len(arr) - loads
    stats.load_bytes += load_bytes
    stats.store_bytes += int(sizes.sum()) - load_bytes
    table = block.table
    loc_ids, counts = np.unique(arr["loc"], return_counts=True)
    for loc_id, count in zip(loc_ids.tolist(), counts.tolist()):
        loc = table.loc(loc_id)
        hot[f"{loc.short} ({loc.function})"] += count


def compute_stats(traces: TraceSet) -> TraceStats:
    """Single pass over every rank's trace (memory events arrive as
    packed columns and are reduced vectorized)."""
    per_rank: List[RankStats] = []
    hot: Counter = Counter()
    for rank in range(traces.nranks):
        stats = RankStats(rank=rank)
        with traces.reader(rank) as reader:
            for item in reader.stream():
                if isinstance(item, MemBlock):
                    _mem_block_stats(item, stats, hot)
                    continue
                event = item
                hot[f"{event.loc.short} ({event.loc.function})"] += 1
                stats.calls += 1
                stats.by_fn[event.fn] += 1
                row, _lock = classify_call(event.fn, event.args)
                stats.by_sync_class[CLS_NAMES[row[1]]] += 1
                try:
                    stats.by_category[call_category(event.fn)] += 1
                except KeyError:
                    stats.by_category["other"] += 1
                if event.fn in ("Put", "Get", "Accumulate", "Rput",
                                "Rget", "Raccumulate", "Get_accumulate"):
                    count = int(event.args.get("origin_count", 0))
                    # primitive ids encode their size in the datamap; for
                    # signature-level accounting use count * 8 as an upper
                    # bound only when the dtype is unknown
                    stats.rma_bytes += count * _dtype_size(
                        int(event.args.get("origin_dtype", -7)))
            stats.trace_format = reader.format
            # cheap after streaming: the footer for binary, the cached
            # scan for text — an independent check on the streamed totals
            stats.footer_counts = reader.counts()
        per_rank.append(stats)
    return TraceStats(nranks=traces.nranks, per_rank=per_rank,
                      hot_statements=hot.most_common())


def _dtype_size(type_id: int) -> int:
    from repro.simmpi.datatypes import PRIMITIVES_BY_ID

    dtype = PRIMITIVES_BY_ID.get(type_id)
    return dtype.size if dtype is not None else 0


def main(argv=None) -> int:
    """``python -m repro.tools.trace_stats <trace-dir> [--json]``."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="trace-stats",
        description="Per-rank / aggregate statistics of a trace set.")
    parser.add_argument("trace_dir")
    parser.add_argument("--json", action="store_true",
                        help="emit the statistics as JSON")
    parser.add_argument("--hot", type=int, default=8,
                        help="number of hottest statements to include")
    args = parser.parse_args(argv)

    stats = compute_stats(TraceSet(args.trace_dir))
    if args.json:
        print(json.dumps(stats.to_dict(hot_limit=args.hot), indent=2))
    else:
        print(stats.format(hot_limit=args.hot))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
