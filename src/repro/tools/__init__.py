"""Trace tooling: statistics, filtering, and differential comparison.

Utilities a production deployment of MC-Checker would grow around its
trace format: ``trace_stats`` powers the Figure-10 style event-rate
analyses (and ``mc-checker stats``), ``trace_filter`` slices trace sets
for bug minimization, and ``trace_diff`` aligns two runs of the same
application to localize where their behaviours diverge.
"""

from repro.tools.trace_stats import TraceStats, compute_stats
from repro.tools.trace_filter import filter_traces
from repro.tools.trace_diff import TraceDiff, diff_traces

__all__ = [
    "TraceStats", "compute_stats",
    "filter_traces",
    "TraceDiff", "diff_traces",
]
