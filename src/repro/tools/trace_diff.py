"""Trace differencing: where do two runs of one application diverge?

Two executions of the same program (different schedules, delivery
policies, or code revisions) produce traces whose *call streams* should
align call-for-call when the program is deterministic.  ``diff_traces``
aligns each rank's call stream and reports:

* the first divergence point per rank (differing call name or key
  arguments), if any;
* per-rank event-count deltas (calls, loads, stores) — the quick signal
  for "this revision instruments more";
* calls present in one run only (by function-name multiset).

A schedule-dependent application (e.g. wildcard receives resolving
differently) diverges legitimately; the tool localizes where.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.profiler.events import CallEvent
from repro.profiler.tracer import TraceSet
from repro.util.errors import AnalysisError

#: call arguments that identify behaviour (payload addresses vary run to
#: run and are excluded)
_SIGNIFICANT_ARGS = ("win", "comm", "target", "dest", "source", "tag",
                     "root", "op", "lock_type", "origin_count",
                     "target_disp", "target_count", "color", "key",
                     "count")


def _signature(event: CallEvent) -> Tuple:
    return (event.fn,) + tuple(
        (key, event.args[key]) for key in _SIGNIFICANT_ARGS
        if key in event.args)


@dataclass
class RankDivergence:
    rank: int
    position: int  # index within the call stream
    left: Optional[str]
    right: Optional[str]

    def describe(self) -> str:
        return (f"rank {self.rank} diverges at call #{self.position}: "
                f"{self.left or '<end>'} vs {self.right or '<end>'}")


@dataclass
class TraceDiff:
    """Structured comparison of two trace sets."""

    identical: bool
    divergences: List[RankDivergence] = field(default_factory=list)
    count_deltas: Dict[int, Dict[str, int]] = field(default_factory=dict)
    fn_only_left: Counter = field(default_factory=Counter)
    fn_only_right: Counter = field(default_factory=Counter)

    def format(self) -> str:
        if self.identical:
            return "traces are call-stream identical"
        lines = []
        for div in self.divergences:
            lines.append(div.describe())
        for rank, deltas in sorted(self.count_deltas.items()):
            nonzero = {k: v for k, v in deltas.items() if v}
            if nonzero:
                lines.append(f"rank {rank} count deltas "
                             "(right minus left): "
                             + ", ".join(f"{k}={v:+d}"
                                         for k, v in sorted(
                                             nonzero.items())))
        if self.fn_only_left:
            lines.append("calls only in left: "
                         + ", ".join(f"{fn} x{n}" for fn, n in
                                     self.fn_only_left.most_common()))
        if self.fn_only_right:
            lines.append("calls only in right: "
                         + ", ".join(f"{fn} x{n}" for fn, n in
                                     self.fn_only_right.most_common()))
        return "\n".join(lines)


def diff_traces(left: TraceSet, right: TraceSet) -> TraceDiff:
    """Align the call streams of two trace sets rank by rank."""
    if left.nranks != right.nranks:
        raise AnalysisError(
            f"rank-count mismatch: {left.nranks} vs {right.nranks}")

    diff = TraceDiff(identical=True)
    for rank in range(left.nranks):
        with left.reader(rank) as reader:
            left_calls, left_counts = reader.read_calls()
        with right.reader(rank) as reader:
            right_calls, right_counts = reader.read_calls()

        for position, (lc, rc) in enumerate(zip(left_calls, right_calls)):
            if _signature(lc) != _signature(rc):
                diff.identical = False
                diff.divergences.append(RankDivergence(
                    rank=rank, position=position,
                    left=f"{lc.fn}@{lc.loc.short}",
                    right=f"{rc.fn}@{rc.loc.short}"))
                break
        else:
            if len(left_calls) != len(right_calls):
                diff.identical = False
                shorter = min(len(left_calls), len(right_calls))
                extra = (left_calls[shorter:shorter + 1]
                         or right_calls[shorter:shorter + 1])
                diff.divergences.append(RankDivergence(
                    rank=rank, position=shorter,
                    left=(f"{left_calls[shorter].fn}"
                          if shorter < len(left_calls) else None),
                    right=(f"{right_calls[shorter].fn}"
                           if shorter < len(right_calls) else None)))

        def counts(reader_counts):
            return {"calls": reader_counts["call"],
                    "loads": reader_counts["load"],
                    "stores": reader_counts["store"]}

        lc_counts, rc_counts = counts(left_counts), counts(right_counts)
        deltas = {key: rc_counts[key] - lc_counts[key] for key in lc_counts}
        diff.count_deltas[rank] = deltas
        if any(deltas.values()):
            diff.identical = False

        left_fns = Counter(e.fn for e in left_calls)
        right_fns = Counter(e.fn for e in right_calls)
        diff.fn_only_left.update(left_fns - right_fns)
        diff.fn_only_right.update(right_fns - left_fns)

    return diff
