"""Stable high-level facade: ``run``, ``check``, ``run_check``,
``generate``, ``fuzz``, ``score``.

The first three verbs cover the paper's workflow end to end, each
configured by a single :class:`~repro.core.config.CheckConfig` value
instead of the per-function kwarg lists the internals grew over time:

    from repro import api, CheckConfig

    run = api.run(my_app, nranks=4, trace_format="binary")
    report = api.check(run.traces,
                       CheckConfig(jobs=4, cache_dir=".mc-cache",
                                   incremental=True))
    print(report.format())

``check`` accepts either a :class:`~repro.profiler.tracer.TraceSet` or a
trace-directory path, and field overrides as keyword arguments
(``api.check(traces, jobs=4)`` is ``CheckConfig(jobs=4)``); overrides on
top of an explicit config derive a new one with
:meth:`CheckConfig.replace`.

Each verb also takes observability parameters — an explicit
``obs_config=`` (:class:`repro.obs.ObsConfig`), or the ``metrics_out=``
/ ``chrome_trace=`` shorthands — which scope a recording session around
the call and flush the exporters even when the analysis raises, so a
crashed run still leaves its flight record behind.

Parallel runs (``jobs > 1``) lazily start one persistent worker pool
per process and reuse it across every later analysis of the same shape;
each run resets the workers and unlinks its shared-memory segments when
it finishes, but the worker processes stay up.  They are torn down
automatically at interpreter exit — call :func:`shutdown_pools` to
release them earlier (e.g. between test cases, or in a long-lived
service before forking).

The generation-side verbs mirror the same shape around
:class:`~repro.gen.GenConfig`:

    from repro.gen import GenConfig, replay

    program = api.generate(GenConfig(seed=7, bugs=("any",) * 3))
    report = api.run_check(replay, program.config.nranks,
                           params={"spec": program.program}, scope="all")
    print(api.score(report, program.manifest).to_dict())

    corpus = api.fuzz(GenConfig(nranks=8, bugs=("any",) * 2),
                      seeds=range(10))
    assert corpus.ok  # recall == 1.0, zero differential mismatches
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Iterable, Optional, Union

from repro import obs
from repro.core.checker import CheckReport, check_traces
from repro.core.config import CheckConfig
from repro.core.parallel import shutdown_pools
from repro.gen.config import _UNSET, GenConfig, coerce_gen_config
from repro.gen.fuzz import FuzzReport, fuzz_corpus, run_case
from repro.gen.generator import GeneratedProgram, generate_program
from repro.gen.manifest import Manifest, Score, score_report
from repro.profiler.session import ProfiledRun, profile_run
from repro.profiler.tracer import TraceSet

__all__ = ["run", "check", "run_check", "generate", "fuzz", "score",
           "shutdown_pools"]


def _obs_config(obs_config: Optional[obs.ObsConfig],
                metrics_out: Optional[str],
                chrome_trace: Optional[str]) -> Optional[obs.ObsConfig]:
    if obs_config is not None:
        if metrics_out or chrome_trace:
            raise TypeError("pass either obs_config or the metrics_out/"
                            "chrome_trace shorthands, not both")
        return obs_config
    if metrics_out or chrome_trace:
        return obs.ObsConfig(metrics_out=metrics_out,
                             chrome_trace=chrome_trace)
    return None


def run(app: Callable, nranks: int, *,
        trace_dir: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
        scope: str = "report",
        delivery: str = "random",
        sched_policy: str = "round_robin",
        seed: int = 0,
        trace_format: str = "text",
        app_name: Optional[str] = None,
        obs_config: Optional[obs.ObsConfig] = None,
        metrics_out: Optional[str] = None,
        chrome_trace: Optional[str] = None) -> ProfiledRun:
    """Profile ``app`` on the simulated runtime; returns the run (its
    ``.traces`` feed :func:`check`)."""
    with obs.session(_obs_config(obs_config, metrics_out, chrome_trace)):
        return profile_run(app, nranks, trace_dir=trace_dir, params=params,
                           scope=scope, delivery=delivery,
                           sched_policy=sched_policy, seed=seed,
                           trace_format=trace_format, app_name=app_name)


def check(traces: Union[TraceSet, str, "os.PathLike[str]"],
          config: Optional[CheckConfig] = None,
          *, obs_config: Optional[obs.ObsConfig] = None,
          metrics_out: Optional[str] = None,
          chrome_trace: Optional[str] = None,
          **overrides) -> CheckReport:
    """Analyze a trace set (or trace directory) for consistency errors."""
    with obs.session(_obs_config(obs_config, metrics_out, chrome_trace)):
        if not isinstance(traces, TraceSet):
            traces = TraceSet(os.fspath(traces))
        cfg = config if config is not None else CheckConfig()
        if overrides:
            cfg = cfg.replace(**overrides)
        return check_traces(traces, cfg)


def run_check(app: Callable, nranks: int, *,
              trace_dir: Optional[str] = None,
              params: Optional[Dict[str, Any]] = None,
              scope: str = "report",
              delivery: str = "random",
              sched_policy: str = "round_robin",
              seed: int = 0,
              trace_format: str = "text",
              app_name: Optional[str] = None,
              config: Optional[CheckConfig] = None,
              obs_config: Optional[obs.ObsConfig] = None,
              metrics_out: Optional[str] = None,
              chrome_trace: Optional[str] = None,
              **overrides) -> CheckReport:
    """Profile and analyze in one call (the ``mc-checker run-check``
    workflow)."""
    with obs.session(_obs_config(obs_config, metrics_out, chrome_trace)):
        profiled = run(app, nranks, trace_dir=trace_dir, params=params,
                       scope=scope, delivery=delivery,
                       sched_policy=sched_policy, seed=seed,
                       trace_format=trace_format, app_name=app_name)
        return check(profiled.traces, config, **overrides)


def generate(config: Optional[GenConfig] = None, *,
             out: Optional[str] = None,
             nbugs=_UNSET,
             **overrides) -> GeneratedProgram:
    """Generate one synthetic RMA program + ground-truth manifest.

    Field overrides are accepted as keyword arguments
    (``api.generate(seed=7, nranks=16)`` is
    ``GenConfig(seed=7, nranks=16)``).  ``out=`` saves ``program.json``
    and ``manifest.json`` into that directory.  The prototype spelling
    ``nbugs=<n>`` still works through a warn-once deprecation shim.
    """
    cfg = coerce_gen_config(config, "api.generate", nbugs=nbugs)
    if overrides:
        cfg = cfg.replace(**overrides)
    generated = generate_program(cfg)
    if out is not None:
        generated.save(out)
    return generated


def fuzz(config: Optional[GenConfig] = None,
         seeds: Optional[Iterable[int]] = None, *,
         check_config: Optional[CheckConfig] = None,
         differential: bool = True,
         nbugs=_UNSET,
         obs_config: Optional[obs.ObsConfig] = None,
         metrics_out: Optional[str] = None,
         chrome_trace: Optional[str] = None,
         **overrides) -> FuzzReport:
    """Run the differential fuzzing harness over a seed corpus.

    Each seed derives ``config.replace(seed=...)``, generates a program,
    profiles it, scores the findings against the manifest, and (unless
    ``differential=False``) cross-checks the full execution matrix —
    sweep/pairwise engines × columnar/object control planes ×
    cold/warm incremental cache × text/binary trace formats — for
    byte-identical reports.  ``seeds=None`` runs the single seed already
    in the config.
    """
    cfg = coerce_gen_config(config, "api.fuzz", nbugs=nbugs)
    if overrides:
        cfg = cfg.replace(**overrides)
    with obs.session(_obs_config(obs_config, metrics_out, chrome_trace)):
        if seeds is None:
            case = run_case(cfg, check_config,
                            differential=differential)
            return FuzzReport(cases=(case,))
        return fuzz_corpus(cfg, list(seeds), check_config,
                           differential=differential)


def score(report: Union[CheckReport, list],
          manifest: Union[Manifest, GeneratedProgram, str,
                          "os.PathLike[str]"]) -> Score:
    """Match a report's findings against a ground-truth manifest.

    ``manifest`` may be a :class:`~repro.gen.manifest.Manifest`, the
    :class:`~repro.gen.generator.GeneratedProgram` that owns one, or a
    path to a saved ``manifest.json``.
    """
    if isinstance(manifest, GeneratedProgram):
        manifest = manifest.manifest
    elif not isinstance(manifest, Manifest):
        path = os.fspath(manifest)
        if os.path.isdir(path):
            path = os.path.join(path, "manifest.json")
        manifest = Manifest.load(path)
    return score_report(report, manifest)
