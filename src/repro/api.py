"""Stable high-level facade: ``run``, ``check``, ``run_check``.

Three verbs cover the paper's workflow end to end, each configured by a
single :class:`~repro.core.config.CheckConfig` value instead of the
per-function kwarg lists the internals grew over time:

    from repro import api, CheckConfig

    run = api.run(my_app, nranks=4, trace_format="binary")
    report = api.check(run.traces,
                       CheckConfig(jobs=4, cache_dir=".mc-cache",
                                   incremental=True))
    print(report.format())

``check`` accepts either a :class:`~repro.profiler.tracer.TraceSet` or a
trace-directory path, and field overrides as keyword arguments
(``api.check(traces, jobs=4)`` is ``CheckConfig(jobs=4)``); overrides on
top of an explicit config derive a new one with
:meth:`CheckConfig.replace`.

Each verb also takes observability parameters — an explicit
``obs_config=`` (:class:`repro.obs.ObsConfig`), or the ``metrics_out=``
/ ``chrome_trace=`` shorthands — which scope a recording session around
the call and flush the exporters even when the analysis raises, so a
crashed run still leaves its flight record behind.

Parallel runs (``jobs > 1``) lazily start one persistent worker pool
per process and reuse it across every later analysis of the same shape;
each run resets the workers and unlinks its shared-memory segments when
it finishes, but the worker processes stay up.  They are torn down
automatically at interpreter exit — call :func:`shutdown_pools` to
release them earlier (e.g. between test cases, or in a long-lived
service before forking)."""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Optional, Union

from repro import obs
from repro.core.checker import CheckReport, check_traces
from repro.core.config import CheckConfig
from repro.core.parallel import shutdown_pools
from repro.profiler.session import ProfiledRun, profile_run
from repro.profiler.tracer import TraceSet

__all__ = ["run", "check", "run_check", "shutdown_pools"]


def _obs_config(obs_config: Optional[obs.ObsConfig],
                metrics_out: Optional[str],
                chrome_trace: Optional[str]) -> Optional[obs.ObsConfig]:
    if obs_config is not None:
        if metrics_out or chrome_trace:
            raise TypeError("pass either obs_config or the metrics_out/"
                            "chrome_trace shorthands, not both")
        return obs_config
    if metrics_out or chrome_trace:
        return obs.ObsConfig(metrics_out=metrics_out,
                             chrome_trace=chrome_trace)
    return None


def run(app: Callable, nranks: int, *,
        trace_dir: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
        scope: str = "report",
        delivery: str = "random",
        sched_policy: str = "round_robin",
        seed: int = 0,
        trace_format: str = "text",
        app_name: Optional[str] = None,
        obs_config: Optional[obs.ObsConfig] = None,
        metrics_out: Optional[str] = None,
        chrome_trace: Optional[str] = None) -> ProfiledRun:
    """Profile ``app`` on the simulated runtime; returns the run (its
    ``.traces`` feed :func:`check`)."""
    with obs.session(_obs_config(obs_config, metrics_out, chrome_trace)):
        return profile_run(app, nranks, trace_dir=trace_dir, params=params,
                           scope=scope, delivery=delivery,
                           sched_policy=sched_policy, seed=seed,
                           trace_format=trace_format, app_name=app_name)


def check(traces: Union[TraceSet, str, "os.PathLike[str]"],
          config: Optional[CheckConfig] = None,
          *, obs_config: Optional[obs.ObsConfig] = None,
          metrics_out: Optional[str] = None,
          chrome_trace: Optional[str] = None,
          **overrides) -> CheckReport:
    """Analyze a trace set (or trace directory) for consistency errors."""
    with obs.session(_obs_config(obs_config, metrics_out, chrome_trace)):
        if not isinstance(traces, TraceSet):
            traces = TraceSet(os.fspath(traces))
        cfg = config if config is not None else CheckConfig()
        if overrides:
            cfg = cfg.replace(**overrides)
        return check_traces(traces, cfg)


def run_check(app: Callable, nranks: int, *,
              trace_dir: Optional[str] = None,
              params: Optional[Dict[str, Any]] = None,
              scope: str = "report",
              delivery: str = "random",
              sched_policy: str = "round_robin",
              seed: int = 0,
              trace_format: str = "text",
              app_name: Optional[str] = None,
              config: Optional[CheckConfig] = None,
              obs_config: Optional[obs.ObsConfig] = None,
              metrics_out: Optional[str] = None,
              chrome_trace: Optional[str] = None,
              **overrides) -> CheckReport:
    """Profile and analyze in one call (the ``mc-checker run-check``
    workflow)."""
    with obs.session(_obs_config(obs_config, metrics_out, chrome_trace)):
        profiled = run(app, nranks, trace_dir=trace_dir, params=params,
                       scope=scope, delivery=delivery,
                       sched_policy=sched_policy, seed=seed,
                       trace_format=trace_format, app_name=app_name)
        return check(profiled.traces, config, **overrides)
