"""Compact line-oriented trace record codec.

Each per-rank trace file is a sequence of text lines.  The first line is a
header record; every following line is one runtime event.  The format is a
record kind followed by ``key=value`` fields::

    H v=1 rank=0 nranks=4 app=jacobi
    C seq=0 fn=Win_create win=0 base=4096 size=8192 disp_unit=8 comm=0 loc=app.py:12:main
    M seq=7 a=store addr=4160 size=8 var=grid loc=app.py:30:sweep

Values are encoded so that a field never contains whitespace: strings are
percent-escaped, integer lists are comma-joined.  The codec is intentionally
simple — profiling overhead is one of the experiments being reproduced
(Figure 8), so the write path must be cheap and allocation-light.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

from repro.util.errors import TraceFormatError

Scalar = Union[int, str]
Value = Union[int, str, Tuple[int, ...], List[int]]

def escape(text: str) -> str:
    """Percent-escape the characters that would break the line format."""
    if not any(c in text for c in " =%\n|"):
        return text
    out = text.replace("%", "%25")
    out = out.replace(" ", "%20").replace("=", "%3D").replace("\n", "%0A")
    return out.replace("|", "%7C")


def unescape(text: str) -> str:
    if "%" not in text:
        return text
    out = text.replace("%20", " ").replace("%3D", "=").replace("%0A", "\n")
    out = out.replace("%7C", "|")
    return out.replace("%25", "%")


@dataclass
class Record:
    """One decoded trace line: a kind tag plus a field mapping."""

    kind: str
    fields: Dict[str, Value] = field(default_factory=dict)

    def get_int(self, key: str, default: int = None) -> int:  # type: ignore[assignment]
        value = self.fields.get(key, default)
        if value is None:
            raise TraceFormatError(f"record {self.kind!r} missing int field {key!r}")
        return int(value)  # type: ignore[arg-type]

    def get_str(self, key: str, default: str = None) -> str:  # type: ignore[assignment]
        value = self.fields.get(key, default)
        if value is None:
            raise TraceFormatError(f"record {self.kind!r} missing str field {key!r}")
        return str(value)

    def get_ints(self, key: str) -> Tuple[int, ...]:
        value = self.fields.get(key)
        if value is None:
            raise TraceFormatError(f"record {self.kind!r} missing list field {key!r}")
        if isinstance(value, (tuple, list)):
            return tuple(int(v) for v in value)
        if isinstance(value, int):
            return (value,)
        raise TraceFormatError(f"field {key!r} is not an int list: {value!r}")


def encode_value(value: Value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, (tuple, list)):
        if not value:
            return "@"  # explicit empty-list marker
        return "@" + ",".join(str(int(v)) for v in value)
    return "$" + escape(str(value))


def decode_value(text: str) -> Value:
    if text.startswith("$"):
        return unescape(text[1:])
    if text.startswith("@"):
        body = text[1:]
        if not body:
            return ()
        return tuple(int(part) for part in body.split(","))
    try:
        return int(text)
    except ValueError as exc:
        raise TraceFormatError(f"unparseable value {text!r}") from exc


def encode_record(kind: str, fields: Dict[str, Value]) -> str:
    parts = [kind]
    for key, value in fields.items():
        if value is None:
            continue
        parts.append(f"{key}={encode_value(value)}")
    return " ".join(parts)


def decode_record(line: str) -> Record:
    line = line.rstrip("\n")
    if not line:
        raise TraceFormatError("empty trace line")
    parts = line.split(" ")
    kind = parts[0]
    fields: Dict[str, Value] = {}
    for part in parts[1:]:
        if not part:
            continue
        try:
            key, raw = part.split("=", 1)
        except ValueError as exc:
            raise TraceFormatError(f"malformed field {part!r} in line {line!r}") from exc
        fields[key] = decode_value(raw)
    return Record(kind, fields)
