"""Content-addressed on-disk store for incremental-check results.

Layout under the cache root::

    <root>/shards/<key[:2]>/<key>.json     per-shard finding payloads
    <root>/manifests/<key[:2]>/<key>.json  per-config run manifests

Two properties matter more than speed here:

* **Atomic writes** — a payload is staged to a temp file in the final
  directory and published with :func:`os.replace`, so readers never see
  a half-written entry even if the process dies mid-write.
* **Corruption-safe reads** — any unreadable, unparsable, or
  key-mismatched entry is reported as ``"corrupt"`` and treated by the
  caller as a miss (recompute and overwrite), never as an error.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional, Tuple

#: load() statuses
HIT = "hit"
MISS = "miss"
CORRUPT = "corrupt"


class CacheStore:
    """A directory of content-addressed JSON payloads."""

    def __init__(self, root: str) -> None:
        self.root = root

    # -- paths ---------------------------------------------------------
    def _path(self, kind: str, key: str) -> str:
        return os.path.join(self.root, kind, key[:2], f"{key}.json")

    # -- reads ---------------------------------------------------------
    def load(self, kind: str, key: str) -> Tuple[Optional[dict], str]:
        """Return ``(payload, status)`` with status hit/miss/corrupt.

        A payload is only a hit if it parses as a JSON object whose
        ``"key"`` field round-trips, so a torn or tampered entry can
        never masquerade as a result for a different key.
        """
        path = self._path(kind, key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            return None, MISS
        except (OSError, ValueError):
            return None, CORRUPT
        if not isinstance(payload, dict) or payload.get("key") != key:
            return None, CORRUPT
        return payload, HIT

    # -- writes --------------------------------------------------------
    def store(self, kind: str, key: str, payload: dict) -> str:
        """Atomically publish ``payload`` under ``key``; returns the path."""
        payload = dict(payload)
        payload["key"] = key
        path = self._path(kind, key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True,
                          separators=(",", ":"))
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return path
