"""Content hashing for the incremental-checking cache.

Every cache decision reduces to "are these bytes the same bytes we saw
last time": per-rank trace digests, per-region call/memory slice digests,
and the rolled-up shard keys are all SHA-256 over a *canonical* byte
serialization.  Canonical means collision-resistant by construction —
variable-length parts are length-prefixed, structured values go through
sorted-key JSON — so two different inputs can never serialize to the
same byte stream.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, Sequence

_LEN_SEP = b"\x00"


def sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def hash_file(path: str, chunk_size: int = 1 << 20) -> str:
    """Digest of a file's raw bytes (the v1/text whole-trace digest)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(chunk_size)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def hash_strings(strings: Sequence[str]) -> str:
    """Digest of an ordered string sequence (the v2 string table).

    Each string is length-prefixed, so ``["ab", "c"]`` and ``["a", "bc"]``
    digest differently.
    """
    digest = hashlib.sha256()
    for text in strings:
        raw = text.encode("utf-8")
        digest.update(str(len(raw)).encode("ascii"))
        digest.update(_LEN_SEP)
        digest.update(raw)
    return digest.hexdigest()


def hash_lines(lines: Iterable[str]) -> str:
    """Digest of an ordered line sequence (per-region call slices)."""
    digest = hashlib.sha256()
    for line in lines:
        raw = line.encode("utf-8")
        digest.update(str(len(raw)).encode("ascii"))
        digest.update(_LEN_SEP)
        digest.update(raw)
    return digest.hexdigest()


def stable_hash(obj) -> str:
    """Digest of a JSON-serializable object in canonical form.

    ``sort_keys`` plus compact separators make the serialization a pure
    function of the value, independent of dict insertion order.
    """
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":"),
                         ensure_ascii=False)
    return sha256_hex(payload.encode("utf-8"))


def chain_hash(previous: str, update: str) -> str:
    """One link of a rolling (prefix) hash chain."""
    return sha256_hex(f"{previous}:{update}".encode("ascii"))
