"""Byte-interval algebra.

All overlap reasoning in MC-Checker — "do these two accesses touch the same
memory?" — reduces to half-open byte intervals ``[start, stop)`` over a
per-rank virtual address space.  Derived MPI datatypes lower to *data-maps*
(lists of ``(displacement, length)`` segments, section IV-C-1c of the
paper); applying a data-map ``count`` times at a base address yields an
:class:`IntervalSet`, and two accesses conflict on memory iff their interval
sets intersect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open byte range ``[start, stop)``; empty iff ``start >= stop``."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.stop < self.start:
            raise ValueError(f"interval stop {self.stop} < start {self.start}")

    def __len__(self) -> int:
        return self.stop - self.start

    def is_empty(self) -> bool:
        return self.stop <= self.start

    def overlaps(self, other: "Interval") -> bool:
        return self.start < other.stop and other.start < self.stop

    def intersection(self, other: "Interval") -> "Interval":
        start = max(self.start, other.start)
        stop = min(self.stop, other.stop)
        return Interval(start, max(start, stop))

    def contains(self, other: "Interval") -> bool:
        return self.start <= other.start and other.stop <= self.stop

    def shift(self, offset: int) -> "Interval":
        return Interval(self.start + offset, self.stop + offset)


class IntervalSet:
    """A normalized (sorted, disjoint, coalesced) set of byte intervals.

    Supports the operations DN-Analyzer needs: overlap test, intersection,
    union, and total byte count.  Normalization keeps every query
    ``O(n + m)`` by merge-walking the two sorted lists.
    """

    __slots__ = ("_ivs",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._ivs: List[Interval] = _normalize(intervals)

    @classmethod
    def single(cls, start: int, length: int) -> "IntervalSet":
        return cls([Interval(start, start + length)]) if length > 0 else cls()

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "IntervalSet":
        """Build from ``(start, length)`` pairs (a data-map at offset 0)."""
        return cls(Interval(s, s + n) for s, n in pairs if n > 0)

    @property
    def intervals(self) -> Sequence[Interval]:
        return tuple(self._ivs)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._ivs)

    def __len__(self) -> int:
        return len(self._ivs)

    def __bool__(self) -> bool:
        return bool(self._ivs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._ivs == other._ivs

    def __hash__(self) -> int:
        return hash(tuple(self._ivs))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"[{iv.start},{iv.stop})" for iv in self._ivs)
        return f"IntervalSet({body})"

    def byte_count(self) -> int:
        return sum(len(iv) for iv in self._ivs)

    def bounds(self) -> Interval:
        """The tight covering interval (empty set -> empty interval at 0)."""
        if not self._ivs:
            return Interval(0, 0)
        return Interval(self._ivs[0].start, self._ivs[-1].stop)

    def shift(self, offset: int) -> "IntervalSet":
        shifted = IntervalSet.__new__(IntervalSet)
        shifted._ivs = [iv.shift(offset) for iv in self._ivs]
        return shifted

    def overlaps(self, other: "IntervalSet") -> bool:
        """True iff any byte is in both sets; linear merge walk."""
        a, b = self._ivs, other._ivs
        i = j = 0
        while i < len(a) and j < len(b):
            if a[i].overlaps(b[j]):
                return True
            if a[i].stop <= b[j].stop:
                i += 1
            else:
                j += 1
        return False

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        a, b = self._ivs, other._ivs
        out: List[Interval] = []
        i = j = 0
        while i < len(a) and j < len(b):
            cut = a[i].intersection(b[j])
            if not cut.is_empty():
                out.append(cut)
            if a[i].stop <= b[j].stop:
                i += 1
            else:
                j += 1
        result = IntervalSet.__new__(IntervalSet)
        result._ivs = out
        return result

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(list(self._ivs) + list(other._ivs))

    def contains_point(self, addr: int) -> bool:
        lo, hi = 0, len(self._ivs)
        while lo < hi:
            mid = (lo + hi) // 2
            iv = self._ivs[mid]
            if addr < iv.start:
                hi = mid
            elif addr >= iv.stop:
                lo = mid + 1
            else:
                return True
        return False


def _normalize(intervals: Iterable[Interval]) -> List[Interval]:
    ivs = sorted(iv for iv in intervals if not iv.is_empty())
    out: List[Interval] = []
    for iv in ivs:
        if out and iv.start <= out[-1].stop:
            if iv.stop > out[-1].stop:
                out[-1] = Interval(out[-1].start, iv.stop)
        else:
            out.append(iv)
    return out


def datamap_intervals(
    base: int, datamap: Sequence[Tuple[int, int]], count: int, extent: int
) -> IntervalSet:
    """Apply a datatype data-map ``count`` times starting at ``base``.

    ``datamap`` is the list of ``(displacement, length)`` segments of one
    datatype instance and ``extent`` is the datatype extent (stride between
    consecutive instances), exactly the representation of section IV-C-1c:
    ``MPI_INT`` is ``[(0, 4)]`` with extent 4; two ints separated by an
    8-byte gap are ``[(0, 4), (12, 4)]`` with extent 16.
    """
    if count < 0:
        raise ValueError(f"negative count {count}")
    ivs = []
    for rep in range(count):
        origin = base + rep * extent
        for disp, length in datamap:
            if length > 0:
                ivs.append(Interval(origin + disp, origin + disp + length))
    return IntervalSet(ivs)
