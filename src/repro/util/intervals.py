"""Byte-interval algebra.

All overlap reasoning in MC-Checker — "do these two accesses touch the same
memory?" — reduces to half-open byte intervals ``[start, stop)`` over a
per-rank virtual address space.  Derived MPI datatypes lower to *data-maps*
(lists of ``(displacement, length)`` segments, section IV-C-1c of the
paper); applying a data-map ``count`` times at a base address yields an
:class:`IntervalSet`, and two accesses conflict on memory iff their interval
sets intersect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open byte range ``[start, stop)``; empty iff ``start >= stop``."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.stop < self.start:
            raise ValueError(f"interval stop {self.stop} < start {self.start}")

    def __len__(self) -> int:
        return self.stop - self.start

    def is_empty(self) -> bool:
        return self.stop <= self.start

    def overlaps(self, other: "Interval") -> bool:
        return self.start < other.stop and other.start < self.stop

    def intersection(self, other: "Interval") -> "Interval":
        start = max(self.start, other.start)
        stop = min(self.stop, other.stop)
        return Interval(start, max(start, stop))

    def contains(self, other: "Interval") -> bool:
        return self.start <= other.start and other.stop <= self.stop

    def shift(self, offset: int) -> "Interval":
        return Interval(self.start + offset, self.stop + offset)


class IntervalSet:
    """A normalized (sorted, disjoint, coalesced) set of byte intervals.

    Supports the operations DN-Analyzer needs: overlap test, intersection,
    union, and total byte count.  Normalization keeps every query
    ``O(n + m)`` by merge-walking the two sorted lists.
    """

    __slots__ = ("_ivs",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._ivs: List[Interval] = _normalize(intervals)

    @classmethod
    def single(cls, start: int, length: int) -> "IntervalSet":
        return cls([Interval(start, start + length)]) if length > 0 else cls()

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "IntervalSet":
        """Build from ``(start, length)`` pairs (a data-map at offset 0)."""
        return cls(Interval(s, s + n) for s, n in pairs if n > 0)

    @property
    def intervals(self) -> Sequence[Interval]:
        return tuple(self._ivs)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._ivs)

    def __len__(self) -> int:
        return len(self._ivs)

    def __bool__(self) -> bool:
        return bool(self._ivs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._ivs == other._ivs

    def __hash__(self) -> int:
        return hash(tuple(self._ivs))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"[{iv.start},{iv.stop})" for iv in self._ivs)
        return f"IntervalSet({body})"

    def byte_count(self) -> int:
        return sum(len(iv) for iv in self._ivs)

    def bounds(self) -> Interval:
        """The tight covering interval (empty set -> empty interval at 0)."""
        if not self._ivs:
            return Interval(0, 0)
        return Interval(self._ivs[0].start, self._ivs[-1].stop)

    def shift(self, offset: int) -> "IntervalSet":
        shifted = IntervalSet.__new__(IntervalSet)
        shifted._ivs = [iv.shift(offset) for iv in self._ivs]
        return shifted

    def overlaps(self, other: "IntervalSet") -> bool:
        """True iff any byte is in both sets; linear merge walk."""
        a, b = self._ivs, other._ivs
        i = j = 0
        while i < len(a) and j < len(b):
            if a[i].overlaps(b[j]):
                return True
            if a[i].stop <= b[j].stop:
                i += 1
            else:
                j += 1
        return False

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        a, b = self._ivs, other._ivs
        out: List[Interval] = []
        i = j = 0
        while i < len(a) and j < len(b):
            cut = a[i].intersection(b[j])
            if not cut.is_empty():
                out.append(cut)
            if a[i].stop <= b[j].stop:
                i += 1
            else:
                j += 1
        result = IntervalSet.__new__(IntervalSet)
        result._ivs = out
        return result

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(list(self._ivs) + list(other._ivs))

    def contains_point(self, addr: int) -> bool:
        lo, hi = 0, len(self._ivs)
        while lo < hi:
            mid = (lo + hi) // 2
            iv = self._ivs[mid]
            if addr < iv.start:
                hi = mid
            elif addr >= iv.stop:
                lo = mid + 1
            else:
                return True
        return False


def _normalize(intervals: Iterable[Interval]) -> List[Interval]:
    ivs = sorted(iv for iv in intervals if not iv.is_empty())
    out: List[Interval] = []
    for iv in ivs:
        if out and iv.start <= out[-1].stop:
            if iv.stop > out[-1].stop:
                out[-1] = Interval(out[-1].start, iv.stop)
        else:
            out.append(iv)
    return out


def datamap_intervals(
    base: int, datamap: Sequence[Tuple[int, int]], count: int, extent: int
) -> IntervalSet:
    """Apply a datatype data-map ``count`` times starting at ``base``.

    ``datamap`` is the list of ``(displacement, length)`` segments of one
    datatype instance and ``extent`` is the datatype extent (stride between
    consecutive instances), exactly the representation of section IV-C-1c:
    ``MPI_INT`` is ``[(0, 4)]`` with extent 4; two ints separated by an
    8-byte gap are ``[(0, 4), (12, 4)]`` with extent 16.
    """
    if count < 0:
        raise ValueError(f"negative count {count}")
    if count > 0 and len(datamap) == 1:
        # fast paths for the overwhelmingly common shapes: a primitive or
        # contiguous type tiles into ONE interval; a vector type's blocks
        # are already sorted and disjoint, so normalization is a no-op
        disp, length = datamap[0]
        if length > 0:
            start = base + disp
            if length == extent:
                return IntervalSet.single(start, count * length)
            if length < extent:
                result = IntervalSet.__new__(IntervalSet)
                result._ivs = [
                    Interval(start + rep * extent, start + rep * extent + length)
                    for rep in range(count)]
                return result
    ivs = []
    for rep in range(count):
        origin = base + rep * extent
        for disp, length in datamap:
            if length > 0:
                ivs.append(Interval(origin + disp, origin + disp + length))
    return IntervalSet(ivs)


# ----------------------------------------------------------------------
# Vectorized batch API: interval *tables* and the sweep join
# ----------------------------------------------------------------------


class IntervalTable:
    """A column-oriented batch of intervals: ``(lo, hi, owner)`` arrays.

    Each row is one half-open byte range ``[lo, hi)`` belonging to
    ``owner`` (an arbitrary integer id — typically the index of the
    access the interval came from; several rows may share an owner when
    an access touches a multi-segment :class:`IntervalSet`).  Empty rows
    (``lo >= hi``) are dropped at construction, matching
    :class:`IntervalSet` normalization, so a join can never pair them.
    """

    __slots__ = ("lo", "hi", "owner")

    def __init__(self, lo, hi, owner: Optional[Sequence[int]] = None):
        lo = np.asarray(lo, dtype=np.int64).ravel()
        hi = np.asarray(hi, dtype=np.int64).ravel()
        if len(lo) != len(hi):
            raise ValueError(f"lo/hi length mismatch: {len(lo)} vs {len(hi)}")
        if owner is None:
            owner = np.arange(len(lo), dtype=np.int64)
        else:
            owner = np.asarray(owner, dtype=np.int64).ravel()
            if len(owner) != len(lo):
                raise ValueError(
                    f"owner length mismatch: {len(owner)} vs {len(lo)}")
        keep = lo < hi
        if not keep.all():
            lo, hi, owner = lo[keep], hi[keep], owner[keep]
        self.lo, self.hi, self.owner = lo, hi, owner

    @classmethod
    def from_columns(cls, addr, size,
                     owner: Optional[Sequence[int]] = None) -> "IntervalTable":
        """Build from parallel ``(addr, size)`` columns (one row each)."""
        addr = np.asarray(addr, dtype=np.int64).ravel()
        size = np.asarray(size, dtype=np.int64).ravel()
        return cls(addr, addr + size, owner)

    @classmethod
    def from_sets(cls, sets: Sequence[IntervalSet],
                  owners: Optional[Sequence[int]] = None) -> "IntervalTable":
        """Flatten interval sets into rows; set ``i`` owns its rows (or
        ``owners[i]`` when given)."""
        lo: List[int] = []
        hi: List[int] = []
        own: List[int] = []
        for i, ivset in enumerate(sets):
            owner = i if owners is None else owners[i]
            for iv in ivset:
                lo.append(iv.start)
                hi.append(iv.stop)
                own.append(owner)
        return cls(lo, hi, own)

    @classmethod
    def concat(cls, tables: Sequence["IntervalTable"]) -> "IntervalTable":
        tables = [t for t in tables if len(t)]
        if not tables:
            return cls((), ())
        if len(tables) == 1:
            return tables[0]
        return cls(np.concatenate([t.lo for t in tables]),
                   np.concatenate([t.hi for t in tables]),
                   np.concatenate([t.owner for t in tables]))

    def __len__(self) -> int:
        return len(self.lo)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IntervalTable({len(self)} rows)"


def _expand_ranges(starts: np.ndarray,
                   counts: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Enumerate ``(i, starts[i] + k)`` for ``k in range(counts[i])``."""
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    reps = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    ends = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts,
                                                           counts)
    return reps, np.repeat(starts, counts) + offsets


def _unique_pairs(oa: np.ndarray,
                  ob: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    pairs = np.unique(np.stack([oa, ob], axis=1), axis=0)
    return pairs[:, 0], pairs[:, 1]


def overlap_join(a: IntervalTable,
                 b: IntervalTable) -> Tuple[np.ndarray, np.ndarray]:
    """All distinct owner pairs ``(a.owner, b.owner)`` with byte overlap.

    The sweep: sort each side by ``lo`` once, then split every
    overlapping row pair into two disjoint cases —

    * ``b.lo`` starts inside ``a``  (``a.lo <= b.lo < a.hi``), a
      contiguous run of the ``b`` rows sorted by ``lo``;
    * ``a.lo`` starts strictly inside ``b``  (``b.lo < a.lo < b.hi``), a
      contiguous run of the ``a`` rows sorted by ``lo``

    — each enumerated with two ``searchsorted`` calls per row, so the
    cost is ``O((n + m) log(n + m) + output)`` and *only candidate pairs*
    are ever materialized.  Returned pairs are deduplicated across
    multi-segment owners and lexicographically sorted, which makes every
    downstream consumer order-deterministic.
    """
    if len(a) == 0 or len(b) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    a_order = np.argsort(a.lo, kind="stable")
    b_order = np.argsort(b.lo, kind="stable")
    a_lo_sorted = a.lo[a_order]
    b_lo_sorted = b.lo[b_order]

    # case 1: a.lo <= b.lo < a.hi
    first = np.searchsorted(b_lo_sorted, a.lo, side="left")
    last = np.searchsorted(b_lo_sorted, a.hi, side="left")
    rows_a, sorted_b = _expand_ranges(first, last - first)
    oa1 = a.owner[rows_a]
    ob1 = b.owner[b_order[sorted_b]]

    # case 2: b.lo < a.lo < b.hi
    first = np.searchsorted(a_lo_sorted, b.lo, side="right")
    last = np.searchsorted(a_lo_sorted, b.hi, side="left")
    rows_b, sorted_a = _expand_ranges(first, np.maximum(last - first, 0))
    oa2 = a.owner[a_order[sorted_a]]
    ob2 = b.owner[rows_b]

    return _unique_pairs(np.concatenate([oa1, oa2]),
                         np.concatenate([ob1, ob2]))


def naive_overlap_join(a: IntervalTable,
                       b: IntervalTable) -> Tuple[np.ndarray, np.ndarray]:
    """The O(n*m) reference join (differential tests, tiny inputs)."""
    if len(a) == 0 or len(b) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    hit = (a.lo[:, None] < b.hi[None, :]) & (b.lo[None, :] < a.hi[:, None])
    ai, bi = np.nonzero(hit)
    if not len(ai):
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    return _unique_pairs(a.owner[ai], b.owner[bi])
