"""Source locations attached to every profiled event.

The paper's Profiler records file names, routine names, and line numbers so
that DN-Analyzer can point programmers at the exact conflicting statements
(section IV-B).  Here the "application" is Python code running on the
simulated MPI runtime, so locations are captured by walking the interpreter
stack at the instrumentation point and skipping frames that belong to the
runtime itself.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

#: Path fragments considered part of the runtime; frames in these modules are
#: skipped when attributing an event to application code.
_RUNTIME_FRAGMENTS = (
    "/repro/simmpi/",
    "/repro/profiler/",
    "/repro/util/",
    "/repro/ga/",  # the GA layer is a runtime: report the GA call site
    "/threading.py",
)


@dataclass(frozen=True, order=True)
class SourceLocation:
    """A (file, line, function) triple identifying one program statement."""

    filename: str
    lineno: int
    function: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.filename}:{self.lineno} in {self.function}"

    @property
    def short(self) -> str:
        """``basename:lineno`` — the form used in diagnostic tables."""
        base = self.filename.rsplit("/", 1)[-1]
        return f"{base}:{self.lineno}"

    def encode(self) -> str:
        return f"{self.filename}:{self.lineno}:{self.function}"

    @classmethod
    def decode(cls, text: str) -> "SourceLocation":
        filename, lineno, function = text.rsplit(":", 2)
        return cls(filename, int(lineno), function)


UNKNOWN_LOCATION = SourceLocation("<unknown>", 0, "<unknown>")

# Per-code-object memo of the runtime-frame decision.  capture_location is
# on the per-event hot path and the set of code objects it sees is tiny and
# immortal (runtime + app functions), so one substring scan per code object
# replaces one per frame per event.  Keyed by the code object itself: that
# pins it alive, which is exactly what makes the verdict stable.
_RUNTIME_CODE: dict = {}

#: (code object, lineno) -> SourceLocation instance memo (same lifetime
#: argument as _RUNTIME_CODE: the key set is small and immortal).
_LOCATION_CACHE: dict = {}


def _is_runtime_code(code) -> bool:
    flag = _RUNTIME_CODE.get(code)
    if flag is None:
        filename = code.co_filename
        flag = any(f in filename for f in _RUNTIME_FRAGMENTS)
        _RUNTIME_CODE[code] = flag
    return flag


def capture_location(skip_runtime: bool = True) -> SourceLocation:
    """Capture the innermost application frame as a :class:`SourceLocation`.

    Frames whose filename contains a runtime path fragment are skipped so
    the event is attributed to the simulated application, not to the
    simulator or profiler internals — the analogue of the paper's LLVM pass
    instrumenting application IR rather than libmpi.
    """
    frame = sys._getframe(1)
    while frame is not None:
        code = frame.f_code
        if not skip_runtime or not _is_runtime_code(code):
            # frozen-dataclass construction costs more than the whole
            # frame walk; app call sites repeat endlessly, so memoize
            key = (code, frame.f_lineno)
            loc = _LOCATION_CACHE.get(key)
            if loc is None:
                loc = SourceLocation(code.co_filename, frame.f_lineno,
                                     code.co_name)
                _LOCATION_CACHE[key] = loc
            return loc
        frame = frame.f_back
    return UNKNOWN_LOCATION
