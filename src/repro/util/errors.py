"""Exception hierarchy for the MC-Checker reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SimMPIError(ReproError):
    """An error raised by the simulated MPI runtime."""


class DeadlockError(SimMPIError):
    """All live ranks are blocked and no progress is possible.

    Carries a human-readable description of what each rank was blocked on,
    mirroring the wait-for information a real MPI deadlock detector would
    report.
    """

    def __init__(self, blocked: dict):
        self.blocked = dict(blocked)
        lines = ", ".join(f"rank {r}: {why}" for r, why in sorted(self.blocked.items()))
        super().__init__(f"deadlock detected ({lines})")


class LivelockError(SimMPIError):
    """A rank exceeded its spin budget in a busy-wait loop.

    Used by the buggy BT-broadcast reimplementation, whose real-world
    symptom is an infinite ``while`` loop (paper, case study 1).
    """


class RMAUsageError(SimMPIError):
    """Structurally invalid RMA usage (e.g. Put outside any epoch).

    Note this is *not* a memory consistency error: the paper delegates
    argument/usage errors to the MPI implementation or tools like Marmot
    (section V); the simulator plays that role here.
    """


class TraceFormatError(ReproError):
    """A trace file could not be parsed."""


class AnalysisError(ReproError):
    """DN-Analyzer could not complete its analysis (malformed trace set)."""
