"""Shared low-level substrate: errors, intervals, trace records, locations.

These utilities are deliberately dependency-light; every other subpackage
(:mod:`repro.simmpi`, :mod:`repro.profiler`, :mod:`repro.core`) builds on
them.
"""

from repro.util.errors import (
    ReproError,
    SimMPIError,
    DeadlockError,
    LivelockError,
    RMAUsageError,
    TraceFormatError,
    AnalysisError,
)
from repro.util.cachestore import CacheStore
from repro.util.hashing import (
    chain_hash,
    hash_file,
    hash_lines,
    hash_strings,
    sha256_hex,
    stable_hash,
)
from repro.util.intervals import Interval, IntervalSet, datamap_intervals
from repro.util.location import SourceLocation, capture_location
from repro.util.records import Record, encode_record, decode_record

__all__ = [
    "CacheStore",
    "chain_hash",
    "hash_file",
    "hash_lines",
    "hash_strings",
    "sha256_hex",
    "stable_hash",
    "ReproError",
    "SimMPIError",
    "DeadlockError",
    "LivelockError",
    "RMAUsageError",
    "TraceFormatError",
    "AnalysisError",
    "Interval",
    "IntervalSet",
    "datamap_intervals",
    "SourceLocation",
    "capture_location",
    "Record",
    "encode_record",
    "decode_record",
]
