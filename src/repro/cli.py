"""``mc-checker`` command-line interface.

Subcommands mirror the paper's workflow (Figure 5):

* ``mc-checker stanalyze app.py`` — run ST-Analyzer, print the
  instrumentation report;
* ``mc-checker run <app> --ranks N --trace-dir D`` — execute an
  application under the Profiler, writing per-rank traces;
* ``mc-checker check <trace-dir>`` — run DN-Analyzer offline over traces;
* ``mc-checker run-check <app>`` — both steps in one go;
* ``mc-checker stats <trace-dir>`` — per-rank and per-phase summary;
* ``mc-checker generate --seed S --bug any`` — emit a constrained-random
  RMA program + ground-truth conflict manifest;
* ``mc-checker fuzz --seeds N`` — run the differential fuzzing harness
  over a seed corpus, scoring recall/precision and cross-checking every
  engine × control-plane × cache × trace-format arm;
* ``mc-checker table1`` — print the compatibility matrix;
* ``mc-checker apps`` — list the bundled applications.

``<app>`` is either a bundled bug-case name (``emulate``, ``BT-broadcast``,
``lockopts``, ``ping-pong``, ``jacobi``), a bundled overhead app name, or a
dotted path ``package.module:function``.

Observability (``repro.obs``) is wired in uniformly: every subcommand
accepts ``--log-level`` (all human-readable output goes through the
structured logger, so ``--log-level quiet`` leaves only exit codes), and
the profiling/analysis subcommands accept ``--metrics-out FILE`` (a
Prometheus exposition dump) and ``--chrome-trace FILE`` (a Chrome
``trace_event`` file for ``chrome://tracing``/Perfetto).  Passing either
export flag — or setting ``MCCHECKER_OBS=1`` — enables the recorder.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Callable, Dict, Optional, Tuple

from repro import obs
from repro.core.checker import check_traces
from repro.core.config import CheckConfig
from repro.core.compat import KINDS, TABLE
from repro.obs.export import write_chrome_trace, write_metrics
from repro.obs.logging import LOG_LEVEL_CHOICES
from repro.profiler.session import profile_run
from repro.profiler.tracer import TraceSet
from repro.stanalyzer import analyze_source


def _resolve_app(name: str) -> Tuple[Callable, Dict]:
    """Resolve an app spec to (callable, default params).

    Bundled names match case-insensitively (``lu`` finds ``LU``);
    dotted ``module:function`` paths stay exact."""
    from repro.apps.registry import (
        BUG_CASES, EXTRA_CASES, OVERHEAD_APPS, _resolve,
    )
    wanted = name.lower()
    for case in BUG_CASES + EXTRA_CASES:
        if case.name.lower() == wanted:
            return case.app, case.params(buggy=True)
    for app in OVERHEAD_APPS:
        if app.name.lower() == wanted:
            return app.app, app.param_dict()
    if ":" in name:
        return _resolve(name), {}
    raise SystemExit(f"unknown application {name!r}; see `mc-checker apps`")


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the sharded analyzer "
                             "(1 = serial, -1 = one per CPU); one "
                             "persistent pool serves every phase and is "
                             "reused by later runs; findings are "
                             "identical at any job count")


def _add_engine_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--engine", default="sweep",
                        choices=("sweep", "pairwise"),
                        help="conflict-detection engine: vectorized "
                             "sweep-line interval joins (default) or the "
                             "pairwise reference; reports are byte-"
                             "identical either way")


def _analysis_parent() -> argparse.ArgumentParser:
    """Shared parent parser: the analysis flags every checking-capable
    subcommand (``run``, ``check``, ``run-check``) accepts with identical
    help and defaults."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("analysis options")
    group.add_argument("--memory-model", default="separate",
                       choices=("separate", "unified"),
                       help="MPI RMA memory model for Table-I verdicts")
    group.add_argument("--engine", default="sweep",
                       choices=("sweep", "pairwise"),
                       help="conflict-detection engine: vectorized "
                            "sweep-line interval joins (default) or the "
                            "pairwise reference; reports are byte-"
                            "identical either way")
    group.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for the sharded analyzer "
                            "(1 = serial, -1 = one per CPU); one "
                            "persistent pool serves every phase and is "
                            "reused by later runs; findings are "
                            "identical at any job count")
    group.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="on-disk result cache for incremental "
                            "checking")
    group.add_argument("--incremental", action="store_true",
                       help="reuse cached per-region findings; only "
                            "re-analyze regions whose inputs changed "
                            "(requires --cache-dir)")
    return parent


def _config_from_args(args) -> CheckConfig:
    """Build the :class:`CheckConfig` a subcommand's flags describe."""
    if getattr(args, "incremental", False) and \
            not getattr(args, "cache_dir", None):
        raise SystemExit("mc-checker: --incremental requires --cache-dir")
    try:
        return CheckConfig(
            memory_model=getattr(args, "memory_model", "separate"),
            engine=getattr(args, "engine", "sweep"),
            jobs=getattr(args, "jobs", 1),
            streaming=getattr(args, "streaming", False),
            naive_inter=getattr(args, "naive_inter", False),
            cache_dir=getattr(args, "cache_dir", None),
            incremental=getattr(args, "incremental", False))
    except ValueError as exc:
        raise SystemExit(f"mc-checker: {exc}") from None


def _add_obs_args(parser: argparse.ArgumentParser,
                  exports: bool = False) -> None:
    parser.add_argument("--log-level", default="info",
                        choices=LOG_LEVEL_CHOICES,
                        help="verbosity of human-readable output "
                             "(quiet silences everything)")
    if exports:
        parser.add_argument("--metrics-out", default=None, metavar="FILE",
                            help="write a Prometheus-exposition metrics "
                                 "dump (enables observability)")
        parser.add_argument("--chrome-trace", default=None, metavar="FILE",
                            help="write a Chrome trace_event span file for "
                                 "chrome://tracing / Perfetto (enables "
                                 "observability)")


def _add_ledger_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("run ledger")
    group.add_argument("--ledger-dir", default=None, metavar="DIR",
                       help="where to append this run's flight record "
                            "(default: $MCCHECKER_LEDGER_DIR or "
                            "~/.mc-checker/ledger)")
    group.add_argument("--no-ledger", action="store_true",
                       help="skip the run ledger (also disables the "
                            "default flight recorder)")


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("app", help="bundled app name or module:function")
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument("--trace-dir", default=None)
    parser.add_argument("--scope", default="report",
                        choices=("report", "all", "none"),
                        help="instrumentation scope (default: ST-Analyzer "
                             "report)")
    parser.add_argument("--delivery", default="random",
                        choices=("eager", "lazy", "random"),
                        help="RMA delivery policy of the simulator")
    parser.add_argument("--sched", default="round_robin",
                        choices=("round_robin", "random"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trace-format", default="text",
                        choices=("text", "binary"),
                        help="on-disk trace format (binary: packed "
                             "columnar load/store blocks, smaller and "
                             "much faster to analyze; identical findings)")
    parser.add_argument("--fixed", action="store_true",
                        help="run the corrected variant of a bug-case app")
    parser.add_argument("--param", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="override an app parameter (repeatable)")


def _add_gen_args(parser: argparse.ArgumentParser) -> None:
    """Generation flags shared by ``generate`` and ``fuzz``."""
    group = parser.add_argument_group("generation options")
    group.add_argument("--seed", type=int, default=0,
                       help="master generation seed (the only source of "
                            "randomness; same seed = same program)")
    group.add_argument("--ranks", type=int, default=4,
                       help="simulated ranks of the generated program")
    group.add_argument("--rounds", type=int, default=3,
                       help="synchronization rounds (one epoch per rank "
                            "per round)")
    group.add_argument("--ops", type=int, default=3, metavar="N",
                       help="actions per rank per round")
    group.add_argument("--bug", action="append", default=[],
                       metavar="PATTERN", dest="bugs",
                       help="inject a conflict: get_local, put_origin, "
                            "op_pair, conflicting_puts, target_race, or "
                            "'any' (repeatable)")
    group.add_argument("--slot-elems", type=int, default=2,
                       help="window/origin elements per action slot")
    group.add_argument("--reps", type=int, default=1,
                       help="semantic repetitions of each local access "
                            "(scales event counts via the bulk producer "
                            "lane)")
    group.add_argument("--flush-prob", type=float, default=0.25,
                       help="probability of a mid-epoch flush_all in "
                            "lock_all rounds")
    group.add_argument("--trace-format", default="text",
                       choices=("text", "binary"),
                       help="trace encoding for profiled runs")


def _gen_config_from_args(args):
    from repro.gen import GenConfig
    try:
        return GenConfig(
            seed=args.seed, nranks=args.ranks, rounds=args.rounds,
            ops_per_round=args.ops, bugs=tuple(args.bugs),
            slot_elems=args.slot_elems, reps=args.reps,
            flush_prob=args.flush_prob, trace_format=args.trace_format)
    except ValueError as exc:
        raise SystemExit(f"mc-checker: {exc}") from None


def _parse_params(raw_params, defaults: Dict) -> Dict:
    params = dict(defaults)
    for raw in raw_params:
        key, _, value = raw.partition("=")
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value
    return params


def _do_run(args) -> Optional[str]:
    log = obs.get_logger()
    app, defaults = _resolve_app(args.app)
    params = _parse_params(args.param, defaults)
    if args.fixed and "buggy" in params:
        params["buggy"] = False
    run = profile_run(app, args.ranks, trace_dir=args.trace_dir,
                      params=params, scope=args.scope,
                      delivery=args.delivery, sched_policy=args.sched,
                      seed=args.seed, app_name=args.app,
                      trace_format=args.trace_format)
    counts = run.traces.event_counts()
    log.info(f"ran {args.app!r} on {args.ranks} ranks in "
             f"{run.elapsed:.3f}s")
    log.info(f"traces: {run.traces.directory}")
    log.info(f"events: {counts['call']} MPI calls, {counts['load']} loads, "
             f"{counts['store']} stores")
    return run.traces.directory


def _per_rank_table(stats) -> str:
    """Per-rank event/byte table of a :class:`~repro.tools.TraceStats`."""
    lines = ["per-rank summary:",
             f"  {'rank':>4s} {'calls':>8s} {'loads':>8s} {'stores':>8s} "
             f"{'rma_bytes':>10s} {'ls_bytes':>10s}"]
    for r in stats.per_rank:
        lines.append(
            f"  {r.rank:4d} {r.calls:8d} {r.loads:8d} {r.stores:8d} "
            f"{r.rma_bytes:10d} {r.load_bytes + r.store_bytes:10d}")
    return "\n".join(lines)


def _phase_table(report) -> str:
    """Per-phase timing table of a :class:`~repro.core.CheckReport`."""
    timings = report.stats.phase_seconds
    lines = ["analyzer phases:"]
    for phase, seconds in timings.items():
        lines.append(f"  {phase:12s} {seconds:9.4f}s")
    lines.append(f"  {'total':12s} {report.stats.total_seconds:9.4f}s")
    lines.append(f"findings: {len(report.errors)} error(s), "
                 f"{len(report.warnings)} warning(s)")
    return "\n".join(lines)


def _record_run(args, report, config, traces) -> None:
    """Append this run's flight record to the ledger (best-effort: a
    ledger problem must never fail the analysis that produced it)."""
    if getattr(args, "no_ledger", False):
        return
    log = obs.get_logger()
    try:
        from repro.obs.ledger import RunLedger
        from repro.obs.report import build_run_report
        run_report = build_run_report(
            report, config, traces=traces,
            command=getattr(args, "_command_line", ""),
            app=getattr(args, "app", None) or "")
        RunLedger(getattr(args, "ledger_dir", None)).append(run_report)
        log.debug(f"ledger: recorded run {run_report.run_id}")
    except Exception as exc:  # noqa: BLE001
        log.warning(f"ledger: could not record run: {exc}")


def _do_report(args) -> int:
    log = obs.get_logger()
    from repro.obs.dashboard import (
        render_compare_text, render_run_html, render_run_text,
    )
    from repro.obs.ledger import RunLedger, compare_runs
    ledger = RunLedger(args.ledger_dir)
    entry = (ledger.find(args.run_id) if args.run_id else ledger.last())
    if entry is None:
        log.error("report: no matching run in the ledger "
                  f"({ledger.path}); run `mc-checker history`")
        return 2
    if args.compare:
        baseline = ledger.find(args.compare)
        if baseline is None:
            log.error(f"report: no run matches baseline {args.compare!r}")
            return 2
        comparison = compare_runs(entry, baseline,
                                  tolerance=args.tolerance)
        if args.json:
            print(json.dumps(comparison, indent=2))
        else:
            log.info(render_compare_text(comparison))
        return 0 if comparison["ok"] else 1
    if args.html:
        parent = os.path.dirname(args.html)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(render_run_html(entry))
        log.info(f"dashboard: {args.html}")
    if args.json:
        print(json.dumps(entry.to_dict(), indent=2))
    elif not args.html:
        log.info(render_run_text(entry))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mc-checker",
        description="Detect memory consistency errors in (simulated) MPI "
                    "one-sided applications.")
    sub = parser.add_subparsers(dest="command", required=True)
    analysis = _analysis_parent()

    p_run = sub.add_parser("run", help="profile an application run",
                           parents=[analysis])
    _add_run_args(p_run)
    _add_obs_args(p_run, exports=True)

    p_check = sub.add_parser("check", help="analyze an existing trace set",
                             parents=[analysis])
    p_check.add_argument("trace_dir")
    p_check.add_argument("--naive-inter", action="store_true",
                         help="use the combinatorial cross-process detector")
    p_check.add_argument("--streaming", action="store_true",
                         help="region-at-a-time analysis with bounded "
                              "data-event memory")
    p_check.add_argument("--json", action="store_true",
                         help="emit the report as JSON (for CI tooling)")
    _add_obs_args(p_check, exports=True)
    _add_ledger_args(p_check)

    p_rc = sub.add_parser("run-check", help="profile and analyze in one go",
                          parents=[analysis])
    _add_run_args(p_rc)
    _add_obs_args(p_rc, exports=True)
    _add_ledger_args(p_rc)

    p_hist = sub.add_parser(
        "history", help="list past analysis runs from the run ledger")
    p_hist.add_argument("--limit", type=int, default=None, metavar="N",
                        help="show only the N most recent runs")
    p_hist.add_argument("--app", default=None,
                        help="filter by application name")
    p_hist.add_argument("--json", action="store_true",
                        help="emit the entries as JSON")
    p_hist.add_argument("--ledger-dir", default=None, metavar="DIR")
    _add_obs_args(p_hist)

    p_rep = sub.add_parser(
        "report", help="render one ledger entry (flight record)")
    p_rep.add_argument("run_id", nargs="?", default=None,
                       help="run id (prefix) to render")
    p_rep.add_argument("--last", action="store_true",
                       help="render the most recent run")
    p_rep.add_argument("--html", default=None, metavar="FILE",
                       help="write a self-contained HTML dashboard")
    p_rep.add_argument("--compare", default=None, metavar="BASELINE",
                       help="diff against another run id (prefix); exits "
                            "1 on regression beyond --tolerance")
    p_rep.add_argument("--tolerance", type=float, default=0.25,
                       help="allowed slowdown fraction for --compare "
                            "(default 0.25 = 25%%)")
    p_rep.add_argument("--json", action="store_true",
                       help="emit the entry (or comparison) as JSON")
    p_rep.add_argument("--ledger-dir", default=None, metavar="DIR")
    _add_obs_args(p_rep)

    p_gen = sub.add_parser(
        "generate", help="generate a constrained-random RMA program with "
                         "a ground-truth conflict manifest")
    _add_gen_args(p_gen)
    p_gen.add_argument("--out", default=None, metavar="DIR",
                       help="write program.json + manifest.json here")
    p_gen.add_argument("--json", action="store_true",
                       help="emit the manifest as JSON on stdout")
    _add_obs_args(p_gen)

    p_fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing over generated programs: "
                     "recall/precision vs the injected-bug manifest plus "
                     "cross-checked engine/plane/cache/format arms",
        parents=[analysis])
    _add_gen_args(p_fuzz)
    p_fuzz.add_argument("--seeds", type=int, default=5, metavar="N",
                        help="corpus size: seeds seed..seed+N-1 "
                             "(default 5)")
    p_fuzz.add_argument("--no-differential", action="store_true",
                        help="skip the differential matrix (score "
                             "recall/precision only)")
    p_fuzz.add_argument("--json", action="store_true",
                        help="emit the fuzz report as JSON")
    _add_obs_args(p_fuzz, exports=True)

    p_st = sub.add_parser("stanalyze", help="static analysis of a source file")
    p_st.add_argument("source_file")
    _add_obs_args(p_st)

    p_dag = sub.add_parser(
        "dag", help="render a trace set's data-access DAG (Figure 4)")
    p_dag.add_argument("trace_dir")
    p_dag.add_argument("--format", default="ascii",
                       choices=("ascii", "dot"))
    _add_obs_args(p_dag)

    p_stats = sub.add_parser(
        "stats", help="per-rank / per-phase statistics of a trace set "
                      "(Figure-10 lens)")
    p_stats.add_argument("trace_dir")
    p_stats.add_argument("--hot", type=int, default=8,
                         help="number of hottest statements to list")
    p_stats.add_argument("--no-phases", action="store_true",
                         help="skip the DN-Analyzer per-phase timing table")
    p_stats.add_argument("--json", action="store_true",
                         help="emit the statistics (incl. per-rank binary "
                              "footer counts) as JSON")
    _add_jobs_arg(p_stats)
    _add_engine_arg(p_stats)
    _add_obs_args(p_stats, exports=True)

    p_diff = sub.add_parser(
        "diff", help="align two trace sets of the same application")
    p_diff.add_argument("left_dir")
    p_diff.add_argument("right_dir")
    _add_obs_args(p_diff)

    p_min = sub.add_parser(
        "minimize", help="shrink a failing trace set while the first "
                         "finding persists")
    p_min.add_argument("trace_dir")
    p_min.add_argument("out_dir")
    _add_obs_args(p_min)

    p_t1 = sub.add_parser("table1", help="print the RMA compatibility matrix")
    _add_obs_args(p_t1)
    p_apps = sub.add_parser("apps", help="list bundled applications")
    _add_obs_args(p_apps)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args._command_line = "mc-checker " + " ".join(
        sys.argv[1:] if argv is None else [str(a) for a in argv])

    metrics_out = getattr(args, "metrics_out", None)
    chrome_trace = getattr(args, "chrome_trace", None)
    # check/run-check record by default — their flight record feeds the
    # run ledger; --no-ledger opts back out of both
    recording_commands = args.command in ("check", "run-check") and \
        not getattr(args, "no_ledger", False)
    enabled = bool(metrics_out or chrome_trace
                   or os.environ.get("MCCHECKER_OBS")
                   or recording_commands)
    obs.configure(enabled=enabled,
                  log_level=getattr(args, "log_level", "info"))
    try:
        return _dispatch(args)
    finally:
        recorder = obs.get_recorder()
        log = obs.get_logger()
        if metrics_out:
            write_metrics(recorder, metrics_out)
            log.info(f"metrics: {metrics_out}")
        if chrome_trace:
            write_chrome_trace(recorder, chrome_trace)
            log.info(f"chrome trace: {chrome_trace} "
                     "(open in chrome://tracing or ui.perfetto.dev)")
        obs.reset()


def _dispatch(args) -> int:
    log = obs.get_logger()

    if args.command == "run":
        _do_run(args)
        return 0

    if args.command in ("check", "run-check"):
        trace_dir = (_do_run(args) if args.command == "run-check"
                     else args.trace_dir)
        config = _config_from_args(args)
        traces = TraceSet(trace_dir)
        if config.streaming:
            from repro.core.streaming import check_streaming
            findings, checker = check_streaming(
                traces, memory_model=config.memory_model,
                engine=config.engine)
            errors = [f for f in findings if f.severity == "error"]
            log.info(f"MC-Checker (streaming): {len(errors)} error(s), "
                     f"{len(findings) - len(errors)} warning(s); peak "
                     f"buffered load/store events: "
                     f"{checker.peak_buffered_mems}")
            for finding in findings:
                log.info("")
                log.info(finding.format())
            return 1 if errors else 0
        report = check_traces(traces, config)
        _record_run(args, report, config, traces)
        if getattr(args, "json", False):
            # machine output: always printed verbatim, bypassing log level
            print(json.dumps(report.to_dict(), indent=2))
        else:
            log.info(report.format())
        return 1 if report.has_errors else 0

    if args.command == "generate":
        from repro.gen import generate_program
        generated = generate_program(_gen_config_from_args(args))
        if args.out:
            generated.save(args.out)
            log.info(f"wrote {os.path.join(args.out, 'program.json')} and "
                     f"manifest.json ({len(generated.manifest.bugs)} "
                     "injected bug(s))")
        if args.json:
            print(generated.manifest.canonical_json())
        elif not args.out:
            log.info(f"generated program: {args.ranks} ranks, "
                     f"{args.rounds} rounds, "
                     f"{len(generated.manifest.bugs)} injected bug(s)")
            for bug in generated.manifest.bugs:
                log.info(f"  bug {bug.bug_id}: {bug.pattern} "
                         f"({bug.kind}, round {bug.round_index} "
                         f"{bug.epoch_kind}, ranks {list(bug.ranks)})")
            log.info("pass --out DIR to save program.json + manifest.json")
        return 0

    if args.command == "fuzz":
        from repro.gen.fuzz import fuzz_corpus
        gen_cfg = _gen_config_from_args(args)
        check_cfg = _config_from_args(args)
        seeds = range(args.seed, args.seed + args.seeds)
        fuzz_report = fuzz_corpus(gen_cfg, seeds, check_cfg,
                                  differential=not args.no_differential)
        if args.json:
            print(json.dumps(fuzz_report.to_dict(), indent=2))
        else:
            log.info(fuzz_report.format())
        return 0 if fuzz_report.ok else 1

    if args.command == "history":
        from repro.obs.dashboard import render_history_text
        from repro.obs.ledger import RunLedger
        ledger = RunLedger(args.ledger_dir)
        entries = ledger.entries(app=args.app, limit=args.limit)
        if args.json:
            print(json.dumps([e.to_dict() for e in entries], indent=2))
        else:
            log.info(render_history_text(entries))
        return 0

    if args.command == "report":
        return _do_report(args)

    if args.command == "dag":
        from repro.core.dag import build_dag, render_ascii, render_dot
        from repro.core.epochs import EpochIndex
        from repro.core.matching import match_synchronization
        from repro.core.preprocess import preprocess

        pre = preprocess(TraceSet(args.trace_dir))
        matches = match_synchronization(pre)
        dag = build_dag(pre, matches, EpochIndex(pre))
        render = render_dot if args.format == "dot" else render_ascii
        log.info(render(dag))
        return 0

    if args.command == "stats":
        from repro.tools import compute_stats
        traces = TraceSet(args.trace_dir)
        stats = compute_stats(traces)
        if getattr(args, "json", False):
            print(json.dumps(stats.to_dict(hot_limit=args.hot), indent=2))
            return 0
        log.info(stats.format(hot_limit=args.hot))
        log.info(_per_rank_table(stats))
        if not args.no_phases:
            try:
                report = check_traces(traces, CheckConfig(
                    jobs=args.jobs, engine=args.engine))
            except Exception as exc:  # noqa: BLE001 - stats must not die
                log.warning(f"analyzer phases unavailable: {exc}")
            else:
                log.info(_phase_table(report))
        return 0

    if args.command == "diff":
        from repro.tools import diff_traces
        diff = diff_traces(TraceSet(args.left_dir),
                           TraceSet(args.right_dir))
        log.info(diff.format())
        return 0 if diff.identical else 1

    if args.command == "minimize":
        from repro.tools.minimize import minimize_trace
        try:
            result = minimize_trace(TraceSet(args.trace_dir), args.out_dir)
        except ValueError as exc:
            log.error(f"minimize: {exc}")
            return 2
        log.info(result.format())
        log.info(f"minimized traces: {result.traces.directory}")
        return 0

    if args.command == "stanalyze":
        with open(args.source_file, encoding="utf-8") as fh:
            source = fh.read()
        try:
            report = analyze_source(source, filename=args.source_file)
        except SyntaxError as exc:
            log.error(f"stanalyze: {args.source_file} does not parse: {exc}")
            return 2
        log.info(report.summary())
        return 0

    if args.command == "table1":
        width = max(len(k) for k in KINDS) + 2
        log.info("".ljust(width) + "".join(k.ljust(width) for k in KINDS))
        for a in KINDS:
            row = [TABLE[(a, b)] for b in KINDS]
            log.info(a.ljust(width) + "".join(v.ljust(width) for v in row))
        log.info("\n(acc/acc: BOTH only for the same op and basic datatype)")
        return 0

    if args.command == "apps":
        from repro.apps.registry import (
            BUG_CASES, EXTRA_CASES, OVERHEAD_APPS,
        )
        log.info("bug-study applications (Table II + extras):")
        for case in BUG_CASES + EXTRA_CASES:
            log.info(f"  {case.name:20s} {case.nranks:3d} ranks  "
                     f"{case.error_location:17s} {case.failure_symptom}")
        log.info("overhead applications (Figure 8):")
        for app in OVERHEAD_APPS:
            log.info(f"  {app.name:20s} {app.nranks:3d} ranks")
        return 0

    return 0  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
