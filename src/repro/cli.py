"""``mc-checker`` command-line interface.

Subcommands mirror the paper's workflow (Figure 5):

* ``mc-checker stanalyze app.py`` — run ST-Analyzer, print the
  instrumentation report;
* ``mc-checker run <app> --ranks N --trace-dir D`` — execute an
  application under the Profiler, writing per-rank traces;
* ``mc-checker check <trace-dir>`` — run DN-Analyzer offline over traces;
* ``mc-checker run-check <app>`` — both steps in one go;
* ``mc-checker table1`` — print the compatibility matrix;
* ``mc-checker apps`` — list the bundled applications.

``<app>`` is either a bundled bug-case name (``emulate``, ``BT-broadcast``,
``lockopts``, ``ping-pong``, ``jacobi``), a bundled overhead app name, or a
dotted path ``package.module:function``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, Optional, Tuple

from repro.core.checker import check_traces
from repro.core.compat import KINDS, TABLE
from repro.profiler.session import profile_run
from repro.profiler.tracer import TraceSet
from repro.stanalyzer import analyze_source


def _resolve_app(name: str) -> Tuple[Callable, Dict]:
    """Resolve an app spec to (callable, default params)."""
    from repro.apps.registry import (
        BUG_CASES, EXTRA_CASES, OVERHEAD_APPS, _resolve,
    )
    for case in BUG_CASES + EXTRA_CASES:
        if case.name == name:
            return case.app, case.params(buggy=True)
    for app in OVERHEAD_APPS:
        if app.name == name:
            return app.app, app.param_dict()
    if ":" in name:
        return _resolve(name), {}
    raise SystemExit(f"unknown application {name!r}; see `mc-checker apps`")


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("app", help="bundled app name or module:function")
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument("--trace-dir", default=None)
    parser.add_argument("--scope", default="report",
                        choices=("report", "all", "none"),
                        help="instrumentation scope (default: ST-Analyzer "
                             "report)")
    parser.add_argument("--delivery", default="random",
                        choices=("eager", "lazy", "random"),
                        help="RMA delivery policy of the simulator")
    parser.add_argument("--sched", default="round_robin",
                        choices=("round_robin", "random"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--fixed", action="store_true",
                        help="run the corrected variant of a bug-case app")
    parser.add_argument("--param", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="override an app parameter (repeatable)")


def _parse_params(raw_params, defaults: Dict) -> Dict:
    params = dict(defaults)
    for raw in raw_params:
        key, _, value = raw.partition("=")
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value
    return params


def _do_run(args) -> Optional[str]:
    app, defaults = _resolve_app(args.app)
    params = _parse_params(args.param, defaults)
    if args.fixed and "buggy" in params:
        params["buggy"] = False
    run = profile_run(app, args.ranks, trace_dir=args.trace_dir,
                      params=params, scope=args.scope,
                      delivery=args.delivery, sched_policy=args.sched,
                      seed=args.seed, app_name=args.app)
    counts = run.traces.event_counts()
    print(f"ran {args.app!r} on {args.ranks} ranks in {run.elapsed:.3f}s")
    print(f"traces: {run.traces.directory}")
    print(f"events: {counts['call']} MPI calls, {counts['load']} loads, "
          f"{counts['store']} stores")
    return run.traces.directory


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="mc-checker",
        description="Detect memory consistency errors in (simulated) MPI "
                    "one-sided applications.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="profile an application run")
    _add_run_args(p_run)

    p_check = sub.add_parser("check", help="analyze an existing trace set")
    p_check.add_argument("trace_dir")
    p_check.add_argument("--naive-inter", action="store_true",
                         help="use the combinatorial cross-process detector")
    p_check.add_argument("--streaming", action="store_true",
                         help="region-at-a-time analysis with bounded "
                              "data-event memory")
    p_check.add_argument("--memory-model", default="separate",
                         choices=("separate", "unified"),
                         help="MPI RMA memory model for Table-I verdicts")
    p_check.add_argument("--json", action="store_true",
                         help="emit the report as JSON (for CI tooling)")

    p_rc = sub.add_parser("run-check", help="profile and analyze in one go")
    _add_run_args(p_rc)

    p_st = sub.add_parser("stanalyze", help="static analysis of a source file")
    p_st.add_argument("source_file")

    p_dag = sub.add_parser(
        "dag", help="render a trace set's data-access DAG (Figure 4)")
    p_dag.add_argument("trace_dir")
    p_dag.add_argument("--format", default="ascii",
                       choices=("ascii", "dot"))

    p_stats = sub.add_parser(
        "stats", help="event statistics of a trace set (Figure-10 lens)")
    p_stats.add_argument("trace_dir")
    p_stats.add_argument("--hot", type=int, default=8,
                         help="number of hottest statements to list")

    p_diff = sub.add_parser(
        "diff", help="align two trace sets of the same application")
    p_diff.add_argument("left_dir")
    p_diff.add_argument("right_dir")

    p_min = sub.add_parser(
        "minimize", help="shrink a failing trace set while the first "
                         "finding persists")
    p_min.add_argument("trace_dir")
    p_min.add_argument("out_dir")

    sub.add_parser("table1", help="print the RMA compatibility matrix")
    sub.add_parser("apps", help="list bundled applications")

    args = parser.parse_args(argv)

    if args.command == "run":
        _do_run(args)
        return 0

    if args.command in ("check", "run-check"):
        if args.command == "run-check":
            trace_dir = _do_run(args)
            naive = streaming = False
            memory_model = "separate"
        else:
            trace_dir = args.trace_dir
            naive = args.naive_inter
            streaming = args.streaming
            memory_model = args.memory_model
        traces = TraceSet(trace_dir)
        if streaming:
            from repro.core.streaming import check_streaming
            findings, checker = check_streaming(traces,
                                                memory_model=memory_model)
            errors = [f for f in findings if f.severity == "error"]
            print(f"MC-Checker (streaming): {len(errors)} error(s), "
                  f"{len(findings) - len(errors)} warning(s); peak "
                  f"buffered load/store events: "
                  f"{checker.peak_buffered_mems}")
            for finding in findings:
                print()
                print(finding.format())
            return 1 if errors else 0
        report = check_traces(traces, naive_inter=naive,
                              memory_model=memory_model)
        if getattr(args, "json", False):
            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(report.format())
        return 1 if report.has_errors else 0

    if args.command == "dag":
        from repro.core.dag import build_dag, render_ascii, render_dot
        from repro.core.epochs import EpochIndex
        from repro.core.matching import match_synchronization
        from repro.core.preprocess import preprocess

        pre = preprocess(TraceSet(args.trace_dir))
        matches = match_synchronization(pre)
        dag = build_dag(pre, matches, EpochIndex(pre))
        render = render_dot if args.format == "dot" else render_ascii
        print(render(dag))
        return 0

    if args.command == "stats":
        from repro.tools import compute_stats
        print(compute_stats(TraceSet(args.trace_dir)).format(
            hot_limit=args.hot))
        return 0

    if args.command == "diff":
        from repro.tools import diff_traces
        diff = diff_traces(TraceSet(args.left_dir),
                           TraceSet(args.right_dir))
        print(diff.format())
        return 0 if diff.identical else 1

    if args.command == "minimize":
        from repro.tools.minimize import minimize_trace
        try:
            result = minimize_trace(TraceSet(args.trace_dir), args.out_dir)
        except ValueError as exc:
            print(f"minimize: {exc}")
            return 2
        print(result.format())
        print(f"minimized traces: {result.traces.directory}")
        return 0

    if args.command == "stanalyze":
        with open(args.source_file, encoding="utf-8") as fh:
            source = fh.read()
        try:
            report = analyze_source(source, filename=args.source_file)
        except SyntaxError as exc:
            print(f"stanalyze: {args.source_file} does not parse: {exc}")
            return 2
        print(report.summary())
        return 0

    if args.command == "table1":
        width = max(len(k) for k in KINDS) + 2
        print("".ljust(width) + "".join(k.ljust(width) for k in KINDS))
        for a in KINDS:
            row = [TABLE[(a, b)] for b in KINDS]
            print(a.ljust(width) + "".join(v.ljust(width) for v in row))
        print("\n(acc/acc: BOTH only for the same op and basic datatype)")
        return 0

    if args.command == "apps":
        from repro.apps.registry import (
            BUG_CASES, EXTRA_CASES, OVERHEAD_APPS,
        )
        print("bug-study applications (Table II + extras):")
        for case in BUG_CASES + EXTRA_CASES:
            print(f"  {case.name:20s} {case.nranks:3d} ranks  "
                  f"{case.error_location:17s} {case.failure_symptom}")
        print("overhead applications (Figure 8):")
        for app in OVERHEAD_APPS:
            print(f"  {app.name:20s} {app.nranks:3d} ranks")
        return 0

    return 0  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
