"""Exporters: Prometheus text, Chrome ``trace_event`` JSON, JSON-lines.

* :func:`prometheus_text` renders the metrics registry in the Prometheus
  exposition format (``# HELP``/``# TYPE`` headers, cumulative
  ``_bucket{le=...}`` series for histograms) — pointable at a pushgateway
  or diffable in CI;
* :func:`chrome_trace` renders the span log as a Chrome ``trace_event``
  document (``"X"`` complete events, microsecond timestamps relative to
  the recorder's epoch) that loads directly in ``chrome://tracing`` and
  Perfetto;
* :func:`jsonl_lines` emits one JSON object per span and per metric
  sample, the format log pipelines ingest.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.recorder import NullRecorder

# ----------------------------------------------------------------------
# Prometheus exposition format
# ----------------------------------------------------------------------


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(value: str) -> str:
    # HELP text escapes backslash and newline only (exposition format);
    # quotes are legal verbatim outside a label position
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"'
                     for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every metric family in the exposition text format."""
    lines: List[str] = []
    for metric in registry:
        # every family gets both headers, even with empty help — scrapers
        # and the OpenMetrics parsers key family metadata off these lines
        lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}"
                     .rstrip())
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            for labels, value in metric.samples():
                lines.append(
                    f"{metric.name}{_render_labels(labels)} "
                    f"{_format_value(value)}")
        elif isinstance(metric, Histogram):
            for labels, (bucket_counts, count, total) in metric.samples():
                cumulative = 0
                for bound, n in zip(metric.buckets, bucket_counts):
                    cumulative += n
                    bucket_labels = dict(labels, le=repr(bound))
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_render_labels(bucket_labels)} {cumulative}")
                inf_labels = dict(labels, le="+Inf")
                lines.append(f"{metric.name}_bucket"
                             f"{_render_labels(inf_labels)} {count}")
                lines.append(f"{metric.name}_sum{_render_labels(labels)} "
                             f"{repr(float(total))}")
                lines.append(f"{metric.name}_count{_render_labels(labels)} "
                             f"{count}")
    return "\n".join(lines) + "\n" if lines else ""


def _open_out(path: str):
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    return open(path, "w", encoding="utf-8")


def write_metrics(recorder: NullRecorder, path: str) -> None:
    with _open_out(path) as fh:
        fh.write(prometheus_text(recorder.registry))


# ----------------------------------------------------------------------
# Chrome trace_event format (chrome://tracing, Perfetto)
# ----------------------------------------------------------------------


def chrome_trace(recorder: NullRecorder,
                 process_name: str = "mc-checker") -> dict:
    """Span log as a Chrome ``trace_event`` JSON document.

    Spans absorbed from parallel workers carry their recording pid, so
    each worker renders as its own process lane (``worker-<pid>``) with
    per-``(pid, thread)`` tids — concurrent shards never overlap on one
    track, which is what makes the merged timeline readable."""
    records = recorder.spans.records()
    main_pid = os.getpid()
    pids_named = set()
    tids: Dict[tuple, int] = {}
    events: List[dict] = []
    for record in records:
        pid = record.pid or main_pid
        if pid not in pids_named:
            pids_named.add(pid)
            name = (process_name if pid == main_pid
                    else f"{process_name} worker-{pid}")
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": name},
            })
        key = (pid, record.thread)
        if key not in tids:
            tid = tids[key] = len(tids)
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": record.thread},
            })
    for record in records:
        pid = record.pid or main_pid
        events.append({
            "name": record.name,
            "cat": record.name.split(".", 1)[0],
            "ph": "X",
            "ts": (record.start - recorder.epoch) * 1e6,
            "dur": record.duration * 1e6,
            "pid": pid,
            "tid": tids[(pid, record.thread)],
            "args": {k: str(v) for k, v in record.attrs.items()},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(recorder: NullRecorder, path: str,
                       process_name: str = "mc-checker") -> None:
    with _open_out(path) as fh:
        json.dump(chrome_trace(recorder, process_name=process_name), fh)


# ----------------------------------------------------------------------
# JSON-lines
# ----------------------------------------------------------------------


def jsonl_lines(recorder: NullRecorder) -> Iterator[str]:
    """One JSON object per span, then per metric sample."""
    for record in recorder.spans.records():
        yield json.dumps(record.to_dict(), default=str)
    for metric in recorder.registry:
        if isinstance(metric, (Counter, Gauge)):
            for labels, value in metric.samples():
                yield json.dumps({
                    "type": metric.kind, "name": metric.name,
                    "labels": labels, "value": value,
                })
        elif isinstance(metric, Histogram):
            for labels, (bucket_counts, count, total) in metric.samples():
                yield json.dumps({
                    "type": "histogram", "name": metric.name,
                    "labels": labels, "count": count, "sum": total,
                    "buckets": [
                        {"le": bound, "count": n}
                        for bound, n in zip(metric.buckets, bucket_counts)
                    ],
                })


def write_jsonl(recorder: NullRecorder, path: str) -> None:
    with _open_out(path) as fh:
        for line in jsonl_lines(recorder):
            fh.write(line + "\n")
