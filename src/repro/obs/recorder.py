"""The recorder: one object owning spans, metrics, and the logger.

Two implementations share one interface.  :class:`NullRecorder` is the
default: spans still time themselves (callers rely on durations) but
nothing is stored, and every metric call is a single no-op method — the
near-zero-cost-when-disabled property the Figure-8 overhead numbers
depend on.  :class:`Recorder` stores everything for export.  Selection
happens once, at :func:`configure` time; instrumented code grabs the
active recorder with :func:`get_recorder` (cheap module-global read).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.obs.logging import ObsLogger
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span, SpanTracker


class NullRecorder:
    """Disabled observability: timing-only spans, no storage, no export."""

    enabled = False

    def __init__(self, log_level: str = "info"):
        self.logger = ObsLogger(level=log_level)
        self.registry = MetricsRegistry()   # stays empty; uniform interface
        self.spans = SpanTracker()          # stays empty; uniform interface
        self.epoch = time.perf_counter()

    def span(self, name: str, **attrs) -> Span:
        return Span(name, attrs or None, None)

    def count(self, name: str, n: float = 1, help: str = "",
              **labels) -> None:
        pass

    def gauge(self, name: str, value: float, help: str = "",
              **labels) -> None:
        pass

    def observe(self, name: str, value: float, help: str = "",
                buckets: Optional[Sequence[float]] = None, **labels) -> None:
        pass

    def export_state(self) -> dict:
        """Picklable spans + metrics, for shipping across processes.

        A worker builds a local :class:`Recorder`, runs its shard, and
        returns ``export_state()``; the parent folds it in with
        :meth:`absorb`.  On a :class:`NullRecorder` both stores are empty,
        so the export is empty too.
        """
        return {"metrics": self.registry.snapshot(),
                "spans": self.spans.records()}

    def absorb(self, state: dict) -> None:
        """Merge a worker recorder's :meth:`export_state` (no-op when
        disabled: nothing is stored either way)."""


class Recorder(NullRecorder):
    """Enabled observability: everything is stored for the exporters."""

    enabled = True

    def span(self, name: str, **attrs) -> Span:
        return Span(name, attrs or None, self.spans)

    def count(self, name: str, n: float = 1, help: str = "",
              **labels) -> None:
        self.registry.counter(name, help).inc(n, **labels)

    def gauge(self, name: str, value: float, help: str = "",
              **labels) -> None:
        self.registry.gauge(name, help).set(value, **labels)

    def observe(self, name: str, value: float, help: str = "",
                buckets: Optional[Sequence[float]] = None, **labels) -> None:
        self.registry.histogram(name, help, buckets=buckets).observe(
            value, **labels)

    def absorb(self, state: dict) -> None:
        self.registry.merge(state["metrics"])
        self.spans.extend(state["spans"])
