"""Metric primitives: counters, gauges, and fixed-bucket histograms.

The registry is the single mutable store behind ``repro.obs``'s metric
API.  All three metric kinds are labelled: every ``inc``/``set``/
``observe`` accepts keyword labels, and each distinct label combination
is an independent series (the Prometheus data model).  Histograms use
fixed upper bounds chosen for sub-second pipeline latencies; percentiles
are estimated from the cumulative bucket counts the way a Prometheus
``histogram_quantile`` would, so they are cheap and allocation-free at
observation time.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: default latency buckets (seconds): 100us .. 10s, roughly exponential
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """Base class: a named, labelled family of series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def samples(self) -> Iterator[Tuple[Dict[str, str], float]]:
        """Yield ``(labels, value)`` per series (exporter interface)."""
        raise NotImplementedError

    def snapshot_series(self) -> Dict[LabelKey, object]:
        """Picklable per-series state (cross-process merge interface)."""
        raise NotImplementedError

    def merge_series(self, series: Dict[LabelKey, object]) -> None:
        """Fold a :meth:`snapshot_series` result into this family."""
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing count, one series per label combination."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, n: float = 1, **labels) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name}: negative increment {n}")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + n

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0)

    @property
    def total(self) -> float:
        return sum(self._values.values())

    def samples(self):
        for key in sorted(self._values):
            yield dict(key), self._values[key]

    def snapshot_series(self):
        with self._lock:
            return dict(self._values)

    def merge_series(self, series):
        with self._lock:
            for key, value in series.items():
                self._values[key] = self._values.get(key, 0) + value


class Gauge(Metric):
    """Last-write-wins value, one series per label combination."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._values[_label_key(labels)] = value

    def value(self, **labels) -> Optional[float]:
        return self._values.get(_label_key(labels))

    def samples(self):
        for key in sorted(self._values):
            yield dict(key), self._values[key]

    def snapshot_series(self):
        with self._lock:
            return dict(self._values)

    def merge_series(self, series):
        # last-write-wins: the snapshot (the more recent observation) wins
        with self._lock:
            self._values.update(series)


class _HistSeries:
    __slots__ = ("bucket_counts", "count", "sum")

    def __init__(self, nbuckets: int):
        self.bucket_counts = [0] * nbuckets
        self.count = 0
        self.sum = 0.0


class Histogram(Metric):
    """Fixed-bucket distribution; the upper bounds are set at creation."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help)
        if not buckets:
            raise ValueError(f"histogram {name}: needs at least one bucket")
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        self._series: Dict[LabelKey, _HistSeries] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistSeries(len(self.buckets))
            series.count += 1
            series.sum += value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series.bucket_counts[i] += 1
                    break
            # values above the largest bound land only in +Inf (count)

    def _merged(self, labels: Dict[str, object]) -> Optional[_HistSeries]:
        if labels:
            return self._series.get(_label_key(labels))
        if not self._series:
            return None
        merged = _HistSeries(len(self.buckets))
        for series in self._series.values():
            merged.count += series.count
            merged.sum += series.sum
            for i, n in enumerate(series.bucket_counts):
                merged.bucket_counts[i] += n
        return merged

    def count(self, **labels) -> int:
        series = self._merged(labels)
        return series.count if series else 0

    def sum(self, **labels) -> float:
        series = self._merged(labels)
        return series.sum if series else 0.0

    def percentile(self, p: float, **labels) -> Optional[float]:
        """Upper bound of the bucket holding the ``p``-th percentile.

        ``p`` in [0, 100].  With no labels the estimate is over every
        series merged.  Returns ``None`` for an empty histogram; values
        beyond the largest bucket report the largest bound.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} outside [0, 100]")
        series = self._merged(labels)
        if series is None or series.count == 0:
            return None
        target = (p / 100.0) * series.count
        cumulative = 0
        for i, n in enumerate(series.bucket_counts):
            cumulative += n
            if cumulative >= target and cumulative > 0:
                return self.buckets[i]
        return self.buckets[-1]

    def samples(self):
        """Per-series ``(labels, (bucket_counts, count, sum))``."""
        for key in sorted(self._series):
            series = self._series[key]
            yield dict(key), (list(series.bucket_counts), series.count,
                              series.sum)

    def snapshot_series(self):
        with self._lock:
            return {key: (list(s.bucket_counts), s.count, s.sum)
                    for key, s in self._series.items()}

    def merge_series(self, series):
        with self._lock:
            for key, (bucket_counts, count, total) in series.items():
                mine = self._series.get(key)
                if mine is None:
                    mine = self._series[key] = _HistSeries(len(self.buckets))
                mine.count += count
                mine.sum += total
                for i, n in enumerate(bucket_counts):
                    mine.bucket_counts[i] += n


class MetricsRegistry:
    """Get-or-create store for every metric family of one recorder."""

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, help: str, **kwargs) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help=help, **kwargs)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {cls.kind}")
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        if buckets is None:
            buckets = DEFAULT_BUCKETS
        return self._get(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def snapshot(self) -> Dict[str, dict]:
        """Picklable state of every family, for cross-process merging.

        Counters and histograms merge additively; gauges last-write-wins.
        The result round-trips through :meth:`merge` on another registry.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        out: Dict[str, dict] = {}
        for metric in metrics:
            entry = {"kind": metric.kind, "help": metric.help,
                     "series": metric.snapshot_series()}
            if isinstance(metric, Histogram):
                entry["buckets"] = metric.buckets
            out[metric.name] = entry
        return out

    def merge(self, snapshot: Dict[str, dict]) -> None:
        """Fold a :meth:`snapshot` (typically a worker's) into this one."""
        for name, entry in snapshot.items():
            kind = entry["kind"]
            if kind == Counter.kind:
                metric = self.counter(name, entry["help"])
            elif kind == Gauge.kind:
                metric = self.gauge(name, entry["help"])
            elif kind == Histogram.kind:
                metric = self.histogram(name, entry["help"],
                                        buckets=entry["buckets"])
            else:
                raise ValueError(f"metric {name!r}: unknown kind {kind!r}")
            metric.merge_series(entry["series"])

    def __iter__(self) -> Iterator[Metric]:
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def __len__(self) -> int:
        return len(self._metrics)
