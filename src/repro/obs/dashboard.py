"""Render ledger entries: terminal text and self-contained HTML.

The HTML dashboard is a single file with inline CSS and no JavaScript —
``repro report --last --html out.html`` produces something that opens
anywhere (CI artifact viewers included).  Panels: phase timeline,
engine candidate-pair funnel, incremental cache hit-rate with per-shard
heat strip, worker utilization, and the findings with their provenance.
"""

from __future__ import annotations

import html
from typing import Any, Dict, List

from repro.obs.report import RunReport

# ----------------------------------------------------------------------
# text rendering
# ----------------------------------------------------------------------


def _fmt_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} GiB"


def _bar(fraction: float, width: int = 30) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def render_run_text(entry: RunReport) -> str:
    lines = [
        f"run {entry.run_id}  ({entry.created})",
        f"  app:     {entry.app or '-'}",
        f"  command: {entry.command or '-'}",
        f"  config:  {entry.config_digest[:12]}  "
        f"engine={entry.config.get('engine')} "
        f"jobs={entry.config.get('jobs')} "
        f"incremental={entry.config.get('incremental')}",
        f"  traces:  {len(entry.trace_digests)} rank(s) in "
        f"{entry.trace_dir or '-'}",
        f"  elapsed: {entry.elapsed_seconds:.3f}s   "
        f"peak rss: {_fmt_bytes(entry.peak_rss_bytes)}",
    ]
    if entry.phases:
        lines.append("  phases:")
        longest = max(t.get("wall", 0.0) for t in entry.phases.values()) or 1.0
        for phase, timing in entry.phases.items():
            wall = timing.get("wall", 0.0)
            lines.append(f"    {phase:<12} {wall:8.4f}s "
                         f"(cpu {timing.get('cpu', 0.0):.4f}s) "
                         f"|{_bar(wall / longest, 24)}|")
    if entry.funnel:
        lines.append("  candidate-pair funnel:")
        for stage, count in sorted(entry.funnel.items()):
            lines.append(f"    {stage:<22} {int(count):>10}")
    if entry.cache:
        shards = entry.cache.get("shards", {})
        total = sum(shards.values())
        hits = shards.get("hit", 0)
        rate = (hits / total * 100.0) if total else 0.0
        lines.append(f"  cache: {int(hits)}/{int(total)} shard(s) hit "
                     f"({rate:.0f}%)  outcomes: "
                     + ", ".join(f"{k}={int(v)}"
                                 for k, v in sorted(shards.items())))
    if entry.workers:
        tasks = entry.workers.get("tasks", {})
        pids = entry.workers.get("pids", {})
        lines.append(f"  workers: {len(pids)} pid(s), "
                     f"{int(sum(tasks.values()))} task(s)")
        pool = entry.workers.get("pool")
        if pool:
            lines.append(f"    pool: {int(pool.get('created', 0))} "
                         f"created, {int(pool.get('reused', 0))} reused")
        pickled = entry.workers.get("pickled_bytes", {})
        if pickled:
            total = sum(v for kinds in pickled.values()
                        for v in kinds.values())
            shm = entry.workers.get("shm_bytes", {})
            lines.append(f"    bytes: {_fmt_bytes(int(total))} pickled, "
                         f"{_fmt_bytes(int(sum(shm.values())))} via "
                         "shared memory")
        for pid, usage in pids.items():
            lines.append(f"    pid {pid}: {usage.get('spans', 0)} span(s), "
                         f"busy {usage.get('busy_seconds', 0.0):.4f}s")
    ingest = entry.ingest
    if ingest:
        lines.append(f"  ingest: {ingest.get('events', 0)} events, "
                     f"{ingest.get('rma_ops', 0)} RMA ops, "
                     f"{ingest.get('local_accesses', 0)} local accesses, "
                     f"{ingest.get('regions', 0)} regions")
    control = getattr(entry, "control_plane", None) or {}
    for plane, row in sorted(control.items()):
        rate = row.get("calls_per_second")
        rate_s = (f", {rate:,.0f} calls/s over the control group"
                  if rate is not None else "")
        lines.append(f"  control plane [{plane}]: "
                     f"{row.get('calls_ingested', 0):,} call(s) "
                     f"ingested{rate_s}")
    emission = getattr(entry, "emission", None) or {}
    if emission:
        lines.append(
            f"  emission: {emission.get('seconds', 0.0):.3f}s generation "
            f"wall, {emission.get('events_per_second', 0.0):,.0f} events/s")
        emitted = emission.get("emitted", {})
        if emitted:
            lines.append("    lanes: " + ", ".join(
                f"{kind}={int(count)}"
                for kind, count in sorted(emitted.items())))
    findings = entry.findings
    lines.append(f"  findings: {findings.get('errors', 0)} error(s), "
                 f"{findings.get('warnings', 0)} warning(s)")
    for detail in findings.get("details", []):
        a, b = detail.get("a", {}), detail.get("b", {})
        lines.append(f"    [{detail.get('severity', '?')}] "
                     f"{detail.get('kind', '?')}/{detail.get('rule', '?')} "
                     f"rank{a.get('rank', '?')} vs rank{b.get('rank', '?')} "
                     f"on '{a.get('var', '?')}'")
        prov = detail.get("provenance") or {}
        if prov:
            lines.append(f"      provenance: {_prov_line(prov)}")
    return "\n".join(lines)


def _prov_line(prov: Dict[str, Any]) -> str:
    parts = [f"{prov.get('phase', '?')}/{prov.get('pattern', '?')}"]
    spans = prov.get("spans") or {}
    if spans:
        refs = []
        for key in sorted(spans):
            ref = spans[key]
            refs.append(f"rank{ref[0]}[{ref[1]},{ref[2]}]")
        parts.append(" vs ".join(refs))
    hb = prov.get("hb") or {}
    if hb.get("edge"):
        parts.append(f"hb={hb['edge']}")
    return "; ".join(parts)


def render_history_text(entries: List[RunReport]) -> str:
    if not entries:
        return "ledger is empty"
    header = (f"{'RUN':<12}  {'CREATED':<20}  {'APP':<12}  "
              f"{'ELAPSED':>9}  FINDINGS")
    lines = [header, "-" * len(header)]
    for entry in entries:
        lines.append(entry.summary_line())
    return "\n".join(lines)


def render_compare_text(comparison: Dict[str, Any]) -> str:
    lines = [
        f"compare {comparison['current']} vs baseline "
        f"{comparison['baseline']} "
        f"(tolerance {comparison['tolerance'] * 100:.0f}%)",
    ]
    if not comparison.get("same_config", True):
        lines.append("  note: configs differ — timings measure "
                     "different work")
    if not comparison.get("same_traces", True):
        lines.append("  note: trace digests differ")
    for delta in comparison["deltas"]:
        marker = "!!" if delta["status"] == "regression" else "ok"
        ratio = delta["ratio"]
        ratio_s = f"{ratio:6.2f}x" if ratio != float("inf") else "   inf"
        lines.append(f"  [{marker}] {delta['metric']:<22} "
                     f"{delta['current']:12.4f} vs {delta['baseline']:12.4f} "
                     f"({ratio_s})")
    lines.append("result: " + ("OK" if comparison["ok"] else
                               "REGRESSION in " +
                               ", ".join(comparison["regressions"])))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# HTML dashboard (self-contained: inline CSS, SVG bars, no JS)
# ----------------------------------------------------------------------

_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
       max-width: 60rem; color: #1a2330; padding: 0 1rem; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.8rem;
     border-bottom: 1px solid #d8dee6; padding-bottom: .2rem; }
table { border-collapse: collapse; width: 100%; }
td, th { text-align: left; padding: .2rem .6rem .2rem 0;
         vertical-align: top; }
th { color: #5a6472; font-weight: 600; }
.num { text-align: right; font-variant-numeric: tabular-nums; }
.meta { color: #5a6472; }
.bar { fill: #4878b0; } .bar.hit { fill: #3d8a4f; }
.bar.miss { fill: #c0583a; } .bar.computed { fill: #c0583a; }
.bar.invalidated { fill: #d8a23a; } .bar.corrupt { fill: #8a3d6e; }
.finding { border-left: 3px solid #c0583a; padding: .4rem .8rem;
           margin: .8rem 0; background: #f7f3f1; }
.finding.warning { border-color: #d8a23a; }
.prov { font-family: ui-monospace, monospace; font-size: .85em;
        color: #5a6472; }
code { font-family: ui-monospace, monospace; font-size: .9em; }
""".strip()


def _svg_bar(fraction: float, cls: str = "bar", width: int = 260,
             height: int = 12) -> str:
    w = max(0.0, min(1.0, fraction)) * width
    return (f'<svg width="{width}" height="{height}">'
            f'<rect width="{width}" height="{height}" fill="#eceff3"/>'
            f'<rect class="{cls}" width="{w:.1f}" height="{height}"/>'
            f'</svg>')


def _phase_timeline(entry: RunReport) -> str:
    if not entry.phases:
        return "<p class=meta>no phase timings recorded</p>"
    longest = max(t.get("wall", 0.0) for t in entry.phases.values()) or 1.0
    rows = []
    for phase, timing in entry.phases.items():
        wall = timing.get("wall", 0.0)
        rows.append(
            f"<tr><td>{html.escape(phase)}</td>"
            f"<td class=num>{wall:.4f}s</td>"
            f"<td class=num>{timing.get('cpu', 0.0):.4f}s</td>"
            f"<td>{_svg_bar(wall / longest)}</td></tr>")
    return ("<table><tr><th>phase</th><th class=num>wall</th>"
            "<th class=num>cpu</th><th></th></tr>" + "".join(rows)
            + "</table>")


def _funnel_panel(entry: RunReport) -> str:
    if not entry.funnel:
        return "<p class=meta>no candidate-pair counters recorded</p>"
    top = max(entry.funnel.values()) or 1.0
    rows = []
    for stage, count in sorted(entry.funnel.items()):
        rows.append(
            f"<tr><td><code>{html.escape(stage)}</code></td>"
            f"<td class=num>{int(count)}</td>"
            f"<td>{_svg_bar(count / top)}</td></tr>")
    return ("<table><tr><th>stage</th><th class=num>pairs</th><th></th>"
            "</tr>" + "".join(rows) + "</table>")


def _cache_panel(entry: RunReport) -> str:
    cache = entry.cache
    if not cache:
        return "<p class=meta>not an incremental run</p>"
    shards = cache.get("shards", {})
    total = sum(shards.values())
    hits = shards.get("hit", 0)
    rate = (hits / total * 100.0) if total else 0.0
    parts = [f"<p>shard hit-rate: <strong>{rate:.0f}%</strong> "
             f"({int(hits)}/{int(total)})</p>"]
    parts.append("<table><tr><th>outcome</th><th class=num>shards</th>"
                 "<th></th></tr>")
    for outcome, count in sorted(shards.items()):
        cls = "bar hit" if outcome == "hit" else f"bar {outcome}"
        parts.append(f"<tr><td>{html.escape(outcome)}</td>"
                     f"<td class=num>{int(count)}</td>"
                     f"<td>{_svg_bar(count / (total or 1), cls)}</td></tr>")
    parts.append("</table>")
    per_shard = cache.get("per_shard") or []
    if per_shard:
        # heat strip: one cell per shard, colored by cache outcome
        cells = []
        for shard in per_shard:
            outcome = shard.get("outcome", "?")
            cls = "bar hit" if outcome == "hit" else f"bar {outcome}"
            title = (f"shard {shard.get('shard')}: {outcome}, "
                     f"{int(shard.get('regions', 0))} region(s)")
            cells.append(
                f'<svg width="18" height="18"><title>{html.escape(title)}'
                f'</title><rect class="{cls}" width="16" height="16" '
                f'x="1" y="1"/></svg>')
        parts.append("<p>per-shard heat (hover for detail):<br>"
                     + "".join(cells) + "</p>")
    return "".join(parts)


def _workers_panel(entry: RunReport) -> str:
    workers = entry.workers
    if not workers:
        return "<p class=meta>serial run — no worker pool</p>"
    parts = []
    tasks = workers.get("tasks", {})
    if tasks:
        parts.append("<p>tasks by phase: " + ", ".join(
            f"<code>{html.escape(k)}</code>={int(v)}"
            for k, v in sorted(tasks.items())) + "</p>")
    pool = workers.get("pool")
    if pool:
        parts.append(f"<p>pool: {int(pool.get('created', 0))} created, "
                     f"{int(pool.get('reused', 0))} reused</p>")
    pickled = workers.get("pickled_bytes", {})
    if pickled:
        shm = workers.get("shm_bytes", {})
        rows = []
        for phase, kinds in sorted(pickled.items()):
            rows.append(
                f"<tr><td>{html.escape(phase)}</td>"
                + "".join(f"<td class=num>"
                          f"{_fmt_bytes(int(kinds.get(kind, 0)))}</td>"
                          for kind in ("install", "task", "result"))
                + f"<td class=num>"
                  f"{_fmt_bytes(int(shm.get(phase, 0)))}</td></tr>")
        parts.append(
            "<p>bytes across the pipe (the zero-copy evidence: row "
            "columns travel via shared memory, not pickles):</p>"
            "<table><tr><th>phase</th><th class=num>install</th>"
            "<th class=num>task</th><th class=num>result</th>"
            "<th class=num>shm</th></tr>" + "".join(rows) + "</table>")
    pids = workers.get("pids", {})
    if pids:
        busiest = max(u.get("busy_seconds", 0.0)
                      for u in pids.values()) or 1.0
        parts.append("<table><tr><th>pid</th><th class=num>spans</th>"
                     "<th class=num>busy</th><th></th></tr>")
        for pid, usage in pids.items():
            busy = usage.get("busy_seconds", 0.0)
            parts.append(f"<tr><td>{html.escape(str(pid))}</td>"
                         f"<td class=num>{usage.get('spans', 0)}</td>"
                         f"<td class=num>{busy:.4f}s</td>"
                         f"<td>{_svg_bar(busy / busiest)}</td></tr>")
        parts.append("</table>")
    return "".join(parts) or "<p class=meta>no worker spans recorded</p>"


def _emission_panel(entry: RunReport) -> str:
    emission = getattr(entry, "emission", None) or {}
    if not emission:
        return ("<p class=meta>no generation stats — the trace was "
                "produced outside this obs session</p>")
    parts = [f"<p>generation wall: "
             f"<strong>{emission.get('seconds', 0.0):.3f}s</strong>, "
             f"throughput: <strong>"
             f"{emission.get('events_per_second', 0.0):,.0f}</strong> "
             f"events/s</p>"]
    emitted = emission.get("emitted", {})
    if emitted:
        top = max(emitted.values()) or 1.0
        parts.append("<table><tr><th>kind / lane</th>"
                     "<th class=num>events</th><th></th></tr>")
        for key, count in sorted(emitted.items()):
            cls = "bar hit" if key.endswith("/bulk") else "bar"
            parts.append(f"<tr><td><code>{html.escape(key)}</code></td>"
                         f"<td class=num>{int(count)}</td>"
                         f"<td>{_svg_bar(count / top, cls)}</td></tr>")
        parts.append("</table>")
    return "".join(parts)


def _control_plane_panel(entry: RunReport) -> str:
    control = getattr(entry, "control_plane", None) or {}
    if not control:
        return ("<p class=meta>no control-plane counters — the run "
                "predates them or obs was disabled</p>")
    top = max((row.get("calls_per_second") or 0.0)
              for row in control.values()) or 1.0
    rows = []
    for plane, row in sorted(control.items()):
        rate = row.get("calls_per_second")
        cls = "bar hit" if plane == "columnar" else "bar"
        rows.append(
            f"<tr><td><code>{html.escape(plane)}</code></td>"
            f"<td class=num>{int(row.get('calls_ingested', 0)):,}</td>"
            f"<td class=num>"
            f"{f'{rate:,.0f}' if rate is not None else '-'}</td>"
            f"<td>{_svg_bar((rate or 0.0) / top, cls)}</td></tr>")
    return ("<p>call-stream ingest over the preprocess + matching + "
            "clocks + epochs group, per control plane:</p>"
            "<table><tr><th>plane</th><th class=num>calls</th>"
            "<th class=num>calls/s</th><th></th></tr>"
            + "".join(rows) + "</table>")


def _findings_panel(entry: RunReport) -> str:
    findings = entry.findings
    details = findings.get("details", [])
    parts = [f"<p><strong>{findings.get('errors', 0)}</strong> error(s), "
             f"<strong>{findings.get('warnings', 0)}</strong> "
             f"warning(s)</p>"]
    for detail in details:
        severity = detail.get("severity", "error")
        a, b = detail.get("a", {}), detail.get("b", {})
        parts.append(f'<div class="finding {html.escape(severity)}">')
        parts.append(
            f"<strong>[{html.escape(severity)}] "
            f"{html.escape(str(detail.get('kind', '?')))}/"
            f"{html.escape(str(detail.get('rule', '?')))}</strong> — "
            f"rank {html.escape(str(a.get('rank', '?')))} "
            f"{html.escape(str(a.get('kind', '?')))} vs "
            f"rank {html.escape(str(b.get('rank', '?')))} "
            f"{html.escape(str(b.get('kind', '?')))} on "
            f"<code>{html.escape(str(a.get('var', '?')))}</code>")
        note = detail.get("note")
        if note:
            parts.append(f"<br>{html.escape(str(note))}")
        prov = detail.get("provenance") or {}
        if prov:
            parts.append(f'<br><span class=prov>provenance: '
                         f"{html.escape(_prov_line(prov))}</span>")
            hb = prov.get("hb") or {}
            if hb.get("detail"):
                parts.append(f'<br><span class=prov>hb detail: '
                             f"{html.escape(str(hb['detail']))}</span>")
        context = detail.get("context") or {}
        if context:
            ctx = ", ".join(f"{k}={v}" for k, v in sorted(context.items()))
            parts.append(f'<br><span class=prov>run context: '
                         f"{html.escape(ctx)}</span>")
        parts.append("</div>")
    return "".join(parts)


def render_run_html(entry: RunReport) -> str:
    """One run as a self-contained HTML dashboard."""
    meta_rows = "".join(
        f"<tr><th>{html.escape(k)}</th><td>{html.escape(str(v))}</td></tr>"
        for k, v in (
            ("created", entry.created),
            ("app", entry.app or "-"),
            ("command", entry.command or "-"),
            ("config digest", entry.config_digest),
            ("engine / jobs", f"{entry.config.get('engine')} / "
                              f"{entry.config.get('jobs')}"),
            ("incremental", entry.config.get("incremental")),
            ("trace dir", entry.trace_dir or "-"),
            ("ranks", len(entry.trace_digests)),
            ("elapsed", f"{entry.elapsed_seconds:.3f}s"),
            ("peak RSS", _fmt_bytes(entry.peak_rss_bytes)),
            ("events / RMA ops",
             f"{entry.ingest.get('events', 0)} / "
             f"{entry.ingest.get('rma_ops', 0)}"),
        ))
    return f"""<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>mc-checker run {html.escape(entry.run_id)}</title>
<style>{_CSS}</style></head><body>
<h1>mc-checker flight record <code>{html.escape(entry.run_id)}</code></h1>
<table>{meta_rows}</table>
<h2>Phase timeline</h2>{_phase_timeline(entry)}
<h2>Candidate-pair funnel</h2>{_funnel_panel(entry)}
<h2>Incremental cache</h2>{_cache_panel(entry)}
<h2>Worker pool</h2>{_workers_panel(entry)}
<h2>Control plane</h2>{_control_plane_panel(entry)}
<h2>Trace generation</h2>{_emission_panel(entry)}
<h2>Findings</h2>{_findings_panel(entry)}
</body></html>
"""
