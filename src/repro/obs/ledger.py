"""Persistent append-only run ledger (JSON-lines).

Every analysis run appends its :class:`~repro.obs.report.RunReport` as
one JSON line to ``<ledger-dir>/ledger.jsonl``.  Appends go through a
single ``os.write`` on an ``O_APPEND`` descriptor, so concurrent runs
interleave whole lines rather than bytes — the same durability posture
as :mod:`repro.util.cachestore` (readers skip any line that fails to
parse instead of aborting the history).

The ledger is what powers ``repro history`` (list/filter runs),
``repro report`` (re-render one run, optionally as an HTML dashboard)
and ``repro report --compare`` (regression gate between two runs).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.report import RunReport

LEDGER_FILENAME = "ledger.jsonl"

#: metrics compared by :func:`compare_runs`; ``(label, getter)`` pairs
_SCALARS = (
    ("elapsed_seconds", lambda r: r.elapsed_seconds),
    ("peak_rss_bytes", lambda r: float(r.peak_rss_bytes)),
)


def default_ledger_dir() -> str:
    """``$MCCHECKER_LEDGER_DIR`` or ``~/.mc-checker/ledger``."""
    env = os.environ.get("MCCHECKER_LEDGER_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".mc-checker", "ledger")


class RunLedger:
    """Append-only store of RunReports under one directory."""

    def __init__(self, directory: Optional[str] = None):
        self.directory = directory or default_ledger_dir()
        self.path = os.path.join(self.directory, LEDGER_FILENAME)

    def append(self, report: RunReport) -> None:
        os.makedirs(self.directory, exist_ok=True)
        line = json.dumps(report.to_dict(), sort_keys=True) + "\n"
        fd = os.open(self.path, os.O_APPEND | os.O_CREAT | os.O_WRONLY,
                     0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)

    def _iter_raw(self) -> Iterator[dict]:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except ValueError:
                    continue  # torn or corrupt line — skip, don't abort
                if isinstance(payload, dict) and "run_id" in payload:
                    yield payload

    def entries(self, app: Optional[str] = None,
                limit: Optional[int] = None) -> List[RunReport]:
        """All runs, oldest first; optionally filtered and tail-limited."""
        out = [RunReport.from_dict(payload) for payload in self._iter_raw()]
        if app is not None:
            wanted = app.lower()
            out = [r for r in out if r.app.lower() == wanted]
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out

    def last(self, app: Optional[str] = None) -> Optional[RunReport]:
        entries = self.entries(app=app)
        return entries[-1] if entries else None

    def find(self, run_id_prefix: str) -> Optional[RunReport]:
        """Latest run whose id starts with ``run_id_prefix``."""
        match: Optional[RunReport] = None
        for payload in self._iter_raw():
            if str(payload.get("run_id", "")).startswith(run_id_prefix):
                match = RunReport.from_dict(payload)
        return match


def _delta(label: str, current: float, baseline: float,
           tolerance: float) -> Dict[str, Any]:
    if baseline > 0:
        ratio = current / baseline
    else:
        ratio = 1.0 if current == baseline else float("inf")
    regressed = ratio > 1.0 + tolerance
    return {
        "metric": label, "current": current, "baseline": baseline,
        "ratio": ratio, "status": "regression" if regressed else "ok",
    }


def compare_runs(current: RunReport, baseline: RunReport,
                 tolerance: float = 0.25) -> Dict[str, Any]:
    """Per-metric deltas between two ledger entries.

    A metric regresses when ``current > baseline * (1 + tolerance)``.
    Phase timings are compared per phase; runs whose config digests
    differ are still compared but flagged, since the numbers then
    measure different work.
    """
    deltas: List[Dict[str, Any]] = []
    for label, getter in _SCALARS:
        cur, base = getter(current), getter(baseline)
        if cur or base:
            deltas.append(_delta(label, cur, base, tolerance))
    for phase, timing in current.phases.items():
        base_timing = baseline.phases.get(phase)
        if base_timing is None:
            continue
        wall = timing.get("wall", 0.0)
        base_wall = base_timing.get("wall", 0.0)
        if wall < 0.01 and base_wall < 0.01:
            continue  # sub-10ms phases are all scheduler noise
        deltas.append(_delta(f"phase/{phase}", wall, base_wall, tolerance))
    regressions = [d for d in deltas if d["status"] == "regression"]
    return {
        "current": current.run_id, "baseline": baseline.run_id,
        "same_config": current.config_digest == baseline.config_digest,
        "same_traces": current.trace_digests == baseline.trace_digests,
        "tolerance": tolerance,
        "deltas": deltas,
        "regressions": [d["metric"] for d in regressions],
        "ok": not regressions,
    }
