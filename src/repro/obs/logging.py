"""Leveled structured logger shared by every ``mc-checker`` subcommand.

Human-facing output goes through :class:`ObsLogger` so ``--log-level``
applies uniformly: the default ``info`` threshold prints exactly what the
CLI always printed, ``quiet`` silences everything, and ``debug`` opens up
the pipeline's internal chatter.  Messages may carry structured fields,
rendered as ``key=value`` suffixes (or as JSON lines in ``json_mode``,
for log shippers).  The output stream is resolved at emit time so pytest
``capsys``/redirection see every line.
"""

from __future__ import annotations

import json
import sys
from typing import Optional, TextIO

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40, "quiet": 100}
LOG_LEVEL_CHOICES = tuple(LEVELS)


def level_value(level: str) -> int:
    try:
        return LEVELS[level]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; choose from {sorted(LEVELS)}")


class ObsLogger:
    """Structured, leveled logger writing plain lines by default."""

    def __init__(self, level: str = "info", stream: Optional[TextIO] = None,
                 json_mode: bool = False):
        self._threshold = level_value(level)
        self.level = level
        self._stream = stream
        self.json_mode = json_mode

    def set_level(self, level: str) -> None:
        self._threshold = level_value(level)
        self.level = level

    def enabled_for(self, level: str) -> bool:
        return level_value(level) >= self._threshold

    def _out(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stdout

    def log(self, level: str, msg: str, **fields) -> None:
        if not self.enabled_for(level):
            return
        if self.json_mode:
            payload = {"level": level, "msg": msg}
            payload.update(fields)
            line = json.dumps(payload, default=str)
        else:
            line = msg
            if fields:
                suffix = " ".join(f"{k}={v}" for k, v in fields.items())
                line = f"{msg} {suffix}" if msg else suffix
        print(line, file=self._out())

    def debug(self, msg: str, **fields) -> None:
        self.log("debug", msg, **fields)

    def info(self, msg: str, **fields) -> None:
        self.log("info", msg, **fields)

    def warning(self, msg: str, **fields) -> None:
        self.log("warning", msg, **fields)

    def error(self, msg: str, **fields) -> None:
        self.log("error", msg, **fields)
