"""Structured spans: context-manager tracing with nesting and attributes.

A :class:`Span` always *times* itself (two ``perf_counter`` calls) so
callers can fold ``span.duration`` into their own statistics even when
observability is disabled; it only *records* — appends a
:class:`SpanRecord` with thread identity and nesting depth to the
tracker — when one is attached.  That split is what lets
``MCChecker.run`` keep populating ``CheckStats.phase_seconds``
unconditionally while the export machinery stays a no-op by default.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


@dataclass
class SpanRecord:
    """One finished span, ready for export."""

    name: str
    start: float        # perf_counter timestamp at entry
    duration: float     # seconds
    thread: str         # recording thread's name
    depth: int          # nesting depth within that thread (0 = root)
    attrs: Dict[str, object] = field(default_factory=dict)
    pid: int = 0        # recording process (workers ship spans to the
                        # parent; the pid keeps their timelines apart)
    cpu: float = 0.0    # process CPU seconds consumed during the span

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_dict(self) -> dict:
        return {
            "type": "span", "name": self.name, "start": self.start,
            "duration": self.duration, "thread": self.thread,
            "depth": self.depth, "attrs": dict(self.attrs),
            "pid": self.pid, "cpu": self.cpu,
        }


class SpanTracker:
    """Thread-safe sink of finished spans plus per-thread nesting stacks."""

    def __init__(self):
        self._records: List[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def _depth(self) -> int:
        return getattr(self._local, "depth", 0)

    def _push(self) -> int:
        depth = self._depth()
        self._local.depth = depth + 1
        return depth

    def _pop(self) -> None:
        self._local.depth = max(0, self._depth() - 1)

    def add(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    def extend(self, records: Iterable[SpanRecord]) -> None:
        """Adopt already-finished spans (e.g. shipped from a worker)."""
        with self._lock:
            self._records.extend(records)

    def records(self) -> List[SpanRecord]:
        """Snapshot, ordered by start time (children after parents)."""
        with self._lock:
            return sorted(self._records, key=lambda r: (r.start, -r.duration))

    def by_name(self, name: str) -> List[SpanRecord]:
        return [r for r in self.records() if r.name == name]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class Span:
    """Context manager measuring one named unit of work.

    ``tracker=None`` is the disabled form: entry/exit still stamp
    ``start``/``duration`` but nothing is stored or published.
    """

    __slots__ = ("name", "attrs", "tracker", "start", "duration", "cpu",
                 "_depth", "_cpu_start")

    def __init__(self, name: str, attrs: Optional[Dict[str, object]] = None,
                 tracker: Optional[SpanTracker] = None):
        self.name = name
        self.attrs = attrs or {}
        self.tracker = tracker
        self.start = 0.0
        self.duration = 0.0
        self.cpu = 0.0
        self._depth = 0
        self._cpu_start = 0.0

    def set_attr(self, key: str, value: object) -> None:
        """Attach an attribute discovered mid-span (recorded at exit)."""
        if not self.attrs:
            self.attrs = {}
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        if self.tracker is not None:
            self._depth = self.tracker._push()
        self._cpu_start = time.process_time()
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self.start
        self.cpu = time.process_time() - self._cpu_start
        if self.tracker is not None:
            self.tracker._pop()
            if exc_type is not None:
                self.set_attr("error", exc_type.__name__)
            self.tracker.add(SpanRecord(
                name=self.name, start=self.start, duration=self.duration,
                thread=threading.current_thread().name, depth=self._depth,
                attrs=dict(self.attrs), pid=os.getpid(), cpu=self.cpu))
