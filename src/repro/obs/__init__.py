"""``repro.obs`` — unified tracing, metrics, and logging.

The measurement substrate behind the paper's own evaluation figures:
structured spans (Figure 9's per-phase analyzer timings), a metrics
registry (Figure 8's overhead counters, Figure 10's event rates), and a
leveled structured logger shared by every CLI subcommand.  Exporters in
:mod:`repro.obs.export` serialize one run's worth of observation as
Prometheus text, Chrome ``trace_event`` JSON (open it in
``chrome://tracing`` or Perfetto), or JSON-lines.

Observability is *disabled by default*: the module-global recorder is a
:class:`~repro.obs.recorder.NullRecorder`, whose spans still time
themselves (pipeline code folds durations into its own statistics) but
which stores nothing and turns every metric call into a no-op.
:func:`configure` swaps in a storing :class:`~repro.obs.recorder.Recorder`
once at startup — instrumented layers read :func:`get_recorder` /
:func:`is_enabled` at construction time, so the hot paths never branch
per event.

    from repro import obs

    obs.configure(enabled=True, log_level="debug")
    with obs.span("analyzer.matching", nranks=4) as sp:
        ...
    obs.count("analyzer_events_total", 1234)
    obs.observe("profiler_flush_seconds", 0.003, rank="0")
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.obs.logging import LEVELS, LOG_LEVEL_CHOICES, ObsLogger
from repro.obs.metrics import (
    DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry,
)
from repro.obs.recorder import NullRecorder, Recorder
from repro.obs.spans import Span, SpanRecord, SpanTracker

__all__ = [
    "configure", "reset", "get_recorder", "get_logger", "is_enabled",
    "span", "count", "gauge", "observe",
    "NullRecorder", "Recorder",
    "Span", "SpanRecord", "SpanTracker",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS",
    "ObsLogger", "LEVELS", "LOG_LEVEL_CHOICES",
]


class _State:
    __slots__ = ("recorder",)

    def __init__(self):
        self.recorder = NullRecorder()


_STATE = _State()


def configure(enabled: bool = False, log_level: str = "info") -> NullRecorder:
    """Select the process-wide recorder (called once at startup)."""
    cls = Recorder if enabled else NullRecorder
    _STATE.recorder = cls(log_level=log_level)
    return _STATE.recorder


def reset() -> None:
    """Back to the default disabled recorder (test isolation)."""
    _STATE.recorder = NullRecorder()


def get_recorder() -> NullRecorder:
    return _STATE.recorder


def get_logger() -> ObsLogger:
    return _STATE.recorder.logger


def is_enabled() -> bool:
    return _STATE.recorder.enabled


# -- convenience forwarding to the active recorder ----------------------


def span(name: str, **attrs) -> Span:
    return _STATE.recorder.span(name, **attrs)


def count(name: str, n: float = 1, help: str = "", **labels) -> None:
    _STATE.recorder.count(name, n, help=help, **labels)


def gauge(name: str, value: float, help: str = "", **labels) -> None:
    _STATE.recorder.gauge(name, value, help=help, **labels)


def observe(name: str, value: float, help: str = "",
            buckets: Optional[Sequence[float]] = None, **labels) -> None:
    _STATE.recorder.observe(name, value, help=help, buckets=buckets,
                            **labels)
