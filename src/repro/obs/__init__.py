"""``repro.obs`` — unified tracing, metrics, and logging.

The measurement substrate behind the paper's own evaluation figures:
structured spans (Figure 9's per-phase analyzer timings), a metrics
registry (Figure 8's overhead counters, Figure 10's event rates), and a
leveled structured logger shared by every CLI subcommand.  Exporters in
:mod:`repro.obs.export` serialize one run's worth of observation as
Prometheus text, Chrome ``trace_event`` JSON (open it in
``chrome://tracing`` or Perfetto), or JSON-lines.

Observability is *disabled by default*: the module-global recorder is a
:class:`~repro.obs.recorder.NullRecorder`, whose spans still time
themselves (pipeline code folds durations into its own statistics) but
which stores nothing and turns every metric call into a no-op.
:func:`configure` swaps in a storing :class:`~repro.obs.recorder.Recorder`
once at startup — instrumented layers read :func:`get_recorder` /
:func:`is_enabled` at construction time, so the hot paths never branch
per event.

    from repro import obs

    obs.configure(enabled=True, log_level="debug")
    with obs.span("analyzer.matching", nranks=4) as sp:
        ...
    obs.count("analyzer_events_total", 1234)
    obs.observe("profiler_flush_seconds", 0.003, rank="0")
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.obs.logging import LEVELS, LOG_LEVEL_CHOICES, ObsLogger
from repro.obs.metrics import (
    DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry,
)
from repro.obs.recorder import NullRecorder, Recorder
from repro.obs.spans import Span, SpanRecord, SpanTracker

__all__ = [
    "configure", "reset", "get_recorder", "get_logger", "is_enabled",
    "span", "count", "gauge", "observe",
    "ObsConfig", "session",
    "NullRecorder", "Recorder",
    "Span", "SpanRecord", "SpanTracker",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS",
    "ObsLogger", "LEVELS", "LOG_LEVEL_CHOICES",
]


class _State:
    __slots__ = ("recorder",)

    def __init__(self):
        self.recorder = NullRecorder()


_STATE = _State()


def configure(enabled: bool = False, log_level: str = "info") -> NullRecorder:
    """Select the process-wide recorder (called once at startup)."""
    cls = Recorder if enabled else NullRecorder
    _STATE.recorder = cls(log_level=log_level)
    return _STATE.recorder


def reset() -> None:
    """Back to the default disabled recorder (test isolation)."""
    _STATE.recorder = NullRecorder()


def get_recorder() -> NullRecorder:
    return _STATE.recorder


def get_logger() -> ObsLogger:
    return _STATE.recorder.logger


def is_enabled() -> bool:
    return _STATE.recorder.enabled


@dataclass(frozen=True)
class ObsConfig:
    """Declarative per-call observability: what to record, where to flush.

    Any export path implies recording — ``active`` is what
    :func:`session` keys off.  Used by ``repro.api.run/check/run_check``
    so library callers get the same flight-recorder semantics as the
    CLI's ``--metrics-out``/``--chrome-trace`` flags.
    """

    enabled: bool = False
    log_level: str = "info"
    metrics_out: Optional[str] = None
    chrome_trace: Optional[str] = None

    @property
    def active(self) -> bool:
        return bool(self.enabled or self.metrics_out or self.chrome_trace)


@contextmanager
def session(config: Optional[ObsConfig]) -> Iterator[NullRecorder]:
    """Scoped recorder: enable for the block, flush exporters, restore.

    Flushing happens in a ``finally`` so a raising analysis still writes
    whatever was observed up to the failure — that partial flight record
    is exactly what's needed to debug the failure.  An inactive (or
    ``None``) config yields the current recorder untouched, so callers
    can wrap unconditionally.
    """
    if config is None or not config.active:
        yield _STATE.recorder
        return
    previous = _STATE.recorder
    recorder = configure(enabled=True, log_level=config.log_level)
    try:
        yield recorder
    finally:
        try:
            from repro.obs.export import write_chrome_trace, write_metrics
            if config.metrics_out:
                write_metrics(recorder, config.metrics_out)
            if config.chrome_trace:
                write_chrome_trace(recorder, config.chrome_trace)
        finally:
            _STATE.recorder = previous


# -- convenience forwarding to the active recorder ----------------------


def span(name: str, **attrs) -> Span:
    return _STATE.recorder.span(name, **attrs)


def count(name: str, n: float = 1, help: str = "", **labels) -> None:
    _STATE.recorder.count(name, n, help=help, **labels)


def gauge(name: str, value: float, help: str = "", **labels) -> None:
    _STATE.recorder.gauge(name, value, help=help, **labels)


def observe(name: str, value: float, help: str = "",
            buckets: Optional[Sequence[float]] = None, **labels) -> None:
    _STATE.recorder.observe(name, value, help=help, buckets=buckets,
                            **labels)
