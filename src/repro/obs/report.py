"""Structured :class:`RunReport` — one analysis run's flight record.

Every ``repro.api.check``/CLI run can distill its observations into a
single JSON-ready artifact: what was checked (config digest, per-rank
trace digests), how the pipeline spent its time (per-phase wall and CPU
seconds), how hard the engine worked (the candidate-pair funnel), what
the incremental cache contributed (hit/miss/dirty-shard attribution),
how the worker pool was used, ingest sizes, peak RSS, and the findings
with their provenance.  The report is what the run ledger persists and
what ``repro report`` renders — the durable record behind the paper's
overhead/diagnosis story (Figs. 8–10).
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.util.hashing import stable_hash

#: RunReport schema version (bump on breaking layout changes)
SCHEMA_VERSION = 1

#: span names whose pids identify parallel workers
_WORKER_SPAN_PREFIX = "analyzer.worker."


@dataclass
class RunReport:
    """One analysis run, summarized for the ledger and dashboards."""

    run_id: str
    created: str                   # ISO-8601 UTC timestamp
    command: str = ""              # CLI invocation (empty for API runs)
    app: str = ""                  # application name, when known
    config: Dict[str, Any] = field(default_factory=dict)
    config_digest: str = ""
    trace_dir: str = ""
    trace_digests: Dict[str, str] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    #: per-phase ``{"wall": s, "cpu": s}`` in pipeline order
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: candidate-pair funnel: ``{"intra/op_pair": n, ...}``
    funnel: Dict[str, float] = field(default_factory=dict)
    #: incremental-cache attribution (empty for non-incremental runs)
    cache: Dict[str, Any] = field(default_factory=dict)
    #: worker-pool utilization (empty for serial runs)
    workers: Dict[str, Any] = field(default_factory=dict)
    #: trace-ingest sizes (events, ops, locals, matches, ...)
    ingest: Dict[str, int] = field(default_factory=dict)
    #: trace-generation stats (wall seconds, events/s, per-lane counts) —
    #: present when the run shared an obs session with ``profile_run``
    emission: Dict[str, Any] = field(default_factory=dict)
    #: control-plane ingest: calls ingested and calls/s, keyed by the
    #: plane that handled them (``columnar``/``object``)
    control_plane: Dict[str, Any] = field(default_factory=dict)
    peak_rss_bytes: int = 0
    #: findings summary: counts plus per-finding detail w/ provenance
    findings: Dict[str, Any] = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "RunReport":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})

    def summary_line(self) -> str:
        f = self.findings
        return (f"{self.run_id}  {self.created}  "
                f"{(self.app or '-'):12s}  "
                f"{self.elapsed_seconds:8.3f}s  "
                f"{f.get('errors', 0)}E/{f.get('warnings', 0)}W")


def _peak_rss_bytes() -> int:
    try:
        import resource
    except ImportError:              # non-POSIX platform
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes
    return int(rss) * (1 if sys.platform == "darwin" else 1024)


def _phase_cpu(recorder) -> Dict[str, float]:
    """Per-phase CPU seconds from the ``analyzer.<phase>`` spans."""
    cpu: Dict[str, float] = {}
    for record in recorder.spans.records():
        if not record.name.startswith("analyzer."):
            continue
        phase = record.name[len("analyzer."):]
        if "." in phase or phase == "run":
            continue
        cpu[phase] = cpu.get(phase, 0.0) + record.cpu
    return cpu


def _funnel(recorder) -> Dict[str, float]:
    metric = recorder.registry.get("engine_candidate_pairs_total")
    if metric is None:
        return {}
    return {f"{labels.get('phase', '?')}/{labels.get('stage', '?')}": value
            for labels, value in metric.samples()}


def _cache_attribution(recorder) -> Dict[str, Any]:
    shards = recorder.registry.get("incremental_cache_shards_total")
    if shards is None:
        return {}
    out: Dict[str, Any] = {
        "shards": {labels.get("outcome", "?"): value
                   for labels, value in shards.samples()},
    }
    regions = recorder.registry.get("incremental_regions_total")
    if regions is not None:
        out["regions"] = {labels.get("state", "?"): value
                          for labels, value in regions.samples()}
    loaded = recorder.registry.get("incremental_ranks_loaded")
    if loaded is not None:
        value = loaded.value()
        if value is not None:
            out["ranks_loaded"] = value
    per_shard = recorder.registry.get("incremental_shard_regions")
    if per_shard is not None:
        out["per_shard"] = [
            {"shard": int(labels.get("shard", -1)),
             "outcome": labels.get("outcome", "?"),
             "regions": value}
            for labels, value in per_shard.samples()]
        out["per_shard"].sort(key=lambda entry: entry["shard"])
    return out


def _worker_utilization(recorder) -> Dict[str, Any]:
    tasks = recorder.registry.get("parallel_tasks_total")
    by_pid: Dict[int, Dict[str, float]] = {}
    for record in recorder.spans.records():
        if not record.name.startswith(_WORKER_SPAN_PREFIX):
            continue
        entry = by_pid.setdefault(record.pid, {"spans": 0,
                                               "busy_seconds": 0.0,
                                               "cpu_seconds": 0.0})
        entry["spans"] += 1
        entry["busy_seconds"] += record.duration
        entry["cpu_seconds"] += record.cpu
    created = recorder.registry.get("parallel_pool_created_total")
    reused = recorder.registry.get("parallel_pool_reused_total")
    pickled = recorder.registry.get("parallel_pickled_bytes_total")
    shm = recorder.registry.get("parallel_shm_bytes_total")
    if tasks is None and not by_pid and created is None and reused is None:
        return {}
    out: Dict[str, Any] = {}
    if tasks is not None:
        out["tasks"] = {labels.get("phase", "?"): value
                        for labels, value in tasks.samples()}
    if by_pid:
        out["pids"] = {str(pid): entry
                       for pid, entry in sorted(by_pid.items())}
    if created is not None or reused is not None:
        out["pool"] = {
            "created": created.total if created is not None else 0,
            "reused": reused.total if reused is not None else 0}
    if pickled is not None:
        # phase -> kind -> bytes; the zero-copy evidence: mem-event
        # columns show up under shm_bytes, never under pickled task
        # payloads
        by_phase: Dict[str, Dict[str, float]] = {}
        for labels, value in pickled.samples():
            phase = labels.get("phase", "?")
            by_phase.setdefault(phase, {})[labels.get("kind", "?")] = value
        out["pickled_bytes"] = {phase: dict(sorted(kinds.items()))
                                for phase, kinds in sorted(by_phase.items())}
    if shm is not None:
        out["shm_bytes"] = {labels.get("phase", "?"): value
                            for labels, value in shm.samples()}
    return out


def _emission(recorder) -> Dict[str, Any]:
    """Trace-generation stats published by the last ``profile_run``.

    Empty unless the profiler ran under the same obs session as the
    check (the ``run-check`` path) — analysis-only runs never saw the
    events being produced.
    """
    seconds = recorder.registry.get("profiler_emission_seconds")
    emitted = recorder.registry.get("profiler_emitted_events_total")
    if seconds is None and emitted is None:
        return {}
    out: Dict[str, Any] = {}
    if seconds is not None:
        value = seconds.value()
        if value is not None:
            out["seconds"] = value
    rate = recorder.registry.get("profiler_events_per_second")
    if rate is not None:
        value = rate.value()
        if value is not None:
            out["events_per_second"] = value
    if emitted is not None:
        out["emitted"] = dict(sorted(
            (f"{labels.get('kind', '?')}/{labels.get('lane', '?')}",
             int(value))
            for labels, value in emitted.samples()))
    return out


def _control_plane(recorder) -> Dict[str, Any]:
    """Control-plane ingest stats, keyed by plane.

    ``{"columnar": {"calls_ingested": n, "calls_per_second": r}}`` from
    the counters the checker publishes after the
    preprocess+matching+clocks+epochs group.  Both planes can appear in
    one session (differential runs); a single check publishes one.
    """
    ingested = recorder.registry.get("control_calls_ingested_total")
    if ingested is None:
        return {}
    out: Dict[str, Any] = {}
    for labels, value in ingested.samples():
        out[labels.get("plane", "?")] = {"calls_ingested": int(value)}
    rate = recorder.registry.get("control_calls_per_second")
    if rate is not None:
        for labels, value in rate.samples():
            out.setdefault(labels.get("plane", "?"), {})[
                "calls_per_second"] = value
    return out


def _findings_summary(report) -> Dict[str, Any]:
    details: List[dict] = []
    for finding in report.findings:
        entry = finding.to_dict()
        if finding.context:
            entry["context"] = dict(finding.context)
        details.append(entry)
    return {"errors": len(report.errors),
            "warnings": len(report.warnings),
            "details": details}


def build_run_report(report, config, *, traces=None, recorder=None,
                     command: str = "", app: str = "",
                     elapsed: float = 0.0) -> RunReport:
    """Distill one finished :class:`CheckReport` into a RunReport.

    ``recorder`` defaults to the active ``repro.obs`` recorder; on a
    disabled recorder the span- and metric-derived sections come out
    empty but the report stays well-formed (timings come from
    ``CheckStats``, which is populated unconditionally).
    """
    from repro import obs

    rec = recorder if recorder is not None else obs.get_recorder()
    stats = report.stats

    config_dict = {
        "memory_model": config.memory_model, "engine": config.engine,
        "jobs": config.jobs, "streaming": config.streaming,
        "naive_inter": config.naive_inter,
        "cache_dir": config.cache_dir, "incremental": config.incremental,
    }
    config_digest = stable_hash(config_dict)

    trace_digests: Dict[str, str] = {}
    trace_dir = ""
    if traces is not None:
        trace_dir = str(getattr(traces, "directory", ""))
        for rank in range(traces.nranks):
            with traces.reader(rank) as reader:
                trace_digests[str(rank)] = reader.content_digest()

    cpu = _phase_cpu(rec)
    phases = {
        phase: {"wall": seconds, "cpu": cpu.get(phase, 0.0)}
        for phase, seconds in stats.phase_seconds.items()
    }

    created = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    run_id = stable_hash({
        "created": created, "pid": os.getpid(),
        "monotonic_ns": time.monotonic_ns(),
        "config": config_digest, "traces": trace_digests,
    })[:12]

    ingest = {
        "nranks": stats.nranks, "events": stats.events,
        "rma_ops": stats.rma_ops,
        "local_accesses": stats.local_accesses,
        "sync_matches": stats.sync_matches,
        "regions": stats.regions, "epochs": stats.epochs,
    }

    return RunReport(
        run_id=run_id, created=created, command=command, app=app,
        config=config_dict, config_digest=config_digest,
        trace_dir=trace_dir, trace_digests=trace_digests,
        elapsed_seconds=(elapsed or stats.total_seconds),
        phases=phases, funnel=_funnel(rec),
        cache=_cache_attribution(rec),
        workers=_worker_utilization(rec),
        ingest=ingest, emission=_emission(rec),
        control_plane=_control_plane(rec),
        peak_rss_bytes=_peak_rss_bytes(),
        findings=_findings_summary(report))
