"""MC-Checker reproduction — memory consistency checking for (simulated)
MPI one-sided applications.

Top-level conveniences re-export the two things most users need: the
simulated MPI runtime to write programs against, and the checker to
analyze them.

    from repro import check_app, run_app

    def main(mpi):
        ...

    report = check_app(main, nranks=4)
    print(report.format())

Subpackages: :mod:`repro.simmpi` (the MPI-2.2/3 simulator),
:mod:`repro.stanalyzer` (static instrumentation analysis),
:mod:`repro.profiler` (trace collection), :mod:`repro.core`
(DN-Analyzer), :mod:`repro.ga` (Global-Arrays layer), :mod:`repro.apps`
(the paper's evaluated applications), :mod:`repro.tools` (trace
statistics / filtering / diffing / minimization).
"""

from repro.core import CheckReport, ConsistencyError, check_app, check_traces
from repro.simmpi import MPIContext, run_app

__version__ = "1.0.0"

__all__ = [
    "CheckReport", "ConsistencyError", "check_app", "check_traces",
    "MPIContext", "run_app",
    "__version__",
]
