"""MC-Checker reproduction — memory consistency checking for (simulated)
MPI one-sided applications.

Top-level conveniences re-export the things most users need: the
simulated MPI runtime to write programs against, the checker to analyze
them, and the :mod:`repro.api` facade (``api.run`` / ``api.check`` /
``api.run_check``) configured through :class:`CheckConfig`.

    from repro import check_app, run_app

    def main(mpi):
        ...

    report = check_app(main, nranks=4)
    print(report.format())

Subpackages: :mod:`repro.simmpi` (the MPI-2.2/3 simulator),
:mod:`repro.stanalyzer` (static instrumentation analysis),
:mod:`repro.profiler` (trace collection), :mod:`repro.core`
(DN-Analyzer), :mod:`repro.gen` (constrained-random program generation
+ differential fuzzing), :mod:`repro.ga` (Global-Arrays layer),
:mod:`repro.apps` (the paper's evaluated applications),
:mod:`repro.tools` (trace statistics / filtering / diffing /
minimization).
"""

from repro.core import (
    CheckConfig, CheckReport, ConsistencyError, check_app, check_traces,
)
from repro.simmpi import MPIContext, run_app
from repro import api  # noqa: E402  (imports repro.core; keep it last)
from repro.api import fuzz, generate, run_check, score
from repro.gen import GenConfig

__version__ = "1.0.0"

__all__ = [
    "CheckConfig", "CheckReport", "ConsistencyError", "check_app",
    "check_traces", "api", "run_check",
    "GenConfig", "generate", "fuzz", "score",
    "MPIContext", "run_app",
    "__version__",
]
