"""Trace tooling tests: stats, filter, diff."""

import pytest

from repro.apps.jacobi import jacobi
from repro.apps.lu import lu
from repro.core import check_traces
from repro.profiler.session import profile_run
from repro.tools import compute_stats, diff_traces, filter_traces
from repro.util.errors import AnalysisError


@pytest.fixture(scope="module")
def lu_traces(tmp_path_factory):
    return profile_run(lu, 3, params=dict(n=12),
                       trace_dir=str(tmp_path_factory.mktemp("lu")),
                       delivery="eager").traces


@pytest.fixture(scope="module")
def jacobi_traces(tmp_path_factory):
    return profile_run(
        jacobi, 3, params=dict(buggy=True, interior=6, iterations=2),
        trace_dir=str(tmp_path_factory.mktemp("jac")),
        delivery="eager").traces


class TestStats:
    def test_totals_match_event_counts(self, lu_traces):
        stats = compute_stats(lu_traces)
        counts = lu_traces.event_counts()
        assert stats.total_calls == counts["call"]
        assert stats.total_mems == counts["mem"]
        assert stats.nranks == 3

    def test_category_mix_covers_all_calls(self, lu_traces):
        stats = compute_stats(lu_traces)
        assert sum(stats.category_mix().values()) == stats.total_calls
        assert stats.category_mix()["one_sided"] > 0

    def test_bytes_accounting(self, lu_traces):
        stats = compute_stats(lu_traces)
        per_rank = stats.per_rank[0]
        assert per_rank.load_bytes > 0
        assert sum(r.rma_bytes for r in stats.per_rank) > 0

    def test_hot_statements_sorted(self, lu_traces):
        stats = compute_stats(lu_traces)
        counts = [count for _w, count in stats.hot_statements]
        assert counts == sorted(counts, reverse=True)
        assert sum(counts) == stats.total_events

    def test_format_smoke(self, lu_traces):
        text = compute_stats(lu_traces).format()
        assert "3 ranks" in text and "hottest statements" in text


class TestFilter:
    def test_identity_filter_preserves_analysis(self, jacobi_traces,
                                                tmp_path):
        filtered = filter_traces(jacobi_traces, str(tmp_path / "same"))
        original = check_traces(jacobi_traces)
        again = check_traces(filtered)
        assert sorted(f.dedup_key for f in again.findings) == \
            sorted(f.dedup_key for f in original.findings)

    def test_drop_mem_events(self, jacobi_traces, tmp_path):
        filtered = filter_traces(jacobi_traces, str(tmp_path / "calls"),
                                 keep_kinds=["call"])
        assert filtered.event_counts()["mem"] == 0
        assert filtered.event_counts()["call"] == \
            jacobi_traces.event_counts()["call"]

    def test_keep_vars(self, lu_traces, tmp_path):
        filtered = filter_traces(lu_traces, str(tmp_path / "vars"),
                                 keep_vars=["pivot"])
        from repro.profiler.events import MemEvent
        vars_seen = {e.var for r in range(3)
                     for e in filtered.events(r)
                     if isinstance(e, MemEvent)}
        assert vars_seen <= {"pivot"}

    def test_seq_range(self, lu_traces, tmp_path):
        filtered = filter_traces(lu_traces, str(tmp_path / "range"),
                                 seq_range=(0, 10))
        for rank in range(3):
            assert all(e.seq < 10 for e in filtered.events(rank))

    def test_custom_predicate(self, lu_traces, tmp_path):
        filtered = filter_traces(
            lu_traces, str(tmp_path / "pred"),
            predicate=lambda rank, e: rank != 1 or e.seq < 5)
        assert len(filtered.events(1)) <= 5
        assert len(filtered.events(0)) == len(lu_traces.events(0))


class TestDiff:
    def test_identical_runs(self, tmp_path):
        runs = [profile_run(lu, 2, params=dict(n=10),
                            trace_dir=str(tmp_path / f"r{i}"),
                            delivery="eager").traces
                for i in range(2)]
        diff = diff_traces(runs[0], runs[1])
        assert diff.identical
        assert "identical" in diff.format()

    def test_different_programs_diverge(self, tmp_path):
        left = profile_run(jacobi, 2,
                           params=dict(buggy=True, interior=4,
                                       iterations=1),
                           trace_dir=str(tmp_path / "l"),
                           delivery="eager").traces
        right = profile_run(jacobi, 2,
                            params=dict(buggy=False, interior=4,
                                        iterations=1),
                            trace_dir=str(tmp_path / "r"),
                            delivery="eager").traces
        diff = diff_traces(left, right)
        assert not diff.identical
        assert diff.divergences
        assert "diverges at call #" in diff.format()
        # the fixed variant has the extra fences
        assert diff.fn_only_right.get("Win_fence", 0) > 0

    def test_rank_mismatch_rejected(self, tmp_path):
        a = profile_run(lu, 2, params=dict(n=10),
                        trace_dir=str(tmp_path / "a")).traces
        b = profile_run(lu, 3, params=dict(n=10),
                        trace_dir=str(tmp_path / "b")).traces
        with pytest.raises(AnalysisError):
            diff_traces(a, b)

    def test_count_deltas(self, tmp_path):
        left = profile_run(lu, 2, params=dict(n=10), scope="report",
                           trace_dir=str(tmp_path / "sel")).traces
        right = profile_run(lu, 2, params=dict(n=10), scope="all",
                            trace_dir=str(tmp_path / "all")).traces
        diff = diff_traces(left, right)
        assert not diff.identical
        assert all(d["loads"] > 0 or d["stores"] > 0
                   for d in diff.count_deltas.values())
