"""Every example script must run to completion (they double as the
user-facing documentation, so a broken example is a broken deliverable)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                            "examples")

EXAMPLES = [
    ("quickstart.py", []),
    ("bug_hunt.py", ["--ranks-cap", "4"]),
    ("halo_exchange.py", []),
    ("custom_checker.py", []),
    ("mpi3_atomics.py", []),
    ("global_arrays.py", []),
    ("trace_tools.py", []),
    # overhead_study.py is the slow one: exercised by the benchmarks and
    # excluded here to keep the unit suite fast
]


@pytest.mark.parametrize("script,args", EXAMPLES,
                         ids=[name for name, _ in EXAMPLES])
def test_example_runs(script, args):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path, *args],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, (
        f"{script} failed:\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}")
    assert result.stdout.strip()  # every example narrates what it shows


def test_examples_list_is_complete():
    on_disk = {name for name in os.listdir(EXAMPLES_DIR)
               if name.endswith(".py")}
    covered = {name for name, _ in EXAMPLES} | {"overhead_study.py"}
    assert on_disk == covered, (
        f"examples drifted: on disk {sorted(on_disk)}, "
        f"covered {sorted(covered)}")
