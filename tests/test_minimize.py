"""Trace-minimization tests."""

import pytest

from repro.apps.jacobi import jacobi
from repro.apps.lu import lu
from repro.core import check_traces
from repro.profiler.session import profile_run
from repro.tools.minimize import finding_signature, minimize_trace


@pytest.fixture()
def buggy_traces(tmp_path):
    return profile_run(
        jacobi, 3, params=dict(buggy=True, interior=8, iterations=4),
        trace_dir=str(tmp_path / "orig"), delivery="eager").traces


class TestMinimize:
    def test_reduces_and_preserves_finding(self, buggy_traces, tmp_path):
        original = check_traces(buggy_traces)
        target = original.findings[0]
        result = minimize_trace(buggy_traces, str(tmp_path / "min"),
                                finding=target)
        assert result.final_events < result.original_events
        assert result.reduction > 0.3  # meaningful shrinkage

        # the minimized set still produces the same finding signature
        minimized_report = check_traces(result.traces)
        signatures = {finding_signature(f)
                      for f in minimized_report.findings}
        assert finding_signature(target) in signatures

    def test_default_finding_is_first(self, buggy_traces, tmp_path):
        result = minimize_trace(buggy_traces, str(tmp_path / "min"))
        assert result.steps
        assert "kept" in result.format() or "rejected" in result.format()

    def test_clean_trace_rejected(self, tmp_path):
        traces = profile_run(lu, 2, params=dict(n=10),
                             trace_dir=str(tmp_path / "clean")).traces
        with pytest.raises(ValueError, match="no findings"):
            minimize_trace(traces, str(tmp_path / "min"))

    def test_minimized_set_is_loadable(self, buggy_traces, tmp_path):
        from repro.profiler.tracer import TraceSet

        result = minimize_trace(buggy_traces, str(tmp_path / "min"))
        reloaded = TraceSet(result.traces.directory)
        assert reloaded.nranks == 3

    def test_intra_epoch_finding_minimizes(self, tmp_path):
        from repro.apps.pingpong import pingpong

        traces = profile_run(pingpong, 2,
                             params=dict(buggy=True, iterations=6),
                             trace_dir=str(tmp_path / "pp"),
                             delivery="eager").traces
        result = minimize_trace(traces, str(tmp_path / "min"))
        assert result.final_events <= result.original_events
        report = check_traces(result.traces)
        assert report.has_errors
